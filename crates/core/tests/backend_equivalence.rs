//! Cross-backend equivalence: every *real* backend in the registry
//! (everything except the cost-accounting `simulate` one) must produce
//! results **bit-identical** to the sequential `gep_reference` oracle,
//! across all four blocked-kernel kinds and both floating semirings
//! (min-plus FW-APSP and max-min widest-path closure). This is the
//! registry's correctness contract: registering a backend means
//! passing this suite.
//!
//! Also pinned here: fallback-chain resolution is deterministic — a
//! spec whose primary backend is unregistered/unavailable falls
//! through the chain to the same backend on every run, and an
//! end-to-end solve through such a chain matches the reference.

use std::sync::Arc;

use dp_core::{registry, solve, DpConfig, KernelBackend, KernelSpec, Strategy};
use gep_kernels::gep::{gep_reference, SemiringPaths};
use gep_kernels::semiring::MaxMin;
use gep_kernels::{GaussianElim, Matrix, Tropical};
use sparklet::{SparkConf, SparkContext};

const SIMULATE: &str = "simulate";

fn ctx() -> SparkContext {
    SparkContext::new(
        SparkConf::default()
            .with_executors(3)
            .with_executor_cores(2)
            .with_partitions(6),
    )
}

fn xorshift(state: &mut u64) -> f64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    (*state >> 11) as f64 / (1u64 << 53) as f64
}

fn dist_matrix(n: usize, seed: u64) -> Matrix<f64> {
    let mut state = seed | 1;
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            0.0
        } else if xorshift(&mut state) < 0.4 {
            1.0 + (xorshift(&mut state) * 9.0).floor()
        } else {
            f64::INFINITY
        }
    })
}

fn dd_matrix(n: usize, seed: u64) -> Matrix<f64> {
    let mut state = seed | 1;
    let mut m = Matrix::from_fn(n, n, |_, _| xorshift(&mut state) * 2.0 - 1.0);
    for i in 0..n {
        m.set(i, i, n as f64 + 1.0 + xorshift(&mut state));
    }
    m
}

fn maxmin_matrix(n: usize, seed: u64) -> Matrix<MaxMin> {
    let mut state = seed | 1;
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            MaxMin(f64::INFINITY)
        } else if xorshift(&mut state) < 0.35 {
            MaxMin((xorshift(&mut state) * 50.0).floor())
        } else {
            MaxMin(f64::NEG_INFINITY)
        }
    })
}

/// Names of every registered backend that computes real data.
fn real_backends<S: dp_core::DpProblem>() -> Vec<&'static str> {
    registry::<S>()
        .backends()
        .iter()
        .filter(|b| {
            b.available()
                && b.name() != SIMULATE
                && b.supports_repr(gep_kernels::sparse::TileRepr::Dense)
        })
        .map(|b| b.name())
        .collect()
}

/// A spec for `name` with params every backend accepts (r=2 fits any
/// block ≥ 2; base/threads small so recursion actually recurses).
fn spec_for(name: &str) -> KernelSpec {
    KernelSpec::named(name).with_params(dp_core::KernelParams {
        r_shared: 2,
        base: 2,
        threads: 2,
    })
}

/// Full distributed solves exercise all four kinds (A on the diagonal,
/// B/C panels, D trailing) across multiple phases — block 6 on n=24
/// gives a 4×4 grid with non-trivial panels.
#[test]
fn every_real_backend_matches_reference_bitwise_minplus() {
    let input = dist_matrix(24, 2024);
    let mut reference = input.clone();
    gep_reference::<Tropical>(&mut reference);
    let backends = real_backends::<Tropical>();
    assert!(backends.len() >= 3, "iterative, recursive, blocked");
    for name in backends {
        for strategy in [Strategy::InMemory, Strategy::CollectBroadcast] {
            let sc = ctx();
            let cfg = DpConfig::new(24, 6)
                .with_strategy(strategy)
                .with_kernel(spec_for(name));
            let out = solve::<Tropical>(&sc, &cfg, &input).expect("solve");
            assert_eq!(
                out.first_difference(&reference),
                None,
                "backend {name} / {strategy:?} diverged from gep_reference"
            );
        }
    }
}

#[test]
fn every_real_backend_matches_reference_bitwise_ge() {
    // GE reads `w` (USES_W), so kind D runs with the full u/v/w operand
    // set — the operand path min-plus alone would not cover.
    let input = dd_matrix(24, 77);
    let mut reference = input.clone();
    gep_reference::<GaussianElim>(&mut reference);
    for name in real_backends::<GaussianElim>() {
        let sc = ctx();
        let cfg = DpConfig::new(24, 8).with_kernel(spec_for(name));
        let out = solve::<GaussianElim>(&sc, &cfg, &input).expect("solve");
        assert_eq!(
            out.first_difference(&reference),
            None,
            "backend {name} diverged from gep_reference on GE"
        );
    }
}

#[test]
fn every_real_backend_matches_reference_bitwise_maxmin() {
    let input = maxmin_matrix(20, 5);
    let mut reference = input.clone();
    gep_reference::<SemiringPaths<MaxMin>>(&mut reference);
    for name in real_backends::<SemiringPaths<MaxMin>>() {
        let sc = ctx();
        let cfg = DpConfig::new(20, 5).with_kernel(spec_for(name));
        let out = solve::<SemiringPaths<MaxMin>>(&sc, &cfg, &input).expect("solve");
        assert_eq!(
            out.first_difference(&reference),
            None,
            "backend {name} diverged from gep_reference on max-min"
        );
    }
}

/// A backend that reports itself unavailable — resolution must skip it.
struct DownBackend;

impl<S: dp_core::DpProblem> KernelBackend<S> for DownBackend {
    fn name(&self) -> &'static str {
        "down-for-test"
    }

    fn available(&self) -> bool {
        false
    }

    fn kernel_type(&self, _params: &dp_core::KernelParams) -> cluster_model::KernelType {
        cluster_model::KernelType::Iterative
    }

    fn run(
        &self,
        _kind: gep_kernels::Kind,
        _params: &dp_core::KernelParams,
        _x: &mut gep_kernels::TileMut<'_, S::Elem>,
        _u: Option<gep_kernels::TileRef<'_, S::Elem>>,
        _v: Option<gep_kernels::TileRef<'_, S::Elem>>,
        _w: Option<gep_kernels::TileRef<'_, S::Elem>>,
    ) {
        unreachable!("unavailable backends are never resolved");
    }
}

#[test]
fn unavailable_backend_falls_through_chain_deterministically() {
    dp_core::register_backend::<Tropical>(Arc::new(DownBackend));
    let spec = KernelSpec::named("down-for-test")
        .with_fallback("not-registered-anywhere")
        .with_fallback("blocked");
    // Resolution is a pure function of the registry + spec.
    for _ in 0..5 {
        let resolved = registry::<Tropical>().resolve(&spec).expect("chain ends");
        assert_eq!(resolved.name(), "blocked");
    }
    // And an end-to-end solve through the chain is still exact.
    let input = dist_matrix(16, 9);
    let mut reference = input.clone();
    gep_reference::<Tropical>(&mut reference);
    let sc = ctx();
    let cfg = DpConfig::new(16, 4).with_kernel(spec);
    let out = solve::<Tropical>(&sc, &cfg, &input).expect("solve via fallback");
    assert_eq!(out.first_difference(&reference), None);
}
