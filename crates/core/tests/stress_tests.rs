//! Heavier end-to-end runs, ignored by default (run with
//! `cargo test --release -- --ignored`): larger tables, more
//! executors, deeper recursion — the soak coverage a release build
//! should pass.

use dp_core::{solve, solve_parenthesis, DpConfig, KernelSpec, Strategy};
use gep_kernels::gep::gep_reference;
use gep_kernels::graph::{check_apsp, erdos_renyi};
use gep_kernels::parenthesis::{solve_reference, ParenWeight};
use gep_kernels::{GaussianElim, Matrix, Tropical};
use sparklet::{SparkConf, SparkContext};

fn big_ctx() -> SparkContext {
    SparkContext::new(
        SparkConf::default()
            .with_executors(8)
            .with_executor_cores(4)
            .with_partitions(64),
    )
}

#[test]
#[ignore = "heavy: ~512×512 real distributed solves"]
fn large_fw_apsp_all_variants() {
    let n = 512;
    let adj = erdos_renyi(n, 0.01, 1.0, 10.0, 99);
    for (strategy, kernel) in [
        (Strategy::InMemory, KernelSpec::iterative()),
        (Strategy::InMemory, KernelSpec::recursive(4, 32, 2)),
        (Strategy::InMemory, KernelSpec::named("blocked")),
        (Strategy::CollectBroadcast, KernelSpec::recursive(8, 16, 2)),
    ] {
        let sc = big_ctx();
        let cfg = DpConfig::new(n, 128)
            .with_strategy(strategy)
            .with_kernel(kernel);
        let out = solve::<Tropical>(&sc, &cfg, &adj).expect("solve");
        assert_eq!(check_apsp(&adj, &out, 1e-9), None, "{}", cfg.label());
    }
}

#[test]
#[ignore = "heavy: 384×384 GE across many (r, base) combinations"]
fn large_ge_bitwise_grid() {
    let n = 384;
    let mut state = 7u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut input = Matrix::from_fn(n, n, |_, _| next() - 0.5);
    for i in 0..n {
        input.set(i, i, n as f64 + 1.0);
    }
    let mut reference = input.clone();
    gep_reference::<GaussianElim>(&mut reference);
    for (block, r_shared, base) in [(64, 2, 8), (96, 4, 12), (128, 8, 16)] {
        let sc = big_ctx();
        let cfg = DpConfig::new(n, block)
            .with_strategy(Strategy::CollectBroadcast)
            .with_kernel(KernelSpec::recursive(r_shared, base, 2));
        let out = solve::<GaussianElim>(&sc, &cfg, &input).expect("solve");
        assert_eq!(out.first_difference(&reference), None, "{}", cfg.label());
    }
}

#[test]
#[ignore = "heavy: 300-matrix chain distributed wavefront"]
fn large_matrix_chain() {
    let mut state = 3u64;
    let dims: Vec<u64> = (0..=300)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % 50 + 5
        })
        .collect();
    let w = ParenWeight::MatrixChain(dims);
    let sc = big_ctx();
    let dist = solve_parenthesis(&sc, &w, 32).expect("solve");
    let reference = solve_reference(&w);
    assert_eq!(dist.first_difference(&reference), None);
}

#[test]
#[ignore = "heavy: paper-scale virtual sweep smoke (several minutes)"]
fn paper_scale_virtual_smoke() {
    use cluster_model::ClusterSpec;
    use dp_core::simulate_seconds;
    let cluster = ClusterSpec::skylake();
    for strategy in [Strategy::InMemory, Strategy::CollectBroadcast] {
        let cfg = DpConfig::new(32 * 1024, 2048)
            .with_strategy(strategy)
            .with_kernel(KernelSpec::recursive(4, 64, 8))
            .virtual_mode();
        let secs = simulate_seconds::<Tropical>(&cluster, 32, &cfg, None).expect("simulate");
        assert!(secs > 10.0 && secs < 8.0 * 3600.0, "{strategy:?}: {secs}");
    }
}
