//! Acceptance for the sparse tile representation path (ISSUE 10): the
//! partitioned multi-source sweep engine is bit-identical to the
//! sequential Bellman–Ford and Dijkstra oracles across seeds, source
//! sets, and partition counts; it survives a seeded-chaos sweep with
//! replay-identical reports and unchanged bits; and it runs through
//! the multi-tenant job service — lineage-cached across execution
//! knobs, replay-identical decision logs, and malformed sparse bodies
//! rejected at admission as `Malformed`.

use bytes::Bytes;
use cluster_model::{ClusterSpec, CostModel};
use dp_core::jobs::{decode_matrix_f64, DpJobRequest, DpJobRunner};
use dp_core::{solve_sparse_apsp, solve_sparse_apsp_chaos, DpConfig};
use gep_kernels::graph::{bellman_ford, dijkstra, sparse_erdos_renyi};
use gep_kernels::Matrix;
use sparklet::service::JobService;
use sparklet::{Arrival, ChaosPolicy, JobState, Rejection, ServiceConfig, SparkConf, SparkContext};

fn sim_ctx(seed: u64) -> SparkContext {
    SparkContext::new(
        SparkConf::default()
            .with_executors(2)
            .with_executor_cores(2)
            .with_partitions(4)
            .with_sim_seed(seed),
    )
}

fn assert_rows_match_oracles(out: &Matrix<f64>, adj: &Matrix<f64>, sources: &[u32], label: &str) {
    for (s, &src) in sources.iter().enumerate() {
        let bf = bellman_ford(adj, src as usize).expect("no negative cycles");
        let dj = dijkstra(adj, src as usize);
        for v in 0..adj.rows() {
            assert_eq!(
                out.get(s, v).to_bits(),
                bf[v].to_bits(),
                "{label}: src={src} v={v} vs Bellman–Ford"
            );
            assert_eq!(
                out.get(s, v).to_bits(),
                dj[v].to_bits(),
                "{label}: src={src} v={v} vs Dijkstra"
            );
        }
    }
}

#[test]
fn sweeps_match_both_oracles_across_seeds_densities_parts_and_sources() {
    for (seed, density) in [(1u64, 0.05), (2, 0.15), (3, 0.4)] {
        let n = 21;
        let g = sparse_erdos_renyi(n, density, 1.0, 10.0, seed);
        let adj = g.to_dense();
        let all: Vec<u32> = (0..n as u32).collect();
        let few = [0u32, 7, 20];
        for sources in [&all[..], &few[..]] {
            for parts in [1usize, 2, 5, n] {
                let sc = sim_ctx(seed);
                let out = solve_sparse_apsp(&sc, &g, sources, parts).expect("solve");
                assert_rows_match_oracles(
                    &out,
                    &adj,
                    sources,
                    &format!("seed={seed} density={density} parts={parts}"),
                );
            }
        }
    }
}

#[test]
fn chaos_sweep_replays_identically_and_keeps_the_bits() {
    let n = 18;
    let g = sparse_erdos_renyi(n, 0.2, 1.0, 8.0, 77);
    let sources = [0u32, 4, 9, 17];
    let clean = solve_sparse_apsp(&sim_ctx(5), &g, &sources, 3).expect("clean run");

    for chaos_seed in [11u64, 12, 13] {
        let run = || {
            solve_sparse_apsp_chaos(
                &sim_ctx(chaos_seed),
                &g,
                &sources,
                3,
                ChaosPolicy::seeded(chaos_seed).with_fetch_failures(60),
            )
            .expect("chaos run recovers")
        };
        let (out1, rep1) = run();
        let (out2, rep2) = run();
        assert_eq!(
            out1.first_difference(&clean),
            None,
            "chaos seed {chaos_seed} drifted from the clean answer"
        );
        assert_eq!(
            out1.first_difference(&out2),
            None,
            "chaos seed {chaos_seed} is not replay-stable"
        );
        assert_eq!(
            rep1, rep2,
            "chaos seed {chaos_seed}: the full run report (stages, retries, \
             traffic) must replay from the seed"
        );
        assert_rows_match_oracles(&out1, &g.to_dense(), &sources, "under chaos");
    }
}

// --- through the job service ------------------------------------------

fn runner() -> DpJobRunner {
    DpJobRunner::new(
        CostModel::new(ClusterSpec::skylake(), 4),
        DpConfig::new(1, 1),
    )
}

fn sparse_body(seed: u64, n: usize, sources: Vec<u32>, parts: usize) -> Bytes {
    DpJobRequest::SparseApsp {
        edges: sparse_erdos_renyi(n, 0.15, 1.0, 9.0, seed),
        sources,
        parts,
    }
    .encode()
}

#[test]
fn scripted_service_run_replays_and_caches_across_execution_knobs() {
    // Tenant 2 re-asks tenant 1's exact query with a different
    // partition count: `parts` is an execution knob outside the
    // lineage key, so the second ask must be a cache hit. A different
    // *source set* on the same graph is a different result → miss.
    let script = vec![
        Arrival {
            at_ms: 0,
            tenant: 1,
            body: sparse_body(42, 20, vec![0, 5, 19], 2),
        },
        Arrival {
            at_ms: 2,
            tenant: 2,
            body: sparse_body(42, 20, vec![0, 5, 19], 7),
        },
        Arrival {
            at_ms: 4,
            tenant: 2,
            body: sparse_body(42, 20, vec![1, 2], 2),
        },
    ];
    let run = || {
        let svc = JobService::new(
            sim_ctx(4242),
            ServiceConfig::default().with_inflight(2, 2),
            runner(),
        );
        let outcomes = svc.run_script(&script, 1);
        let results: Vec<Option<Bytes>> = outcomes
            .iter()
            .map(|o| {
                svc.wait(*o.as_ref().expect("all admitted"))
                    .expect("known")
                    .result
            })
            .collect();
        (svc.decisions(), results, svc.stats())
    };
    let (d1, r1, s1) = run();
    let (d2, r2, s2) = run();
    assert_eq!(d1, d2, "decision log must replay bit-identically");
    assert_eq!(r1, r2, "result bytes must replay bit-identically");
    assert_eq!(s1, s2);
    assert_eq!(s1.completed, 3);
    assert_eq!(s1.cache_hits, 1, "knob-only repeat hits; new sources miss");
    assert_eq!(r1[0], r1[1], "hit returns the cached bytes verbatim");

    // And the cached/recomputed answers are *right*, bitwise.
    let adj = sparse_erdos_renyi(20, 0.15, 1.0, 9.0, 42).to_dense();
    let first = decode_matrix_f64(r1[0].as_ref().expect("done")).expect("decode");
    assert_rows_match_oracles(&first, &adj, &[0, 5, 19], "service run 1");
    let third = decode_matrix_f64(r1[2].as_ref().expect("done")).expect("decode");
    assert_rows_match_oracles(&third, &adj, &[1, 2], "service run 3");
}

#[test]
fn malformed_sparse_bodies_reject_at_admission_as_malformed() {
    let svc = JobService::new(sim_ctx(9), ServiceConfig::default(), runner());

    // A canonical body, truncated mid-CSR.
    let good = sparse_body(3, 12, vec![0, 3], 2);
    let cut = good.slice(0..good.len() - 5);
    assert!(
        matches!(svc.submit(1, cut), Err(Rejection::Malformed(_))),
        "truncated sparse body must be refused before scheduling"
    );

    // A structurally complete body whose CSR violates canonical form
    // (decreasing row pointers).
    let mut bad = vec![5u8]; // TAG_SPARSE_APSP
    bad.extend_from_slice(&2u64.to_le_bytes()); // parts
    bad.extend_from_slice(&1u64.to_le_bytes()); // one source
    bad.extend_from_slice(&0u64.to_le_bytes());
    bad.extend_from_slice(&2u64.to_le_bytes()); // n = 2
    bad.extend_from_slice(&1u64.to_le_bytes()); // nnz = 1
    bad.extend_from_slice(&f64::INFINITY.to_le_bytes()); // fill
    for p in [0u32, 1, 0] {
        bad.extend_from_slice(&p.to_le_bytes()); // row_ptr decreases
    }
    bad.extend_from_slice(&0u32.to_le_bytes()); // col_idx
    bad.extend_from_slice(&1.0f64.to_le_bytes()); // vals
    assert!(
        matches!(
            svc.submit(1, Bytes::from(bad)),
            Err(Rejection::Malformed(_))
        ),
        "non-canonical CSR must be refused at admission"
    );

    // A source index past the vertex range.
    assert!(matches!(
        svc.submit(1, sparse_body(3, 12, vec![12], 2)),
        Err(Rejection::Malformed(_))
    ));

    // The service still works afterwards: the same graph with valid
    // sources is admitted and completes.
    let id = svc
        .submit(1, sparse_body(3, 12, vec![0, 3], 2))
        .expect("admit");
    svc.pump_all();
    let view = svc.wait(id).expect("known");
    assert_eq!(view.state, JobState::Done, "{:?}", view.error);
}
