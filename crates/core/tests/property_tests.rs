//! Property-based tests of the distributed solver: for arbitrary
//! problem sizes, block sizes, strategies, kernels, partition counts,
//! and cluster shapes, the distributed result equals the sequential
//! reference exactly.

use dp_core::{solve, DpConfig, KernelSpec, Strategy as DpStrategy};
use gep_kernels::gep::gep_reference;
use gep_kernels::{GaussianElim, Matrix, TransitiveClosure, Tropical};
use proptest::prelude::*;
use sparklet::{SparkConf, SparkContext};

fn dd_matrix(n: usize, seed: u64) -> Matrix<f64> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut m = Matrix::from_fn(n, n, |_, _| next() * 2.0 - 1.0);
    for i in 0..n {
        m.set(i, i, n as f64 + 1.0 + next());
    }
    m
}

fn dist_matrix(n: usize, seed: u64) -> Matrix<f64> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            0.0
        } else if next() < 0.45 {
            1.0 + (next() * 9.0).floor()
        } else {
            f64::INFINITY
        }
    })
}

fn any_kernel() -> impl proptest::strategy::Strategy<Value = KernelSpec> {
    prop_oneof![
        Just(KernelSpec::iterative()),
        Just(KernelSpec::named("blocked")),
        (2usize..=4, 1usize..=4, 1usize..=3)
            .prop_map(|(r, base, threads)| KernelSpec::recursive(r, base, threads)),
    ]
}

/// Smallest block a spec is valid at: the recursive backend requires
/// `r_shared <= block`.
fn legal_block(block: usize, kernel: &KernelSpec) -> usize {
    if kernel.backend == "recursive" {
        block.max(kernel.params.r_shared)
    } else {
        block
    }
}

fn any_strategy() -> impl proptest::strategy::Strategy<Value = DpStrategy> {
    prop_oneof![
        Just(DpStrategy::InMemory),
        Just(DpStrategy::CollectBroadcast)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn distributed_ge_equals_reference(
        seed in any::<u64>(),
        n in 8usize..28,
        block_sel in 0usize..3,
        kernel in any_kernel(),
        strategy in any_strategy(),
        executors in 1usize..5,
        partitions in 1usize..20,
        grid_part in any::<bool>(),
    ) {
        let block = [4, 5, 8][block_sel].min(n);
        let input = dd_matrix(n, seed);
        let mut reference = input.clone();
        gep_reference::<GaussianElim>(&mut reference);
        let sc = SparkContext::new(
            SparkConf::default()
                .with_executors(executors)
                .with_partitions(partitions.max(1)),
        );
        let cfg = DpConfig::new(n, legal_block(block, &kernel))
            .with_kernel(kernel)
            .with_strategy(strategy)
            .with_partitions(partitions.max(1))
            .with_grid_partitioner(grid_part);
        let out = solve::<GaussianElim>(&sc, &cfg, &input).expect("solve");
        prop_assert_eq!(out.first_difference(&reference), None);
    }

    #[test]
    fn distributed_fw_equals_reference(
        seed in any::<u64>(),
        n in 8usize..24,
        block in 3usize..9,
        kernel in any_kernel(),
        strategy in any_strategy(),
    ) {
        let input = dist_matrix(n, seed);
        let mut reference = input.clone();
        gep_reference::<Tropical>(&mut reference);
        let sc = SparkContext::new(
            SparkConf::default().with_executors(3).with_partitions(7),
        );
        let cfg = DpConfig::new(n, legal_block(block.min(n), &kernel))
            .with_kernel(kernel)
            .with_strategy(strategy);
        let out = solve::<Tropical>(&sc, &cfg, &input).expect("solve");
        prop_assert_eq!(out.first_difference(&reference), None);
    }

    #[test]
    fn distributed_tc_equals_reference(
        seed in any::<u64>(),
        n in 6usize..20,
        block in 2usize..7,
        strategy in any_strategy(),
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let input = Matrix::from_fn(n, n, |i, j| i == j || next() % 5 == 0);
        let mut reference = input.clone();
        gep_reference::<TransitiveClosure>(&mut reference);
        let sc = SparkContext::new(
            SparkConf::default().with_executors(2).with_partitions(5),
        );
        let cfg = DpConfig::new(n, block.min(n)).with_strategy(strategy);
        let out = solve::<TransitiveClosure>(&sc, &cfg, &input).expect("solve");
        prop_assert_eq!(out.first_difference(&reference), None);
    }

    #[test]
    fn solve_with_random_fault_injection_still_exact(
        seed in any::<u64>(),
        fail_stage in 0u64..20,
        fail_partition in 0usize..8,
    ) {
        let input = dist_matrix(16, seed);
        let mut reference = input.clone();
        gep_reference::<Tropical>(&mut reference);
        let sc = SparkContext::new(
            SparkConf::default().with_executors(3).with_partitions(8),
        );
        sc.inject_failure(fail_stage, fail_partition, 2);
        let cfg = DpConfig::new(16, 4);
        let out = solve::<Tropical>(&sc, &cfg, &input).expect("solve heals failures");
        prop_assert_eq!(out.first_difference(&reference), None);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn distributed_parenthesis_equals_reference(
        dims in proptest::collection::vec(1u64..40, 4..26),
        block in 2usize..9,
    ) {
        use dp_core::solve_parenthesis;
        use gep_kernels::parenthesis::{solve_reference, ParenWeight};
        let w = ParenWeight::MatrixChain(dims);
        let sc = SparkContext::new(
            SparkConf::default().with_executors(3).with_partitions(6),
        );
        let dist = solve_parenthesis(&sc, &w, block).expect("solve");
        let reference = solve_reference(&w);
        prop_assert_eq!(dist.first_difference(&reference), None);
    }

    #[test]
    fn distributed_alignment_equals_reference(
        a in proptest::collection::vec(prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T')], 1..40),
        b in proptest::collection::vec(prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T')], 1..40),
        block in 2usize..12,
        lcs in any::<bool>(),
    ) {
        use dp_core::solve_alignment;
        use gep_kernels::alignment::{align_reference, AlignScore};
        let score = if lcs {
            AlignScore::Lcs
        } else {
            AlignScore::NeedlemanWunsch { matched: 2, mismatch: -1, gap: -2 }
        };
        let sc = SparkContext::new(
            SparkConf::default().with_executors(2).with_partitions(4),
        );
        let dist = solve_alignment(&sc, &a, &b, &score, block).expect("solve");
        let reference = align_reference(&a, &b, &score);
        prop_assert_eq!(dist.first_difference(&reference), None);
    }

    #[test]
    fn lcs_is_symmetric_and_bounded(
        a in proptest::collection::vec(prop_oneof![Just(b'A'), Just(b'C'), Just(b'G')], 0..30),
        b in proptest::collection::vec(prop_oneof![Just(b'A'), Just(b'C'), Just(b'G')], 0..30),
    ) {
        use gep_kernels::alignment::{align_reference, AlignScore};
        let ab = align_reference(&a, &b, &AlignScore::Lcs);
        let ba = align_reference(&b, &a, &AlignScore::Lcs);
        let len_ab = ab.get(a.len(), b.len());
        let len_ba = ba.get(b.len(), a.len());
        prop_assert_eq!(len_ab, len_ba);
        prop_assert!(len_ab as usize <= a.len().min(b.len()));
        // Monotone in prefixes.
        if !a.is_empty() {
            let shorter = align_reference(&a[..a.len() - 1], &b, &AlignScore::Lcs);
            prop_assert!(shorter.get(a.len() - 1, b.len()) <= len_ab);
        }
    }

    #[test]
    fn semiring_paths_closure_equals_reference_distributed(
        seed in any::<u64>(),
        n in 6usize..20,
        block in 2usize..7,
    ) {
        use gep_kernels::gep::SemiringPaths;
        use gep_kernels::semiring::MaxMin;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let input = gep_kernels::Matrix::from_fn(n, n, |i, j| {
            if i == j {
                MaxMin(f64::INFINITY)
            } else if next() % 3 == 0 {
                MaxMin((next() % 50) as f64)
            } else {
                MaxMin(f64::NEG_INFINITY)
            }
        });
        let mut reference = input.clone();
        gep_reference::<SemiringPaths<MaxMin>>(&mut reference);
        let sc = SparkContext::new(
            SparkConf::default().with_executors(2).with_partitions(5),
        );
        let cfg = DpConfig::new(n, block.min(n));
        let out = solve::<SemiringPaths<MaxMin>>(&sc, &cfg, &input).expect("solve");
        prop_assert_eq!(out.first_difference(&reference), None);
    }
}
