//! Multi-process acceptance at the solver level: a Floyd–Warshall run
//! over the TCP transport with real executor subprocesses must be
//! bit-identical to the in-process run with an equivalent
//! `SolveReport`, and a real `SIGKILL` mid-job must recover to the
//! correct distances.

use dp_core::{solve_chaos, solve_with_report, DpConfig, SolveReport};
use gep_kernels::gep::gep_reference;
use gep_kernels::{Matrix, Tropical};
use sparklet::{ChaosEvent, ChaosPolicy, SparkConf, SparkContext, TransportMode};

const NODES: usize = 2;

fn ctx(mode: TransportMode) -> SparkContext {
    SparkContext::new(
        SparkConf::default()
            .with_executors(NODES)
            .with_executor_cores(2)
            .with_partitions(8)
            .with_retry_backoff(4, 64)
            .with_transport(mode),
    )
}

/// Integer edge weights: exact arithmetic ⇒ bitwise-stable distances.
fn dist_matrix(n: usize, seed: u64) -> Matrix<f64> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            0.0
        } else if next() < 0.4 {
            1.0 + (next() * 9.0).floor()
        } else {
            f64::INFINITY
        }
    })
}

/// The threaded scheduler's stage-concurrency high-water mark is a
/// timing artifact, not a property of the plan — mask it before
/// comparing reports across transports.
fn comparable(mut rep: SolveReport) -> SolveReport {
    rep.max_concurrent_stages = 0;
    rep
}

#[test]
fn fw_over_tcp_is_bit_identical_with_an_equivalent_report() {
    let input = dist_matrix(32, 99);
    let mut reference = input.clone();
    gep_reference::<Tropical>(&mut reference);
    let cfg = DpConfig::new(32, 8);

    let sc = ctx(TransportMode::InProcess);
    let (out_local, rep_local) =
        solve_with_report::<Tropical>(&sc, &cfg, &input).expect("in-process solve");
    assert_eq!(out_local.first_difference(&reference), None);

    let sc = ctx(TransportMode::Tcp);
    let (out_tcp, rep_tcp) = solve_with_report::<Tropical>(&sc, &cfg, &input).expect("TCP solve");
    assert_eq!(
        out_tcp.first_difference(&out_local),
        None,
        "transports must agree bitwise"
    );
    assert_eq!(
        comparable(rep_tcp),
        comparable(rep_local),
        "declared-byte accounting must not depend on the transport"
    );
    let (tx, rx) = sc.total_wire_bytes();
    assert!(
        tx > 0 && rx > 0,
        "the FW shuffle must actually cross the sockets (tx={tx}, rx={rx})"
    );
    sc.audit().expect("post-solve audit");
    assert_eq!(
        sc.shutdown().expect("orderly shutdown"),
        vec![0; NODES],
        "executors must exit cleanly"
    );
}

#[test]
fn fw_survives_a_real_sigkill_mid_job() {
    let input = dist_matrix(32, 7);
    let mut reference = input.clone();
    gep_reference::<Tropical>(&mut reference);
    let cfg = DpConfig::new(32, 8);

    let sc = ctx(TransportMode::Tcp);
    // Lose an executor on the first attempt of two early stages: each
    // kill is a real SIGKILL + respawn, wiping the subprocess's staged
    // map outputs so a later fetch fails over to map-stage resubmission.
    let chaos = ChaosPolicy::seeded(7)
        .script(1, 0, 1, ChaosEvent::ExecutorLoss)
        .script(3, 0, 1, ChaosEvent::ExecutorLoss);
    let (out, rep) = solve_chaos::<Tropical>(&sc, &cfg, &input, chaos).expect("chaotic solve");
    assert_eq!(
        out.first_difference(&reference),
        None,
        "recovery must reproduce the reference distances bitwise"
    );
    assert!(
        sc.executor_respawns() >= 2,
        "both scripted losses must have SIGKILLed real subprocesses, got {}",
        sc.executor_respawns()
    );
    // Recovery takes the fetch-failed path: the concurrent tasks that
    // read the dead executor's map outputs see `FetchFailed` and the
    // job resubmits the map stage (a parked task-level retry may also
    // fire first — `rep.retries` is incidental, the resubmission is
    // the invariant).
    assert!(
        sc.stage_resubmissions() >= 1,
        "lost map outputs must resubmit their map stage, got {} (retries {})",
        sc.stage_resubmissions(),
        rep.retries
    );
    sc.audit().expect("post-recovery audit");
    assert_eq!(sc.shutdown().expect("shutdown"), vec![0; NODES]);
}
