//! Chaos acceptance at the solver level: a deterministic (seeded)
//! Floyd–Warshall run under injected faults must produce bit-identical
//! distances to the fault-free run, with `SolveReport` counters that
//! replay exactly from the seed. Failures print a `CHAOS_SEED` line.

use std::panic::{catch_unwind, AssertUnwindSafe};

use dp_core::{solve_chaos, solve_with_report, DpConfig};
use gep_kernels::gep::gep_reference;
use gep_kernels::{Matrix, Tropical};
use sparklet::{ChaosPolicy, SparkConf, SparkContext};

const NODES: usize = 4;

fn sim_ctx(seed: u64) -> SparkContext {
    SparkContext::new(
        SparkConf::default()
            .with_executors(NODES)
            .with_executor_cores(2)
            .with_partitions(16)
            .with_retry_backoff(4, 64)
            .with_sim_seed(seed),
    )
}

/// Integer edge weights: exact arithmetic ⇒ bitwise-stable distances.
fn dist_matrix(n: usize, seed: u64) -> Matrix<f64> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            0.0
        } else if next() < 0.4 {
            1.0 + (next() * 9.0).floor()
        } else {
            f64::INFINITY
        }
    })
}

fn seeds(default_n: u64) -> Vec<u64> {
    if let Ok(pin) = std::env::var("CHAOS_SEED") {
        return vec![pin.trim().parse().expect("CHAOS_SEED must be a u64")];
    }
    let n = std::env::var("SIM_SEEDS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default_n);
    (0..n).map(|i| 0x5eed_0000 + i).collect()
}

fn sweep(name: &str, default_n: u64, body: impl Fn(u64)) {
    for seed in seeds(default_n) {
        if let Err(panic) = catch_unwind(AssertUnwindSafe(|| body(seed))) {
            eprintln!(
                "\n{name} failed at seed {seed}; replay with:\n    \
                 CHAOS_SEED={seed} cargo test -p dp-core --test sim_chaos\n"
            );
            std::panic::resume_unwind(panic);
        }
    }
}

#[test]
fn fw_under_seeded_chaos_is_bitwise_correct_and_replayable() {
    let input = dist_matrix(32, 99);
    let mut reference = input.clone();
    gep_reference::<Tropical>(&mut reference);
    let cfg = DpConfig::new(32, 8);

    sweep("fw chaos", 3, |seed| {
        let chaos = || {
            ChaosPolicy::seeded(seed)
                .with_task_panics(60)
                .with_stragglers(60, 100)
        };
        // Fault-free deterministic run of the same seed.
        let sc = sim_ctx(seed);
        let (clean_out, clean_rep) =
            solve_with_report::<Tropical>(&sc, &cfg, &input).expect("fault-free solve");
        assert_eq!(
            clean_out.first_difference(&reference),
            None,
            "CHAOS_SEED={seed}: clean deterministic run diverged from the reference"
        );

        // Chaotic run: panics retry from lineage, stragglers only cost
        // virtual time — the distances must not change, and the stage
        // structure and committed shuffle volume must match the clean
        // run exactly (retries commit exactly one attempt per task).
        let sc = sim_ctx(seed);
        let (out, rep) =
            solve_chaos::<Tropical>(&sc, &cfg, &input, chaos()).expect("chaotic solve");
        assert_eq!(
            out.first_difference(&reference),
            None,
            "CHAOS_SEED={seed}: chaotic run diverged from the reference"
        );
        assert_eq!(
            (rep.stages, rep.tasks),
            (clean_rep.stages, clean_rep.tasks),
            "CHAOS_SEED={seed}: chaos must not change the stage structure"
        );
        assert_eq!(
            rep.staged_bytes, clean_rep.staged_bytes,
            "CHAOS_SEED={seed}: committed shuffle volume must match the clean run"
        );
        assert_eq!(
            rep.speculative_launches, 0,
            "CHAOS_SEED={seed}: sequential sim schedules cannot speculate"
        );

        // Replay: the same seed must reproduce the identical report.
        let sc = sim_ctx(seed);
        let (out2, rep2) =
            solve_chaos::<Tropical>(&sc, &cfg, &input, chaos()).expect("replayed solve");
        assert_eq!(
            out2.first_difference(&out),
            None,
            "CHAOS_SEED={seed}: replay produced different distances"
        );
        assert_eq!(
            rep2, rep,
            "CHAOS_SEED={seed}: replay produced a different report"
        );
    });
}

#[test]
fn fw_chaos_retries_fire_across_the_default_sweep() {
    // Per-seed retry counts vary, but a 6% panic rate over three full
    // FW solves must retry somewhere — this guards against the chaos
    // hook silently disconnecting from the solver path.
    if std::env::var("CHAOS_SEED").is_ok() {
        return; // pinned replay of the other test's seed
    }
    let input = dist_matrix(32, 7);
    let cfg = DpConfig::new(32, 8);
    let mut total_retries = 0u64;
    for seed in seeds(3) {
        let sc = sim_ctx(seed);
        let chaos = ChaosPolicy::seeded(seed).with_task_panics(60);
        let (_, rep) = solve_chaos::<Tropical>(&sc, &cfg, &input, chaos).expect("chaotic solve");
        total_retries += rep.retries;
    }
    assert!(
        total_retries > 0,
        "chaos panics never reached the solver's stages"
    );
}
