//! Acceptance for the multi-tenant DP job service (ISSUE 9): a seeded
//! sim run with two tenants and overlapping APSP queries replays
//! bit-identically (scheduling order, admission/cache decisions,
//! result bytes); the lineage-cache path returns results bitwise-equal
//! to cold recomputation while running zero new engine stages; and the
//! service stays correct under chaos — scripted `FetchFailure` in sim
//! and a real executor `SIGKILL` over the TCP transport with two
//! tenants in flight.

use bytes::Bytes;
use cluster_model::{ClusterSpec, CostModel};
use dp_core::jobs::{decode_matrix_f64, decode_matrix_i64, DpJobRequest, DpJobRunner};
use dp_core::DpConfig;
use gep_kernels::alignment::AlignScore;
use gep_kernels::gep::gep_reference;
use gep_kernels::parenthesis::ParenWeight;
use gep_kernels::{Matrix, Tropical};
use sparklet::service::JobService;
use sparklet::{
    Arrival, ChaosEvent, ChaosPolicy, JobState, ServiceConfig, SparkConf, SparkContext,
    TransportMode,
};

const NODES: usize = 2;

fn sim_ctx(seed: u64) -> SparkContext {
    SparkContext::new(
        SparkConf::default()
            .with_executors(NODES)
            .with_executor_cores(2)
            .with_partitions(4)
            .with_sim_seed(seed),
    )
}

fn runner() -> DpJobRunner {
    DpJobRunner::new(
        CostModel::new(ClusterSpec::skylake(), 4),
        DpConfig::new(1, 1),
    )
}

fn service(sc: SparkContext, conf: ServiceConfig) -> JobService {
    JobService::new(sc, conf, runner())
}

/// Integer edge weights: exact arithmetic ⇒ bitwise-stable distances.
fn dist_matrix(n: usize, seed: u64) -> Matrix<f64> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            0.0
        } else if next() < 0.4 {
            1.0 + (next() * 9.0).floor()
        } else {
            f64::INFINITY
        }
    })
}

fn apsp_body(n: usize, seed: u64, block: usize, sources: Option<Vec<u32>>) -> Bytes {
    DpJobRequest::Apsp {
        dist: dist_matrix(n, seed),
        block,
        sources,
    }
    .encode()
}

fn apsp_reference(n: usize, seed: u64) -> Matrix<f64> {
    let mut m = dist_matrix(n, seed);
    gep_reference::<Tropical>(&mut m);
    m
}

// --- the headline acceptance: seeded replay --------------------------

#[test]
fn two_tenant_overlapping_script_replays_bit_identically() {
    // Two tenants, mixed problem types, and overlapping APSP queries:
    // tenant 2 re-asks tenant 1's graph with a different source set
    // and a different block size — same lineage, so it must be served
    // from the cache as a row projection.
    let script = vec![
        Arrival {
            at_ms: 0,
            tenant: 1,
            body: apsp_body(24, 42, 6, None),
        },
        Arrival {
            at_ms: 2,
            tenant: 2,
            body: apsp_body(24, 77, 6, None),
        },
        Arrival {
            at_ms: 4,
            tenant: 2,
            body: DpJobRequest::Alignment {
                a: b"GCATGCUACGTACGTTAGC".to_vec(),
                b: b"GATTACAGGATCCTAGGCA".to_vec(),
                score: AlignScore::NeedlemanWunsch {
                    matched: 1,
                    mismatch: -1,
                    gap: -1,
                },
                block: 8,
            }
            .encode(),
        },
        // Overlap: tenant 1's graph, different sources AND block.
        Arrival {
            at_ms: 6,
            tenant: 2,
            body: apsp_body(24, 42, 8, Some(vec![3, 11, 17])),
        },
        Arrival {
            at_ms: 8,
            tenant: 1,
            body: DpJobRequest::Parenthesis {
                weight: ParenWeight::MatrixChain(vec![30, 35, 15, 5, 10, 20, 25]),
                block: 4,
            }
            .encode(),
        },
        // Exact repeat of tenant 2's own graph, from tenant 1.
        Arrival {
            at_ms: 10,
            tenant: 1,
            body: apsp_body(24, 77, 6, None),
        },
    ];

    let run = |svc_conf: ServiceConfig| {
        let svc = service(sim_ctx(9001), svc_conf);
        let outcomes = svc.run_script(&script, 1);
        let results: Vec<Option<Bytes>> = outcomes
            .iter()
            .map(|o| {
                svc.wait(*o.as_ref().expect("all admitted"))
                    .expect("known")
                    .result
            })
            .collect();
        (svc.decisions(), results, svc.stats(), svc.cache_stats())
    };
    let conf = || {
        ServiceConfig::default()
            .with_tenant_weight(1, 2)
            .with_tenant_weight(2, 1)
            .with_inflight(2, 2)
    };

    let (d1, r1, s1, c1) = run(conf());
    let (d2, r2, s2, c2) = run(conf());
    assert_eq!(d1, d2, "same script must replay the same decision log");
    assert_eq!(r1, r2, "same script must replay the same result bytes");
    assert_eq!((s1, c1), (s2.clone(), c2), "counters replay too");
    assert_eq!(s2.completed, 6);
    assert_eq!(s2.cache_hits, 2, "the two overlapping queries hit");

    // Decisions replay is necessary but not sufficient — the results
    // must also be *right*. APSP answers against the serial reference:
    let full_42 = decode_matrix_f64(r1[0].as_ref().expect("done")).expect("decode");
    assert_eq!(full_42.first_difference(&apsp_reference(24, 42)), None);
    let full_77 = decode_matrix_f64(r1[1].as_ref().expect("done")).expect("decode");
    assert_eq!(full_77.first_difference(&apsp_reference(24, 77)), None);
    // The projected overlap: exactly rows 3, 11, 17 of tenant 1's
    // table, bitwise, served from cache despite the different block.
    let proj = decode_matrix_f64(r1[3].as_ref().expect("done")).expect("decode");
    assert_eq!(proj.rows(), 3);
    for (out_row, &src_row) in [0, 1, 2].iter().zip(&[3usize, 11, 17]) {
        for j in 0..24 {
            assert_eq!(
                proj.get(*out_row, j).to_bits(),
                full_42.get(src_row, j).to_bits(),
                "projection row {src_row} col {j}"
            );
        }
    }
    // The exact repeat is byte-identical to the original.
    assert_eq!(r1[5], r1[1], "repeat query returns the cached bytes");
    // Alignment sanity: decodes to the right shape.
    let align = decode_matrix_i64(r1[2].as_ref().expect("done")).expect("decode");
    assert_eq!((align.rows(), align.cols()), (20, 20));
}

// --- cache hits skip engine stages -----------------------------------

#[test]
fn cache_hit_runs_zero_new_stages_and_matches_cold_bitwise() {
    let svc = service(sim_ctx(5), ServiceConfig::default().with_inflight(1, 1));
    let cold_id = svc.submit(1, apsp_body(18, 13, 6, None)).expect("admit");
    svc.pump_all();
    let cold = svc.wait(cold_id).expect("known");
    assert_eq!(cold.state, JobState::Done, "{:?}", cold.error);
    assert!(!cold.cache_hit);
    assert!(cold.stages_run > 0);

    let stages_before = svc.sc().with_event_log(|l| l.stage_count());
    let warm_id = svc.submit(2, apsp_body(18, 13, 6, None)).expect("admit");
    svc.pump_all();
    let warm = svc.wait(warm_id).expect("known");
    assert!(warm.cache_hit, "identical lineage from another tenant hits");
    assert_eq!(warm.stages_run, 0);
    assert_eq!(
        svc.sc().with_event_log(|l| l.stage_count()),
        stages_before,
        "the cached path must not touch the engine"
    );
    assert_eq!(warm.result, cold.result, "hit ≡ recompute, bitwise");
}

// --- chaos: FetchFailed mid-service (sim) ----------------------------

#[test]
fn fetchfailed_mid_service_completes_both_tenants_correctly() {
    let sc = sim_ctx(31);
    // Seeded probabilistic fetch failures (7% of attempts) while both
    // tenants' jobs are in flight: recovery interleaves with healthy
    // execution, and the whole schedule replays from the seed.
    sc.install_chaos(ChaosPolicy::seeded(31).with_fetch_failures(70));
    let svc = JobService::new(sc, ServiceConfig::default().with_inflight(2, 2), runner());
    let j1 = svc.submit(1, apsp_body(24, 42, 6, None)).expect("admit");
    let j2 = svc.submit(2, apsp_body(24, 77, 6, None)).expect("admit");
    svc.pump_all();

    let v1 = svc.wait(j1).expect("known");
    let v2 = svc.wait(j2).expect("known");
    assert_eq!(v1.state, JobState::Done, "{:?}", v1.error);
    assert_eq!(v2.state, JobState::Done, "{:?}", v2.error);
    // No cross-tenant bleed, chaos or not: each tenant gets *its*
    // graph's distances, bitwise.
    let out1 = decode_matrix_f64(v1.result.as_ref().expect("done")).expect("decode");
    let out2 = decode_matrix_f64(v2.result.as_ref().expect("done")).expect("decode");
    assert_eq!(out1.first_difference(&apsp_reference(24, 42)), None);
    assert_eq!(out2.first_difference(&apsp_reference(24, 77)), None);
    assert!(
        svc.sc().stage_resubmissions() >= 1,
        "a failed fetch must re-stage its map outputs, got {}",
        svc.sc().stage_resubmissions()
    );
    svc.sc().clear_chaos();
    svc.sc().audit().expect("post-chaos audit");

    // The recovery re-staged the lost shuffle exactly once: re-asking
    // the same query now is a pure cache hit — zero engine stages, and
    // byte-identical to the answer computed through the failure.
    let stages_after_chaos = svc.sc().with_event_log(|l| l.stage_count());
    let again = svc.submit(1, apsp_body(24, 42, 6, None)).expect("admit");
    svc.pump_all();
    let vr = svc.wait(again).expect("known");
    assert!(vr.cache_hit);
    assert_eq!(vr.result, v1.result);
    assert_eq!(
        svc.sc().with_event_log(|l| l.stage_count()),
        stages_after_chaos,
        "nothing is re-staged twice"
    );
}

// --- chaos: real SIGKILL over TCP with two tenants -------------------

#[test]
fn service_survives_a_real_sigkill_with_two_tenants_in_flight() {
    let sc = SparkContext::new(
        SparkConf::default()
            .with_executors(NODES)
            .with_executor_cores(2)
            .with_partitions(8)
            .with_retry_backoff(4, 64)
            .with_transport(TransportMode::Tcp),
    );
    // Lose an executor on the first attempt of two early stages while
    // both tenants' jobs are in flight: each kill is a real SIGKILL +
    // respawn wiping that subprocess's staged map outputs.
    sc.install_chaos(
        ChaosPolicy::seeded(7)
            .script(1, 0, 1, ChaosEvent::ExecutorLoss)
            .script(3, 0, 1, ChaosEvent::ExecutorLoss),
    );
    let svc = JobService::new(sc, ServiceConfig::default().with_inflight(2, 2), runner());
    svc.start_workers(2);
    let j1 = svc.submit(1, apsp_body(32, 7, 8, None)).expect("admit");
    let j2 = svc.submit(2, apsp_body(32, 8, 8, None)).expect("admit");

    let v1 = svc.wait(j1).expect("known");
    let v2 = svc.wait(j2).expect("known");
    assert_eq!(v1.state, JobState::Done, "{:?}", v1.error);
    assert_eq!(v2.state, JobState::Done, "{:?}", v2.error);
    let out1 = decode_matrix_f64(v1.result.as_ref().expect("done")).expect("decode");
    let out2 = decode_matrix_f64(v2.result.as_ref().expect("done")).expect("decode");
    assert_eq!(
        out1.first_difference(&apsp_reference(32, 7)),
        None,
        "tenant 1 distances must survive the kill bitwise"
    );
    assert_eq!(
        out2.first_difference(&apsp_reference(32, 8)),
        None,
        "tenant 2 distances must survive the kill bitwise"
    );
    assert!(
        svc.sc().executor_respawns() >= 1,
        "the scripted loss must have SIGKILLed a real subprocess"
    );
    svc.sc().clear_chaos();
    svc.sc().audit().expect("post-recovery audit");
    svc.stop();
    assert_eq!(
        svc.sc().shutdown().expect("orderly shutdown"),
        vec![0; NODES],
        "executors must exit cleanly after service stop"
    );
}
