//! Stress test of the attempt-fenced shuffle lifecycle: an in-memory
//! Floyd–Warshall run with a fault injected into *every* map wave,
//! under a staging capacity just above the fault-free high-water mark.
//! Before staged-byte reconciliation, each retry re-staged its buckets
//! on top of the failed attempt's, inflating `staged_bytes` into a
//! spurious `StagingOverflow` — which `retryable()` rightly treats as
//! deterministic, failing the whole job.

use dp_core::{solve, DpConfig};
use gep_kernels::gep::gep_reference;
use gep_kernels::{Matrix, Tropical};
use sparklet::{SparkConf, SparkContext};

const NODES: usize = 4;

fn ctx(staging_capacity: Option<u64>, sim_seed: Option<u64>) -> SparkContext {
    // 16 partitions keep a single task's shuffle write small next to
    // the per-node staging peak, so the calibrated budget below is
    // tight.
    let mut conf = SparkConf::default()
        .with_executors(NODES)
        .with_executor_cores(2)
        .with_partitions(16);
    if let Some(cap) = staging_capacity {
        conf = conf.with_staging_capacity(cap);
    }
    if let Some(seed) = sim_seed {
        // Deterministic mode: real retry backoff is free — it advances
        // the virtual clock instead of sleeping the test.
        conf = conf.with_retry_backoff(200, 400).with_sim_seed(seed);
    }
    SparkContext::new(conf)
}

/// Integer edge weights: exact arithmetic ⇒ bitwise-stable distances.
fn dist_matrix(n: usize, seed: u64) -> Matrix<f64> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            0.0
        } else if next() < 0.4 {
            1.0 + (next() * 9.0).floor()
        } else {
            f64::INFINITY
        }
    })
}

struct RunStats {
    out: Matrix<f64>,
    stages: usize,
    tasks: usize,
    /// Σ committed tasks' shuffle-write bytes (event log).
    staged_written: u64,
    /// Largest single task's shuffle-write volume.
    max_task_write: u64,
    /// Highest per-node staging high-water mark.
    peak: u64,
    /// Live staged bytes per node after the solve (GC residue).
    final_staged: Vec<u64>,
    retries: u64,
    zombies: u64,
    /// Clock reading after the solve (virtual ms under a sim seed).
    elapsed_ms: u64,
}

fn run_fw(
    input: &Matrix<f64>,
    capacity: Option<u64>,
    fault_every_wave: bool,
) -> Result<RunStats, sparklet::JobError> {
    run_fw_seeded(input, capacity, fault_every_wave, None)
}

fn run_fw_seeded(
    input: &Matrix<f64>,
    capacity: Option<u64>,
    fault_every_wave: bool,
    sim_seed: Option<u64>,
) -> Result<RunStats, sparklet::JobError> {
    let sc = ctx(capacity, sim_seed);
    if fault_every_wave {
        // Partition 0 of every stage — every map wave of every
        // iteration (and the reduce/collect stages too) — fails once
        // after its side effects landed, then retries on another node.
        sc.inject_failure_every_stage(0, 1);
    }
    // n = 32, block = 8 ⇒ a 4×4 block grid (g = 4 map waves).
    let cfg = DpConfig::new(32, 8);
    let out = solve::<Tropical>(&sc, &cfg, input)?;
    let (stages, tasks, staged_written, retries, max_task_write) = sc.with_event_log(|log| {
        let max_w = log
            .records()
            .iter()
            .flat_map(|r| r.tasks.iter())
            .map(|t| t.shuffle_write_bytes)
            .max()
            .unwrap_or(0);
        (
            log.stage_count(),
            log.task_count(),
            log.total_staged_bytes(),
            log.total_retries(),
            max_w,
        )
    });
    Ok(RunStats {
        out,
        stages,
        tasks,
        staged_written,
        max_task_write,
        peak: (0..NODES).map(|n| sc.peak_staged_bytes(n)).max().unwrap(),
        final_staged: (0..NODES).map(|n| sc.staged_bytes(n)).collect(),
        retries,
        zombies: sc.zombie_writes_fenced(),
        elapsed_ms: sc.now_ms(),
    })
}

#[test]
fn fw_survives_a_fault_in_every_wave_within_the_fault_free_budget() {
    let input = dist_matrix(32, 1234);
    let mut reference = input.clone();
    gep_reference::<Tropical>(&mut reference);

    // Calibrate: the fault-free run fixes the staging budget.
    let free = run_fw(&input, None, false).expect("fault-free solve");
    assert_eq!(free.out.first_difference(&reference), None);
    assert_eq!(free.retries, 0);
    assert!(free.peak > 0 && free.max_task_write > 0);

    // "Just above" the fault-free high-water mark: a retry may leave
    // the failed attempt's bucket unreconciled on one node while the
    // relaunch stages on the next (placement rotation), so allow one
    // task's worth of transient slack — far below the extra wave a
    // single unreconciled retry would pile up. (Measured: the faulted
    // peak actually lands *below* the fault-free one, because rotation
    // moves the retried task's output off the hottest node.)
    let cap = free.peak + free.max_task_write;
    assert!(
        2 * (cap - free.peak) < free.peak,
        "slack ({} over {}) must stay well under the no-reconciliation \
         inflation this test exists to catch",
        cap - free.peak,
        free.peak
    );

    let faulted = run_fw(&input, Some(cap), true).expect("every map wave faulted");

    // Byte-identical results, identical stage structure and committed
    // shuffle volume, nonzero retries, no fencing or accounting leaks.
    assert_eq!(faulted.out.first_difference(&reference), None);
    assert_eq!(faulted.out.first_difference(&free.out), None);
    assert_eq!((faulted.stages, faulted.tasks), (free.stages, free.tasks));
    assert_eq!(faulted.staged_written, free.staged_written);
    assert!(
        faulted.retries >= 4,
        "one retry per map wave at minimum, got {}",
        faulted.retries
    );
    assert_eq!(faulted.zombies, 0, "plain retries must not be fenced");
    assert!(faulted.peak <= cap);
    assert_eq!(
        faulted.final_staged, free.final_staged,
        "per-shuffle GC must return every staged byte"
    );
    assert_eq!(faulted.final_staged, vec![0; NODES]);
}

#[test]
fn fw_every_wave_faulted_with_real_backoff_on_the_virtual_clock() {
    // The same every-wave-fault scenario, but deterministically
    // scheduled and with a real 200 ms retry backoff — which the wall
    // clock never sees: each deferral is a virtual-clock jump. Under a
    // real clock this test would sleep for seconds per retried wave.
    let input = dist_matrix(32, 1234);
    let mut reference = input.clone();
    gep_reference::<Tropical>(&mut reference);

    let seed = 77;
    let faulted =
        run_fw_seeded(&input, None, true, Some(seed)).expect("every map wave faulted (sim)");
    assert_eq!(faulted.out.first_difference(&reference), None);
    assert!(
        faulted.retries >= 4,
        "one retry per map wave at minimum, got {}",
        faulted.retries
    );
    assert_eq!(faulted.final_staged, vec![0; NODES]);
    // Every retry parks for its full backoff in virtual time.
    assert!(
        faulted.elapsed_ms >= 200 * faulted.retries,
        "each of the {} retries must serve >= 200 virtual ms of backoff \
         (virtual clock only reached {} ms)",
        faulted.retries,
        faulted.elapsed_ms
    );

    // Replay: the identical seed reproduces the identical run.
    let replay = run_fw_seeded(&input, None, true, Some(seed)).expect("replayed sim solve");
    assert_eq!(replay.out.first_difference(&faulted.out), None);
    assert_eq!(
        (
            replay.stages,
            replay.tasks,
            replay.retries,
            replay.elapsed_ms
        ),
        (
            faulted.stages,
            faulted.tasks,
            faulted.retries,
            faulted.elapsed_ms
        ),
        "same seed must reproduce the identical schedule"
    );
}
