//! Acceptance tests for the tiered block storage subsystem: an
//! in-memory Floyd–Warshall solve whose per-iteration materializations
//! do not fit in executor memory must still complete bit-identically to
//! the sequential oracle — by spilling serialized blocks to the disk
//! tier (`MemoryAndDisk`), or by dropping and lineage-recomputing them
//! (`MemoryOnly` + `recompute_on_evict`) — and stay byte-reconciled
//! under the fault-injection matrix from the attempt-fencing work.

use dp_core::{solve_with_report, DpConfig, SolveReport};
use gep_kernels::gep::gep_reference;
use gep_kernels::{Matrix, Tropical};
use sparklet::{SparkConf, SparkContext, StorageLevel};

const NODES: usize = 4;

fn ctx(executor_memory: Option<u64>) -> SparkContext {
    let mut conf = SparkConf::default()
        .with_executors(NODES)
        .with_executor_cores(2)
        .with_partitions(16);
    if let Some(mem) = executor_memory {
        conf = conf.with_executor_memory(mem);
    }
    SparkContext::new(conf)
}

/// Integer edge weights: exact arithmetic ⇒ bitwise-stable distances.
fn dist_matrix(n: usize, seed: u64) -> Matrix<f64> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            0.0
        } else if next() < 0.4 {
            1.0 + (next() * 9.0).floor()
        } else {
            f64::INFINITY
        }
    })
}

struct Run {
    out: Matrix<f64>,
    report: SolveReport,
    /// Per-node (memory, disk) bytes still cached after the solve.
    final_cached: Vec<(u64, u64)>,
    /// Highest per-node memory-tier high-water mark.
    peak_mem: u64,
    fenced_puts: u64,
}

fn run_fw(
    input: &Matrix<f64>,
    executor_memory: Option<u64>,
    cfg: &DpConfig,
    fault_every_wave: bool,
) -> Run {
    let sc = ctx(executor_memory);
    if fault_every_wave {
        sc.inject_failure_every_stage(0, 1);
    }
    let (out, report) = solve_with_report::<Tropical>(&sc, cfg, input).expect("solve");
    Run {
        out,
        report,
        final_cached: (0..NODES)
            .map(|n| (sc.cached_bytes(n), sc.cached_disk_bytes(n)))
            .collect(),
        peak_mem: (0..NODES).map(|n| sc.peak_cached_bytes(n)).max().unwrap(),
        fenced_puts: sc.fenced_cache_puts(),
    }
}

#[test]
fn fw_under_memory_pressure_spills_and_stays_bit_identical() {
    // n = 32, block = 8 ⇒ a 4×4 block grid, MemoryAndDisk by default.
    let cfg = DpConfig::new(32, 8);
    let input = dist_matrix(32, 77);
    let mut reference = input.clone();
    gep_reference::<Tropical>(&mut reference);

    // Calibrate: the uncapped run measures the MemoryOnly working set.
    let free = run_fw(&input, None, &cfg, false);
    assert_eq!(free.out.first_difference(&reference), None);
    assert_eq!(free.report.spilled_bytes, 0, "uncapped run never spills");
    assert!(free.peak_mem > 0);

    // Cap executor memory below the working set: the default
    // MemoryAndDisk level must spill instead of failing.
    let cap = free.peak_mem / 2;
    let spilled = run_fw(&input, Some(cap), &cfg, false);
    assert_eq!(
        spilled.out.first_difference(&reference),
        None,
        "spilled run must stay bit-identical to the oracle"
    );
    assert_eq!(spilled.out.first_difference(&free.out), None);
    assert!(
        spilled.report.spilled_bytes > 0,
        "undersized memory must produce spill traffic"
    );
    assert!(
        spilled.report.cache_hits >= free.report.cache_hits,
        "disk-tier reads still count as cache hits"
    );
    for (n, &(mem, _)) in spilled.final_cached.iter().enumerate() {
        assert!(
            mem <= cap,
            "node {n} memory tier over budget: {mem} > {cap}"
        );
    }
}

#[test]
fn fw_with_memory_only_recomputes_evicted_blocks() {
    let cfg = DpConfig::new(32, 8)
        .with_storage_level(StorageLevel::MemoryOnly)
        .with_recompute_on_evict(true);
    let input = dist_matrix(32, 99);
    let mut reference = input.clone();
    gep_reference::<Tropical>(&mut reference);

    let free = run_fw(&input, None, &cfg, false);
    assert_eq!(free.out.first_difference(&reference), None);
    assert_eq!(free.report.recomputes, 0, "uncapped run keeps every block");

    // `persist` keeps every generation's cache alive (retained lineage),
    // so the uncapped peak spans several table generations and LRU can
    // satisfy a peak/2 cap by shedding stale generations nobody reads.
    // To force recomputation of *live* blocks, cap below one table's
    // per-node footprint. An uncapped checkpoint probe bounds it: its
    // peak covers at most the old + new generation (old drops each
    // iteration), so peak/2 ≥ one table and peak/4 is genuinely tight.
    let probe = run_fw(&input, None, &DpConfig::new(32, 8), false);
    assert!(probe.peak_mem > 0);
    let cap = probe.peak_mem / 4;
    let squeezed = run_fw(&input, Some(cap), &cfg, false);
    assert_eq!(
        squeezed.out.first_difference(&reference),
        None,
        "recompute-on-evict run must stay bit-identical to the oracle"
    );
    assert!(
        squeezed.report.recomputes > 0,
        "undersized memory must trigger lineage recomputation"
    );
    assert!(
        squeezed.report.spilled_bytes == 0,
        "MemoryOnly never touches the disk tier"
    );
    for &(_, disk) in &squeezed.final_cached {
        assert_eq!(disk, 0);
    }
}

#[test]
fn fw_faults_with_spill_enabled_never_double_charge() {
    // The full PR-1 fault matrix (a fault in every stage's partition 0)
    // on top of an undersized memory tier: results stay byte-identical
    // and retried/speculative tasks must not double-charge either tier.
    let cfg = DpConfig::new(32, 8);
    let input = dist_matrix(32, 1234);
    let mut reference = input.clone();
    gep_reference::<Tropical>(&mut reference);

    let free = run_fw(&input, None, &cfg, false);
    let cap = free.peak_mem / 2;

    let calm = run_fw(&input, Some(cap), &cfg, false);
    let faulted = run_fw(&input, Some(cap), &cfg, true);

    assert_eq!(faulted.out.first_difference(&reference), None);
    assert_eq!(faulted.out.first_difference(&calm.out), None);
    assert!(faulted.report.retries > 0, "faults were actually injected");

    // Dropping the solved table must return every byte in both tiers on
    // every node — including any orphan copies failed attempts cached
    // before their retry committed elsewhere. (The live-RDD half of the
    // no-double-charge invariant is pinned down in sparklet's
    // `retried_checkpoint_does_not_double_cache`.)
    assert_eq!(
        faulted.final_cached,
        vec![(0, 0); NODES],
        "cache GC must reclaim both tiers after faulted runs"
    );
    assert_eq!(calm.final_cached, vec![(0, 0); NODES]);
    for (n, &(mem, _)) in faulted.final_cached.iter().enumerate() {
        assert!(mem <= cap, "node {n} memory tier over budget under faults");
    }
    // Speculation is off in this config, so any fenced put would mean a
    // zombie attempt raced a commit — there are none here; the counter
    // exists for the speculative path.
    assert_eq!(faulted.fenced_puts, 0);
}
