//! End-to-end validation of the distributed solver: every strategy ×
//! kernel combination must reproduce the sequential Fig. 1 reference
//! bitwise (GE always; FW/TC on exact-arithmetic inputs).

use dp_core::{solve, solve_virtual, DpConfig, KernelSpec, Strategy};
use gep_kernels::gep::gep_reference;
use gep_kernels::{GaussianElim, Matrix, TransitiveClosure, Tropical};
use sparklet::{SparkConf, SparkContext};

fn ctx() -> SparkContext {
    SparkContext::new(
        SparkConf::default()
            .with_executors(4)
            .with_executor_cores(2)
            .with_partitions(8),
    )
}

fn dd_matrix(n: usize, seed: u64) -> Matrix<f64> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut m = Matrix::from_fn(n, n, |_, _| next() * 2.0 - 1.0);
    for i in 0..n {
        m.set(i, i, n as f64 + 1.0 + next());
    }
    m
}

fn dist_matrix(n: usize, seed: u64) -> Matrix<f64> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    // Integer weights: exact arithmetic ⇒ bitwise-stable distances.
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            0.0
        } else if next() < 0.4 {
            1.0 + (next() * 9.0).floor()
        } else {
            f64::INFINITY
        }
    })
}

fn all_variants() -> Vec<(Strategy, KernelSpec)> {
    vec![
        (Strategy::InMemory, KernelSpec::iterative()),
        (Strategy::InMemory, KernelSpec::recursive(2, 2, 2)),
        (Strategy::InMemory, KernelSpec::named("blocked")),
        (Strategy::CollectBroadcast, KernelSpec::iterative()),
        (Strategy::CollectBroadcast, KernelSpec::recursive(4, 2, 3)),
        (Strategy::CollectBroadcast, KernelSpec::named("blocked")),
    ]
}

#[test]
fn ge_all_variants_match_reference_bitwise() {
    let input = dd_matrix(24, 42);
    let mut reference = input.clone();
    gep_reference::<GaussianElim>(&mut reference);
    for (strategy, kernel) in all_variants() {
        let sc = ctx();
        let cfg = DpConfig::new(24, 8)
            .with_strategy(strategy)
            .with_kernel(kernel);
        let out = solve::<GaussianElim>(&sc, &cfg, &input).expect("solve");
        assert_eq!(out.first_difference(&reference), None, "{}", cfg.label());
    }
}

#[test]
fn fw_all_variants_match_reference_bitwise() {
    let input = dist_matrix(24, 7);
    let mut reference = input.clone();
    gep_reference::<Tropical>(&mut reference);
    for (strategy, kernel) in all_variants() {
        let sc = ctx();
        let cfg = DpConfig::new(24, 6)
            .with_strategy(strategy)
            .with_kernel(kernel);
        let out = solve::<Tropical>(&sc, &cfg, &input).expect("solve");
        assert_eq!(out.first_difference(&reference), None, "{}", cfg.label());
    }
}

#[test]
fn tc_both_strategies_match_reference() {
    let mut state = 99u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let input = Matrix::from_fn(16, 16, |i, j| i == j || next() % 6 == 0);
    let mut reference = input.clone();
    gep_reference::<TransitiveClosure>(&mut reference);
    for strategy in [Strategy::InMemory, Strategy::CollectBroadcast] {
        let sc = ctx();
        let cfg = DpConfig::new(16, 4).with_strategy(strategy);
        let out = solve::<TransitiveClosure>(&sc, &cfg, &input).expect("solve");
        assert_eq!(out.first_difference(&reference), None);
    }
}

#[test]
fn non_divisible_size_pads_virtually() {
    // n = 21, block = 8 → padded to 24; padding must be inert.
    let input = dd_matrix(21, 5);
    let mut reference = input.clone();
    gep_reference::<GaussianElim>(&mut reference);
    let sc = ctx();
    let cfg = DpConfig::new(21, 8).with_strategy(Strategy::CollectBroadcast);
    let out = solve::<GaussianElim>(&sc, &cfg, &input).expect("solve");
    assert_eq!(out.rows(), 21);
    assert_eq!(out.first_difference(&reference), None);
}

#[test]
fn grid_partitioner_variant_matches_reference() {
    let input = dist_matrix(16, 3);
    let mut reference = input.clone();
    gep_reference::<Tropical>(&mut reference);
    let sc = ctx();
    let cfg = DpConfig::new(16, 4).with_grid_partitioner(true);
    let out = solve::<Tropical>(&sc, &cfg, &input).expect("solve");
    assert_eq!(out.first_difference(&reference), None);
}

#[test]
fn fw_apsp_agrees_with_dijkstra_on_random_graph() {
    let adj = gep_kernels::graph::erdos_renyi(20, 0.3, 1.0, 9.0, 11);
    let sc = ctx();
    let cfg = DpConfig::new(20, 5).with_kernel(KernelSpec::recursive(2, 2, 2));
    let out = solve::<Tropical>(&sc, &cfg, &adj).expect("solve");
    assert_eq!(gep_kernels::graph::check_apsp(&adj, &out, 1e-9), None);
}

#[test]
fn im_moves_more_shuffle_bytes_than_cb() {
    // The defining difference of the two strategies.
    let cfg_im = DpConfig::new(64, 16).virtual_mode();
    let sc_im = ctx();
    let rep_im = solve_virtual::<GaussianElim>(&sc_im, &cfg_im).unwrap();

    let cfg_cb = DpConfig::new(64, 16)
        .with_strategy(Strategy::CollectBroadcast)
        .virtual_mode();
    let sc_cb = ctx();
    let rep_cb = solve_virtual::<GaussianElim>(&sc_cb, &cfg_cb).unwrap();

    let im_shuffle = rep_im.remote_bytes + rep_im.staged_bytes;
    let cb_shuffle = rep_cb.remote_bytes + rep_cb.staged_bytes;
    assert!(
        im_shuffle > 2 * cb_shuffle,
        "IM shuffles {im_shuffle}, CB {cb_shuffle}"
    );
    // And CB is the one with driver traffic.
    assert_eq!(rep_im.collect_bytes, 0, "IM never collects blocks");
    assert!(rep_cb.collect_bytes > 0 && rep_cb.broadcast_bytes > 0);
}

#[test]
fn virtual_and_real_runs_produce_identical_stage_structure() {
    let n = 24;
    let cfg_real = DpConfig::new(n, 8);
    let sc_real = ctx();
    let input = dd_matrix(n, 13);
    solve::<GaussianElim>(&sc_real, &cfg_real, &input).unwrap();
    let (stages_real, tasks_real) =
        sc_real.with_event_log(|log| (log.stage_count(), log.task_count()));

    let cfg_virt = DpConfig::new(n, 8).virtual_mode();
    let sc_virt = ctx();
    solve_virtual::<GaussianElim>(&sc_virt, &cfg_virt).unwrap();
    let (stages_virt, tasks_virt) =
        sc_virt.with_event_log(|log| (log.stage_count(), log.task_count()));

    // The virtual run has one final `count` stage where the real run
    // has one final `collect`; everything else is identical.
    assert_eq!(stages_real, stages_virt);
    assert_eq!(tasks_real, tasks_virt);
}

#[test]
fn virtual_byte_accounting_reflects_full_scale() {
    // 4×4 grid of 1K×1K virtual FW blocks: one IM iteration's A-stage
    // alone copies the diagonal to 15 consumers ≈ 15 × 8 MB.
    let cfg = DpConfig::new(4096, 1024).virtual_mode();
    let sc = ctx();
    let rep = solve_virtual::<Tropical>(&sc, &cfg).unwrap();
    let block_bytes = (1024u64 * 1024 * 8) + 17;
    assert!(
        rep.staged_bytes > 4 * 15 * block_bytes,
        "staged {} should exceed the A-copy volume alone",
        rep.staged_bytes
    );
}

#[test]
fn solver_is_deterministic_across_runs() {
    let input = dist_matrix(16, 77);
    let run = || {
        let sc = ctx();
        let cfg = DpConfig::new(16, 4);
        solve::<Tropical>(&sc, &cfg, &input).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.first_difference(&b), None);
}

#[test]
fn injected_task_failure_recovers_mid_solve() {
    let input = dd_matrix(16, 21);
    let mut reference = input.clone();
    gep_reference::<GaussianElim>(&mut reference);
    let sc = ctx();
    // Fail a couple of tasks in early stages; lineage retry must heal.
    sc.inject_failure(1, 0, 1);
    sc.inject_failure(3, 2, 2);
    let cfg = DpConfig::new(16, 4);
    let out = solve::<GaussianElim>(&sc, &cfg, &input).expect("solve with failures");
    assert_eq!(out.first_difference(&reference), None);
}
