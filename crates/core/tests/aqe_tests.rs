//! Adaptive-execution acceptance at the solver level.
//!
//! The ISSUE-level claims under test: on a seeded run, an adaptive
//! solve must (a) match or beat every static partition configuration
//! under the same cost model, (b) replay bit-identically from its
//! seed, decisions included, and (c) surface every re-plan in the
//! `SolveReport`.

use std::panic::{catch_unwind, AssertUnwindSafe};

use cluster_model::{ClusterSpec, CostModel};
use dp_core::{solve_chaos, solve_virtual, solve_with_report, DpConfig};
use gep_kernels::gep::gep_reference;
use gep_kernels::{GaussianElim, Matrix};
use sparklet::{ChaosPolicy, SparkConf, SparkContext};

const NODES: usize = 4;
const CORES: usize = 2;

fn conf(seed: u64) -> SparkConf {
    SparkConf::default()
        .with_executors(NODES)
        .with_executor_cores(CORES)
        .with_partitions(64)
        .with_retry_backoff(4, 64)
        .with_sim_seed(seed)
}

/// The judging model: same shape the planner prices with (node count
/// and cores of the context, reference node), so "adaptive wins" is
/// checked against the planner's own currency.
fn model() -> CostModel {
    CostModel::new(ClusterSpec::skylake().with_nodes(NODES), CORES)
}

/// Gaussian elimination has a shrinking active set (phase `k` touches
/// `(g-k)²` blocks), so a static partition count is wrong at one end
/// of the run no matter where it is set: the adaptive coalesce is the
/// workload's win.
fn ge_cfg() -> DpConfig {
    DpConfig::new(4096, 512)
}

fn seeds(default_n: u64) -> Vec<u64> {
    if let Ok(pin) = std::env::var("CHAOS_SEED") {
        return vec![pin.trim().parse().expect("CHAOS_SEED must be a u64")];
    }
    let n = std::env::var("SIM_SEEDS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default_n);
    (0..n).map(|i| 0xada9_0000 + i).collect()
}

fn sweep(name: &str, default_n: u64, body: impl Fn(u64)) {
    for seed in seeds(default_n) {
        if let Err(panic) = catch_unwind(AssertUnwindSafe(|| body(seed))) {
            eprintln!(
                "\n{name} failed at seed {seed}; replay with:\n    \
                 CHAOS_SEED={seed} cargo test -p dp-core --test aqe_tests\n"
            );
            std::panic::resume_unwind(panic);
        }
    }
}

/// Modeled seconds of a virtual GE run at a fixed partition count.
fn static_seconds(seed: u64, partitions: usize) -> f64 {
    let sc = SparkContext::new(conf(seed).with_partitions(partitions));
    let cfg = ge_cfg().with_partitions(partitions);
    solve_virtual::<GaussianElim>(&sc, &cfg).expect("static run");
    model().job_seconds(&sc.with_event_log(|log| log.records()))
}

fn adaptive_run(seed: u64) -> (f64, dp_core::SolveReport, Vec<(u64, String)>) {
    let sc = SparkContext::new(conf(seed).with_adaptive_execution());
    let cfg = ge_cfg().with_partitions(64);
    solve_virtual::<GaussianElim>(&sc, &cfg).expect("adaptive run");
    let secs = model().job_seconds(&sc.with_event_log(|log| log.records()));
    let report = {
        let sc2 = SparkContext::new(conf(seed).with_adaptive_execution());
        solve_virtual::<GaussianElim>(&sc2, &cfg).expect("adaptive rerun")
    };
    let order = sc.with_event_log(|log| log.stage_order());
    (secs, report, order)
}

#[test]
fn adaptive_matches_or_beats_every_static_partition_count() {
    sweep("aqe vs statics", 2, |seed| {
        let (adaptive, report, _) = adaptive_run(seed);
        assert!(
            !report.adaptive_decisions.is_empty(),
            "seed {seed}: shrinking active set must trigger at least one re-plan"
        );
        for p in [64usize, 32, 16, 8] {
            let fixed = static_seconds(seed, p);
            assert!(
                adaptive <= fixed * 1.0001,
                "seed {seed}: adaptive {adaptive:.3}s lost to static {p} parts at {fixed:.3}s"
            );
        }
    });
}

#[test]
fn adaptive_decisions_reach_the_report_and_the_event_log() {
    let sc = SparkContext::new(conf(11).with_adaptive_execution());
    let cfg = ge_cfg().with_partitions(64);
    let report = solve_virtual::<GaussianElim>(&sc, &cfg).expect("adaptive run");
    assert!(!report.adaptive_decisions.is_empty());
    assert!(
        report
            .adaptive_decisions
            .iter()
            .any(|d| d.action.starts_with("coalesce:")),
        "GE must coalesce as the active set shrinks: {:?}",
        report.adaptive_decisions
    );
    // Every decision is stamped against a stage ordinal inside the run.
    let last_stage = sc.with_event_log(|log| {
        log.stages()
            .iter()
            .map(|s| s.record.stage_id)
            .max()
            .unwrap_or(0)
    });
    for d in &report.adaptive_decisions {
        assert!(
            d.at_stage <= last_stage + 1,
            "decision stamped past the run: {d:?}"
        );
    }
    // And the report mirrors the context's event log exactly.
    let logged = sc.with_event_log(|log| log.decisions().to_vec());
    assert_eq!(report.adaptive_decisions, logged);
}

#[test]
fn adaptive_replay_is_bit_identical_including_decisions() {
    sweep("aqe replay", 2, |seed| {
        let run = |_: ()| {
            let sc = SparkContext::new(conf(seed).with_adaptive_execution());
            let cfg = ge_cfg().with_partitions(64);
            let report = solve_virtual::<GaussianElim>(&sc, &cfg).expect("adaptive run");
            let order = sc.with_event_log(|log| log.stage_order());
            (report, order)
        };
        let (r1, o1) = run(());
        let (r2, o2) = run(());
        assert_eq!(o1, o2, "seed {seed}: stage schedule diverged on replay");
        assert_eq!(r1, r2, "seed {seed}: report (incl. decisions) diverged");
    });
}

#[test]
fn adaptive_real_run_stays_numerically_exact() {
    // Decisions must never change the answer: a real (non-virtual)
    // adaptive GE run is compared element-for-element against the
    // sequential reference.
    let n = 32;
    let mut state = 0x5eed_cafe_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut input = Matrix::from_fn(n, n, |_, _| next() - 0.5);
    for i in 0..n {
        input.set(i, i, n as f64 + 1.0);
    }
    let mut reference = input.clone();
    gep_reference::<GaussianElim>(&mut reference);
    let sc = SparkContext::new(conf(5).with_partitions(24).with_adaptive_execution());
    let cfg = DpConfig::new(n, 4).with_partitions(24);
    let (out, report) = solve_with_report::<GaussianElim>(&sc, &cfg, &input).expect("solve");
    assert_eq!(out.first_difference(&reference), None);
    // The run may or may not re-plan at this size; what matters is the
    // result above and that any decision it did take is well-formed.
    for d in &report.adaptive_decisions {
        assert!(!d.action.is_empty() && !d.reason.is_empty());
    }
}

#[test]
fn adaptive_under_seeded_chaos_is_correct_and_replayable() {
    // The sim-scenario sweep: adaptation plus scripted faults must
    // still replay exactly from the seed, and the answer must match
    // the fault-free reference bit-for-bit.
    let n = 24;
    let mut input = Matrix::from_fn(n, n, |i, j| ((i * 5 + j * 3) % 7) as f64 - 3.0);
    for i in 0..n {
        input.set(i, i, n as f64 + 2.0);
    }
    let mut reference = input.clone();
    gep_reference::<GaussianElim>(&mut reference);
    let cfg = DpConfig::new(n, 4).with_partitions(16);

    sweep("aqe chaos", 3, |seed| {
        let run = |_: ()| {
            let sc = SparkContext::new(conf(seed).with_partitions(16).with_adaptive_execution());
            let chaos = ChaosPolicy::seeded(seed)
                .with_task_panics(60)
                .with_stragglers(60, 100);
            solve_chaos::<GaussianElim>(&sc, &cfg, &input, chaos).expect("chaos solve")
        };
        let (out1, rep1) = run(());
        let (out2, rep2) = run(());
        assert_eq!(out1.first_difference(&reference), None, "seed {seed}");
        assert_eq!(
            out1.first_difference(&out2),
            None,
            "seed {seed}: results diverged"
        );
        assert_eq!(rep1, rep2, "seed {seed}: reports diverged on replay");
    });
}
