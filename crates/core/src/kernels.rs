//! Executor-side kernel execution (the paper's `ARecGE`/`BRecGE`/
//! `CRecGE`/`DRecGE` and their iterative counterparts).
//!
//! Every application records a [`cluster_model::KernelInvocation`] on
//! the task so the cost model can price the compute; the kernel itself
//! is resolved through the [`crate::backend::BackendRegistry`] — real
//! blocks run the resolved backend, virtual blocks flow through its
//! cost-accounting `simulate` hook.

use std::collections::BTreeMap;
use std::sync::Arc;

use cluster_model::KernelInvocation;
use gep_kernels::gep::Kind;
use par_pool::Pool;
use parking_lot::Mutex;
use sparklet::TaskContext;

use crate::backend::{registry, KernelSpec};
use crate::block::Block;
use crate::problem::DpProblem;

/// Cap on distinct pool sizes the shared "OpenMP runtime" keeps alive.
/// Past the cap, requests reuse the nearest-size existing team instead
/// of spawning yet another thread pool.
const MAX_POOLS: usize = 8;

/// Shared "OpenMP runtime": one pool per requested thread count,
/// created lazily and reused across tasks (a task's kernel joins the
/// team sized like its `OMP_NUM_THREADS`). The pool map is bounded by
/// [`MAX_POOLS`]; once full, the nearest-size pool is reused — tuning
/// sweeps over many thread counts no longer accrete one OS thread team
/// per distinct value for the life of the process.
pub fn omp_pool(threads: usize) -> Arc<Pool> {
    static POOLS: Mutex<Option<BTreeMap<usize, Arc<Pool>>>> = Mutex::new(None);
    let mut guard = POOLS.lock();
    pool_for(guard.get_or_insert_with(BTreeMap::new), threads, MAX_POOLS)
}

/// The capped lookup behind [`omp_pool`], factored over an explicit
/// map so the reuse policy is testable without the global.
fn pool_for(pools: &mut BTreeMap<usize, Arc<Pool>>, threads: usize, cap: usize) -> Arc<Pool> {
    let want = threads.max(1);
    if let Some(p) = pools.get(&want) {
        return Arc::clone(p);
    }
    if pools.len() < cap {
        let p = Arc::new(
            Pool::builder()
                .threads(want)
                .name_prefix(format!("omp-{want}"))
                .build(),
        );
        pools.insert(want, Arc::clone(&p));
        return p;
    }
    // At capacity: reuse the nearest-size team (deterministic
    // tie-break toward the smaller size).
    let (_, p) = pools
        .iter()
        .min_by_key(|&(&size, _)| (size.abs_diff(want), size))
        .expect("cap ≥ 1, so a pool exists");
    Arc::clone(p)
}

/// Run (or account) one block kernel through the backend registry.
///
/// * `kind` — which GEP kernel;
/// * `key` — the block's grid coordinate `(bi, bj)`;
/// * `kb` — the phase (diagonal block index);
/// * `x` — the block to update;
/// * `u`/`v` — column-/row-panel operand blocks (kind D only);
/// * `w` — the diagonal block (kinds B, C, D).
///
/// The spec's backend + fallback chain is resolved deterministically;
/// an exhausted chain is a configuration bug and panics with the typed
/// error's message (task-level recovery cannot repair a bad config).
#[allow(clippy::too_many_arguments)]
pub fn apply_kernel<S: DpProblem>(
    kind: Kind,
    key: (usize, usize),
    kb: usize,
    x: &mut Block<S::Elem>,
    u: Option<&Block<S::Elem>>,
    v: Option<&Block<S::Elem>>,
    w: Option<&Block<S::Elem>>,
    kernel: &KernelSpec,
    tc: &TaskContext,
) {
    let b = x.rows();
    assert_eq!(x.cols(), b, "blocks are square");
    let backend = registry::<S>()
        .resolve(kernel)
        .unwrap_or_else(|e| panic!("{e}"));
    tc.record_kernel(KernelInvocation {
        updates: S::updates_for(kind, b),
        block_side: b,
        elem_bytes: std::mem::size_of::<S::Elem>(),
        kernel: backend.kernel_type(&kernel.params),
    });
    if x.is_virtual() {
        debug_assert!(u.is_none_or(Block::is_virtual));
        debug_assert!(w.is_none_or(Block::is_virtual));
        backend.simulate(kind, &kernel.params, b);
        return;
    }
    let (bi, bj) = key;
    let xm = x.expect_real_mut();
    let mut xv = xm.view_mut_at(bi * b, bj * b);
    let uv = u.map(|blk| blk.expect_real().view_at(bi * b, kb * b));
    let vv = v.map(|blk| blk.expect_real().view_at(kb * b, bj * b));
    let wv = w.map(|blk| blk.expect_real().view_at(kb * b, kb * b));
    match kind {
        Kind::A => {
            debug_assert!(u.is_none() && v.is_none() && w.is_none());
        }
        Kind::B | Kind::C => {
            debug_assert!(w.is_some() && u.is_none() && v.is_none());
        }
        Kind::D => {
            debug_assert!(u.is_some() && v.is_some());
            debug_assert!(w.is_some() || !S::USES_W);
        }
    }
    backend.run(kind, &kernel.params, &mut xv, uv, vv, wv);
}

/// Run one relaxation sweep over a CSR edge tile through the backend
/// registry — the sparse counterpart of [`apply_kernel`].
///
/// * `edges` — the partition's outgoing-edge tile
///   (`owned_vertices × n_target`, CSR);
/// * `dist` — current best distances (`sources × owned_vertices`,
///   dense);
/// * `skip` — the "unreachable" element (`+∞` for min-plus): rows of
///   `dist` holding it generate no candidates;
/// * `cand` — the candidate matrix the sweep folds into
///   (`sources × n_target`).
///
/// Resolution walks the spec chain with
/// [`TileRepr::SparseCsr`](gep_kernels::sparse::TileRepr), so a
/// dense-only chain is a loud configuration error. The recorded
/// invocation prices by **nnz**: `updates = sources · nnz`, the
/// representation-aware term `KernelType::SparseSweep` expects.
pub fn apply_sweep<S: DpProblem>(
    edges: &Block<S::Elem>,
    dist: &gep_kernels::Matrix<S::Elem>,
    skip: S::Elem,
    cand: &mut gep_kernels::Matrix<S::Elem>,
    kernel: &KernelSpec,
    tc: &TaskContext,
) {
    let csr = edges.expect_sparse();
    let backend = registry::<S>()
        .resolve_for(kernel, gep_kernels::sparse::TileRepr::SparseCsr)
        .unwrap_or_else(|e| panic!("{e}"));
    tc.record_kernel(KernelInvocation {
        updates: (dist.rows() * csr.nnz()) as f64,
        block_side: csr.rows(),
        elem_bytes: std::mem::size_of::<S::Elem>(),
        kernel: backend.kernel_type(&kernel.params),
    });
    backend.sweep(csr, dist, skip, cand);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BLOCKED;
    use gep_kernels::gep::gep_reference;
    use gep_kernels::{GaussianElim, Matrix, Tropical};

    fn blocks_of(m: &Matrix<f64>, g: usize) -> Vec<((usize, usize), Block<f64>)> {
        let b = m.rows() / g;
        let mut out = Vec::new();
        for i in 0..g {
            for j in 0..g {
                out.push(((i, j), Block::Real(m.copy_block(i * b, j * b, b, b))));
            }
        }
        out
    }

    fn assemble(blocks: &[((usize, usize), Block<f64>)], g: usize, b: usize) -> Matrix<f64> {
        let mut m = Matrix::square(g * b, 0.0);
        for ((i, j), blk) in blocks {
            m.paste_block(i * b, j * b, blk.expect_real());
        }
        m
    }

    /// Drive a full blocked GEP manually through apply_kernel — this is
    /// the sequential skeleton both strategies distribute.
    #[allow(clippy::needless_range_loop)]
    fn run_blocked<S: DpProblem<Elem = f64>>(
        m: &Matrix<f64>,
        g: usize,
        kernel: &KernelSpec,
    ) -> Matrix<f64> {
        use crate::filters;
        let b = m.rows() / g;
        let tc = TaskContext::new(0);
        let mut blocks = blocks_of(m, g);
        for k in 0..g {
            let diag_idx = blocks
                .iter()
                .position(|((i, j), _)| (*i, *j) == (k, k))
                .unwrap();
            {
                let (key, ref mut blk) = blocks[diag_idx];
                apply_kernel::<S>(Kind::A, key, k, blk, None, None, None, kernel, &tc);
            }
            let diag = blocks[diag_idx].1.clone();
            for idx in 0..blocks.len() {
                let key = blocks[idx].0;
                if filters::filter_b::<S>(key, k, b) {
                    apply_kernel::<S>(
                        Kind::B,
                        key,
                        k,
                        &mut blocks[idx].1,
                        None,
                        None,
                        Some(&diag),
                        kernel,
                        &tc,
                    );
                }
            }
            for idx in 0..blocks.len() {
                let key = blocks[idx].0;
                if filters::filter_c::<S>(key, k, b) {
                    apply_kernel::<S>(
                        Kind::C,
                        key,
                        k,
                        &mut blocks[idx].1,
                        None,
                        None,
                        Some(&diag),
                        kernel,
                        &tc,
                    );
                }
            }
            let snapshot: Vec<((usize, usize), Block<f64>)> = blocks.clone();
            for idx in 0..blocks.len() {
                let key = blocks[idx].0;
                if filters::filter_d::<S>(key, k, b) {
                    let (i, j) = key;
                    let u = &snapshot
                        .iter()
                        .find(|((a, c), _)| (*a, *c) == (i, k))
                        .unwrap()
                        .1;
                    let v = &snapshot
                        .iter()
                        .find(|((a, c), _)| (*a, *c) == (k, j))
                        .unwrap()
                        .1;
                    apply_kernel::<S>(
                        Kind::D,
                        key,
                        k,
                        &mut blocks[idx].1,
                        Some(u),
                        Some(v),
                        Some(&diag),
                        kernel,
                        &tc,
                    );
                }
            }
        }
        assemble(&blocks, g, b)
    }

    fn dd_matrix(n: usize) -> Matrix<f64> {
        let mut m = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 13) as f64 / 6.0 - 1.0);
        for i in 0..n {
            m.set(i, i, n as f64 + 2.0);
        }
        m
    }

    fn dist_matrix(n: usize) -> Matrix<f64> {
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                0.0
            } else if (i * 7 + j * 3) % 4 == 0 {
                ((i + 2 * j) % 9 + 1) as f64
            } else {
                f64::INFINITY
            }
        })
    }

    #[test]
    fn blocked_apply_kernel_iterative_matches_reference() {
        for g in [2usize, 4] {
            let m = dd_matrix(16);
            let out = run_blocked::<GaussianElim>(&m, g, &KernelSpec::iterative());
            let mut reference = m.clone();
            gep_reference::<GaussianElim>(&mut reference);
            assert_eq!(out.first_difference(&reference), None, "g={g}");

            let d = dist_matrix(16);
            let out = run_blocked::<Tropical>(&d, g, &KernelSpec::iterative());
            let mut reference = d.clone();
            gep_reference::<Tropical>(&mut reference);
            assert_eq!(out.first_difference(&reference), None, "fw g={g}");
        }
    }

    #[test]
    fn blocked_apply_kernel_recursive_matches_reference() {
        let kernel = KernelSpec::recursive(2, 2, 3);
        let m = dd_matrix(16);
        let out = run_blocked::<GaussianElim>(&m, 2, &kernel);
        let mut reference = m.clone();
        gep_reference::<GaussianElim>(&mut reference);
        assert_eq!(out.first_difference(&reference), None);

        let d = dist_matrix(16);
        let out = run_blocked::<Tropical>(&d, 4, &kernel);
        let mut reference = d.clone();
        gep_reference::<Tropical>(&mut reference);
        assert_eq!(out.first_difference(&reference), None);
    }

    #[test]
    fn blocked_backend_via_registry_matches_reference() {
        let kernel = KernelSpec::named(BLOCKED);
        let m = dd_matrix(16);
        let out = run_blocked::<GaussianElim>(&m, 2, &kernel);
        let mut reference = m.clone();
        gep_reference::<GaussianElim>(&mut reference);
        assert_eq!(out.first_difference(&reference), None);
    }

    #[test]
    fn fallback_chain_reaches_a_real_backend() {
        // An unregistered primary falls through to the iterative
        // fallback and still computes the right answer.
        let kernel = KernelSpec::named("not-registered").with_fallback("iterative");
        let d = dist_matrix(16);
        let out = run_blocked::<Tropical>(&d, 2, &kernel);
        let mut reference = d.clone();
        gep_reference::<Tropical>(&mut reference);
        assert_eq!(out.first_difference(&reference), None);
    }

    #[test]
    fn virtual_blocks_record_without_computing() {
        let tc = TaskContext::new(0);
        let mut x: Block<f64> = Block::Virtual { rows: 8, cols: 8 };
        apply_kernel::<Tropical>(
            Kind::A,
            (0, 0),
            0,
            &mut x,
            None,
            None,
            None,
            &KernelSpec::iterative(),
            &tc,
        );
        let rec = tc.snapshot();
        assert_eq!(rec.kernels.len(), 1);
        assert_eq!(rec.kernels[0].updates, 512.0);
        assert_eq!(rec.kernels[0].block_side, 8);
    }

    #[test]
    fn apply_sweep_records_nnz_priced_invocation() {
        use gep_kernels::sparse::Csr;
        let inf = f64::INFINITY;
        let tc = TaskContext::new(0);
        // 4 local vertices, 6 stored edges, 3 sources.
        let dense = Matrix::from_fn(4, 4, |i, j| {
            if (i + j) % 3 == 1 && i != j {
                (i + j) as f64
            } else {
                inf
            }
        });
        let edges = Block::Sparse(Csr::from_dense(&dense, inf));
        let nnz = edges.nnz();
        let dist = Matrix::from_fn(3, 4, |s, u| if s == u { 0.0 } else { inf });
        let mut cand = Matrix::filled(3, 4, inf);
        // A dense-named chain with a sweep fallback resolves to sweep
        // for sparse tiles.
        let spec = KernelSpec::iterative().with_fallback(crate::backend::SWEEP);
        apply_sweep::<Tropical>(&edges, &dist, inf, &mut cand, &spec, &tc);
        let rec = tc.snapshot();
        assert_eq!(rec.kernels.len(), 1);
        assert_eq!(rec.kernels[0].updates, (3 * nnz) as f64);
        assert_eq!(
            rec.kernels[0].kernel,
            cluster_model::KernelType::SparseSweep
        );
        // And the sweep really relaxed: source 0 sits at vertex 0,
        // which has an edge to 1 (0+1 % 3 == 1) of weight 1.
        assert_eq!(cand.get(0, 1), 1.0);
    }

    #[test]
    fn omp_pool_is_shared_per_size() {
        let a = omp_pool(3);
        let b = omp_pool(3);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.threads(), 3);
        assert_eq!(omp_pool(0).threads(), 1);
    }

    #[test]
    fn omp_pool_map_is_capped_and_reuses_nearest() {
        // Exercise the policy on a local map so the process-global
        // runtime is untouched.
        let mut pools = BTreeMap::new();
        for t in [1usize, 2, 4, 8] {
            let p = pool_for(&mut pools, t, 4);
            assert_eq!(p.threads(), t);
        }
        assert_eq!(pools.len(), 4);
        // At cap: a fresh size allocates nothing and reuses the
        // nearest team (6 → tie between 4 and 8 → smaller wins).
        let p = pool_for(&mut pools, 6, 4);
        assert_eq!(pools.len(), 4, "cap holds: no new pool");
        assert_eq!(p.threads(), 4);
        assert!(Arc::ptr_eq(&p, pools.get(&4).unwrap()));
        // 100 → nearest is 8.
        assert_eq!(pool_for(&mut pools, 100, 4).threads(), 8);
        // Exact sizes still hit their own pool.
        assert_eq!(pool_for(&mut pools, 2, 4).threads(), 2);
        // Repeat lookups are stable (deterministic reuse).
        assert!(Arc::ptr_eq(
            &pool_for(&mut pools, 6, 4),
            &pool_for(&mut pools, 6, 4)
        ));
    }
}
