//! Beyond GEP: distributed solvers for DP families outside the GEP
//! form — implementing the paper's future work #1 on the same engine.
//! Two dependency shapes are covered: the triangular wavefront of the
//! parenthesis problem and the anti-diagonal grid wavefront of
//! sequence alignment (LCS / Needleman–Wunsch).
//!
//! The parenthesis dependency structure is a triangular wavefront:
//! block `(I, J)` of the upper-triangular table needs every `(I, K)`
//! and `(K, J)` with `I ≤ K ≤ J`. Blocks on the same block-diagonal
//! `d = J − I` are independent, so the driver walks diagonals,
//! broadcasting the finished blocks (Collect-Broadcast style — wide
//! shuffles would have to re-ship the growing prefix every step) and
//! running one task per block of the diagonal. Inside a task, the
//! middle operands fold in through the min-plus GEMM and the block is
//! finished with the same base kernels the shared-memory R-DP uses.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use gep_kernels::parenthesis::{self, ParenWeight};
use gep_kernels::Matrix;
use sparklet::{JobError, SparkContext, Storable};

use crate::block::Block;

type K = (usize, usize);

/// Newtype so the weight spec can cross executor boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightMsg(pub ParenWeight);

impl Storable for WeightMsg {
    fn encoded_len(&self) -> usize {
        1 + match &self.0 {
            ParenWeight::MatrixChain(dims) => dims.encoded_len(),
            ParenWeight::Polygon(v) => v.encoded_len(),
            ParenWeight::Zero => 0,
        }
    }

    fn encode(&self, buf: &mut BytesMut) {
        match &self.0 {
            ParenWeight::MatrixChain(dims) => {
                buf.put_u8(0);
                dims.encode(buf);
            }
            ParenWeight::Polygon(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
            ParenWeight::Zero => buf.put_u8(2),
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, JobError> {
        if buf.remaining() < 1 {
            return Err(JobError::Codec("weight tag underrun".into()));
        }
        Ok(WeightMsg(match buf.get_u8() {
            0 => ParenWeight::MatrixChain(Vec::<u64>::decode(buf)?),
            1 => ParenWeight::Polygon(Vec::<f64>::decode(buf)?),
            2 => ParenWeight::Zero,
            t => return Err(JobError::Codec(format!("bad weight tag {t}"))),
        }))
    }
}

/// Compute one block `(bi, bj)` given the already-finished blocks.
/// `b` is the block side; offsets are global.
fn compute_block(
    bi: usize,
    bj: usize,
    b: usize,
    finished: &[(K, Block<f64>)],
    weight: &ParenWeight,
    init: &Matrix<f64>,
) -> Matrix<f64> {
    let lookup = |key: K| -> &Matrix<f64> {
        finished
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, blk)| blk.expect_real())
            .unwrap_or_else(|| panic!("block {key:?} not finished yet"))
    };
    let mut x = init.copy_block(bi * b, bj * b, b, b);
    if bi == bj {
        // Independent diagonal sub-problem.
        let pool = crate::kernels::omp_pool(1);
        let view = x.view_mut_at(bi * b, bi * b);
        parenthesis::rec_a(&pool, 64, view, weight);
        return x;
    }
    {
        let mut xv = x.view_mut_at(bi * b, bj * b);
        // Middle contributions: strictly-between block columns.
        for k in (bi + 1)..bj {
            let a = lookup((bi, k));
            let c = lookup((k, bj));
            parenthesis::paren_gemm(
                &mut xv,
                a.view_at(bi * b, k * b),
                c.view_at(k * b, bj * b),
                weight,
            );
        }
        // Finish with the diagonal operands (handles in-block k too).
        let u = lookup((bi, bi));
        let v = lookup((bj, bj));
        let pool = crate::kernels::omp_pool(1);
        parenthesis::rec_b(
            &pool,
            64,
            xv,
            u.view_at(bi * b, bi * b),
            v.view_at(bj * b, bj * b),
            weight,
        );
    }
    x
}

/// Distributed parenthesis solve: block side `b`, table side `n+1`
/// padded up to a multiple of `b`. Returns the full (unpadded) table.
pub fn solve_parenthesis(
    sc: &SparkContext,
    weight: &ParenWeight,
    b: usize,
) -> Result<Matrix<f64>, JobError> {
    let n1 = weight.n() + 1;
    let g = n1.div_ceil(b);
    let padded = g * b;
    // Padded init table: extra rows/columns stay ∞ except the diagonal
    // (0) — inert because every candidate through them is ∞.
    let base = parenthesis::init_table(weight);
    let mut init = Matrix::square(padded, f64::INFINITY);
    for i in 0..padded {
        init.set(i, i, 0.0);
    }
    for i in 0..n1 {
        for j in i..n1 {
            init.set(i, j, base.get(i, j));
        }
    }

    let bc_weight = sc.broadcast(&WeightMsg(weight.clone()));
    let bc_init = sc.broadcast(&Block::Real(init.clone()));
    let mut finished: Vec<(K, Block<f64>)> = Vec::new();
    for d in 0..g {
        let keys: Vec<(K, Block<f64>)> = (0..(g - d))
            .map(|i| ((i, i + d), Block::Virtual { rows: 0, cols: 0 }))
            .collect();
        let bc_finished = sc.broadcast(&finished);
        sc.log_driver_traffic(
            &format!("paren.diag{d}.bcast"),
            0,
            finished.approx_bytes() as u64,
        );
        let bcw = bc_weight.clone();
        let bci = bc_init.clone();
        let bcf = bc_finished.clone();
        let block_side = b;
        let rdd = sc
            .parallelize(keys, None)
            .map_partitions(true, move |_p, items, tc| {
                if items.is_empty() {
                    return items;
                }
                let weight = bcw.value(tc).expect("weight broadcast");
                let init = bci.value(tc).expect("init broadcast");
                let done = bcf.value(tc).expect("finished broadcast");
                items
                    .into_iter()
                    .map(|((bi, bj), _)| {
                        let m =
                            compute_block(bi, bj, block_side, &done, &weight.0, init.expect_real());
                        ((bi, bj), Block::Real(m))
                    })
                    .collect()
            });
        let mut new_blocks = rdd.collect()?;
        finished.append(&mut new_blocks);
    }

    // Assemble and unpad.
    let mut out = Matrix::square(padded, f64::INFINITY);
    for ((bi, bj), blk) in &finished {
        out.paste_block(bi * b, bj * b, blk.expect_real());
    }
    Ok(out.copy_block(0, 0, n1, n1))
}

/// Alignment scoring message (crosses executor boundaries).
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreMsg(pub gep_kernels::alignment::AlignScore);

impl Storable for ScoreMsg {
    fn encoded_len(&self) -> usize {
        use gep_kernels::alignment::AlignScore;
        match &self.0 {
            AlignScore::Lcs => 1,
            AlignScore::NeedlemanWunsch { .. } => 1 + 3 * 8,
        }
    }

    fn encode(&self, buf: &mut BytesMut) {
        use gep_kernels::alignment::AlignScore;
        match &self.0 {
            AlignScore::Lcs => buf.put_u8(0),
            AlignScore::NeedlemanWunsch {
                matched,
                mismatch,
                gap,
            } => {
                buf.put_u8(1);
                matched.encode(buf);
                mismatch.encode(buf);
                gap.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, JobError> {
        use gep_kernels::alignment::AlignScore;
        if buf.remaining() < 1 {
            return Err(JobError::Codec("score tag underrun".into()));
        }
        Ok(ScoreMsg(match buf.get_u8() {
            0 => AlignScore::Lcs,
            1 => AlignScore::NeedlemanWunsch {
                matched: i64::decode(buf)?,
                mismatch: i64::decode(buf)?,
                gap: i64::decode(buf)?,
            },
            t => return Err(JobError::Codec(format!("bad score tag {t}"))),
        }))
    }
}

/// Halos a finished alignment block exports to its neighbours: its
/// bottom row (consumed by the block below) and right column (consumed
/// by the block to the right); the shared corner is the last entry of
/// both.
type Halo = (Vec<i64>, Vec<i64>);

/// Distributed LCS / Needleman–Wunsch: anti-diagonal block wavefront
/// with halo broadcast per diagonal. Returns the full `(n+1)×(m+1)`
/// score table (so callers can trace back).
pub fn solve_alignment(
    sc: &SparkContext,
    a: &[u8],
    b: &[u8],
    score: &gep_kernels::alignment::AlignScore,
    block: usize,
) -> Result<Matrix<i64>, JobError> {
    use gep_kernels::alignment::align_block;
    let (n, m) = (a.len(), b.len());
    let block = block.max(1);
    let row_blocks = n.div_ceil(block).max(1);
    let col_blocks = m.div_ceil(block).max(1);

    let bc_a = sc.broadcast(&a.to_vec());
    let bc_b = sc.broadcast(&b.to_vec());
    let bc_score = sc.broadcast(&ScoreMsg(score.clone()));

    // Halos of finished blocks, grown per diagonal.
    let mut halos: Vec<(K, Halo)> = Vec::new();
    let mut blocks_out: Vec<((usize, usize), Matrix<i64>)> = Vec::new();

    for d in 0..(row_blocks + col_blocks - 1) {
        let keys: Vec<((usize, usize), u8)> = (0..row_blocks)
            .filter_map(|ii| {
                let jj = d.checked_sub(ii)?;
                (jj < col_blocks).then_some(((ii, jj), 0u8))
            })
            .collect();
        if keys.is_empty() {
            continue;
        }
        let bc_halos = sc.broadcast(&halos);
        sc.log_driver_traffic(
            &format!("align.diag{d}.bcast"),
            0,
            halos.approx_bytes() as u64,
        );
        let (bca, bcb, bcs, bch) = (
            bc_a.clone(),
            bc_b.clone(),
            bc_score.clone(),
            bc_halos.clone(),
        );
        let blk = block;
        let rdd = sc.parallelize(keys, None).map_partitions_to(
            move |_p, items, tc| -> Vec<((usize, usize), Vec<i64>)> {
                if items.is_empty() {
                    return Vec::new();
                }
                let a = bca.value(tc).expect("sequence a");
                let b = bcb.value(tc).expect("sequence b");
                let ScoreMsg(ref score) = *bcs.value(tc).expect("score");
                let halos = bch.value(tc).expect("halos");
                let halo_of = |key: K| -> Option<&Halo> {
                    halos.iter().find(|(k, _)| *k == key).map(|(_, h)| h)
                };
                let (n, m) = (a.len(), b.len());
                items
                    .into_iter()
                    .map(|((ii, jj), _)| {
                        let r0 = 1 + ii * blk;
                        let c0 = 1 + jj * blk;
                        let rows = blk.min(n + 1 - r0);
                        let cols = blk.min(m + 1 - c0);
                        // Assemble incoming halos.
                        let boundary_row = |gj: usize| score.boundary(gj);
                        let top: Vec<i64> = if ii == 0 {
                            (0..=cols).map(|j| boundary_row(c0 - 1 + j)).collect()
                        } else {
                            let above = halo_of((ii - 1, jj)).expect("block above finished");
                            let corner = if jj == 0 {
                                score.boundary(r0 - 1)
                            } else {
                                *halo_of((ii - 1, jj - 1))
                                    .expect("diagonal block finished")
                                    .0
                                    .last()
                                    .expect("non-empty halo")
                            };
                            let mut t = Vec::with_capacity(cols + 1);
                            t.push(corner);
                            t.extend_from_slice(&above.0[..cols]);
                            t
                        };
                        let left: Vec<i64> = if jj == 0 {
                            (0..rows).map(|i| score.boundary(r0 + i)).collect()
                        } else {
                            halo_of((ii, jj - 1)).expect("block left finished").1[..rows].to_vec()
                        };
                        let mut data = Matrix::filled(rows, cols, 0i64);
                        align_block(&mut data.view_mut_at(r0, c0), &top, &left, &a, &b, score);
                        // Flatten for the wire (row-major + dims in key
                        // order reconstruction happens on the driver).
                        let mut flat = Vec::with_capacity(rows * cols + 2);
                        flat.push(rows as i64);
                        flat.push(cols as i64);
                        flat.extend_from_slice(data.as_slice());
                        ((ii, jj), flat)
                    })
                    .collect()
            },
        );
        let computed = rdd.collect()?;
        for ((ii, jj), flat) in computed {
            let rows = flat[0] as usize;
            let cols = flat[1] as usize;
            let data = Matrix::from_vec(rows, cols, flat[2..].to_vec());
            // Export halos for the next diagonals.
            let bottom: Vec<i64> = (0..cols).map(|j| data.get(rows - 1, j)).collect();
            let right: Vec<i64> = (0..rows).map(|i| data.get(i, cols - 1)).collect();
            halos.push(((ii, jj), (bottom, right)));
            blocks_out.push(((ii, jj), data));
        }
    }

    // Assemble the full table (boundaries + interior blocks).
    let mut table = Matrix::filled(n + 1, m + 1, 0i64);
    for i in 0..=n {
        table.set(i, 0, score.boundary(i));
    }
    for j in 0..=m {
        table.set(0, j, score.boundary(j));
    }
    for ((ii, jj), data) in &blocks_out {
        table.paste_block(1 + ii * block, 1 + jj * block, data);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparklet::SparkConf;

    fn random_dims(n: usize, seed: u64) -> Vec<u64> {
        let mut state = seed | 1;
        (0..=n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % 30 + 1
            })
            .collect()
    }

    fn ctx() -> SparkContext {
        SparkContext::new(SparkConf::default().with_executors(3).with_partitions(6))
    }

    #[test]
    fn distributed_mcm_matches_reference_bitwise() {
        for &(n, b, seed) in &[(15usize, 4usize, 3u64), (20, 8, 7), (23, 6, 11)] {
            let w = ParenWeight::MatrixChain(random_dims(n, seed));
            let sc = ctx();
            let dist = solve_parenthesis(&sc, &w, b).expect("solve");
            let reference = parenthesis::solve_reference(&w);
            assert_eq!(dist.first_difference(&reference), None, "n={n} b={b}");
        }
    }

    #[test]
    fn distributed_polygon_matches_reference() {
        let w = ParenWeight::Polygon((1..=13).map(|i| i as f64 / 3.0).collect());
        let sc = ctx();
        let dist = solve_parenthesis(&sc, &w, 5).expect("solve");
        let reference = parenthesis::solve_reference(&w);
        assert_eq!(dist.first_difference(&reference), None);
    }

    #[test]
    fn weight_message_roundtrips() {
        use sparklet::codec::{decode_one, encode_one};
        for w in [
            ParenWeight::MatrixChain(vec![3, 4, 5]),
            ParenWeight::Polygon(vec![0.5, 1.5]),
            ParenWeight::Zero,
        ] {
            let msg = WeightMsg(w);
            let dec: WeightMsg = decode_one(encode_one(&msg)).unwrap();
            assert_eq!(dec, msg);
        }
    }

    #[test]
    fn distributed_lcs_matches_reference() {
        use gep_kernels::alignment::{align_reference, traceback_lcs, AlignScore};
        let a = b"CTGATCGATTACAGGCTAGCTTAGCGAGTTACA";
        let b = b"GATTACACTGAGCTAGCTAACGATCGGATTC";
        let sc = ctx();
        for blk in [5usize, 8, 40] {
            let table = solve_alignment(&sc, a, b, &AlignScore::Lcs, blk).expect("solve");
            let reference = align_reference(a, b, &AlignScore::Lcs);
            assert_eq!(table.first_difference(&reference), None, "blk={blk}");
        }
        let table = solve_alignment(&sc, a, b, &AlignScore::Lcs, 8).unwrap();
        let lcs = traceback_lcs(&table, a, b);
        assert_eq!(lcs.len() as i64, table.get(a.len(), b.len()));
    }

    #[test]
    fn distributed_nw_matches_reference() {
        use gep_kernels::alignment::{align_reference, AlignScore};
        let score = AlignScore::NeedlemanWunsch {
            matched: 2,
            mismatch: -1,
            gap: -2,
        };
        let a = b"ACGTACGTTAGC";
        let b = b"ACTTAGCATCG";
        let sc = ctx();
        let table = solve_alignment(&sc, a, b, &score, 4).expect("solve");
        let reference = align_reference(a, b, &score);
        assert_eq!(table.first_difference(&reference), None);
    }

    #[test]
    fn alignment_edge_shapes() {
        use gep_kernels::alignment::{align_reference, AlignScore};
        let sc = ctx();
        // Sequences shorter than the block.
        let t = solve_alignment(&sc, b"AB", b"ABC", &AlignScore::Lcs, 16).unwrap();
        let r = align_reference(b"AB", b"ABC", &AlignScore::Lcs);
        assert_eq!(t.first_difference(&r), None);
        // Strongly rectangular.
        let t = solve_alignment(&sc, b"AAAAAAAAAAAAAAAA", b"AA", &AlignScore::Lcs, 4).unwrap();
        assert_eq!(t.get(16, 2), 2);
    }

    #[test]
    fn driver_traffic_is_logged_per_diagonal() {
        let w = ParenWeight::MatrixChain(random_dims(11, 5));
        let sc = ctx();
        solve_parenthesis(&sc, &w, 4).expect("solve");
        sc.with_event_log(|log| {
            assert!(log.total_broadcast_bytes() > 0);
            // 3 block diagonals ⇒ 3 broadcast pseudo-stages.
            let bcast_stages = log
                .stages()
                .iter()
                .filter(|s| s.label.contains("paren.diag"))
                .count();
            assert_eq!(bcast_stages, 3);
        });
    }
}
