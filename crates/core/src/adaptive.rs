//! Adaptive runtime configuration selection — the paper's other tuning
//! mode ("either on-the-fly by using adaptive runtime configuration
//! selection or using estimates from … analytical models").
//!
//! [`adaptive_solve`] probes each candidate kernel on the first
//! iteration of the real workload (wall-clock, on a throwaway copy of
//! the table RDD), commits to the fastest, and runs the full solve with
//! it. The probe measures the *actual* machine and engine — no model.
//!
//! Probes run **one at a time**. An earlier version submitted every
//! candidate as a concurrent [`sparklet::JobHandle`] job with the
//! timer inside the closure; the probes then contended for the same
//! executor slots, so each `probe_seconds` entry measured mostly the
//! *interference* of the other candidates — the ranking depended on
//! how many candidates were probed and in what order. A timing probe
//! is only comparable when each candidate sees the machine the way the
//! final solve will: alone.

use std::time::Instant;

use gep_kernels::Matrix;
use sparklet::{JobError, SparkContext};

use crate::backend::{registry, KernelSpec, SIMULATE};
use crate::config::DpConfig;
use crate::problem::DpProblem;
use crate::solver::solve;

/// Result of an adaptive run.
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome<E> {
    /// The solved table.
    pub result: Matrix<E>,
    /// The kernel the probe committed to.
    pub chosen: KernelSpec,
    /// Probe wall-times (seconds) per candidate, same order as input.
    pub probe_seconds: Vec<f64>,
}

/// Probe `candidates` on a truncated copy of the problem (the first
/// `probe_phases` block phases at full block size), then solve the real
/// problem with the fastest. Returns the solution plus the decision.
pub fn adaptive_solve<S: DpProblem>(
    sc: &SparkContext,
    cfg: &DpConfig,
    input: &Matrix<S::Elem>,
    candidates: &[KernelSpec],
    probe_phases: usize,
) -> Result<AdaptiveOutcome<S::Elem>, JobError> {
    assert!(!candidates.is_empty(), "need at least one candidate");
    let probe_phases = probe_phases.max(1);
    // Probe problem: the first `probe_phases` block rows/columns — a
    // (probe_phases × block)-sized leading principal sub-table, which
    // exercises the same per-phase structure at reduced iteration count.
    let probe_n = (probe_phases * cfg.block).min(cfg.n);
    let probe_input = input.copy_block(0, 0, probe_n, probe_n);
    // Probe candidates sequentially so each timing sees an idle
    // engine: concurrent probes would contend for executor slots and
    // measure interference, not kernel speed.
    let mut probe_seconds = Vec::with_capacity(candidates.len());
    let mut best = (0usize, f64::INFINITY);
    for (i, candidate) in candidates.iter().enumerate() {
        let probe_cfg = DpConfig::new(probe_n, cfg.block.min(probe_n))
            .with_strategy(cfg.strategy)
            .with_kernel(candidate.clone());
        let t0 = Instant::now();
        let _ = solve::<S>(sc, &probe_cfg, &probe_input)?;
        let secs = t0.elapsed().as_secs_f64();
        probe_seconds.push(secs);
        if secs < best.1 {
            best = (i, secs);
        }
    }
    let chosen = candidates[best.0].clone();
    let final_cfg = cfg.clone().with_kernel(chosen.clone());
    let result = solve::<S>(sc, &final_cfg, input)?;
    Ok(AdaptiveOutcome {
        result,
        chosen,
        probe_seconds,
    })
}

/// Like [`adaptive_solve`], but the candidate list comes from the
/// backend registry: every available registered backend except the
/// cost-accounting `simulate` one, in registration order (so the probe
/// sequence — and therefore the tie-break — is deterministic), each
/// carrying `cfg`'s kernel params. Registering a new backend makes it
/// a probe candidate with no call-site changes.
pub fn adaptive_solve_registry<S: DpProblem>(
    sc: &SparkContext,
    cfg: &DpConfig,
    input: &Matrix<S::Elem>,
    probe_phases: usize,
) -> Result<AdaptiveOutcome<S::Elem>, JobError> {
    let reg = registry::<S>();
    let candidates: Vec<KernelSpec> = reg
        .backends()
        .iter()
        .filter(|b| {
            b.available()
                && b.name() != SIMULATE
                && b.supports_repr(gep_kernels::sparse::TileRepr::Dense)
        })
        .map(|b| KernelSpec::named(b.name()).with_params(cfg.kernel.params))
        .collect();
    adaptive_solve::<S>(sc, cfg, input, &candidates, probe_phases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Strategy;
    use gep_kernels::gep::gep_reference;
    use gep_kernels::Tropical;
    use sparklet::SparkConf;

    #[test]
    fn adaptive_solve_is_correct_whatever_it_picks() {
        let n = 24;
        let input = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                0.0
            } else if (i * 7 + j) % 3 == 0 {
                ((i + j) % 9 + 1) as f64
            } else {
                f64::INFINITY
            }
        });
        let mut reference = input.clone();
        gep_reference::<Tropical>(&mut reference);
        let sc = SparkContext::new(SparkConf::default().with_executors(2).with_partitions(6));
        let candidates = [KernelSpec::iterative(), KernelSpec::recursive(2, 2, 2)];
        let out = adaptive_solve::<Tropical>(
            &sc,
            &DpConfig::new(n, 6).with_strategy(Strategy::InMemory),
            &input,
            &candidates,
            2,
        )
        .expect("adaptive solve");
        assert_eq!(out.result.first_difference(&reference), None);
        assert!(candidates.contains(&out.chosen));
        assert_eq!(out.probe_seconds.len(), 2);
        assert!(out.probe_seconds.iter().all(|s| *s > 0.0));
    }

    #[test]
    fn probes_run_serially_so_timings_do_not_interfere() {
        // Regression: probes used to be submitted as concurrent jobs
        // with the timer inside each closure, so candidates timed each
        // other's interference and the ranking depended on list size.
        // With the per-job stage cap at 1, any overlap between probe
        // jobs is visible in the driver's in-flight gauge: serialized
        // probes keep it at exactly 1 for the whole run.
        let n = 12;
        let input = Matrix::from_fn(n, n, |i, j| if i == j { 0.0 } else { (i + j) as f64 });
        let sc = SparkContext::new(
            SparkConf::default()
                .with_executors(2)
                .with_partitions(4)
                .with_max_concurrent_stages(1),
        );
        let candidates = [
            KernelSpec::iterative(),
            KernelSpec::recursive(2, 2, 2),
            KernelSpec::iterative(),
        ];
        let out = adaptive_solve::<Tropical>(
            &sc,
            &DpConfig::new(n, 4).with_strategy(Strategy::InMemory),
            &input,
            &candidates,
            1,
        )
        .expect("adaptive solve");
        assert_eq!(out.probe_seconds.len(), 3, "one timing per candidate");
        let peak = sc.with_event_log(|log| log.max_concurrent_stages());
        assert_eq!(
            peak, 1,
            "probe jobs overlapped: gauge {peak} despite per-job cap 1"
        );
    }

    #[test]
    fn registry_candidates_probe_every_real_backend() {
        let n = 12;
        let input = Matrix::from_fn(n, n, |i, j| if i == j { 0.0 } else { (i + j) as f64 });
        let mut reference = input.clone();
        gep_reference::<Tropical>(&mut reference);
        let sc = SparkContext::new(SparkConf::default().with_executors(2).with_partitions(4));
        let out = adaptive_solve_registry::<Tropical>(
            &sc,
            &DpConfig::new(n, 4).with_strategy(Strategy::InMemory),
            &input,
            1,
        )
        .expect("adaptive solve");
        assert_eq!(out.result.first_difference(&reference), None);
        let reg = crate::backend::registry::<Tropical>();
        let real: Vec<_> = reg
            .backends()
            .iter()
            .filter(|b| {
                b.name() != SIMULATE && b.supports_repr(gep_kernels::sparse::TileRepr::Dense)
            })
            .map(|b| b.name())
            .collect();
        assert_eq!(out.probe_seconds.len(), real.len(), "one probe per backend");
        assert!(real.contains(&out.chosen.backend.as_str()));
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn rejects_empty_candidate_list() {
        let sc = SparkContext::new(SparkConf::default());
        let input = Matrix::square(4, 0.0f64);
        let _ = adaptive_solve::<Tropical>(&sc, &DpConfig::new(4, 2), &input, &[], 1);
    }
}
