//! The `FilterA/B/C/D` block predicates of Listings 1–2, derived from
//! the problem's Σ_G so the same code serves FW-APSP (all blocks) and
//! GE (trailing submatrix only).

use gep_kernels::gep::{block_active, Kind};

use crate::problem::DpProblem;

/// Is `(i, j)` the diagonal block of phase `k`?
pub fn filter_a(key: (usize, usize), k: usize) -> bool {
    key == (k, k)
}

/// Is `(i, j)` an *active* row-panel block of phase `k` (kernel B)?
pub fn filter_b<S: DpProblem>(key: (usize, usize), k: usize, b: usize) -> bool {
    let (i, j) = key;
    i == k && j != k && block_active::<S>(i, j, k, b)
}

/// Is `(i, j)` an *active* column-panel block of phase `k` (kernel C)?
pub fn filter_c<S: DpProblem>(key: (usize, usize), k: usize, b: usize) -> bool {
    let (i, j) = key;
    j == k && i != k && block_active::<S>(i, j, k, b)
}

/// Is `(i, j)` an *active* trailing block of phase `k` (kernel D)?
pub fn filter_d<S: DpProblem>(key: (usize, usize), k: usize, b: usize) -> bool {
    let (i, j) = key;
    i != k && j != k && block_active::<S>(i, j, k, b)
}

/// Any of A/B/C/D — i.e. the block is touched during phase `k`.
pub fn touched<S: DpProblem>(key: (usize, usize), k: usize, b: usize) -> bool {
    filter_a(key, k)
        || filter_b::<S>(key, k, b)
        || filter_c::<S>(key, k, b)
        || filter_d::<S>(key, k, b)
}

/// Which kernel processes block `key` during phase `k`, if any.
pub fn kind_of<S: DpProblem>(key: (usize, usize), k: usize, b: usize) -> Option<Kind> {
    if filter_a(key, k) {
        Some(Kind::A)
    } else if filter_b::<S>(key, k, b) {
        Some(Kind::B)
    } else if filter_c::<S>(key, k, b) {
        Some(Kind::C)
    } else if filter_d::<S>(key, k, b) {
        Some(Kind::D)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gep_kernels::{GaussianElim, Tropical};

    #[test]
    fn fw_touches_every_block_every_phase() {
        let g = 4;
        for k in 0..g {
            for i in 0..g {
                for j in 0..g {
                    assert!(touched::<Tropical>((i, j), k, 8));
                }
            }
        }
    }

    #[test]
    fn ge_filters_match_listing_bounds() {
        // Listing 1: FilterD[(l,m), k] = l>k && m>k.
        let b = 8;
        for k in 0..4 {
            for i in 0..4 {
                for j in 0..4 {
                    let expect_d = i > k && j > k;
                    assert_eq!(
                        filter_d::<GaussianElim>((i, j), k, b),
                        expect_d,
                        "D ({i},{j}) k={k}"
                    );
                    let expect_b = i == k && j > k;
                    assert_eq!(filter_b::<GaussianElim>((i, j), k, b), expect_b);
                    let expect_c = j == k && i > k;
                    assert_eq!(filter_c::<GaussianElim>((i, j), k, b), expect_c);
                }
            }
        }
    }

    #[test]
    fn filters_partition_touched_blocks() {
        // Exactly one kind per touched block; none overlap.
        let b = 4;
        for k in 0..3 {
            for i in 0..3 {
                for j in 0..3 {
                    let kinds = [
                        filter_a((i, j), k),
                        filter_b::<Tropical>((i, j), k, b),
                        filter_c::<Tropical>((i, j), k, b),
                        filter_d::<Tropical>((i, j), k, b),
                    ];
                    let hits = kinds.iter().filter(|&&x| x).count();
                    assert_eq!(hits, 1, "({i},{j}) k={k}");
                }
            }
        }
    }

    #[test]
    fn kind_of_agrees_with_filters() {
        use gep_kernels::gep::Kind;
        assert_eq!(kind_of::<GaussianElim>((2, 2), 2, 4), Some(Kind::A));
        assert_eq!(kind_of::<GaussianElim>((2, 3), 2, 4), Some(Kind::B));
        assert_eq!(kind_of::<GaussianElim>((3, 2), 2, 4), Some(Kind::C));
        assert_eq!(kind_of::<GaussianElim>((3, 3), 2, 4), Some(Kind::D));
        assert_eq!(kind_of::<GaussianElim>((1, 3), 2, 4), None);
    }
}
