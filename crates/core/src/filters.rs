//! The `FilterA/B/C/D` block predicates of Listings 1–2, derived from
//! the problem's Σ_G so the same code serves FW-APSP (all blocks) and
//! GE (trailing submatrix only) — plus the active-set predicates of
//! the sparse representation path, where "which work happens this
//! round" is a *frontier* question (did any distance improve?) rather
//! than a phase-geometry question.

use gep_kernels::gep::{block_active, Kind};

use crate::problem::DpProblem;

/// Is `(i, j)` the diagonal block of phase `k`?
pub fn filter_a(key: (usize, usize), k: usize) -> bool {
    key == (k, k)
}

/// Is `(i, j)` an *active* row-panel block of phase `k` (kernel B)?
pub fn filter_b<S: DpProblem>(key: (usize, usize), k: usize, b: usize) -> bool {
    let (i, j) = key;
    i == k && j != k && block_active::<S>(i, j, k, b)
}

/// Is `(i, j)` an *active* column-panel block of phase `k` (kernel C)?
pub fn filter_c<S: DpProblem>(key: (usize, usize), k: usize, b: usize) -> bool {
    let (i, j) = key;
    j == k && i != k && block_active::<S>(i, j, k, b)
}

/// Is `(i, j)` an *active* trailing block of phase `k` (kernel D)?
pub fn filter_d<S: DpProblem>(key: (usize, usize), k: usize, b: usize) -> bool {
    let (i, j) = key;
    i != k && j != k && block_active::<S>(i, j, k, b)
}

/// Any of A/B/C/D — i.e. the block is touched during phase `k`.
pub fn touched<S: DpProblem>(key: (usize, usize), k: usize, b: usize) -> bool {
    filter_a(key, k)
        || filter_b::<S>(key, k, b)
        || filter_c::<S>(key, k, b)
        || filter_d::<S>(key, k, b)
}

/// Contiguous vertex range `[lo, hi)` owned by partition `q` of
/// `parts` over `n` vertices. The remainder spreads one vertex each
/// over the first `n % parts` partitions, so sizes differ by at most
/// one and the mapping is a pure function of `(n, parts, q)` — the
/// sparse path's analogue of the dense grid decomposition.
pub fn part_bounds(n: usize, parts: usize, q: usize) -> (usize, usize) {
    assert!(parts >= 1 && q < parts, "partition index out of range");
    let base = n / parts;
    let extra = n % parts;
    let lo = q * base + q.min(extra);
    let hi = lo + base + usize::from(q < extra);
    (lo, hi)
}

/// Which partition owns vertex `v` (inverse of [`part_bounds`]).
pub fn part_of(v: usize, n: usize, parts: usize) -> usize {
    assert!(v < n, "vertex out of range");
    let base = n / parts;
    let extra = n % parts;
    let cut = extra * (base + 1);
    if v < cut {
        v / (base + 1)
    } else {
        extra + (v - cut) / base.max(1)
    }
}

/// Frontier predicate of the sparse sweep path: a partition emits
/// update tiles this round only while its distance table changed last
/// round (`FilterSweep` — the SSSP analogue of the dense `FilterB/C`
/// panel activity, except data-dependent instead of phase-geometric).
pub fn sweep_active(changed: u64) -> bool {
    changed > 0
}

/// Which kernel processes block `key` during phase `k`, if any.
pub fn kind_of<S: DpProblem>(key: (usize, usize), k: usize, b: usize) -> Option<Kind> {
    if filter_a(key, k) {
        Some(Kind::A)
    } else if filter_b::<S>(key, k, b) {
        Some(Kind::B)
    } else if filter_c::<S>(key, k, b) {
        Some(Kind::C)
    } else if filter_d::<S>(key, k, b) {
        Some(Kind::D)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gep_kernels::{GaussianElim, Tropical};

    #[test]
    fn fw_touches_every_block_every_phase() {
        let g = 4;
        for k in 0..g {
            for i in 0..g {
                for j in 0..g {
                    assert!(touched::<Tropical>((i, j), k, 8));
                }
            }
        }
    }

    #[test]
    fn ge_filters_match_listing_bounds() {
        // Listing 1: FilterD[(l,m), k] = l>k && m>k.
        let b = 8;
        for k in 0..4 {
            for i in 0..4 {
                for j in 0..4 {
                    let expect_d = i > k && j > k;
                    assert_eq!(
                        filter_d::<GaussianElim>((i, j), k, b),
                        expect_d,
                        "D ({i},{j}) k={k}"
                    );
                    let expect_b = i == k && j > k;
                    assert_eq!(filter_b::<GaussianElim>((i, j), k, b), expect_b);
                    let expect_c = j == k && i > k;
                    assert_eq!(filter_c::<GaussianElim>((i, j), k, b), expect_c);
                }
            }
        }
    }

    #[test]
    fn filters_partition_touched_blocks() {
        // Exactly one kind per touched block; none overlap.
        let b = 4;
        for k in 0..3 {
            for i in 0..3 {
                for j in 0..3 {
                    let kinds = [
                        filter_a((i, j), k),
                        filter_b::<Tropical>((i, j), k, b),
                        filter_c::<Tropical>((i, j), k, b),
                        filter_d::<Tropical>((i, j), k, b),
                    ];
                    let hits = kinds.iter().filter(|&&x| x).count();
                    assert_eq!(hits, 1, "({i},{j}) k={k}");
                }
            }
        }
    }

    #[test]
    fn part_bounds_cover_exactly_and_invert() {
        for n in [1usize, 7, 12, 64, 65] {
            for parts in [1usize, 2, 3, 5, 8] {
                if parts > n {
                    continue;
                }
                let mut covered = 0;
                for q in 0..parts {
                    let (lo, hi) = part_bounds(n, parts, q);
                    assert_eq!(lo, covered, "gap before part {q} (n={n} parts={parts})");
                    assert!(hi > lo, "empty part {q}");
                    for v in lo..hi {
                        assert_eq!(part_of(v, n, parts), q, "v={v} n={n} parts={parts}");
                    }
                    covered = hi;
                }
                assert_eq!(covered, n, "parts must tile [0,n)");
            }
        }
    }

    #[test]
    fn sweep_frontier_gates_on_change() {
        assert!(!sweep_active(0));
        assert!(sweep_active(1));
        assert!(sweep_active(u64::MAX));
    }

    #[test]
    fn kind_of_agrees_with_filters() {
        use gep_kernels::gep::Kind;
        assert_eq!(kind_of::<GaussianElim>((2, 2), 2, 4), Some(Kind::A));
        assert_eq!(kind_of::<GaussianElim>((2, 3), 2, 4), Some(Kind::B));
        assert_eq!(kind_of::<GaussianElim>((3, 2), 2, 4), Some(Kind::C));
        assert_eq!(kind_of::<GaussianElim>((3, 3), 2, 4), Some(Kind::D));
        assert_eq!(kind_of::<GaussianElim>((1, 3), 2, 4), None);
    }
}
