//! `dp-core` — the paper's primary contribution: efficient execution of
//! GEP-class dynamic programming algorithms on a Spark-like engine.
//!
//! For a problem in GEP form ([`gep_kernels::GepSpec`], extended here by
//! [`DpProblem`]) and an `n×n` table decomposed into a `g×g` grid of
//! `b×b` blocks, this crate provides the paper's four implementation
//! variants:
//!
//! | strategy | kernel backend | paper name |
//! |---|---|---|
//! | [`Strategy::InMemory`] | `iterative` | IM, iterative |
//! | [`Strategy::InMemory`] | `recursive` | IM, r-way R-DP |
//! | [`Strategy::CollectBroadcast`] | `iterative` | CB, iterative |
//! | [`Strategy::CollectBroadcast`] | `recursive` | CB, r-way R-DP |
//!
//! Kernel execution is dispatched through a [`backend::BackendRegistry`]
//! of named [`backend::KernelBackend`]s (the table above plus a
//! cache-blocked `blocked` backend and the cost-accounting `simulate`
//! backend); a [`KernelSpec`] names the backend, an optional fallback
//! chain, and the shape params.
//!
//! **IM** (Listing 1) keeps everything in RDDs: each iteration runs the
//! A kernel, flat-maps copies of updated blocks to their consumers,
//! `combineByKey`s them together (wide shuffles), and repartitions.
//! **CB** (Listing 2) avoids wide dependencies inside an iteration by
//! collecting updated blocks to the driver and redistributing them via
//! shared-storage broadcast.
//!
//! Kernels run inside executor tasks either iteratively (the baseline)
//! or as parallel `r_shared`-way recursive divide-&-conquer on an
//! OpenMP-style pool whose size plays `OMP_NUM_THREADS`.
//!
//! Executions are **real** (real blocks, real kernels, validated
//! bitwise against the sequential reference) or **virtual** (same
//! dataflow, cost-accounted kernels and declared byte volumes) for
//! paper-scale timing through `cluster-model`.

#![warn(missing_docs)]

pub mod adaptive;
pub mod aqe;
pub mod backend;
pub mod beyond;
pub mod block;
pub mod cb;
pub mod config;
pub mod filters;
pub mod im;
pub mod jobs;
pub mod kernels;
pub mod linsys;
pub mod problem;
pub mod solver;
pub mod sssp;
pub mod tuner;

pub use adaptive::{adaptive_solve, adaptive_solve_registry, AdaptiveOutcome};
pub use aqe::{AqeAction, AqeDecision, AqePlanner};
pub use backend::{
    register_backend, registry, BackendRegistry, ConfigError, KernelBackend, KernelParams,
    KernelSpec, ThreadModel,
};
pub use beyond::{solve_alignment, solve_parenthesis};
pub use block::{Block, ElemCodec};
pub use config::{DpConfig, Strategy};
pub use jobs::{decode_matrix_f64, decode_matrix_i64, decode_vec_f64, DpJobRequest, DpJobRunner};
pub use linsys::solve_linear_system;
pub use problem::DpProblem;
pub use solver::{
    simulate_seconds, solve, solve_chaos, solve_virtual, solve_with_report, SolveReport,
};
pub use sssp::{
    solve_sparse_apsp, solve_sparse_apsp_chaos, solve_sparse_apsp_with_report, SweepVal,
};
pub use tuner::{tune, TuneResult};
