//! Pluggable kernel backends: the formulation/backend split.
//!
//! The paper's kernels (iterative `A..D`, recursive r-way R-DP) were
//! historically a hard-coded enum branched inside `apply_kernel`;
//! every new compute path (Strassen-style kernels, sparse sweeps, a
//! GPU offload) had to edit the solve path, the adaptive prober, the
//! AQE planner, and the cost model in lockstep. This module splits the
//! *formulation* (a [`crate::problem::DpProblem`]: update `f`, Σ_G,
//! filters) from the *backend* (how one block kernel is executed) and
//! routes every dispatch through a [`BackendRegistry`]:
//!
//! * [`KernelBackend`] — capability descriptor + execution hook. A
//!   backend names itself, declares which GEP kinds it handles, maps
//!   itself onto a cost-model [`cluster_model::KernelType`], reports
//!   runtime availability, and runs (or cost-accounts) one kernel.
//! * [`BackendRegistry`] — named registration with **deterministic
//!   resolution**: entries keep their registration order, and a
//!   [`KernelSpec`]'s `backend` + fallback chain is walked in the
//!   caller-given order, skipping unregistered/unavailable entries.
//!   Resolution consults no ambient state (no time, no randomness), so
//!   seeded sim/chaos replays stay bit-identical with the registry in
//!   place.
//! * [`KernelSpec`] — the config-surface selector: a backend name,
//!   an ordered fallback chain, and the shared numeric parameters
//!   ([`KernelParams`]). (The pre-registry `KernelChoice` enum and its
//!   deprecation shim are gone; specs are the only selector.)
//!
//! Backends are also **representation-aware**: each declares which
//! [`TileRepr`]s it can execute (`supports_repr`, dense-only by
//! default), and [`BackendRegistry::resolve_for`] walks the spec's
//! chain *per representation*, so a sparse tile can never resolve to a
//! dense-only kernel and vice versa. Dense resolution
//! ([`BackendRegistry::resolve`]) is unchanged byte-for-byte.
//!
//! Built-in backends, registered in this fixed order: `iterative`,
//! `recursive`, `blocked` (cache-blocked micro-tiled), `simulate`
//! (the cost-accounting path virtual runs use), and `sweep` (the CSR
//! relaxation sweep behind the sparse-APSP path).

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::Arc;

use gep_kernels::blocked::blocked_kernel;
use gep_kernels::gep::Kind;
use gep_kernels::iterative::block_kernel;
use gep_kernels::recursive::{rec_kernel, RecConfig};
use gep_kernels::sparse::{sweep_gep, Csr, TileRepr};
use gep_kernels::{Matrix, TileMut, TileRef};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::kernels::omp_pool;
use crate::problem::DpProblem;

/// Numeric kernel parameters shared by every backend. Backends read
/// what they understand (`iterative`/`blocked` ignore all three;
/// `recursive` reads the full set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelParams {
    /// Recursive fan-out inside the executor kernel (`r_shared`).
    pub r_shared: usize,
    /// Base-case tile side of the recursion.
    pub base: usize,
    /// OpenMP-style thread-team size (`OMP_NUM_THREADS`).
    pub threads: usize,
}

impl Default for KernelParams {
    fn default() -> Self {
        KernelParams {
            r_shared: 2,
            base: 64,
            threads: 1,
        }
    }
}

/// Config-surface kernel selector: which backend runs executor kernels,
/// in what parameterization, and what to fall back to when the primary
/// is not registered or reports itself unavailable at runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelSpec {
    /// Primary backend name (a [`BackendRegistry`] registration name).
    pub backend: String,
    /// Ordered fallback chain, tried after `backend` in the given
    /// order. Resolution is deterministic: first registered *and*
    /// available name wins.
    pub fallbacks: Vec<String>,
    /// Shared numeric parameters.
    pub params: KernelParams,
}

impl KernelSpec {
    /// The loop-based baseline backend.
    pub fn iterative() -> Self {
        KernelSpec::named(ITERATIVE)
    }

    /// The parallel `r_shared`-way recursive backend.
    pub fn recursive(r_shared: usize, base: usize, threads: usize) -> Self {
        KernelSpec {
            backend: RECURSIVE.to_string(),
            fallbacks: Vec::new(),
            params: KernelParams {
                r_shared,
                base,
                threads,
            },
        }
    }

    /// A backend by registry name, with default parameters.
    pub fn named(name: &str) -> Self {
        KernelSpec {
            backend: name.to_string(),
            fallbacks: Vec::new(),
            params: KernelParams::default(),
        }
    }

    /// Append a fallback backend name to the resolution chain.
    pub fn with_fallback(mut self, name: &str) -> Self {
        self.fallbacks.push(name.to_string());
        self
    }

    /// Replace the numeric parameters.
    pub fn with_params(mut self, params: KernelParams) -> Self {
        self.params = params;
        self
    }

    /// Short label fragment for [`crate::DpConfig::label`].
    pub fn label(&self) -> String {
        match self.backend.as_str() {
            ITERATIVE => "iter".to_string(),
            RECURSIVE => format!("rec{}x{}t", self.params.r_shared, self.params.threads),
            other => other.to_string(),
        }
    }
}

/// Typed configuration error — what `DpConfig::validate` and registry
/// resolution report instead of deep-in-kernel panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `r_shared < 2`: a recursion that never divides.
    DegenerateFanout {
        /// The rejected fan-out.
        r_shared: usize,
    },
    /// `r_shared` exceeds the block side, so the recursion could never
    /// split even once.
    FanoutExceedsBlock {
        /// The rejected fan-out.
        r_shared: usize,
        /// The configured block side.
        block: usize,
    },
    /// A parameter that must be ≥ 1 was 0 (names the parameter).
    ZeroParam(&'static str),
    /// The spec's backend chain contains no name that is registered
    /// and available.
    NoUsableBackend {
        /// The chain that was walked, primary first.
        requested: Vec<String>,
        /// Registry contents at resolution time, registration order.
        registered: Vec<String>,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // Prefix kept stable: callers pin on "r_shared must be".
            ConfigError::DegenerateFanout { r_shared } => {
                write!(f, "r_shared must be ≥ 2 (got {r_shared})")
            }
            ConfigError::FanoutExceedsBlock { r_shared, block } => {
                write!(
                    f,
                    "r_shared {r_shared} exceeds the block side {block}: the \
                     recursion could never split"
                )
            }
            ConfigError::ZeroParam(name) => write!(f, "{name} must be ≥ 1"),
            ConfigError::NoUsableBackend {
                requested,
                registered,
            } => {
                write!(
                    f,
                    "no usable kernel backend in chain {requested:?}; registered: \
                     {registered:?}"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// How a backend uses threads inside one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadModel {
    /// Single-threaded within the task.
    Serial,
    /// Joins an OpenMP-style shared pool of `params.threads` workers.
    PooledTeam,
}

/// One executor-side kernel implementation plus its capability
/// descriptor. Implementations must be deterministic: same inputs →
/// bit-identical outputs, with no dependence on wall time or ambient
/// randomness (the seeded sim/chaos replay contract).
pub trait KernelBackend<S: DpProblem>: Send + Sync {
    /// Registry name (also the `DpConfig::with_backend` selector).
    fn name(&self) -> &'static str;

    /// Does this backend implement the given GEP kind? Resolution does
    /// not consult this per-call (a backend serves whole solves); it
    /// is a capability declaration for tooling and tests.
    fn supports_kind(&self, _kind: Kind) -> bool {
        true
    }

    /// Does `params.r_shared` change this backend's execution (and
    /// pricing)? The AQE r-retune decision only fires for parametric
    /// backends.
    fn fanout_parametric(&self) -> bool {
        false
    }

    /// Runtime availability check (a GPU backend would probe its
    /// device here). Unavailable backends are skipped by resolution.
    fn available(&self) -> bool {
        true
    }

    /// Which tile representations this backend can execute. The
    /// default — dense only — is exactly the pre-sparse contract, so
    /// existing backends need no changes.
    /// [`BackendRegistry::resolve_for`] skips backends that reject the
    /// tile's representation; dense enumeration sites (the adaptive
    /// prober, the tuner, the equivalence oracle) filter on it too.
    fn supports_repr(&self, repr: TileRepr) -> bool {
        repr == TileRepr::Dense
    }

    /// Thread model inside one task.
    fn thread_model(&self) -> ThreadModel {
        ThreadModel::Serial
    }

    /// The cost-model descriptor this backend prices as.
    fn kernel_type(&self, params: &KernelParams) -> cluster_model::KernelType;

    /// Execute one block kernel. Operands arrive in the solver's raw
    /// convention: `u`/`v` are the column/row panels (kind D only),
    /// `w` is the diagonal block (kinds B, C, D); `None` means the
    /// operand aliases `x`.
    fn run(
        &self,
        kind: Kind,
        params: &KernelParams,
        x: &mut TileMut<'_, S::Elem>,
        u: Option<TileRef<'_, S::Elem>>,
        v: Option<TileRef<'_, S::Elem>>,
        w: Option<TileRef<'_, S::Elem>>,
    );

    /// Cost-account one kernel on a virtual block (no numeric data).
    /// The default is the universal no-op — the invocation record the
    /// caller wrote is the accounting.
    fn simulate(&self, _kind: Kind, _params: &KernelParams, _block_side: usize) {}

    /// Execute one relaxation sweep over a CSR tile — the sparse
    /// counterpart of [`KernelBackend::run`]: for every source row `s`
    /// of `dist` and stored edge `(u → v, w)` of `edges`, fold
    /// `cand[s][v] = f(cand[s][v], dist[s][u], w, w)` through the
    /// problem's update function. `skip` marks source distances that
    /// cannot relax anything (`+∞` for min-plus). The default panics:
    /// only backends with `supports_repr(SparseCsr)` are ever resolved
    /// for sparse tiles, and they must override this.
    fn sweep(
        &self,
        edges: &Csr<S::Elem>,
        dist: &Matrix<S::Elem>,
        skip: S::Elem,
        cand: &mut Matrix<S::Elem>,
    ) {
        let _ = (edges, dist, skip, cand);
        panic!(
            "backend `{}` does not implement sparse sweeps (supports_repr \
             must gate it out of sparse resolution)",
            self.name()
        );
    }
}

/// Registry name of the loop-based baseline backend.
pub const ITERATIVE: &str = "iterative";
/// Registry name of the r-way recursive backend.
pub const RECURSIVE: &str = "recursive";
/// Registry name of the cache-blocked micro-tiled backend.
pub const BLOCKED: &str = "blocked";
/// Registry name of the cost-accounting backend.
pub const SIMULATE: &str = "simulate";
/// Registry name of the CSR relaxation-sweep backend (sparse tiles).
pub const SWEEP: &str = "sweep";

/// The loop-based block kernels (the paper's Numba-baseline analogue).
struct IterativeBackend;

impl<S: DpProblem> KernelBackend<S> for IterativeBackend {
    fn name(&self) -> &'static str {
        ITERATIVE
    }

    fn kernel_type(&self, _params: &KernelParams) -> cluster_model::KernelType {
        cluster_model::KernelType::Iterative
    }

    fn run(
        &self,
        kind: Kind,
        _params: &KernelParams,
        x: &mut TileMut<'_, S::Elem>,
        u: Option<TileRef<'_, S::Elem>>,
        v: Option<TileRef<'_, S::Elem>>,
        w: Option<TileRef<'_, S::Elem>>,
    ) {
        // Resolve the solver's raw operands into the iterative
        // kernel's per-kind aliasing pattern.
        let (ku, kv, kw) = match kind {
            Kind::A => (None, None, None),
            Kind::B => (w, None, w),
            Kind::C => (None, w, w),
            Kind::D => (u, v, w),
        };
        block_kernel::<S>(kind, x, ku, kv, kw);
    }
}

/// The parallel r-way recursive divide-&-conquer kernels (Fig. 4).
struct RecursiveBackend;

impl<S: DpProblem> KernelBackend<S> for RecursiveBackend {
    fn name(&self) -> &'static str {
        RECURSIVE
    }

    fn fanout_parametric(&self) -> bool {
        true
    }

    fn thread_model(&self) -> ThreadModel {
        ThreadModel::PooledTeam
    }

    fn kernel_type(&self, params: &KernelParams) -> cluster_model::KernelType {
        cluster_model::KernelType::Recursive {
            r_shared: params.r_shared,
            threads: params.threads,
        }
    }

    fn run(
        &self,
        kind: Kind,
        params: &KernelParams,
        x: &mut TileMut<'_, S::Elem>,
        u: Option<TileRef<'_, S::Elem>>,
        v: Option<TileRef<'_, S::Elem>>,
        w: Option<TileRef<'_, S::Elem>>,
    ) {
        let pool = omp_pool(params.threads);
        let cfg = RecConfig::new(params.r_shared, params.base);
        rec_kernel::<S>(&pool, &cfg, kind, x.reborrow(), u, v, w);
    }
}

/// The cache-blocked micro-tiled iterative kernel (see
/// [`gep_kernels::blocked`]): D kernels run in cache-sized `i×j` tiles
/// with register-blocked min-plus/max-min inner loops.
struct BlockedBackend;

impl<S: DpProblem> KernelBackend<S> for BlockedBackend {
    fn name(&self) -> &'static str {
        BLOCKED
    }

    fn kernel_type(&self, _params: &KernelParams) -> cluster_model::KernelType {
        // Same loop count and asymptotic cache profile class as the
        // iterative baseline; the cost model's iterative tiers apply.
        cluster_model::KernelType::Iterative
    }

    fn run(
        &self,
        kind: Kind,
        _params: &KernelParams,
        x: &mut TileMut<'_, S::Elem>,
        u: Option<TileRef<'_, S::Elem>>,
        v: Option<TileRef<'_, S::Elem>>,
        w: Option<TileRef<'_, S::Elem>>,
    ) {
        let (ku, kv, kw) = match kind {
            Kind::A => (None, None, None),
            Kind::B => (w, None, w),
            Kind::C => (None, w, w),
            Kind::D => (u, v, w),
        };
        blocked_kernel::<S>(kind, x, ku, kv, kw);
    }
}

/// The cost-accounting backend virtual runs flow through: it only ever
/// `simulate`s. Selecting it for a real (numeric) solve is a
/// configuration error, reported loudly instead of silently skipping
/// updates.
struct SimulateBackend;

impl<S: DpProblem> KernelBackend<S> for SimulateBackend {
    fn name(&self) -> &'static str {
        SIMULATE
    }

    fn kernel_type(&self, _params: &KernelParams) -> cluster_model::KernelType {
        cluster_model::KernelType::Iterative
    }

    fn run(
        &self,
        _kind: Kind,
        _params: &KernelParams,
        _x: &mut TileMut<'_, S::Elem>,
        _u: Option<TileRef<'_, S::Elem>>,
        _v: Option<TileRef<'_, S::Elem>>,
        _w: Option<TileRef<'_, S::Elem>>,
    ) {
        panic!("the `simulate` backend only cost-accounts virtual blocks; use DpConfig::virtual_mode or pick a compute backend");
    }
}

/// The CSR relaxation-sweep backend — the first sparse-representation
/// citizen of the registry. It serves `TileRepr::SparseCsr` only:
/// dense resolution never reaches it (`supports_repr` rejects dense),
/// and its `run` hook panics loudly if somehow handed a dense tile.
/// Priced as [`cluster_model::KernelType::SparseSweep`], whose work
/// term is `sources · nnz` — the representation-aware cost the
/// crossover study leans on.
struct SweepBackend;

impl<S: DpProblem> KernelBackend<S> for SweepBackend {
    fn name(&self) -> &'static str {
        SWEEP
    }

    fn supports_repr(&self, repr: TileRepr) -> bool {
        repr == TileRepr::SparseCsr
    }

    fn kernel_type(&self, _params: &KernelParams) -> cluster_model::KernelType {
        cluster_model::KernelType::SparseSweep
    }

    fn run(
        &self,
        _kind: Kind,
        _params: &KernelParams,
        _x: &mut TileMut<'_, S::Elem>,
        _u: Option<TileRef<'_, S::Elem>>,
        _v: Option<TileRef<'_, S::Elem>>,
        _w: Option<TileRef<'_, S::Elem>>,
    ) {
        panic!("the `sweep` backend executes CSR relaxation sweeps, not dense block kernels");
    }

    fn sweep(
        &self,
        edges: &Csr<S::Elem>,
        dist: &Matrix<S::Elem>,
        skip: S::Elem,
        cand: &mut Matrix<S::Elem>,
    ) {
        sweep_gep::<S>(edges, dist, skip, cand);
    }
}

/// Named kernel backends in fixed registration order.
///
/// Order is part of the determinism contract: `names()` reports it,
/// and [`BackendRegistry::resolve`] depends only on it plus the spec's
/// own chain — never on hashing, time, or load.
pub struct BackendRegistry<S: DpProblem> {
    entries: Vec<Arc<dyn KernelBackend<S>>>,
}

impl<S: DpProblem> BackendRegistry<S> {
    /// Empty registry.
    pub fn new() -> Self {
        BackendRegistry {
            entries: Vec::new(),
        }
    }

    /// The built-in backends: `iterative`, `recursive`, `blocked`,
    /// `simulate`, `sweep` — in that fixed order.
    pub fn builtin() -> Self {
        let mut r = BackendRegistry::new();
        r.register(Arc::new(IterativeBackend));
        r.register(Arc::new(RecursiveBackend));
        r.register(Arc::new(BlockedBackend));
        r.register(Arc::new(SimulateBackend));
        r.register(Arc::new(SweepBackend));
        r
    }

    /// Register a backend. A backend re-registering an existing name
    /// replaces it *in place* (registration order is preserved);
    /// otherwise it appends.
    pub fn register(&mut self, backend: Arc<dyn KernelBackend<S>>) {
        let name = backend.name();
        if let Some(slot) = self.entries.iter_mut().find(|b| b.name() == name) {
            *slot = backend;
        } else {
            self.entries.push(backend);
        }
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|b| b.name()).collect()
    }

    /// Look up a backend by name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn KernelBackend<S>>> {
        self.entries.iter().find(|b| b.name() == name).cloned()
    }

    /// All entries, in registration order.
    pub fn backends(&self) -> &[Arc<dyn KernelBackend<S>>] {
        &self.entries
    }

    /// Resolve a spec to a backend for **dense** tiles — the
    /// historical entry point, byte-identical to its pre-sparse
    /// behavior (every pre-sparse backend supports dense).
    pub fn resolve(&self, spec: &KernelSpec) -> Result<Arc<dyn KernelBackend<S>>, ConfigError> {
        self.resolve_for(spec, TileRepr::Dense)
    }

    /// Resolve a spec to a backend for tiles of the given
    /// representation: walk `[spec.backend] + fallbacks` in order,
    /// skip names that are unregistered, report `available() ==
    /// false`, or reject `repr`, return the first hit. Deterministic
    /// by construction.
    pub fn resolve_for(
        &self,
        spec: &KernelSpec,
        repr: TileRepr,
    ) -> Result<Arc<dyn KernelBackend<S>>, ConfigError> {
        let chain =
            std::iter::once(spec.backend.as_str()).chain(spec.fallbacks.iter().map(String::as_str));
        for name in chain {
            if let Some(b) = self.get(name) {
                if b.available() && b.supports_repr(repr) {
                    return Ok(b);
                }
            }
        }
        Err(ConfigError::NoUsableBackend {
            requested: std::iter::once(spec.backend.clone())
                .chain(spec.fallbacks.iter().cloned())
                .collect(),
            registered: self.names().iter().map(|s| s.to_string()).collect(),
        })
    }
}

impl<S: DpProblem> Default for BackendRegistry<S> {
    fn default() -> Self {
        BackendRegistry::builtin()
    }
}

/// Process-wide registries, one per problem type (generic statics do
/// not exist, so the map is keyed by `TypeId` and downcast on access).
static REGISTRIES: Mutex<Option<HashMap<TypeId, Arc<dyn Any + Send + Sync>>>> = Mutex::new(None);

/// The process-wide registry for problem type `S`, initialized with
/// the built-in backends on first access.
pub fn registry<S: DpProblem>() -> Arc<BackendRegistry<S>> {
    let mut guard = REGISTRIES.lock();
    let map = guard.get_or_insert_with(HashMap::new);
    let entry = map
        .entry(TypeId::of::<S>())
        .or_insert_with(|| Arc::new(BackendRegistry::<S>::builtin()) as Arc<dyn Any + Send + Sync>);
    Arc::clone(entry)
        .downcast::<BackendRegistry<S>>()
        .expect("registry entry is keyed by its own TypeId")
}

/// Register (or replace) a backend in the process-wide registry for
/// problem type `S`. Replacement is copy-on-write: in-flight solves
/// keep the registry snapshot they resolved against.
pub fn register_backend<S: DpProblem>(backend: Arc<dyn KernelBackend<S>>) {
    let current = registry::<S>();
    let mut next = BackendRegistry::<S>::new();
    for b in current.backends() {
        next.register(Arc::clone(b));
    }
    next.register(backend);
    let mut guard = REGISTRIES.lock();
    let map = guard.get_or_insert_with(HashMap::new);
    map.insert(
        TypeId::of::<S>(),
        Arc::new(next) as Arc<dyn Any + Send + Sync>,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use gep_kernels::Tropical;

    /// A backend that is registered but reports itself unavailable —
    /// the GPU-not-present stand-in for fallback tests.
    struct Unavailable;

    impl<S: DpProblem> KernelBackend<S> for Unavailable {
        fn name(&self) -> &'static str {
            "gpu-test"
        }

        fn available(&self) -> bool {
            false
        }

        fn kernel_type(&self, _params: &KernelParams) -> cluster_model::KernelType {
            cluster_model::KernelType::Iterative
        }

        fn run(
            &self,
            _kind: Kind,
            _params: &KernelParams,
            _x: &mut TileMut<'_, S::Elem>,
            _u: Option<TileRef<'_, S::Elem>>,
            _v: Option<TileRef<'_, S::Elem>>,
            _w: Option<TileRef<'_, S::Elem>>,
        ) {
            unreachable!("never resolved")
        }
    }

    #[test]
    fn builtin_registration_order_is_fixed() {
        let r = BackendRegistry::<Tropical>::builtin();
        assert_eq!(
            r.names(),
            vec![ITERATIVE, RECURSIVE, BLOCKED, SIMULATE, SWEEP],
            "registration order is the determinism contract"
        );
    }

    #[test]
    fn resolve_walks_fallback_chain_deterministically() {
        let mut r = BackendRegistry::<Tropical>::builtin();
        r.register(Arc::new(Unavailable));
        // Primary unavailable → first fallback unregistered → second
        // fallback wins. Same input, same answer, every time.
        let spec = KernelSpec::named("gpu-test")
            .with_fallback("no-such-backend")
            .with_fallback(BLOCKED);
        for _ in 0..3 {
            assert_eq!(r.resolve(&spec).unwrap().name(), BLOCKED);
        }
    }

    #[test]
    fn resolve_exhausted_chain_reports_typed_error() {
        let r = BackendRegistry::<Tropical>::builtin();
        let spec = KernelSpec::named("missing").with_fallback("also-missing");
        match r.resolve(&spec) {
            Err(ConfigError::NoUsableBackend {
                requested,
                registered,
            }) => {
                assert_eq!(requested, vec!["missing", "also-missing"]);
                assert_eq!(
                    registered,
                    vec![ITERATIVE, RECURSIVE, BLOCKED, SIMULATE, SWEEP]
                );
            }
            Err(other) => panic!("expected NoUsableBackend, got {other:?}"),
            Ok(b) => panic!("expected NoUsableBackend, resolved {}", b.name()),
        }
    }

    #[test]
    fn reregistration_replaces_in_place() {
        let mut r = BackendRegistry::<Tropical>::builtin();
        r.register(Arc::new(IterativeBackend));
        assert_eq!(
            r.names(),
            vec![ITERATIVE, RECURSIVE, BLOCKED, SIMULATE, SWEEP]
        );
    }

    #[test]
    fn sparse_resolution_is_repr_gated_both_ways() {
        let r = BackendRegistry::<Tropical>::builtin();
        // A dense spec never resolves to the sweep backend, even named
        // directly — it falls through to its dense fallback.
        let spec = KernelSpec::named(SWEEP).with_fallback(ITERATIVE);
        assert_eq!(r.resolve(&spec).unwrap().name(), ITERATIVE);
        // Sparse resolution skips every dense backend and lands on
        // sweep, whatever the chain order.
        let chain = KernelSpec::iterative()
            .with_fallback(BLOCKED)
            .with_fallback(SWEEP);
        assert_eq!(
            r.resolve_for(&chain, TileRepr::SparseCsr).unwrap().name(),
            SWEEP
        );
        // A sparse tile with a dense-only chain is a typed error, not
        // a deep-in-kernel panic.
        assert!(matches!(
            r.resolve_for(&KernelSpec::iterative(), TileRepr::SparseCsr),
            Err(ConfigError::NoUsableBackend { .. })
        ));
    }

    #[test]
    fn sweep_backend_relaxes_through_the_problem_update() {
        let r = BackendRegistry::<Tropical>::builtin();
        let b = r.get(SWEEP).unwrap();
        assert!(b.supports_repr(TileRepr::SparseCsr));
        assert!(!b.supports_repr(TileRepr::Dense));
        assert_eq!(
            b.kernel_type(&KernelParams::default()),
            cluster_model::KernelType::SparseSweep
        );
        let inf = f64::INFINITY;
        // 0 →(2) 1, 1 →(3) 2 over 3 vertices, single source at 0.
        let edges = Csr::from_dense(
            &Matrix::from_vec(3, 3, vec![inf, 2.0, inf, inf, inf, 3.0, inf, inf, inf]),
            inf,
        );
        let dist = Matrix::from_vec(1, 3, vec![0.0, 2.0, inf]);
        let mut cand = Matrix::filled(1, 3, inf);
        b.sweep(&edges, &dist, inf, &mut cand);
        assert_eq!(cand.get(0, 1), 2.0);
        assert_eq!(cand.get(0, 2), 5.0);
        assert_eq!(cand.get(0, 0), inf);
    }

    #[test]
    fn global_registry_is_per_problem_and_extendable() {
        let before = registry::<Tropical>().names().len();
        register_backend::<Tropical>(Arc::new(Unavailable));
        let r = registry::<Tropical>();
        assert!(r.names().contains(&"gpu-test"));
        assert!(r.names().len() >= before);
        // Unavailable: spec naming it falls back deterministically.
        let spec = KernelSpec::named("gpu-test").with_fallback(ITERATIVE);
        assert_eq!(r.resolve(&spec).unwrap().name(), ITERATIVE);
    }

    #[test]
    fn spec_labels_and_constructors() {
        assert_eq!(KernelSpec::iterative().label(), "iter");
        assert_eq!(KernelSpec::recursive(4, 64, 8).label(), "rec4x8t");
        assert_eq!(KernelSpec::named(BLOCKED).label(), "blocked");
        let s = KernelSpec::iterative().with_fallback(BLOCKED);
        assert_eq!(s.fallbacks, vec![BLOCKED.to_string()]);
    }
}
