//! The Collect-Broadcast (CB) implementation — Listing 2 of the paper.
//!
//! Instead of shuffling block copies through wide dependencies, each
//! iteration collects the updated diagonal (then the updated panels) to
//! the driver and redistributes them to executors through shared
//! persistent storage (broadcast). Trading shuffle traffic for driver
//! serialization and auxiliary storage is exactly the paper's stated
//! trade; the cost model prices the driver phases from the
//! `log_driver_traffic` records emitted here.

use std::collections::HashMap;
use std::sync::Arc;

use gep_kernels::gep::Kind;
use sparklet::{JobError, Partitioner, Rdd, SparkContext, Storable, StorageLevel};

use crate::backend::KernelSpec;
use crate::block::Block;
use crate::filters;
use crate::kernels::apply_kernel;
use crate::problem::DpProblem;

type K = (usize, usize);

/// Storage level the solver uses for CB's per-iteration checkpoint
/// when the config does not pin one. CB already leans on shared
/// storage for its broadcasts, so letting the cached table spill to
/// the disk tier matches the strategy's character (and keeps
/// undersized-memory runs alive, like IM's default).
pub fn default_storage_level() -> StorageLevel {
    StorageLevel::MemoryAndDisk
}

/// One CB iteration: consumes the DP table RDD for phase `k`, returns
/// the updated (not yet checkpointed) table RDD.
///
/// The D-block update and the A/B/C rebuild are independent branches
/// over the cached table, so their materializations are submitted as
/// concurrent jobs ([`Rdd::persist_async`] /
/// [`Rdd::checkpoint_async_with_level`]) at `level`; `keep_lineage`
/// selects persist (recompute-backed) over checkpoint (lineage-cutting).
#[allow(clippy::too_many_arguments)]
pub fn step<S: DpProblem>(
    sc: &SparkContext,
    dp: &Rdd<K, Block<S::Elem>>,
    k: usize,
    _g: usize,
    b: usize,
    kernel: KernelSpec,
    partitions: usize,
    partitioner: Arc<dyn Partitioner<K>>,
    level: StorageLevel,
    keep_lineage: bool,
) -> Result<Rdd<K, Block<S::Elem>>, JobError> {
    let kc = kernel.clone();
    let kc_bc = kernel.clone();
    let kc_d = kernel;

    // ---- Stage 1: A kernel, collect to driver, broadcast ------------
    let a_up = dp
        .filter(move |key, _| filters::filter_a(*key, k))
        .map_partitions(true, move |_p, items, tc| {
            items
                .into_iter()
                .map(|(key, mut blk)| {
                    apply_kernel::<S>(Kind::A, key, k, &mut blk, None, None, None, &kc, tc);
                    (key, blk)
                })
                .collect()
        });
    let a_items = a_up.collect()?;
    debug_assert_eq!(a_items.len(), 1, "exactly one diagonal block");
    let bc_a = sc.broadcast(&a_items);
    sc.log_driver_traffic(
        &format!("cb.iter{k}.bcast-a"),
        0,
        a_items.approx_bytes() as u64,
    );

    // ---- Stage 2: B and C kernels with the broadcast diagonal -------
    let bc_a_for_bc = bc_a.clone();
    let bc_up = dp
        .filter(move |key, _| {
            filters::filter_b::<S>(*key, k, b) || filters::filter_c::<S>(*key, k, b)
        })
        .map_partitions(true, move |_p, items, tc| {
            let a = bc_a_for_bc.value(tc).expect("diagonal broadcast available");
            let diag = &a[0].1;
            items
                .into_iter()
                .map(|(key, mut blk)| {
                    let kind = if key.0 == k { Kind::B } else { Kind::C };
                    apply_kernel::<S>(kind, key, k, &mut blk, None, None, Some(diag), &kc_bc, tc);
                    (key, blk)
                })
                .collect()
        });
    let panel_items = bc_up.collect()?;
    let bc_panels = sc.broadcast(&panel_items);
    sc.log_driver_traffic(
        &format!("cb.iter{k}.bcast-panels"),
        0,
        panel_items.approx_bytes() as u64,
    );

    // ---- Stage 3: D kernels with broadcast operands ------------------
    let bc_a_for_d = bc_a.clone();
    let bc_panels_for_d = bc_panels.clone();
    let d_up = dp
        .filter(move |key, _| filters::filter_d::<S>(*key, k, b))
        .map_partitions(true, move |_p, items, tc| {
            if items.is_empty() {
                return items;
            }
            let a = bc_a_for_d.value(tc).expect("diagonal broadcast available");
            let panels = bc_panels_for_d
                .value(tc)
                .expect("panel broadcast available");
            let diag = &a[0].1;
            // Index the broadcast panels once per partition: every D
            // block looks up two operands, and a linear scan per
            // lookup is quadratic in the panel count.
            let by_key: HashMap<K, usize> = panels
                .iter()
                .enumerate()
                .map(|(idx, (key, _))| (*key, idx))
                .collect();
            items
                .into_iter()
                .map(|((i, j), mut blk)| {
                    let u = &panels[*by_key.get(&(i, k)).expect("column-panel operand")].1;
                    let v = &panels[*by_key.get(&(k, j)).expect("row-panel operand")].1;
                    apply_kernel::<S>(
                        Kind::D,
                        (i, j),
                        k,
                        &mut blk,
                        Some(u),
                        Some(v),
                        Some(diag),
                        &kc_d,
                        tc,
                    );
                    ((i, j), blk)
                })
                .collect()
        });

    // ---- Rebuild A/B/C blocks from the broadcast (executors read the
    //      shared files rather than recomputing the kernels) ----------
    let bc_a_for_abc = bc_a.clone();
    let bc_panels_for_abc = bc_panels.clone();
    let updated_abc = dp
        .filter(move |key, _| {
            filters::filter_a(*key, k)
                || filters::filter_b::<S>(*key, k, b)
                || filters::filter_c::<S>(*key, k, b)
        })
        .map_partitions(true, move |_p, items, tc| {
            if items.is_empty() {
                return items;
            }
            let a = bc_a_for_abc
                .value(tc)
                .expect("diagonal broadcast available");
            let panels = bc_panels_for_abc
                .value(tc)
                .expect("panel broadcast available");
            let by_key: HashMap<K, usize> = panels
                .iter()
                .enumerate()
                .map(|(idx, (key, _))| (*key, idx))
                .collect();
            items
                .into_iter()
                .map(|(key, _old)| {
                    let fresh = if filters::filter_a(key, k) {
                        a[0].1.clone()
                    } else {
                        panels[*by_key.get(&key).expect("updated panel present")]
                            .1
                            .clone()
                    };
                    (key, fresh)
                })
                .collect()
        });

    // ---- Materialize the two independent branches concurrently ------
    // D and the A/B/C rebuild read only the cached table and the
    // broadcasts — neither depends on the other — so both jobs are
    // submitted at once and the driver runs their stages side by side.
    let (d_handle, abc_handle) = if keep_lineage {
        (d_up.persist_async(level), updated_abc.persist_async(level))
    } else {
        (
            d_up.checkpoint_async_with_level(level),
            updated_abc.checkpoint_async_with_level(level),
        )
    };
    let d_up = d_handle.wait()?;
    let updated_abc = abc_handle.wait()?;

    // ---- Wrap up: union everything, one repartition per iteration ---
    let untouched = dp.filter(move |key, _| !filters::touched::<S>(*key, k, b));
    Ok(untouched
        .union(&updated_abc)
        .union(&d_up)
        .partition_by(partitions, partitioner))
}
