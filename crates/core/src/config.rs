//! The tunable parameter surface of a distributed GEP execution —
//! exactly the knobs Section V of the paper sweeps.

use serde::{Deserialize, Serialize};
use sparklet::StorageLevel;

use crate::backend::{ConfigError, KernelParams, KernelSpec, RECURSIVE};

/// Distribution strategy (Section IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Listing 1: wide shuffles (`combineByKey`) move block copies.
    InMemory,
    /// Listing 2: collect to the driver, redistribute via shared
    /// storage broadcast.
    CollectBroadcast,
}

/// One experiment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DpConfig {
    /// Problem size: the DP table is `n×n` (padded up to a multiple of
    /// `block` if needed).
    pub n: usize,
    /// Block side `b`; the Spark-level decomposition parameter is then
    /// `r = ⌈n/b⌉` (the paper's top-level `r`).
    pub block: usize,
    /// Kernel backend selector + parameters for executor tasks,
    /// resolved against the [`crate::backend::BackendRegistry`].
    pub kernel: KernelSpec,
    /// Distribution strategy (IM or CB).
    pub strategy: Strategy,
    /// RDD partition count (`None` → the context default, which the
    /// paper sets to 2× total cores).
    pub partitions: Option<usize>,
    /// Floor for adaptive partition coalescing (`None` → the executor
    /// count). Only consulted when the context runs with
    /// `SparkConf::with_adaptive_execution`.
    pub min_partitions: Option<usize>,
    /// Use the locality-aware grid partitioner instead of Spark's
    /// default hash partitioner (the paper's future-work extension).
    pub grid_partitioner: bool,
    /// Run with virtual blocks (cost accounting only, no numeric data).
    pub virtual_data: bool,
    /// Storage level for the per-iteration materialization (`None` →
    /// the strategy's default, currently `MemoryAndDisk` for both).
    pub storage_level: Option<StorageLevel>,
    /// Materialize iterations with `persist` (lineage retained, blocks
    /// droppable and recomputable under memory pressure) instead of
    /// `checkpoint` (lineage cut, blocks pinned or spilled).
    pub recompute_on_evict: bool,
}

impl DpConfig {
    /// Config for an `n×n` table in `block×block` blocks (iterative
    /// IM defaults; use the builders to change).
    pub fn new(n: usize, block: usize) -> Self {
        assert!(n >= 1 && block >= 1);
        DpConfig {
            n,
            block,
            kernel: KernelSpec::iterative(),
            strategy: Strategy::InMemory,
            partitions: None,
            min_partitions: None,
            grid_partitioner: false,
            virtual_data: false,
            storage_level: None,
            recompute_on_evict: false,
        }
    }

    /// Grid side `g = ⌈n/block⌉` (after virtual padding).
    pub fn grid(&self) -> usize {
        self.n.div_ceil(self.block)
    }

    /// Padded table side.
    pub fn padded_n(&self) -> usize {
        self.grid() * self.block
    }

    /// Set the executor kernel from a [`KernelSpec`] (or anything that
    /// converts into one). Panics on invalid parameters — use
    /// [`DpConfig::try_with_kernel`] for the typed error.
    pub fn with_kernel(self, k: impl Into<KernelSpec>) -> Self {
        self.try_with_kernel(k).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Set the executor kernel, reporting invalid parameters as a
    /// typed [`ConfigError`] instead of panicking.
    pub fn try_with_kernel(mut self, k: impl Into<KernelSpec>) -> Result<Self, ConfigError> {
        self.kernel = k.into();
        self.validate()?;
        Ok(self)
    }

    /// Select the kernel backend by registry name, keeping the current
    /// parameters and fallback chain.
    pub fn with_backend(mut self, name: &str) -> Self {
        self.kernel.backend = name.to_string();
        self.validate().unwrap_or_else(|e| panic!("{e}"));
        self
    }

    /// Validate the kernel parameterization against this config
    /// (config-time checks; backend-name resolution happens per
    /// problem type at solve time).
    pub fn validate(&self) -> Result<(), ConfigError> {
        let KernelParams {
            r_shared,
            base,
            threads,
        } = self.kernel.params;
        if r_shared < 2 {
            return Err(ConfigError::DegenerateFanout { r_shared });
        }
        if base < 1 {
            return Err(ConfigError::ZeroParam("base"));
        }
        if threads < 1 {
            return Err(ConfigError::ZeroParam("threads"));
        }
        // A fan-out wider than the block could never split even once;
        // only meaningful for the fan-out-parametric backend.
        if self.kernel.backend == RECURSIVE && r_shared > self.block {
            return Err(ConfigError::FanoutExceedsBlock {
                r_shared,
                block: self.block,
            });
        }
        Ok(())
    }

    /// Set the distribution strategy.
    pub fn with_strategy(mut self, s: Strategy) -> Self {
        self.strategy = s;
        self
    }

    /// Set the RDD partition count.
    pub fn with_partitions(mut self, p: usize) -> Self {
        assert!(p >= 1);
        self.partitions = Some(p);
        self
    }

    /// Floor adaptive partition coalescing at `p` partitions.
    pub fn with_min_partitions(mut self, p: usize) -> Self {
        assert!(p >= 1);
        self.min_partitions = Some(p);
        self
    }

    /// Toggle the locality-aware grid partitioner.
    pub fn with_grid_partitioner(mut self, on: bool) -> Self {
        self.grid_partitioner = on;
        self
    }

    /// Switch to virtual (cost-accounting) blocks.
    pub fn virtual_mode(mut self) -> Self {
        self.virtual_data = true;
        self
    }

    /// Pin the storage level for per-iteration materializations.
    pub fn with_storage_level(mut self, level: StorageLevel) -> Self {
        self.storage_level = Some(level);
        self
    }

    /// Toggle lineage-retaining materialization (`persist` instead of
    /// `checkpoint`), allowing eviction + recomputation under pressure.
    pub fn with_recompute_on_evict(mut self, on: bool) -> Self {
        self.recompute_on_evict = on;
        self
    }

    /// Short human-readable label, e.g. `IM/rec4x8t/b1024`.
    pub fn label(&self) -> String {
        let strat = match self.strategy {
            Strategy::InMemory => "IM",
            Strategy::CollectBroadcast => "CB",
        };
        format!("{strat}/{}/b{}", self.kernel.label(), self.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BLOCKED;

    #[test]
    fn grid_and_padding() {
        let c = DpConfig::new(32, 8);
        assert_eq!(c.grid(), 4);
        assert_eq!(c.padded_n(), 32);
        let c = DpConfig::new(33, 8);
        assert_eq!(c.grid(), 5);
        assert_eq!(c.padded_n(), 40);
    }

    #[test]
    fn labels_are_stable() {
        let c = DpConfig::new(1024, 256)
            .with_strategy(Strategy::CollectBroadcast)
            .with_kernel(KernelSpec::recursive(4, 64, 8));
        assert_eq!(c.label(), "CB/rec4x8t/b256");
        assert_eq!(DpConfig::new(8, 4).label(), "IM/iter/b4");
        assert_eq!(
            DpConfig::new(8, 4).with_backend(BLOCKED).label(),
            "IM/blocked/b4"
        );
    }

    #[test]
    #[should_panic(expected = "r_shared must be")]
    fn rejects_degenerate_recursion() {
        let _ = DpConfig::new(8, 4).with_kernel(KernelSpec::recursive(1, 4, 1));
    }

    #[test]
    fn typed_errors_for_invalid_kernel_params() {
        assert_eq!(
            DpConfig::new(8, 4)
                .try_with_kernel(KernelSpec::recursive(1, 4, 1))
                .unwrap_err(),
            ConfigError::DegenerateFanout { r_shared: 1 }
        );
        assert_eq!(
            DpConfig::new(32, 4)
                .try_with_kernel(KernelSpec::recursive(8, 2, 1))
                .unwrap_err(),
            ConfigError::FanoutExceedsBlock {
                r_shared: 8,
                block: 4
            }
        );
        assert_eq!(
            DpConfig::new(8, 4)
                .try_with_kernel(KernelSpec::recursive(2, 0, 1))
                .unwrap_err(),
            ConfigError::ZeroParam("base")
        );
        assert_eq!(
            DpConfig::new(8, 4)
                .try_with_kernel(KernelSpec::recursive(2, 2, 0))
                .unwrap_err(),
            ConfigError::ZeroParam("threads")
        );
        // The fan-out cap applies to the recursive backend only: the
        // same params under `iterative` or `blocked` are inert.
        assert!(DpConfig::new(32, 4)
            .try_with_kernel(KernelSpec::iterative().with_params(KernelParams {
                r_shared: 8,
                base: 2,
                threads: 1
            }))
            .is_ok());
    }

    #[test]
    fn adaptive_knobs_compose() {
        let c = DpConfig::new(32, 8).with_min_partitions(8);
        assert_eq!(c.min_partitions, Some(8));
        assert_eq!(
            DpConfig::new(32, 8).min_partitions,
            None,
            "floor defaults to the executor count at plan time"
        );
    }

    #[test]
    fn storage_knobs_compose() {
        let c = DpConfig::new(32, 8)
            .with_storage_level(StorageLevel::DiskOnly)
            .with_recompute_on_evict(true);
        assert_eq!(c.storage_level, Some(StorageLevel::DiskOnly));
        assert!(c.recompute_on_evict);
        let d = DpConfig::new(32, 8);
        assert_eq!(d.storage_level, None);
        assert!(!d.recompute_on_evict);
    }

    #[test]
    fn with_kernel_takes_specs_directly() {
        // Post-shim: with_kernel's impl Into<KernelSpec> surface takes
        // the spec constructors that replaced KernelChoice.
        let c = DpConfig::new(32, 8).with_kernel(KernelSpec::recursive(4, 4, 2));
        assert_eq!(c.kernel, KernelSpec::recursive(4, 4, 2));
        let c = DpConfig::new(32, 8).with_kernel(KernelSpec::iterative());
        assert_eq!(c.kernel, KernelSpec::iterative());
    }
}
