//! DP job descriptors for the multi-tenant job service — the dp-core
//! side of `sparklet::service`'s [`JobRunner`] binding.
//!
//! A [`DpJobRequest`] is a self-contained, byte-encodable description
//! of one DP query: problem kind, canonical input, and the execution
//! knobs a tenant may override (block size). [`DpJobRunner`] implements
//! the service's [`JobRunner`] trait over these descriptors:
//!
//! * **admission pricing** via the cluster model's coarse
//!   [`CostModel::admission_seconds`] (update volume over all task
//!   slots + one NIC pass of the input bytes);
//! * **lineage keying** that digests only the *logical* computation —
//!   problem kind + canonical input. Execution knobs (block size, the
//!   sparse path's partition count) are excluded because every engine
//!   path is validated bitwise-identical, and the *dense* APSP source
//!   set is excluded because its cacheable result is the full table:
//!   "same graph, different sources" is one cache entry with
//!   per-request row projection. The *sparse* APSP source set is
//!   included — the sweep path computes only the requested rows;
//! * **execution** through the ordinary dp-core entry points
//!   ([`crate::solver::solve`], [`crate::beyond::solve_alignment`],
//!   [`crate::beyond::solve_parenthesis`],
//!   [`crate::linsys::solve_linear_system`]).

use bytes::Bytes;
use cluster_model::{CostModel, KernelInvocation, KernelType};
use gep_kernels::alignment::AlignScore;
use gep_kernels::parenthesis::ParenWeight;
use gep_kernels::sparse::Csr;
use gep_kernels::{Matrix, Tropical};
use sparklet::service::JobRunner;
use sparklet::{JobError, SparkContext};

use crate::beyond::{solve_alignment, solve_parenthesis};
use crate::config::DpConfig;
use crate::linsys::solve_linear_system;
use crate::solver::solve;
use crate::sssp::solve_sparse_apsp;

/// One DP query as submitted to the job service.
#[derive(Debug, Clone, PartialEq)]
pub enum DpJobRequest {
    /// All-pairs shortest paths (Floyd–Warshall over the tropical
    /// semiring) on an `n×n` distance matrix, optionally projecting
    /// the response down to a set of source rows.
    Apsp {
        /// Dense distance matrix (`f64::INFINITY` = no edge).
        dist: Matrix<f64>,
        /// Block side for the distributed decomposition.
        block: usize,
        /// Rows to return (`None` → the full table). Not part of the
        /// lineage key: the full table is computed and cached either
        /// way, and each request projects its slice.
        sources: Option<Vec<u32>>,
    },
    /// Sequence alignment (LCS / Needleman–Wunsch); returns the full
    /// `(n+1)×(m+1)` score table.
    Alignment {
        /// First sequence.
        a: Vec<u8>,
        /// Second sequence.
        b: Vec<u8>,
        /// Scoring scheme (part of the lineage key — it changes the
        /// result).
        score: AlignScore,
        /// Block side for the wavefront decomposition.
        block: usize,
    },
    /// Optimal parenthesization; returns the full cost table.
    Parenthesis {
        /// Weight function.
        weight: ParenWeight,
        /// Block side.
        block: usize,
    },
    /// Linear system `A·x = b` via distributed Gaussian elimination;
    /// returns the solution vector.
    LinearSystem {
        /// Square coefficient matrix.
        a: Matrix<f64>,
        /// Right-hand side.
        rhs: Vec<f64>,
        /// Block side.
        block: usize,
    },
    /// Shortest paths on a *sparse* graph via the partitioned
    /// multi-source sweep path ([`crate::sssp::solve_sparse_apsp`]);
    /// returns the `sources.len() × n` distance matrix. Unlike dense
    /// [`DpJobRequest::Apsp`], only the requested rows are computed, so
    /// the source set is part of the result (and of the lineage key).
    SparseApsp {
        /// Sparse adjacency, canonical CSR (`fill` = no edge,
        /// conventionally `+∞`).
        edges: Csr<f64>,
        /// Source vertices, in result-row order.
        sources: Vec<u32>,
        /// Vertex-range partition count (execution knob: results are
        /// partition-invariant, so it is *not* in the lineage key).
        parts: usize,
    },
}

// --- body codec -------------------------------------------------------

const TAG_APSP: u8 = 1;
const TAG_ALIGN: u8 = 2;
const TAG_PAREN: u8 = 3;
const TAG_LINSYS: u8 = 4;
const TAG_SPARSE_APSP: u8 = 5;

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_matrix_f64(out: &mut Vec<u8>, m: &Matrix<f64>) {
    put_u64(out, m.rows() as u64);
    put_u64(out, m.cols() as u64);
    for &v in m.as_slice() {
        put_f64(out, v);
    }
}

struct Rd<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Rd<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Rd { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], JobError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| JobError::Codec("truncated job body".into()))?;
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, JobError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, JobError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn len(&mut self) -> Result<usize, JobError> {
        let v = self.u64()?;
        // A length can never exceed what's left in the buffer; checking
        // here keeps later allocations bounded by the body size.
        if v as usize > self.buf.len() - self.at {
            return Err(JobError::Codec(format!("implausible length {v}")));
        }
        Ok(v as usize)
    }

    /// An element count whose elements are `elem_bytes` each: the
    /// remaining buffer must be able to hold them all, which bounds
    /// every later allocation by the body size.
    fn counted(&mut self, elem_bytes: usize) -> Result<usize, JobError> {
        let v = self.u64()? as usize;
        if v.checked_mul(elem_bytes)
            .is_none_or(|b| b > self.buf.len() - self.at)
        {
            return Err(JobError::Codec(format!("implausible count {v}")));
        }
        Ok(v)
    }

    /// An element count whose elements are 8 bytes each.
    fn count8(&mut self) -> Result<usize, JobError> {
        self.counted(8)
    }

    fn u32(&mut self) -> Result<u32, JobError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn f64(&mut self) -> Result<f64, JobError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn i64(&mut self) -> Result<i64, JobError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn matrix_f64(&mut self) -> Result<Matrix<f64>, JobError> {
        let rows = self.u64()? as usize;
        let cols = self.u64()? as usize;
        let cells = rows
            .checked_mul(cols)
            .filter(|&c| {
                c.checked_mul(8)
                    .is_some_and(|b| b <= self.buf.len() - self.at)
            })
            .ok_or_else(|| JobError::Codec("matrix larger than body".into()))?;
        let mut data = Vec::with_capacity(cells);
        for _ in 0..cells {
            data.push(self.f64()?);
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }

    fn done(self) -> Result<(), JobError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(JobError::Codec(format!(
                "{} trailing bytes in job body",
                self.buf.len() - self.at
            )))
        }
    }
}

impl DpJobRequest {
    /// Serialize to the service body encoding.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::new();
        match self {
            DpJobRequest::Apsp {
                dist,
                block,
                sources,
            } => {
                out.push(TAG_APSP);
                put_u64(&mut out, *block as u64);
                match sources {
                    None => out.push(0),
                    Some(s) => {
                        out.push(1);
                        put_u64(&mut out, s.len() as u64);
                        for &r in s {
                            put_u64(&mut out, u64::from(r));
                        }
                    }
                }
                put_matrix_f64(&mut out, dist);
            }
            DpJobRequest::Alignment { a, b, score, block } => {
                out.push(TAG_ALIGN);
                put_u64(&mut out, *block as u64);
                match score {
                    AlignScore::Lcs => out.push(0),
                    AlignScore::NeedlemanWunsch {
                        matched,
                        mismatch,
                        gap,
                    } => {
                        out.push(1);
                        put_u64(&mut out, *matched as u64);
                        put_u64(&mut out, *mismatch as u64);
                        put_u64(&mut out, *gap as u64);
                    }
                }
                put_u64(&mut out, a.len() as u64);
                out.extend_from_slice(a);
                put_u64(&mut out, b.len() as u64);
                out.extend_from_slice(b);
            }
            DpJobRequest::Parenthesis { weight, block } => {
                out.push(TAG_PAREN);
                put_u64(&mut out, *block as u64);
                match weight {
                    ParenWeight::MatrixChain(dims) => {
                        out.push(0);
                        put_u64(&mut out, dims.len() as u64);
                        for &d in dims {
                            put_u64(&mut out, d);
                        }
                    }
                    ParenWeight::Polygon(vs) => {
                        out.push(1);
                        put_u64(&mut out, vs.len() as u64);
                        for &v in vs {
                            put_f64(&mut out, v);
                        }
                    }
                    ParenWeight::Zero => out.push(2),
                }
            }
            DpJobRequest::LinearSystem { a, rhs, block } => {
                out.push(TAG_LINSYS);
                put_u64(&mut out, *block as u64);
                put_u64(&mut out, rhs.len() as u64);
                for &v in rhs {
                    put_f64(&mut out, v);
                }
                put_matrix_f64(&mut out, a);
            }
            DpJobRequest::SparseApsp {
                edges,
                sources,
                parts,
            } => {
                // nnz-exact: the body scales with stored edges, not n².
                out.push(TAG_SPARSE_APSP);
                put_u64(&mut out, *parts as u64);
                put_u64(&mut out, sources.len() as u64);
                for &s in sources {
                    put_u64(&mut out, u64::from(s));
                }
                put_u64(&mut out, edges.rows() as u64);
                put_u64(&mut out, edges.nnz() as u64);
                put_f64(&mut out, edges.fill());
                for &p in edges.row_ptr() {
                    put_u32(&mut out, p);
                }
                for &c in edges.col_idx() {
                    put_u32(&mut out, c);
                }
                for &v in edges.vals() {
                    put_f64(&mut out, v);
                }
            }
        }
        Bytes::from(out)
    }

    /// Shape invariants the solver entry points assert: a decodable
    /// body that violates them must be rejected here, as a typed codec
    /// error on the admission path, not a panic on a worker thread.
    fn validate(&self) -> Result<(), JobError> {
        match self {
            DpJobRequest::Apsp { dist, .. } => {
                if dist.rows() != dist.cols() {
                    return Err(JobError::Codec(format!(
                        "APSP distance matrix must be square, got {}x{}",
                        dist.rows(),
                        dist.cols()
                    )));
                }
                if dist.rows() == 0 {
                    return Err(JobError::Codec("APSP distance matrix is empty".into()));
                }
            }
            DpJobRequest::Alignment { .. } => {}
            DpJobRequest::Parenthesis { weight, .. } => match weight {
                ParenWeight::MatrixChain(dims) if dims.len() < 2 => {
                    return Err(JobError::Codec(format!(
                        "matrix chain needs at least 2 dimensions, got {}",
                        dims.len()
                    )));
                }
                ParenWeight::Polygon(vs) if vs.len() < 3 => {
                    return Err(JobError::Codec(format!(
                        "polygon needs at least 3 vertices, got {}",
                        vs.len()
                    )));
                }
                ParenWeight::Zero => {
                    return Err(JobError::Codec(
                        "Zero parenthesization weight carries no size".into(),
                    ));
                }
                _ => {}
            },
            DpJobRequest::SparseApsp { edges, sources, .. } => {
                // Squareness and CSR canonical form are enforced by the
                // decoder's `Csr::try_new`; what's left are the solver's
                // own preconditions.
                if edges.rows() == 0 {
                    return Err(JobError::Codec("sparse APSP graph is empty".into()));
                }
                if let Some(&s) = sources.iter().find(|&&s| s as usize >= edges.rows()) {
                    return Err(JobError::Codec(format!(
                        "source {s} out of range for n={}",
                        edges.rows()
                    )));
                }
            }
            DpJobRequest::LinearSystem { a, rhs, .. } => {
                if a.rows() != a.cols() {
                    return Err(JobError::Codec(format!(
                        "coefficient matrix must be square, got {}x{}",
                        a.rows(),
                        a.cols()
                    )));
                }
                if a.rows() == 0 {
                    return Err(JobError::Codec("coefficient matrix is empty".into()));
                }
                if rhs.len() != a.rows() {
                    return Err(JobError::Codec(format!(
                        "rhs length {} does not match matrix side {}",
                        rhs.len(),
                        a.rows()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Decode a service body; defensive against truncation,
    /// implausible lengths, and shape-invariant violations (typed
    /// [`JobError::Codec`], never a panic).
    pub fn decode(body: &Bytes) -> Result<Self, JobError> {
        let mut rd = Rd::new(body);
        let req = match rd.u8()? {
            TAG_APSP => {
                let block = rd.u64()? as usize;
                let sources = match rd.u8()? {
                    0 => None,
                    1 => {
                        let n = rd.count8()?;
                        let mut s = Vec::with_capacity(n);
                        for _ in 0..n {
                            s.push(rd.u64()? as u32);
                        }
                        Some(s)
                    }
                    other => {
                        return Err(JobError::Codec(format!("bad sources marker {other}")));
                    }
                };
                let dist = rd.matrix_f64()?;
                DpJobRequest::Apsp {
                    dist,
                    block,
                    sources,
                }
            }
            TAG_ALIGN => {
                let block = rd.u64()? as usize;
                let score = match rd.u8()? {
                    0 => AlignScore::Lcs,
                    1 => AlignScore::NeedlemanWunsch {
                        matched: rd.i64()?,
                        mismatch: rd.i64()?,
                        gap: rd.i64()?,
                    },
                    other => return Err(JobError::Codec(format!("bad score tag {other}"))),
                };
                let la = rd.len()?;
                let a = rd.take(la)?.to_vec();
                let lb = rd.len()?;
                let b = rd.take(lb)?.to_vec();
                DpJobRequest::Alignment { a, b, score, block }
            }
            TAG_PAREN => {
                let block = rd.u64()? as usize;
                let weight = match rd.u8()? {
                    0 => {
                        let n = rd.count8()?;
                        let mut dims = Vec::with_capacity(n);
                        for _ in 0..n {
                            dims.push(rd.u64()?);
                        }
                        ParenWeight::MatrixChain(dims)
                    }
                    1 => {
                        let n = rd.count8()?;
                        let mut vs = Vec::with_capacity(n);
                        for _ in 0..n {
                            vs.push(rd.f64()?);
                        }
                        ParenWeight::Polygon(vs)
                    }
                    2 => ParenWeight::Zero,
                    other => return Err(JobError::Codec(format!("bad weight tag {other}"))),
                };
                DpJobRequest::Parenthesis { weight, block }
            }
            TAG_LINSYS => {
                let block = rd.u64()? as usize;
                let n = rd.count8()?;
                let mut rhs = Vec::with_capacity(n);
                for _ in 0..n {
                    rhs.push(rd.f64()?);
                }
                let a = rd.matrix_f64()?;
                DpJobRequest::LinearSystem { a, rhs, block }
            }
            TAG_SPARSE_APSP => {
                let parts = rd.u64()? as usize;
                let ns = rd.count8()?;
                let mut sources = Vec::with_capacity(ns);
                for _ in 0..ns {
                    sources.push(rd.u64()? as u32);
                }
                let n = rd.u64()? as usize;
                let nnz = rd.counted(4 + 8)?; // col_idx + vals per entry
                let ptr_len = n
                    .checked_add(1)
                    .filter(|&l| l.checked_mul(4).is_some_and(|b| b <= rd.buf.len() - rd.at))
                    .ok_or_else(|| JobError::Codec("implausible vertex count".into()))?;
                let fill = rd.f64()?;
                let mut row_ptr = Vec::with_capacity(ptr_len);
                for _ in 0..ptr_len {
                    row_ptr.push(rd.u32()?);
                }
                let mut col_idx = Vec::with_capacity(nnz);
                for _ in 0..nnz {
                    col_idx.push(rd.u32()?);
                }
                let mut vals = Vec::with_capacity(nnz);
                for _ in 0..nnz {
                    vals.push(rd.f64()?);
                }
                // Canonical-form validation rejects malformed sparse
                // bodies (ragged pointers, out-of-range or unsorted
                // columns) right here on the admission path.
                let edges = Csr::try_new(n, n, fill, row_ptr, col_idx, vals)
                    .map_err(|e| JobError::Codec(format!("sparse APSP body: {e}")))?;
                DpJobRequest::SparseApsp {
                    edges,
                    sources,
                    parts,
                }
            }
            other => return Err(JobError::Codec(format!("unknown job tag {other}"))),
        };
        rd.done()?;
        req.validate()?;
        Ok(req)
    }

    /// Approximate GEP update volume, for admission pricing.
    fn updates(&self) -> f64 {
        match self {
            DpJobRequest::Apsp { dist, .. } => (dist.rows() as f64).powi(3),
            DpJobRequest::Alignment { a, b, .. } => (a.len() as f64 + 1.0) * (b.len() as f64 + 1.0),
            DpJobRequest::Parenthesis { weight, .. } => {
                let n = weight.n() as f64 + 1.0;
                n * n * n / 6.0
            }
            DpJobRequest::LinearSystem { a, .. } => {
                let n = a.rows() as f64 + 1.0;
                n * n * n / 3.0
            }
            // Every sweep round relaxes each source's view of every
            // stored edge, and rounds track the path-length frontier —
            // logarithmic on random graphs, so admission prices
            // sources · nnz · (log₂ n + 1) rather than the dense n³.
            DpJobRequest::SparseApsp { edges, sources, .. } => {
                let rounds = (edges.rows() as f64).log2() + 1.0;
                sources.len() as f64 * edges.nnz() as f64 * rounds
            }
        }
    }

    fn block(&self) -> usize {
        match self {
            DpJobRequest::Apsp { block, .. }
            | DpJobRequest::Alignment { block, .. }
            | DpJobRequest::Parenthesis { block, .. }
            | DpJobRequest::LinearSystem { block, .. } => (*block).max(1),
            // The sweep path's work grain is a partition's row slab.
            DpJobRequest::SparseApsp { edges, parts, .. } => {
                edges.rows().div_ceil((*parts).max(1)).max(1)
            }
        }
    }

    /// Cost-model kernel class the admission estimate prices with.
    fn kernel(&self) -> KernelType {
        match self {
            DpJobRequest::SparseApsp { .. } => KernelType::SparseSweep,
            _ => KernelType::Iterative,
        }
    }

    /// The request's lineage digest: problem kind + canonical input
    /// only. The block size and sparse partition count are execution
    /// knobs (results are engine-path invariant), and the dense APSP
    /// source set is a projection of the cached full table — all
    /// deliberately excluded so equivalent computations share one
    /// cache entry. The sparse APSP source set *is* digested: it
    /// selects which rows get computed at all.
    pub fn lineage_key(&self) -> u128 {
        let mut h = sparklet::LineageHasher::default();
        match self {
            DpJobRequest::Apsp { dist, .. } => {
                h.update(b"apsp");
                h.update(&(dist.rows() as u64).to_le_bytes());
                for &v in dist.as_slice() {
                    h.update(&v.to_bits().to_le_bytes());
                }
            }
            DpJobRequest::Alignment { a, b, score, .. } => {
                h.update(b"align");
                match score {
                    AlignScore::Lcs => {
                        h.update(&[0]);
                    }
                    AlignScore::NeedlemanWunsch {
                        matched,
                        mismatch,
                        gap,
                    } => {
                        h.update(&[1])
                            .update(&matched.to_le_bytes())
                            .update(&mismatch.to_le_bytes())
                            .update(&gap.to_le_bytes());
                    }
                }
                h.update(&(a.len() as u64).to_le_bytes()).update(a);
                h.update(&(b.len() as u64).to_le_bytes()).update(b);
            }
            DpJobRequest::Parenthesis { weight, .. } => {
                h.update(b"paren");
                match weight {
                    ParenWeight::MatrixChain(dims) => {
                        h.update(&[0]);
                        for &d in dims {
                            h.update(&d.to_le_bytes());
                        }
                    }
                    ParenWeight::Polygon(vs) => {
                        h.update(&[1]);
                        for &v in vs {
                            h.update(&v.to_bits().to_le_bytes());
                        }
                    }
                    ParenWeight::Zero => {
                        h.update(&[2]);
                    }
                }
            }
            DpJobRequest::LinearSystem { a, rhs, .. } => {
                h.update(b"linsys");
                h.update(&(a.rows() as u64).to_le_bytes());
                for &v in a.as_slice() {
                    h.update(&v.to_bits().to_le_bytes());
                }
                for &v in rhs {
                    h.update(&v.to_bits().to_le_bytes());
                }
            }
            DpJobRequest::SparseApsp { edges, sources, .. } => {
                // Unlike dense APSP, the computed result *is* the
                // projected rows, so the source set (and its order)
                // keys the cache entry; `parts` stays out — results
                // are partition-invariant.
                h.update(b"sparse-apsp");
                h.update(&(edges.rows() as u64).to_le_bytes());
                h.update(&edges.fill().to_bits().to_le_bytes());
                for &p in edges.row_ptr() {
                    h.update(&p.to_le_bytes());
                }
                for &c in edges.col_idx() {
                    h.update(&c.to_le_bytes());
                }
                for &v in edges.vals() {
                    h.update(&v.to_bits().to_le_bytes());
                }
                h.update(&(sources.len() as u64).to_le_bytes());
                for &s in sources {
                    h.update(&s.to_le_bytes());
                }
            }
        }
        h.finish()
    }
}

// --- result codec -----------------------------------------------------

/// Encode an `f64` matrix result (APSP / parenthesization tables).
pub fn encode_matrix_f64(m: &Matrix<f64>) -> Bytes {
    let mut out = Vec::with_capacity(16 + m.as_slice().len() * 8);
    put_matrix_f64(&mut out, m);
    Bytes::from(out)
}

/// Decode an `f64` matrix result.
pub fn decode_matrix_f64(bytes: &Bytes) -> Result<Matrix<f64>, JobError> {
    let mut rd = Rd::new(bytes);
    let m = rd.matrix_f64()?;
    rd.done()?;
    Ok(m)
}

/// Encode an `i64` matrix result (alignment score tables).
pub fn encode_matrix_i64(m: &Matrix<i64>) -> Bytes {
    let mut out = Vec::with_capacity(16 + m.as_slice().len() * 8);
    put_u64(&mut out, m.rows() as u64);
    put_u64(&mut out, m.cols() as u64);
    for &v in m.as_slice() {
        put_u64(&mut out, v as u64);
    }
    Bytes::from(out)
}

/// Decode an `i64` matrix result.
pub fn decode_matrix_i64(bytes: &Bytes) -> Result<Matrix<i64>, JobError> {
    let mut rd = Rd::new(bytes);
    let rows = rd.u64()? as usize;
    let cols = rd.u64()? as usize;
    let cells = rows
        .checked_mul(cols)
        .filter(|&c| c.checked_mul(8).is_some_and(|b| b <= bytes.len()))
        .ok_or_else(|| JobError::Codec("matrix larger than body".into()))?;
    let mut data = Vec::with_capacity(cells);
    for _ in 0..cells {
        data.push(rd.i64()?);
    }
    rd.done()?;
    Ok(Matrix::from_vec(rows, cols, data))
}

/// Encode a solution vector (linear systems).
pub fn encode_vec_f64(v: &[f64]) -> Bytes {
    let mut out = Vec::with_capacity(8 + v.len() * 8);
    put_u64(&mut out, v.len() as u64);
    for &x in v {
        put_f64(&mut out, x);
    }
    Bytes::from(out)
}

/// Decode a solution vector.
pub fn decode_vec_f64(bytes: &Bytes) -> Result<Vec<f64>, JobError> {
    let mut rd = Rd::new(bytes);
    let n = rd.count8()?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(rd.f64()?);
    }
    rd.done()?;
    Ok(v)
}

// --- the runner -------------------------------------------------------

/// [`JobRunner`] implementation binding [`DpJobRequest`] bodies to the
/// dp-core solvers, with cluster-model admission pricing.
pub struct DpJobRunner {
    cost: CostModel,
    template: DpConfig,
}

impl DpJobRunner {
    /// Runner pricing against `cost`, executing with `template`'s
    /// strategy/kernel knobs (each request overrides `n` and `block`).
    pub fn new(cost: CostModel, template: DpConfig) -> Self {
        DpJobRunner { cost, template }
    }

    fn cfg_for(&self, n: usize, block: usize) -> DpConfig {
        let mut cfg = self.template.clone();
        cfg.n = n.max(1);
        cfg.block = block.max(1).min(cfg.n);
        cfg
    }
}

impl JobRunner for DpJobRunner {
    fn estimate(&self, body: &Bytes) -> Result<f64, JobError> {
        let req = DpJobRequest::decode(body)?;
        let inv = KernelInvocation {
            updates: req.updates(),
            block_side: req.block(),
            elem_bytes: 8,
            kernel: req.kernel(),
        };
        Ok(self.cost.admission_seconds(&inv, body.len() as u64))
    }

    fn cache_key(&self, body: &Bytes) -> Result<Option<u128>, JobError> {
        Ok(Some(DpJobRequest::decode(body)?.lineage_key()))
    }

    fn run(&self, sc: &SparkContext, body: &Bytes) -> Result<Bytes, JobError> {
        match DpJobRequest::decode(body)? {
            DpJobRequest::Apsp { dist, block, .. } => {
                // Always the full table: the source set is a
                // projection, applied in `project`.
                let cfg = self.cfg_for(dist.rows(), block);
                let out = solve::<Tropical>(sc, &cfg, &dist)?;
                Ok(encode_matrix_f64(&out))
            }
            DpJobRequest::Alignment { a, b, score, block } => {
                let out = solve_alignment(sc, &a, &b, &score, block.max(1))?;
                Ok(encode_matrix_i64(&out))
            }
            DpJobRequest::Parenthesis { weight, block } => {
                let out = solve_parenthesis(sc, &weight, block.max(1))?;
                Ok(encode_matrix_f64(&out))
            }
            DpJobRequest::LinearSystem { a, rhs, block } => {
                let cfg = self.cfg_for(rhs.len() + 1, block);
                let x = solve_linear_system(sc, &cfg, &a, &rhs)?;
                Ok(encode_vec_f64(&x))
            }
            DpJobRequest::SparseApsp {
                edges,
                sources,
                parts,
            } => {
                // No projection step: the sweep path computes exactly
                // the requested rows.
                let out = solve_sparse_apsp(sc, &edges, &sources, parts.max(1))?;
                Ok(encode_matrix_f64(&out))
            }
        }
    }

    fn project(&self, body: &Bytes, full: &Bytes) -> Result<Bytes, JobError> {
        match DpJobRequest::decode(body)? {
            DpJobRequest::Apsp {
                sources: Some(srcs),
                ..
            } => {
                let table = decode_matrix_f64(full)?;
                let mut rows = Vec::with_capacity(srcs.len() * table.cols());
                for &s in &srcs {
                    let s = s as usize;
                    if s >= table.rows() {
                        return Err(JobError::Codec(format!(
                            "source row {s} out of range for n={}",
                            table.rows()
                        )));
                    }
                    for j in 0..table.cols() {
                        rows.push(table.get(s, j));
                    }
                }
                Ok(encode_matrix_f64(&Matrix::from_vec(
                    srcs.len(),
                    table.cols(),
                    rows,
                )))
            }
            _ => Ok(full.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gep_kernels::graph::sparse_erdos_renyi;

    fn sparse_req(seed: u64, n: usize, sources: Vec<u32>, parts: usize) -> DpJobRequest {
        DpJobRequest::SparseApsp {
            edges: sparse_erdos_renyi(n, 0.25, 1.0, 9.0, seed),
            sources,
            parts,
        }
    }

    fn apsp_req(seed: u64, n: usize, sources: Option<Vec<u32>>) -> DpJobRequest {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let dist = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                0.0
            } else if next() % 4 == 0 {
                f64::INFINITY
            } else {
                (next() % 100) as f64 + 1.0
            }
        });
        DpJobRequest::Apsp {
            dist,
            block: 4,
            sources,
        }
    }

    #[test]
    fn request_bodies_roundtrip() {
        let reqs = vec![
            apsp_req(7, 6, Some(vec![0, 3])),
            DpJobRequest::Alignment {
                a: b"GATTACA".to_vec(),
                b: b"GCATGCU".to_vec(),
                score: AlignScore::NeedlemanWunsch {
                    matched: 1,
                    mismatch: -1,
                    gap: -1,
                },
                block: 3,
            },
            DpJobRequest::Parenthesis {
                weight: ParenWeight::MatrixChain(vec![30, 35, 15, 5, 10, 20, 25]),
                block: 2,
            },
            DpJobRequest::LinearSystem {
                a: Matrix::from_fn(3, 3, |i, j| if i == j { 4.0 } else { 1.0 }),
                rhs: vec![1.0, 2.0, 3.0],
                block: 2,
            },
            sparse_req(5, 9, vec![0, 4, 8], 3),
        ];
        for req in reqs {
            let body = req.encode();
            assert_eq!(DpJobRequest::decode(&body).unwrap(), req);
        }
    }

    #[test]
    fn truncated_bodies_error_never_panic() {
        for body in [
            apsp_req(3, 5, None).encode(),
            sparse_req(3, 7, vec![1], 2).encode(),
        ] {
            for cut in 0..body.len() {
                let res = DpJobRequest::decode(&body.slice(0..cut));
                assert!(res.is_err(), "cut at {cut} must fail");
            }
        }
        assert!(DpJobRequest::decode(&Bytes::from_static(&[99])).is_err());
    }

    #[test]
    fn malformed_sparse_bodies_are_codec_errors_at_admission() {
        // Hand-build bodies whose CSR parts violate canonical form:
        // each must come back as a typed Codec error (which the service
        // front end maps to a Malformed rejection), never a panic.
        let build = |row_ptr: &[u32], col_idx: &[u32], vals: &[f64], n: u64| {
            let mut out = vec![TAG_SPARSE_APSP];
            put_u64(&mut out, 2); // parts
            put_u64(&mut out, 1); // one source
            put_u64(&mut out, 0);
            put_u64(&mut out, n);
            put_u64(&mut out, col_idx.len() as u64);
            put_f64(&mut out, f64::INFINITY);
            for &p in row_ptr {
                put_u32(&mut out, p);
            }
            for &c in col_idx {
                put_u32(&mut out, c);
            }
            for &v in vals {
                put_f64(&mut out, v);
            }
            Bytes::from(out)
        };
        let cases = [
            // Decreasing row pointers.
            build(&[0, 1, 0], &[0], &[1.0], 2),
            // Column index out of range.
            build(&[0, 1, 1], &[7], &[1.0], 2),
            // Duplicate columns within a row.
            build(&[0, 2, 2], &[1, 1], &[1.0, 2.0], 2),
            // Terminal pointer disagrees with nnz.
            build(&[0, 0, 0], &[0], &[1.0], 2),
            // Empty graph.
            build(&[0], &[], &[], 0),
        ];
        for (i, body) in cases.iter().enumerate() {
            assert!(
                matches!(DpJobRequest::decode(body), Err(JobError::Codec(_))),
                "case {i} must be rejected"
            );
        }
        // A source pointing past the vertex range is caught by
        // validate() even when the CSR itself is canonical.
        let mut ok = sparse_req(1, 4, vec![9], 2).encode();
        assert!(matches!(DpJobRequest::decode(&ok), Err(JobError::Codec(_))));
        ok = sparse_req(1, 4, vec![3], 2).encode();
        assert!(DpJobRequest::decode(&ok).is_ok());
    }

    #[test]
    fn sparse_lineage_key_tracks_sources_not_parts() {
        let a = sparse_req(8, 10, vec![0, 2], 2);
        let b = sparse_req(8, 10, vec![0, 2], 5); // same query, more parts
        let c = sparse_req(8, 10, vec![0, 3], 2); // different sources
        let d = sparse_req(9, 10, vec![0, 2], 2); // different graph
        assert_eq!(a.lineage_key(), b.lineage_key());
        assert_ne!(a.lineage_key(), c.lineage_key());
        assert_ne!(a.lineage_key(), d.lineage_key());
        // And the sparse family never collides with dense APSP keys.
        let dense = apsp_req(8, 10, None);
        assert_ne!(a.lineage_key(), dense.lineage_key());
    }

    #[test]
    fn sparse_admission_prices_by_nnz_through_the_sweep_kernel() {
        let req = sparse_req(4, 12, vec![0, 1, 2], 3);
        let DpJobRequest::SparseApsp { ref edges, .. } = req else {
            unreachable!()
        };
        assert_eq!(req.kernel(), KernelType::SparseSweep);
        let rounds = (12f64).log2() + 1.0;
        assert_eq!(req.updates(), 3.0 * edges.nnz() as f64 * rounds);
        // Densifying the same graph as a dense APSP body prices at n³,
        // which dominates for any sub-full density.
        let dense = DpJobRequest::Apsp {
            dist: edges.to_dense(),
            block: 4,
            sources: None,
        };
        assert!(req.updates() < dense.updates());
    }

    #[test]
    fn lineage_key_ignores_knobs_and_sources() {
        let a = apsp_req(11, 6, None);
        let b = apsp_req(11, 6, Some(vec![1, 2]));
        let DpJobRequest::Apsp { dist, .. } = apsp_req(11, 6, None) else {
            unreachable!()
        };
        let c = DpJobRequest::Apsp {
            dist,
            block: 2, // different execution knob
            sources: Some(vec![4]),
        };
        assert_eq!(a.lineage_key(), b.lineage_key());
        assert_eq!(a.lineage_key(), c.lineage_key());
        let d = apsp_req(12, 6, None);
        assert_ne!(a.lineage_key(), d.lineage_key(), "different graph");
        // Alignment scoring is part of the key (it changes results).
        let lcs = DpJobRequest::Alignment {
            a: b"AB".to_vec(),
            b: b"AC".to_vec(),
            score: AlignScore::Lcs,
            block: 2,
        };
        let nw = DpJobRequest::Alignment {
            a: b"AB".to_vec(),
            b: b"AC".to_vec(),
            score: AlignScore::NeedlemanWunsch {
                matched: 1,
                mismatch: -1,
                gap: -1,
            },
            block: 2,
        };
        assert_ne!(lcs.lineage_key(), nw.lineage_key());
    }

    #[test]
    fn decodable_bodies_violating_solver_invariants_are_rejected() {
        let bad = vec![
            DpJobRequest::Apsp {
                dist: Matrix::from_fn(2, 3, |_, _| 0.0),
                block: 2,
                sources: None,
            },
            DpJobRequest::Apsp {
                dist: Matrix::from_fn(0, 0, |_, _| 0.0),
                block: 2,
                sources: None,
            },
            DpJobRequest::Parenthesis {
                weight: ParenWeight::MatrixChain(vec![]),
                block: 2,
            },
            DpJobRequest::Parenthesis {
                weight: ParenWeight::MatrixChain(vec![7]),
                block: 2,
            },
            DpJobRequest::Parenthesis {
                weight: ParenWeight::Polygon(vec![1.0, 2.0]),
                block: 2,
            },
            DpJobRequest::Parenthesis {
                weight: ParenWeight::Zero,
                block: 2,
            },
            DpJobRequest::LinearSystem {
                a: Matrix::from_fn(2, 3, |_, _| 1.0),
                rhs: vec![1.0, 2.0],
                block: 2,
            },
            DpJobRequest::LinearSystem {
                a: Matrix::from_fn(3, 3, |_, _| 1.0),
                rhs: vec![1.0, 2.0],
                block: 2,
            },
            DpJobRequest::LinearSystem {
                a: Matrix::from_fn(0, 0, |_, _| 1.0),
                rhs: vec![],
                block: 2,
            },
        ];
        for req in bad {
            let body = req.encode();
            assert!(
                matches!(DpJobRequest::decode(&body), Err(JobError::Codec(_))),
                "{req:?} must be rejected at decode"
            );
        }
    }

    #[test]
    fn huge_matrix_dims_error_instead_of_overflowing() {
        // rows * cols passes checked_mul but cells * 8 wraps a u64:
        // the bounds filter must still reject, not overflow or try to
        // allocate 2^63 bytes.
        let mut body = vec![TAG_APSP];
        put_u64(&mut body, 4); // block
        body.push(0); // no sources
        put_u64(&mut body, 1 << 32); // rows
        put_u64(&mut body, 1 << 31); // cols
        let res = DpJobRequest::decode(&Bytes::from(body));
        assert!(matches!(res, Err(JobError::Codec(_))));

        let mut m = Vec::new();
        put_u64(&mut m, 1 << 32);
        put_u64(&mut m, 1 << 31);
        assert!(matches!(
            decode_matrix_i64(&Bytes::from(m.clone())),
            Err(JobError::Codec(_))
        ));
        assert!(matches!(
            decode_matrix_f64(&Bytes::from(m)),
            Err(JobError::Codec(_))
        ));
    }

    #[test]
    fn result_codecs_roundtrip() {
        let m = Matrix::from_fn(3, 4, |i, j| (i * 7 + j) as f64 / 3.0);
        assert_eq!(decode_matrix_f64(&encode_matrix_f64(&m)).unwrap(), m);
        let mi = Matrix::from_fn(2, 5, |i, j| i as i64 * 100 - j as i64);
        assert_eq!(decode_matrix_i64(&encode_matrix_i64(&mi)).unwrap(), mi);
        let v = vec![1.5, -2.5, f64::INFINITY];
        assert_eq!(decode_vec_f64(&encode_vec_f64(&v)).unwrap(), v);
    }
}
