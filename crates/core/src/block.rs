//! Distribution blocks — the values of the DP-table RDD.
//!
//! A [`Block`] is either a real owned matrix tile or a *virtual* tile
//! that carries only its geometry. Virtual blocks flow through the
//! exact same dataflow (same keys, same shuffles, same stages) but skip
//! the numeric kernel and *declare* their full-scale size to the byte
//! accounting ([`sparklet::Storable::approx_bytes`]), which is how
//! paper-scale (32K×32K) configurations are timed without terabytes of
//! traffic.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use gep_kernels::Matrix;
use sparklet::{JobError, Storable};

/// Element codec: fixed-width wire encoding for table elements.
pub trait ElemCodec: gep_kernels::matrix::Elem {
    /// Encoded size in bytes.
    const BYTES: usize;
    /// Append the fixed-width encoding.
    fn put(&self, buf: &mut BytesMut);
    /// Decode one element, advancing the buffer.
    fn take(buf: &mut Bytes) -> Result<Self, JobError>;
}

impl ElemCodec for f64 {
    const BYTES: usize = 8;
    fn put(&self, buf: &mut BytesMut) {
        buf.put_f64_le(*self);
    }
    fn take(buf: &mut Bytes) -> Result<Self, JobError> {
        if buf.remaining() < 8 {
            return Err(JobError::Codec("f64 underrun".into()));
        }
        Ok(buf.get_f64_le())
    }
}

impl ElemCodec for bool {
    const BYTES: usize = 1;
    fn put(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
    fn take(buf: &mut Bytes) -> Result<Self, JobError> {
        if buf.remaining() < 1 {
            return Err(JobError::Codec("bool underrun".into()));
        }
        Ok(buf.get_u8() != 0)
    }
}

/// One `b×b` tile of the distributed DP table.
#[derive(Debug, Clone, PartialEq)]
pub enum Block<E> {
    /// Owned data.
    Real(Matrix<E>),
    /// Geometry only; kernels become cost-accounting no-ops.
    Virtual {
        /// Declared row count.
        rows: usize,
        /// Declared column count.
        cols: usize,
    },
}

impl<E: ElemCodec> Block<E> {
    /// Row count (real or declared).
    pub fn rows(&self) -> usize {
        match self {
            Block::Real(m) => m.rows(),
            Block::Virtual { rows, .. } => *rows,
        }
    }

    /// Column count (real or declared).
    pub fn cols(&self) -> usize {
        match self {
            Block::Real(m) => m.cols(),
            Block::Virtual { cols, .. } => *cols,
        }
    }

    /// Is this a geometry-only virtual block?
    pub fn is_virtual(&self) -> bool {
        matches!(self, Block::Virtual { .. })
    }

    /// Logical payload size — what this block weighs on the wire at
    /// full scale.
    pub fn logical_bytes(&self) -> usize {
        17 + self.rows() * self.cols() * E::BYTES
    }

    /// The real matrix, or a panic for virtual blocks (callers branch
    /// on [`Block::is_virtual`] first).
    pub fn expect_real(&self) -> &Matrix<E> {
        match self {
            Block::Real(m) => m,
            Block::Virtual { .. } => panic!("virtual block has no data"),
        }
    }

    /// Mutable access to the real matrix (panics for virtual blocks).
    pub fn expect_real_mut(&mut self) -> &mut Matrix<E> {
        match self {
            Block::Real(m) => m,
            Block::Virtual { .. } => panic!("virtual block has no data"),
        }
    }
}

impl ElemCodec for gep_kernels::semiring::MinPlus {
    const BYTES: usize = 8;
    fn put(&self, buf: &mut BytesMut) {
        buf.put_f64_le(self.0);
    }
    fn take(buf: &mut Bytes) -> Result<Self, JobError> {
        if buf.remaining() < 8 {
            return Err(JobError::Codec("MinPlus underrun".into()));
        }
        Ok(gep_kernels::semiring::MinPlus(buf.get_f64_le()))
    }
}

impl ElemCodec for gep_kernels::semiring::MaxMin {
    const BYTES: usize = 8;
    fn put(&self, buf: &mut BytesMut) {
        buf.put_f64_le(self.0);
    }
    fn take(buf: &mut Bytes) -> Result<Self, JobError> {
        if buf.remaining() < 8 {
            return Err(JobError::Codec("MaxMin underrun".into()));
        }
        Ok(gep_kernels::semiring::MaxMin(buf.get_f64_le()))
    }
}

const TAG_REAL: u8 = 0;
const TAG_VIRTUAL: u8 = 1;

impl<E: ElemCodec> Storable for Block<E> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Block::Real(m) => {
                buf.put_u8(TAG_REAL);
                buf.put_u64_le(m.rows() as u64);
                buf.put_u64_le(m.cols() as u64);
                for e in m.as_slice() {
                    e.put(buf);
                }
            }
            Block::Virtual { rows, cols } => {
                buf.put_u8(TAG_VIRTUAL);
                buf.put_u64_le(*rows as u64);
                buf.put_u64_le(*cols as u64);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, JobError> {
        if buf.remaining() < 17 {
            return Err(JobError::Codec("block header underrun".into()));
        }
        let tag = buf.get_u8();
        let rows = buf.get_u64_le() as usize;
        let cols = buf.get_u64_le() as usize;
        match tag {
            TAG_REAL => {
                let mut data = Vec::with_capacity(rows * cols);
                for _ in 0..rows * cols {
                    data.push(E::take(buf)?);
                }
                Ok(Block::Real(Matrix::from_vec(rows, cols, data)))
            }
            TAG_VIRTUAL => Ok(Block::Virtual { rows, cols }),
            t => Err(JobError::Codec(format!("bad block tag {t}"))),
        }
    }

    fn approx_bytes(&self) -> usize {
        // Declared size: full scale for both variants, so virtual runs
        // account honest byte volumes.
        self.logical_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparklet::codec::{decode_one, encode_one};

    #[test]
    fn real_block_roundtrips() {
        let m = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64 / 2.0);
        let b = Block::Real(m.clone());
        let dec: Block<f64> = decode_one(encode_one(&b)).unwrap();
        assert_eq!(dec, b);
        assert_eq!(b.rows(), 3);
        assert_eq!(b.cols(), 4);
    }

    #[test]
    fn bool_block_roundtrips() {
        let m = Matrix::from_fn(4, 4, |i, j| (i + j) % 3 == 0);
        let b = Block::Real(m);
        let dec: Block<bool> = decode_one(encode_one(&b)).unwrap();
        assert_eq!(dec, b);
    }

    #[test]
    fn virtual_block_is_small_on_wire_but_heavy_in_accounting() {
        let b: Block<f64> = Block::Virtual {
            rows: 1024,
            cols: 1024,
        };
        let wire = encode_one(&b);
        assert_eq!(wire.len(), 17);
        assert_eq!(b.approx_bytes(), 17 + 1024 * 1024 * 8);
        let dec: Block<f64> = decode_one(wire).unwrap();
        assert_eq!(dec, b);
    }

    #[test]
    fn real_block_accounting_matches_wire() {
        let b = Block::Real(Matrix::square(16, 1.0f64));
        assert_eq!(b.approx_bytes(), encode_one(&b).len());
    }

    #[test]
    fn infinity_survives_the_wire() {
        let m = Matrix::from_fn(2, 2, |i, j| if i == j { 0.0 } else { f64::INFINITY });
        let b = Block::Real(m);
        let dec: Block<f64> = decode_one(encode_one(&b)).unwrap();
        assert_eq!(dec.expect_real().get(0, 1), f64::INFINITY);
    }
}
