//! Distribution blocks — the values of the DP-table RDD.
//!
//! A [`Block`] is a real owned matrix tile (dense row-major), a
//! *sparse* CSR tile, or a *virtual* tile that carries only its
//! geometry. Virtual blocks flow through the exact same dataflow (same
//! keys, same shuffles, same stages) but skip the numeric kernel and
//! *declare* their full-scale size to the byte accounting
//! ([`sparklet::Storable::approx_bytes`]), which is how paper-scale
//! (32K×32K) configurations are timed without terabytes of traffic.
//!
//! Sparse tiles make the representation itself part of the data plane:
//! their wire frame and byte accounting are **nnz-exact** (header +
//! fill + `row_ptr` + `nnz · (index + element)`), so a low-density
//! tile is cheap on the wire, in the tiered store, and in the cost
//! model — the property the dense-FW vs sparse-sweeps crossover study
//! measures. The dense (`TAG_REAL`/`TAG_VIRTUAL`) frames are
//! byte-identical to every prior release; `TAG_SPARSE` is purely
//! additive.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use gep_kernels::sparse::{Csr, TileRepr};
use gep_kernels::Matrix;
use sparklet::codec::{decode_le_slice, encode_le_slice};
use sparklet::{JobError, Storable};

/// Element codec: fixed-width wire encoding for table elements.
///
/// The slice hooks let [`Block`] move a whole tile in one copy:
/// fixed-width numeric elements override them with
/// [`encode_le_slice`]/[`decode_le_slice`], and the defaults keep the
/// element-wise loop byte-identical for everything else.
pub trait ElemCodec: gep_kernels::matrix::Elem {
    /// Encoded size in bytes.
    const BYTES: usize;
    /// Append the fixed-width encoding.
    fn put(&self, buf: &mut BytesMut);
    /// Decode one element, advancing the buffer.
    fn take(buf: &mut Bytes) -> Result<Self, JobError>;

    /// Append a dense run of elements (bulk-copy override point).
    fn put_slice(items: &[Self], buf: &mut BytesMut) {
        for e in items {
            e.put(buf);
        }
    }

    /// Decode a dense run of `n` elements. Implementations must bounds
    /// check before allocating so corrupted headers cannot OOM.
    fn take_slice(buf: &mut Bytes, n: usize) -> Result<Vec<Self>, JobError> {
        let mut out = Vec::with_capacity(n.min(buf.remaining() / Self::BYTES.max(1)));
        for _ in 0..n {
            out.push(Self::take(buf)?);
        }
        Ok(out)
    }
}

impl ElemCodec for f64 {
    const BYTES: usize = 8;
    fn put(&self, buf: &mut BytesMut) {
        buf.put_f64_le(*self);
    }
    fn take(buf: &mut Bytes) -> Result<Self, JobError> {
        if buf.remaining() < 8 {
            return Err(JobError::Codec("f64 underrun".into()));
        }
        Ok(buf.get_f64_le())
    }
    fn put_slice(items: &[Self], buf: &mut BytesMut) {
        encode_le_slice(items, buf);
    }
    fn take_slice(buf: &mut Bytes, n: usize) -> Result<Vec<Self>, JobError> {
        decode_le_slice(buf, n)
    }
}

impl ElemCodec for bool {
    const BYTES: usize = 1;
    fn put(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
    fn take(buf: &mut Bytes) -> Result<Self, JobError> {
        if buf.remaining() < 1 {
            return Err(JobError::Codec("bool underrun".into()));
        }
        Ok(buf.get_u8() != 0)
    }
    fn put_slice(items: &[Self], buf: &mut BytesMut) {
        // SAFETY: `bool` is one byte whose only values are 0 and 1 —
        // its memory representation is exactly the wire encoding.
        let raw = unsafe { std::slice::from_raw_parts(items.as_ptr().cast::<u8>(), items.len()) };
        buf.extend_from_slice(raw);
    }
    fn take_slice(buf: &mut Bytes, n: usize) -> Result<Vec<Self>, JobError> {
        if buf.remaining() < n {
            return Err(JobError::Codec("bool slice underrun".into()));
        }
        let raw = buf.split_to(n);
        Ok(raw.iter().map(|b| *b != 0).collect())
    }
}

/// One `b×b` tile of the distributed DP table.
#[derive(Debug, Clone, PartialEq)]
pub enum Block<E> {
    /// Owned dense data.
    Real(Matrix<E>),
    /// Owned sparse (CSR) data — only non-fill entries on the wire.
    Sparse(Csr<E>),
    /// Geometry only; kernels become cost-accounting no-ops.
    Virtual {
        /// Declared row count.
        rows: usize,
        /// Declared column count.
        cols: usize,
    },
}

impl<E: ElemCodec> Block<E> {
    /// Row count (real or declared).
    pub fn rows(&self) -> usize {
        match self {
            Block::Real(m) => m.rows(),
            Block::Sparse(c) => c.rows(),
            Block::Virtual { rows, .. } => *rows,
        }
    }

    /// Column count (real or declared).
    pub fn cols(&self) -> usize {
        match self {
            Block::Real(m) => m.cols(),
            Block::Sparse(c) => c.cols(),
            Block::Virtual { cols, .. } => *cols,
        }
    }

    /// Is this a geometry-only virtual block?
    pub fn is_virtual(&self) -> bool {
        matches!(self, Block::Virtual { .. })
    }

    /// Which tile representation this block carries. Virtual blocks
    /// declare dense geometry — they stand in for full-scale dense
    /// tiles in the accounting.
    pub fn repr(&self) -> TileRepr {
        match self {
            Block::Real(_) | Block::Virtual { .. } => TileRepr::Dense,
            Block::Sparse(_) => TileRepr::SparseCsr,
        }
    }

    /// Stored entries: `rows·cols` for dense (every cell is
    /// materialized), the CSR nnz for sparse. This is the volume the
    /// cost model prices sparse work by.
    pub fn nnz(&self) -> usize {
        match self {
            Block::Real(m) => m.rows() * m.cols(),
            Block::Sparse(c) => c.nnz(),
            Block::Virtual { rows, cols } => rows * cols,
        }
    }

    /// Logical payload size — what this block weighs on the wire at
    /// full scale. Dense geometry for dense and virtual tiles;
    /// nnz-exact for sparse tiles (their whole point is that logical
    /// volume tracks stored entries, not the n² bounding box).
    pub fn logical_bytes(&self) -> usize {
        match self {
            Block::Sparse(_) => self.encoded_len(),
            _ => 17 + self.rows() * self.cols() * E::BYTES,
        }
    }

    /// The real matrix, or a panic for virtual/sparse blocks (callers
    /// branch on [`Block::is_virtual`]/[`Block::repr`] first).
    pub fn expect_real(&self) -> &Matrix<E> {
        match self {
            Block::Real(m) => m,
            Block::Sparse(_) => panic!("sparse block is not dense (use expect_sparse)"),
            Block::Virtual { .. } => panic!("virtual block has no data"),
        }
    }

    /// Mutable access to the real matrix (panics for virtual/sparse).
    pub fn expect_real_mut(&mut self) -> &mut Matrix<E> {
        match self {
            Block::Real(m) => m,
            Block::Sparse(_) => panic!("sparse block is not dense (use expect_sparse)"),
            Block::Virtual { .. } => panic!("virtual block has no data"),
        }
    }

    /// The CSR tile, or a panic for dense/virtual blocks.
    pub fn expect_sparse(&self) -> &Csr<E> {
        match self {
            Block::Sparse(c) => c,
            Block::Real(_) => panic!("dense block is not sparse (use expect_real)"),
            Block::Virtual { .. } => panic!("virtual block has no data"),
        }
    }
}

/// Bulk hooks for newtype-over-`f64` semiring elements. Sound only for
/// `#[repr(transparent)]` wrappers, which the macro's safety comment
/// pins at each use site.
macro_rules! f64_newtype_codec {
    ($t:ty, $ctor:expr, $label:literal) => {
        impl ElemCodec for $t {
            const BYTES: usize = 8;
            fn put(&self, buf: &mut BytesMut) {
                buf.put_f64_le(self.0);
            }
            fn take(buf: &mut Bytes) -> Result<Self, JobError> {
                if buf.remaining() < 8 {
                    return Err(JobError::Codec(concat!($label, " underrun").into()));
                }
                Ok($ctor(buf.get_f64_le()))
            }
            fn put_slice(items: &[Self], buf: &mut BytesMut) {
                // SAFETY: the wrapper is `#[repr(transparent)]` over
                // `f64`, so a run of wrappers is layout-identical to a
                // run of `f64`s.
                let raw = unsafe {
                    std::slice::from_raw_parts(items.as_ptr().cast::<f64>(), items.len())
                };
                encode_le_slice(raw, buf);
            }
            fn take_slice(buf: &mut Bytes, n: usize) -> Result<Vec<Self>, JobError> {
                Ok(decode_le_slice::<f64>(buf, n)?
                    .into_iter()
                    .map($ctor)
                    .collect())
            }
        }
    };
}

f64_newtype_codec!(
    gep_kernels::semiring::MinPlus,
    gep_kernels::semiring::MinPlus,
    "MinPlus"
);
f64_newtype_codec!(
    gep_kernels::semiring::MaxMin,
    gep_kernels::semiring::MaxMin,
    "MaxMin"
);

const TAG_REAL: u8 = 0;
const TAG_VIRTUAL: u8 = 1;
const TAG_SPARSE: u8 = 2;

impl<E: ElemCodec> Storable for Block<E> {
    fn encoded_len(&self) -> usize {
        match self {
            Block::Real(m) => 17 + m.rows() * m.cols() * E::BYTES,
            // nnz-exact: header + nnz word + fill + row_ptr + entries.
            Block::Sparse(c) => 17 + 8 + E::BYTES + (c.rows() + 1) * 4 + c.nnz() * (4 + E::BYTES),
            Block::Virtual { .. } => 17,
        }
    }

    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Block::Real(m) => {
                buf.put_u8(TAG_REAL);
                buf.put_u64_le(m.rows() as u64);
                buf.put_u64_le(m.cols() as u64);
                E::put_slice(m.as_slice(), buf);
            }
            Block::Sparse(c) => {
                buf.put_u8(TAG_SPARSE);
                buf.put_u64_le(c.rows() as u64);
                buf.put_u64_le(c.cols() as u64);
                buf.put_u64_le(c.nnz() as u64);
                c.fill().put(buf);
                encode_le_slice(c.row_ptr(), buf);
                encode_le_slice(c.col_idx(), buf);
                E::put_slice(c.vals(), buf);
            }
            Block::Virtual { rows, cols } => {
                buf.put_u8(TAG_VIRTUAL);
                buf.put_u64_le(*rows as u64);
                buf.put_u64_le(*cols as u64);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, JobError> {
        if buf.remaining() < 17 {
            return Err(JobError::Codec("block header underrun".into()));
        }
        let tag = buf.get_u8();
        let rows = buf.get_u64_le() as usize;
        let cols = buf.get_u64_le() as usize;
        match tag {
            TAG_REAL => {
                let n = rows
                    .checked_mul(cols)
                    .ok_or_else(|| JobError::Codec("block dims overflow".into()))?;
                let data = E::take_slice(buf, n)?;
                Ok(Block::Real(Matrix::from_vec(rows, cols, data)))
            }
            TAG_SPARSE => {
                if buf.remaining() < 8 {
                    return Err(JobError::Codec("sparse block nnz underrun".into()));
                }
                let nnz = buf.get_u64_le() as usize;
                let fill = E::take(buf)?;
                let ptr_len = rows
                    .checked_add(1)
                    .ok_or_else(|| JobError::Codec("sparse block rows overflow".into()))?;
                // The slice decoders bounds-check length × width against
                // the remaining buffer before allocating, so an
                // implausible declared nnz fails here instead of OOMing.
                let row_ptr = decode_le_slice::<u32>(buf, ptr_len)?;
                let col_idx = decode_le_slice::<u32>(buf, nnz)?;
                let vals = E::take_slice(buf, nnz)?;
                let csr = Csr::try_new(rows, cols, fill, row_ptr, col_idx, vals)
                    .map_err(|e| JobError::Codec(format!("sparse block: {e}")))?;
                Ok(Block::Sparse(csr))
            }
            TAG_VIRTUAL => Ok(Block::Virtual { rows, cols }),
            t => Err(JobError::Codec(format!("bad block tag {t}"))),
        }
    }

    fn approx_bytes(&self) -> usize {
        // Declared size: full scale for both variants, so virtual runs
        // account honest byte volumes.
        self.logical_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparklet::codec::{decode_one, encode_one};

    #[test]
    fn real_block_roundtrips() {
        let m = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64 / 2.0);
        let b = Block::Real(m.clone());
        let dec: Block<f64> = decode_one(encode_one(&b)).unwrap();
        assert_eq!(dec, b);
        assert_eq!(b.rows(), 3);
        assert_eq!(b.cols(), 4);
    }

    #[test]
    fn bool_block_roundtrips() {
        let m = Matrix::from_fn(4, 4, |i, j| (i + j) % 3 == 0);
        let b = Block::Real(m);
        let dec: Block<bool> = decode_one(encode_one(&b)).unwrap();
        assert_eq!(dec, b);
    }

    #[test]
    fn virtual_block_is_small_on_wire_but_heavy_in_accounting() {
        let b: Block<f64> = Block::Virtual {
            rows: 1024,
            cols: 1024,
        };
        let wire = encode_one(&b);
        assert_eq!(wire.len(), 17);
        assert_eq!(b.approx_bytes(), 17 + 1024 * 1024 * 8);
        let dec: Block<f64> = decode_one(wire).unwrap();
        assert_eq!(dec, b);
    }

    #[test]
    fn real_block_accounting_matches_wire() {
        let b = Block::Real(Matrix::square(16, 1.0f64));
        assert_eq!(b.approx_bytes(), encode_one(&b).len());
        assert_eq!(b.encoded_len(), encode_one(&b).len());
        let v: Block<f64> = Block::Virtual { rows: 9, cols: 7 };
        assert_eq!(v.encoded_len(), encode_one(&v).len());
    }

    #[test]
    fn bulk_element_paths_match_elementwise_encoding() {
        use gep_kernels::semiring::{MaxMin, MinPlus};
        // The slice hooks must be byte-identical to the per-element
        // loop — the wire format is pinned, only the path changed.
        fn check<E: ElemCodec + PartialEq + std::fmt::Debug>(items: Vec<E>) {
            let mut bulk = BytesMut::new();
            E::put_slice(&items, &mut bulk);
            let mut loopy = BytesMut::new();
            for e in &items {
                e.put(&mut loopy);
            }
            assert_eq!(bulk, loopy);
            let mut wire = bulk.freeze();
            let back = E::take_slice(&mut wire, items.len()).unwrap();
            assert_eq!(back, items);
            assert!(wire.is_empty());
        }
        check((0..37).map(|i| i as f64 * 1.5 - 3.0).collect());
        check((0..37).map(|i| i % 3 == 0).collect());
        check((0..37).map(|i| MinPlus(i as f64)).collect());
        check((0..37).map(|i| MaxMin(-(i as f64))).collect());
    }

    #[test]
    fn truncated_real_block_errors_cleanly() {
        let b = Block::Real(Matrix::square(4, 2.0f64));
        let wire = encode_one(&b);
        for cut in [0, 1, 16, 17, 18, wire.len() - 1] {
            let err = decode_one::<Block<f64>>(wire.slice(..cut));
            assert!(err.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn sparse_block_roundtrips_nnz_exact() {
        let dense = Matrix::from_fn(5, 7, |i, j| {
            if (i * 7 + j) % 4 == 0 {
                (i + j) as f64
            } else {
                f64::INFINITY
            }
        });
        let csr = Csr::from_dense(&dense, f64::INFINITY);
        let nnz = csr.nnz();
        let b = Block::Sparse(csr);
        assert_eq!(b.repr(), TileRepr::SparseCsr);
        assert_eq!(b.nnz(), nnz);
        let wire = encode_one(&b);
        assert_eq!(wire.len(), b.encoded_len());
        assert_eq!(wire.len(), 17 + 8 + 8 + 6 * 4 + nnz * 12);
        // approx_bytes (accounting) tracks nnz, not the bounding box.
        assert_eq!(b.approx_bytes(), wire.len());
        assert!(b.approx_bytes() < 17 + 5 * 7 * 8);
        let dec: Block<f64> = decode_one(wire).unwrap();
        assert_eq!(dec, b);
        assert_eq!(
            dec.expect_sparse().to_dense().first_difference(&dense),
            None
        );
    }

    #[test]
    fn sparse_block_truncation_errors_never_panic() {
        let csr = Csr::from_dense(&Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64), 0.0);
        let b = Block::Sparse(csr);
        let wire = encode_one(&b);
        for cut in 0..wire.len() {
            assert!(
                decode_one::<Block<f64>>(wire.slice(..cut)).is_err(),
                "cut at {cut} must fail"
            );
        }
        assert!(decode_one::<Block<f64>>(wire).is_ok());
    }

    #[test]
    fn sparse_block_rejects_malformed_structure() {
        let csr = Csr::try_new(
            2,
            3,
            f64::INFINITY,
            vec![0, 1, 2],
            vec![2, 0],
            vec![1.0, 2.0],
        )
        .unwrap();
        let wire = encode_one(&Block::Sparse(csr));
        // Corrupt a stored column index to exceed the declared width:
        // decode must reject structurally, not just on length.
        let mut bad = wire.to_vec();
        let col_off = 17 + 8 + 8 + 3 * 4;
        bad[col_off..col_off + 4].copy_from_slice(&7u32.to_le_bytes());
        let err = decode_one::<Block<f64>>(Bytes::from(bad)).unwrap_err();
        assert!(matches!(err, JobError::Codec(_)), "got {err:?}");
        // Corrupt the nnz word to an implausible length: bounds check
        // must fire before any allocation.
        let mut huge = wire.to_vec();
        huge[17..25].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_one::<Block<f64>>(Bytes::from(huge)).is_err());
    }

    #[test]
    fn dense_wire_format_is_unchanged_by_the_sparse_variant() {
        // Pin the exact dense frame bytes: adding TAG_SPARSE must not
        // perturb TAG_REAL/TAG_VIRTUAL frames in any way.
        let b = Block::Real(Matrix::from_vec(1, 2, vec![1.0f64, 2.0]));
        let wire = encode_one(&b);
        let mut want = vec![0u8]; // TAG_REAL
        want.extend_from_slice(&1u64.to_le_bytes());
        want.extend_from_slice(&2u64.to_le_bytes());
        want.extend_from_slice(&1.0f64.to_le_bytes());
        want.extend_from_slice(&2.0f64.to_le_bytes());
        assert_eq!(wire.as_ref(), &want[..]);
        let v: Block<f64> = Block::Virtual { rows: 3, cols: 4 };
        let vwire = encode_one(&v);
        assert_eq!(vwire[0], 1); // TAG_VIRTUAL
        assert_eq!(vwire.len(), 17);
    }

    #[test]
    fn infinity_survives_the_wire() {
        let m = Matrix::from_fn(2, 2, |i, j| if i == j { 0.0 } else { f64::INFINITY });
        let b = Block::Real(m);
        let dec: Block<f64> = decode_one(encode_one(&b)).unwrap();
        assert_eq!(dec.expect_real().get(0, 1), f64::INFINITY);
    }
}
