//! Analytical auto-tuner for the paper's tunable parameters.
//!
//! Section V argues that `r` (block decomposition), `r_shared`, and
//! `OMP_NUM_THREADS` must be chosen per cluster ("if \[they\] are chosen
//! independent of the system configuration, the resulting
//! implementation can be very inefficient"). This tuner searches the
//! candidate grid by running the *virtual* dataflow for each
//! configuration and pricing it with the cost model — the "estimates
//! from hardware/software parameters using analytical models" knob the
//! paper mentions.

use cluster_model::ClusterSpec;
use sparklet::JobError;

use crate::backend::{registry, KernelParams, KernelSpec, ITERATIVE, SIMULATE};
use crate::config::{DpConfig, Strategy};
use crate::problem::DpProblem;
use crate::solver::simulate_seconds;

/// One evaluated candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneResult {
    /// The evaluated configuration.
    pub config: DpConfig,
    /// Its `OMP_NUM_THREADS` value.
    pub omp_threads: usize,
    /// Simulated job seconds on the target cluster.
    pub seconds: f64,
}

/// Search space for the tuner.
#[derive(Debug, Clone)]
pub struct TuneSpace {
    /// Candidate block sizes.
    pub blocks: Vec<usize>,
    /// Candidate recursive fan-outs.
    pub r_shared: Vec<usize>,
    /// Candidate thread-team sizes.
    pub threads: Vec<usize>,
    /// Candidate distribution strategies.
    pub strategies: Vec<Strategy>,
    /// Also evaluate the iterative baseline.
    pub include_iterative: bool,
}

impl Default for TuneSpace {
    fn default() -> Self {
        TuneSpace {
            blocks: vec![256, 512, 1024, 2048],
            r_shared: vec![2, 4, 8, 16],
            threads: vec![1, 4, 8, 16],
            strategies: vec![Strategy::InMemory, Strategy::CollectBroadcast],
            include_iterative: true,
        }
    }
}

/// Exhaustively evaluate the space on `cluster` for problem size `n`,
/// returning candidates sorted fastest-first. Virtual runs only — no
/// numeric data is touched.
///
/// The kernel axis of the grid is the backend registry itself, walked
/// in registration order (deterministic): every available backend
/// except the cost-accounting `simulate` one is evaluated, with the
/// `iterative` baseline gated by [`TuneSpace::include_iterative`].
/// Fan-out-parametric backends (the recursive family) expand into the
/// `r_shared × threads` grid; fixed-shape backends are priced once at
/// default params. Registering a new backend adds it to every tuning
/// sweep with no tuner changes.
pub fn tune<S: DpProblem>(
    cluster: &ClusterSpec,
    n: usize,
    space: &TuneSpace,
) -> Result<Vec<TuneResult>, JobError> {
    let reg = registry::<S>();
    let mut results = Vec::new();
    for &block in &space.blocks {
        if block >= n {
            continue;
        }
        for &strategy in &space.strategies {
            for backend in reg.backends() {
                if !backend.available()
                    || backend.name() == SIMULATE
                    || !backend.supports_repr(gep_kernels::sparse::TileRepr::Dense)
                {
                    continue;
                }
                if backend.name() == ITERATIVE && !space.include_iterative {
                    continue;
                }
                if backend.fanout_parametric() {
                    for &r_shared in &space.r_shared {
                        if r_shared >= block {
                            continue;
                        }
                        for &threads in &space.threads {
                            let spec =
                                KernelSpec::named(backend.name()).with_params(KernelParams {
                                    r_shared,
                                    base: 64,
                                    threads,
                                });
                            let cfg = DpConfig::new(n, block)
                                .with_strategy(strategy)
                                .with_kernel(spec)
                                .virtual_mode();
                            let secs =
                                simulate_seconds::<S>(cluster, cluster.node.cores, &cfg, None)?;
                            results.push(TuneResult {
                                config: cfg,
                                omp_threads: threads,
                                seconds: secs,
                            });
                        }
                    }
                } else {
                    let cfg = DpConfig::new(n, block)
                        .with_strategy(strategy)
                        .with_kernel(KernelSpec::named(backend.name()))
                        .virtual_mode();
                    let secs = simulate_seconds::<S>(cluster, cluster.node.cores, &cfg, None)?;
                    results.push(TuneResult {
                        config: cfg,
                        omp_threads: 1,
                        seconds: secs,
                    });
                }
            }
        }
    }
    results.sort_by(|a, b| a.seconds.partial_cmp(&b.seconds).expect("finite times"));
    Ok(results)
}
