//! The In-Memory (IM) implementation — Listing 1 of the paper.
//!
//! One iteration `k` of the blocked GEP runs as three Spark-style
//! stages, with updated blocks *copied* to their consumers through wide
//! `combineByKey`-shaped shuffles:
//!
//! 1. **A stage** — the diagonal block updates itself and flat-maps
//!    `2(r-k-1) + (r-k-1)²` tagged copies of itself toward the B, C,
//!    and D consumers (the copy multiplicity the paper identifies as
//!    IM's bottleneck for heavy dependency patterns like GE);
//! 2. **BC stage** — a `group_by_key` joins each panel block with its
//!    diagonal copy; kernels B/C run and flat-map their own copies
//!    toward the D consumers;
//! 3. **D stage** — a second `group_by_key` joins each trailing block
//!    with its U/V/W operands; kernel D runs.
//!
//! The iteration ends with the untouched blocks unioned back in and a
//! `partition_by` (the repartitioning step of Listing 1, line 22).

use std::sync::Arc;

use gep_kernels::gep::Kind;
use sparklet::{JobError, Partitioner, Rdd, StorageLevel};

use crate::backend::KernelSpec;
use crate::block::Block;
use crate::filters;
use crate::kernels::apply_kernel;
use crate::problem::DpProblem;

/// Storage level the solver uses for IM's per-iteration checkpoint
/// when the config does not pin one. IM *is* the memory-pressure
/// strategy — it must hold the whole cached table in executor memory —
/// so it degrades to spilling serialized blocks rather than dying with
/// `MemoryOverflow` when `executor_memory` is undersized.
pub fn default_storage_level() -> StorageLevel {
    StorageLevel::MemoryAndDisk
}

/// Value tags distinguishing a block's own payload from operand copies.
pub const ROLE_MAIN: u8 = 0;
/// Copy of the phase's diagonal block (`w`, and `u`/`v` for B/C).
pub const ROLE_DIAG: u8 = 1;
/// Copy of a column-panel block (`u` operand of D).
pub const ROLE_U: u8 = 2;
/// Copy of a row-panel block (`v` operand of D).
pub const ROLE_V: u8 = 3;

type K = (usize, usize);
/// Tagged block stream flowing between the IM stages.
type Tagged<E> = Vec<(K, (u8, Block<E>))>;

fn pick<E>(group: &[(u8, Block<E>)], role: u8) -> Option<usize> {
    group.iter().position(|(r, _)| *r == role)
}

/// One IM iteration: consumes the DP table RDD for phase `k`, returns
/// the updated (not yet checkpointed) table RDD.
pub fn step<S: DpProblem>(
    dp: &Rdd<K, Block<S::Elem>>,
    k: usize,
    g: usize,
    b: usize,
    kernel: KernelSpec,
    partitions: usize,
    partitioner: Arc<dyn Partitioner<K>>,
) -> Result<Rdd<K, Block<S::Elem>>, JobError> {
    // ---- Stage 1: A kernel + copies to every consumer --------------
    let kc = kernel.clone();
    let kc_bc = kernel.clone();
    let kc_d = kernel;
    let a_all = dp
        .filter(move |key, _| filters::filter_a(*key, k))
        .map_partitions_to(move |_p, items, tc| {
            let mut out: Tagged<S::Elem> = Vec::new();
            for (key, mut blk) in items {
                apply_kernel::<S>(Kind::A, key, k, &mut blk, None, None, None, &kc, tc);
                for j in 0..g {
                    if filters::filter_b::<S>((k, j), k, b) {
                        out.push(((k, j), (ROLE_DIAG, blk.clone())));
                    }
                }
                for i in 0..g {
                    if filters::filter_c::<S>((i, k), k, b) {
                        out.push(((i, k), (ROLE_DIAG, blk.clone())));
                    }
                }
                // D kernels only need the diagonal when `f` reads `w`
                // (GE); FW-APSP and TC skip these (r-k-1)² copies.
                if S::USES_W {
                    for i in 0..g {
                        for j in 0..g {
                            if filters::filter_d::<S>((i, j), k, b) {
                                out.push(((i, j), (ROLE_DIAG, blk.clone())));
                            }
                        }
                    }
                }
                out.push((key, (ROLE_MAIN, blk)));
            }
            out
        });

    // ---- Stage 2: combine panels with the diagonal; run B and C ----
    let bc_mains = dp
        .filter(move |key, _| {
            filters::filter_b::<S>(*key, k, b) || filters::filter_c::<S>(*key, k, b)
        })
        .map_values(|blk| (ROLE_MAIN, blk));
    let abc_grouped = bc_mains
        .union(&a_all)
        .group_by_key(partitions, Arc::clone(&partitioner));
    let bc_out = abc_grouped.map_partitions_to(move |_p, groups, tc| {
        let mut out: Tagged<S::Elem> = Vec::new();
        for (key, mut group) in groups {
            if filters::filter_a(key, k) {
                // The diagonal block passes through to the final union.
                let main = pick(&group, ROLE_MAIN).expect("A main present");
                out.push((key, group.swap_remove(main)));
            } else if filters::filter_b::<S>(key, k, b) {
                let d = pick(&group, ROLE_DIAG).expect("B needs the diagonal copy");
                let diag = group.swap_remove(d).1;
                let m = pick(&group, ROLE_MAIN).expect("B main present");
                let mut blk = group.swap_remove(m).1;
                apply_kernel::<S>(
                    Kind::B,
                    key,
                    k,
                    &mut blk,
                    None,
                    None,
                    Some(&diag),
                    &kc_bc,
                    tc,
                );
                // Copies toward the D consumers in this block column.
                let j = key.1;
                for i in 0..g {
                    if filters::filter_d::<S>((i, j), k, b) {
                        out.push(((i, j), (ROLE_V, blk.clone())));
                    }
                }
                out.push((key, (ROLE_MAIN, blk)));
            } else if filters::filter_c::<S>(key, k, b) {
                let d = pick(&group, ROLE_DIAG).expect("C needs the diagonal copy");
                let diag = group.swap_remove(d).1;
                let m = pick(&group, ROLE_MAIN).expect("C main present");
                let mut blk = group.swap_remove(m).1;
                apply_kernel::<S>(
                    Kind::C,
                    key,
                    k,
                    &mut blk,
                    None,
                    None,
                    Some(&diag),
                    &kc_bc,
                    tc,
                );
                let i = key.0;
                for j in 0..g {
                    if filters::filter_d::<S>((i, j), k, b) {
                        out.push(((i, j), (ROLE_U, blk.clone())));
                    }
                }
                out.push((key, (ROLE_MAIN, blk)));
            } else {
                // Diagonal copies addressed to D blocks pass through to
                // the next stage (they were grouped here because the A
                // stage emits everything at once, as in Listing 1).
                for item in group {
                    out.push((key, item));
                }
            }
        }
        out
    });

    // ---- Stage 3: combine trailing blocks with operands; run D -----
    let d_mains = dp
        .filter(move |key, _| filters::filter_d::<S>(*key, k, b))
        .map_values(|blk| (ROLE_MAIN, blk));
    let d_grouped = d_mains
        .union(&bc_out)
        .group_by_key(partitions, Arc::clone(&partitioner));
    let updated = d_grouped.map_partitions_to(move |_p, groups, tc| {
        let mut out: Vec<(K, Block<S::Elem>)> = Vec::new();
        for (key, mut group) in groups {
            if filters::filter_d::<S>(key, k, b) {
                let m = pick(&group, ROLE_MAIN).expect("D main present");
                let mut blk = group.swap_remove(m).1;
                let u = pick(&group, ROLE_U).expect("D needs a U copy");
                let u_blk = group.swap_remove(u).1;
                let v = pick(&group, ROLE_V).expect("D needs a V copy");
                let v_blk = group.swap_remove(v).1;
                let w_blk = if S::USES_W {
                    let w = pick(&group, ROLE_DIAG).expect("D needs the diagonal");
                    Some(group.swap_remove(w).1)
                } else {
                    None
                };
                apply_kernel::<S>(
                    Kind::D,
                    key,
                    k,
                    &mut blk,
                    Some(&u_blk),
                    Some(&v_blk),
                    w_blk.as_ref(),
                    &kc_d,
                    tc,
                );
                out.push((key, blk));
            } else {
                // A/B/C mains pass through unchanged.
                let m = pick(&group, ROLE_MAIN).expect("main present");
                out.push((key, group.swap_remove(m).1));
            }
        }
        out
    });

    // ---- Wrap up: union untouched blocks, repartition ---------------
    let untouched = dp.filter(move |key, _| !filters::touched::<S>(*key, k, b));
    Ok(untouched
        .union(&updated)
        .partition_by(partitions, partitioner))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gep_kernels::Tropical;
    use sparklet::{GridPartitioner, SparkConf, SparkContext};

    /// Pin the stage graph the DAG scheduler extracts from one
    /// representative IM iteration: the two `group_by_key` joins chain
    /// into the final repartition, and the result stage hangs off the
    /// last shuffle. If stage extraction, fusion of the narrow
    /// filter/map chains, or the explain format drifts, this fails.
    #[test]
    fn explain_pins_the_im_iteration_stage_graph() {
        let g = 3;
        let b = 2;
        let parts = 4;
        let sc = SparkContext::new(
            SparkConf::default()
                .with_executors(2)
                .with_partitions(parts),
        );
        let mut blocks: Vec<(K, Block<f64>)> = Vec::new();
        for i in 0..g {
            for j in 0..g {
                blocks.push(((i, j), Block::Virtual { rows: b, cols: b }));
            }
        }
        let partitioner: Arc<dyn Partitioner<K>> = Arc::new(GridPartitioner::new(g));
        let dp = sc.parallelize_with(blocks, parts, Arc::clone(&partitioner));
        let next = step::<Tropical>(&dp, 1, g, b, KernelSpec::iterative(), parts, partitioner)
            .expect("IM iterations build lazily");
        let plan = next.explain();
        let expected = "\
== stage graph ==
stage shuffle#1 combine_by_key [8 map tasks -> 4 partitions] <- [input]
stage shuffle#2 combine_by_key [8 map tasks -> 4 partitions] <- [shuffle#1]
stage shuffle#3 partition_by [8 map tasks -> 4 partitions] <- [shuffle#2]
stage result <- [shuffle#3]
";
        assert!(
            plan.contains(expected),
            "stage graph drifted; explain() now prints:\n{plan}"
        );
    }
}
