//! Top-level solver: distribute the table, iterate phases, validate,
//! and (for paper-scale runs) map the event log to simulated seconds.

use std::sync::Arc;

use cluster_model::{ClusterSpec, CostModel, ModelParams};
use gep_kernels::padding::{pad_to_multiple, unpad};
use gep_kernels::Matrix;
use sparklet::{
    AdaptiveDecision, ChaosPolicy, GridPartitioner, HashPartitioner, JobError, Partitioner, Rdd,
    SparkConf, SparkContext,
};

use crate::aqe::{AqeAction, AqePlanner};
use crate::block::Block;
use crate::config::{DpConfig, Strategy};
use crate::problem::DpProblem;
use crate::{cb, im};

type K = (usize, usize);

/// Summary of a distributed run (for reports and tests).
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// Stages executed.
    pub stages: usize,
    /// Tasks executed.
    pub tasks: usize,
    /// Shuffle bytes crossing node boundaries.
    pub remote_bytes: u64,
    /// Map-output bytes staged to local storage.
    pub staged_bytes: u64,
    /// Bytes collected to the driver.
    pub collect_bytes: u64,
    /// Bytes broadcast via shared storage.
    pub broadcast_bytes: u64,
    /// Failed attempts re-launched via lineage retry.
    pub retries: u64,
    /// Straggler attempts re-launched speculatively.
    pub speculative_launches: u64,
    /// Late shuffle writes dropped by attempt fencing.
    pub zombie_writes_fenced: u64,
    /// Staged bytes released back by shuffle GC and retry
    /// reconciliation.
    pub staged_released_bytes: u64,
    /// Cached-partition reads served from either storage tier.
    pub cache_hits: u64,
    /// Cached-partition reads that found neither tier populated.
    pub cache_misses: u64,
    /// Cached bytes serialized into the disk tier (spills + `DiskOnly`
    /// puts).
    pub spilled_bytes: u64,
    /// Cached bytes dropped under memory pressure (recompute-backed
    /// evictions).
    pub evicted_bytes: u64,
    /// Lineage recomputations of dropped cached blocks.
    pub recomputes: u64,
    /// Highest number of stages the DAG scheduler had in flight
    /// simultaneously.
    pub max_concurrent_stages: u64,
    /// Adaptive re-plan decisions taken mid-job, in order (empty
    /// unless the context ran with `with_adaptive_execution`).
    pub adaptive_decisions: Vec<AdaptiveDecision>,
}

/// Build the run summary from a context's event log.
pub(crate) fn report_from(sc: &SparkContext) -> SolveReport {
    sc.with_event_log(|log| SolveReport {
        stages: log.stage_count(),
        tasks: log.task_count(),
        remote_bytes: log.total_remote_bytes(),
        staged_bytes: log.total_staged_bytes(),
        collect_bytes: log.total_collect_bytes(),
        broadcast_bytes: log.total_broadcast_bytes(),
        retries: log.total_retries(),
        speculative_launches: log.total_speculative_launches(),
        zombie_writes_fenced: log.total_zombie_writes_fenced(),
        staged_released_bytes: log.total_staged_released_bytes(),
        cache_hits: log.total_cache_hits(),
        cache_misses: log.total_cache_misses(),
        spilled_bytes: log.total_spilled_bytes(),
        evicted_bytes: log.total_evicted_bytes(),
        recomputes: log.total_recomputes(),
        max_concurrent_stages: log.max_concurrent_stages(),
        adaptive_decisions: log.decisions().to_vec(),
    })
}

fn partitioner_for(cfg: &DpConfig) -> Arc<dyn Partitioner<K>> {
    if cfg.grid_partitioner {
        Arc::new(GridPartitioner::new(cfg.grid()))
    } else {
        Arc::new(HashPartitioner)
    }
}

/// Run the distributed GEP loop over an already-created block RDD.
///
/// Under `SparkConf::with_adaptive_execution` the loop consults an
/// [`AqePlanner`] after each iteration commits: the planner reads the
/// iteration's event-log records and may coalesce/split the partition
/// count (a divisor-coalesce stays narrow and keeps the partitioner
/// signature, so the next `partition_by` elides its shuffle), switch
/// IM↔CB, re-pick the recursive fan-out, or re-tier storage. Every
/// adopted decision is logged to the event log.
fn run_loop<S: DpProblem>(
    sc: &SparkContext,
    cfg: &DpConfig,
    mut dp: Rdd<K, Block<S::Elem>>,
) -> Result<Rdd<K, Block<S::Elem>>, JobError> {
    cfg.validate()
        .unwrap_or_else(|e| panic!("invalid DpConfig: {e}"));
    let g = cfg.grid();
    let b = cfg.block;
    let mut partitions = cfg.partitions.unwrap_or(sc.conf().default_partitions);
    let mut strategy = cfg.strategy;
    let mut kernel = cfg.kernel.clone();
    // A context-level backend override (e.g. `DP_KERNEL_BACKEND` via
    // the sparklet conf) rebinds the spec's primary backend while
    // keeping its params and fallback chain — the hook the CI matrix
    // uses to run the whole suite per backend.
    if let Some(name) = sc.conf().kernel_backend.as_deref() {
        kernel.backend = name.to_string();
    }
    let partitioner = partitioner_for(cfg);
    let mut level = cfg.storage_level.unwrap_or_else(|| match cfg.strategy {
        Strategy::InMemory => im::default_storage_level(),
        Strategy::CollectBroadcast => cb::default_storage_level(),
    });
    let mut planner = sc
        .conf()
        .adaptive_execution
        .then(|| AqePlanner::new(sc, cfg, std::mem::size_of::<S::Elem>()));
    // Apply one adopted decision to the loop's mutable plan state and
    // log it. A divisor shrink goes through `coalesce` (narrow, keeps
    // the partitioner signature so the next `partition_by` elides its
    // shuffle); anything else re-shuffles once.
    let apply = |d: &crate::aqe::AqeDecision,
                 iteration: u64,
                 dp: &mut Rdd<K, Block<S::Elem>>,
                 partitions: &mut usize,
                 strategy: &mut Strategy,
                 kernel: &mut crate::backend::KernelSpec,
                 level: &mut sparklet::StorageLevel,
                 partitioner: &Arc<dyn Partitioner<K>>| {
        match &d.action {
            AqeAction::Repartition(p) => {
                let p = *p;
                *dp = if p < *partitions && partitions.is_multiple_of(p) {
                    dp.coalesce(p)
                } else {
                    dp.partition_by(p, Arc::clone(partitioner))
                };
                *partitions = p;
            }
            AqeAction::SwitchStrategy(s) => *strategy = *s,
            AqeAction::Retune(spec) => *kernel = spec.clone(),
            AqeAction::Retier(lv) => *level = *lv,
        }
        sc.log_adaptive_decision(iteration, &d.label, &d.reason);
    };
    if let Some(planner) = planner.as_mut() {
        for d in planner.plan_initial::<S>(cfg, partitions, strategy, &kernel) {
            apply(
                &d,
                0,
                &mut dp,
                &mut partitions,
                &mut strategy,
                &mut kernel,
                &mut level,
                &partitioner,
            );
        }
    }
    for k in 0..g {
        let next = match strategy {
            Strategy::InMemory => im::step::<S>(
                &dp,
                k,
                g,
                b,
                kernel.clone(),
                partitions,
                Arc::clone(&partitioner),
            )?,
            Strategy::CollectBroadcast => cb::step::<S>(
                sc,
                &dp,
                k,
                g,
                b,
                kernel.clone(),
                partitions,
                Arc::clone(&partitioner),
                level,
                cfg.recompute_on_evict,
            )?,
        };
        // Materialize the iteration (the paper's programs are bounded
        // the same way: each iteration's output feeds the next). The
        // checkpoint cuts the lineage, so dropping `next` at the end
        // of this iteration releases the consumed shuffles' staged
        // bytes individually (per-shuffle GC — Spark's ContextCleaner
        // role), keeping long runs clear of the staging cap. With
        // `recompute_on_evict` the materialization is a `persist`
        // instead: lineage is retained (upstream shuffles stay staged)
        // so blocks may be dropped under memory pressure and rebuilt
        // on demand.
        dp = if cfg.recompute_on_evict {
            next.persist(level)?
        } else {
            next.checkpoint_with_level(level)?
        };
        if let Some(planner) = planner.as_mut() {
            if k + 1 < g {
                for d in planner.replan::<S>(sc, cfg, k, partitions, strategy, &kernel, level) {
                    apply(
                        &d,
                        k as u64,
                        &mut dp,
                        &mut partitions,
                        &mut strategy,
                        &mut kernel,
                        &mut level,
                        &partitioner,
                    );
                }
            }
        }
    }
    Ok(dp)
}

/// Solve a GEP instance on the engine and return the resulting table
/// (same shape as `input`; virtual padding applied and removed
/// internally).
pub fn solve<S: DpProblem>(
    sc: &SparkContext,
    cfg: &DpConfig,
    input: &Matrix<S::Elem>,
) -> Result<Matrix<S::Elem>, JobError> {
    assert_eq!(input.rows(), input.cols(), "GEP tables are square");
    assert_eq!(input.rows(), cfg.n, "config/problem size mismatch");
    assert!(!cfg.virtual_data, "use solve_virtual for virtual runs");
    let padded = pad_to_multiple::<S>(input, cfg.block);
    let g = cfg.grid();
    let b = cfg.block;
    let mut blocks: Vec<(K, Block<S::Elem>)> = Vec::with_capacity(g * g);
    for i in 0..g {
        for j in 0..g {
            blocks.push(((i, j), Block::Real(padded.copy_block(i * b, j * b, b, b))));
        }
    }
    let partitions = cfg.partitions.unwrap_or(sc.conf().default_partitions);
    let dp = sc.parallelize_with(blocks, partitions, partitioner_for(cfg));
    let dp = run_loop::<S>(sc, cfg, dp)?;
    let items = dp.collect()?;
    let mut out = Matrix::filled(g * b, g * b, S::padding_value(0, 1));
    for ((i, j), blk) in items {
        out.paste_block(i * b, j * b, blk.expect_real());
    }
    Ok(unpad(&out, cfg.n))
}

/// Like [`solve`], but also returns the run summary (stages, traffic,
/// cache behaviour) alongside the resulting table.
pub fn solve_with_report<S: DpProblem>(
    sc: &SparkContext,
    cfg: &DpConfig,
    input: &Matrix<S::Elem>,
) -> Result<(Matrix<S::Elem>, SolveReport), JobError> {
    let out = solve::<S>(sc, cfg, input)?;
    Ok((out, report_from(sc)))
}

/// Like [`solve_with_report`], but with a [`ChaosPolicy`] installed on
/// the context before the run: every task attempt consults the policy,
/// so a seeded deterministic context (`SparkConf::with_sim_seed`)
/// replays the exact same fault schedule from the seed. The policy is
/// removed again afterwards so later jobs on the context run clean.
pub fn solve_chaos<S: DpProblem>(
    sc: &SparkContext,
    cfg: &DpConfig,
    input: &Matrix<S::Elem>,
    chaos: ChaosPolicy,
) -> Result<(Matrix<S::Elem>, SolveReport), JobError> {
    sc.install_chaos(chaos);
    let res = solve_with_report::<S>(sc, cfg, input);
    sc.clear_chaos();
    res
}

/// Run the identical dataflow with virtual blocks: kernels become cost
/// records, bytes are declared at full scale. Returns the run summary.
pub fn solve_virtual<S: DpProblem>(
    sc: &SparkContext,
    cfg: &DpConfig,
) -> Result<SolveReport, JobError> {
    assert!(cfg.padded_n().is_multiple_of(cfg.block));
    let g = cfg.grid();
    let b = cfg.block;
    let mut blocks: Vec<(K, Block<S::Elem>)> = Vec::with_capacity(g * g);
    for i in 0..g {
        for j in 0..g {
            blocks.push(((i, j), Block::Virtual { rows: b, cols: b }));
        }
    }
    let partitions = cfg.partitions.unwrap_or(sc.conf().default_partitions);
    let dp = sc.parallelize_with(blocks, partitions, partitioner_for(cfg));
    let dp = run_loop::<S>(sc, cfg, dp)?;
    let n_blocks = dp.count()?;
    debug_assert_eq!(n_blocks, g * g, "table must stay complete");
    Ok(report_from(sc))
}

/// Paper-scale timing: run the full dataflow virtually on a context
/// shaped like `cluster`, then price the event log with the cost model.
/// Returns simulated seconds.
pub fn simulate_seconds<S: DpProblem>(
    cluster: &ClusterSpec,
    executor_cores: usize,
    cfg: &DpConfig,
    params: Option<ModelParams>,
) -> Result<f64, JobError> {
    let partitions = cfg
        .partitions
        .unwrap_or_else(|| cluster.default_partitions());
    let conf = SparkConf::default()
        .with_executors(cluster.nodes)
        .with_executor_cores(executor_cores)
        .with_partitions(partitions)
        .with_worker_threads(1)
        .with_staging_capacity(cluster.storage.capacity);
    let sc = SparkContext::new(conf);
    solve_virtual::<S>(&sc, cfg)?;
    let mut model = CostModel::new(cluster.clone(), executor_cores);
    if let Some(p) = params {
        model = model.with_params(p);
    }
    let records = sc.with_event_log(|log| log.records());
    Ok(model.job_seconds(&records))
}
