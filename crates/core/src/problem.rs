//! Problem extension: what `dp-core` needs on top of a GEP spec.

use gep_kernels::gep::{Kind, SemiringPaths};
use gep_kernels::semiring::Semiring;
use gep_kernels::{GaussianElim, GepSpec, TransitiveClosure, Tropical};

use crate::block::ElemCodec;

/// A GEP instance runnable on the distributed engine. Adds exact update
/// counts per kernel kind (for cost accounting) on top of the
/// element-codec requirement.
pub trait DpProblem: GepSpec<Elem: ElemCodec> {
    /// Exact number of `(i,j,k)` updates a `b×b` block kernel of `kind`
    /// performs (the |Σ_G ∩ block| volume). Drives the cost model's
    /// compute pricing.
    fn updates_for(kind: Kind, b: usize) -> f64;
}

impl DpProblem for Tropical {
    fn updates_for(_kind: Kind, b: usize) -> f64 {
        // FW-APSP updates every (i, j) for every k.
        (b as f64).powi(3)
    }
}

impl DpProblem for TransitiveClosure {
    fn updates_for(_kind: Kind, b: usize) -> f64 {
        (b as f64).powi(3)
    }
}

impl<S: Semiring + ElemCodec> DpProblem for SemiringPaths<S> {
    fn updates_for(_kind: Kind, b: usize) -> f64 {
        (b as f64).powi(3)
    }
}

impl DpProblem for GaussianElim {
    fn updates_for(kind: Kind, b: usize) -> f64 {
        let bf = b as f64;
        match kind {
            // Σ_{t=0}^{b-1} (b-1-t)² = (b-1)b(2b-1)/6
            Kind::A => (bf - 1.0) * bf * (2.0 * bf - 1.0) / 6.0,
            // Rows (or columns) restricted to i>k within the diagonal's
            // range, the other dimension full: Σ (b-1-t)·b = b²(b-1)/2
            Kind::B | Kind::C => bf * bf * (bf - 1.0) / 2.0,
            // Trailing blocks: full b³.
            Kind::D => bf.powi(3),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gep_kernels::Matrix;

    /// Count updates by brute force against the sigma predicates.
    fn brute_force<S: DpProblem>(kind: Kind, b: usize) -> f64 {
        // Model a block at grid position chosen per kind with kb = 0:
        // A at (0,0), B at (0,1), C at (1,0), D at (1,1).
        let (bi, bj) = match kind {
            Kind::A => (0, 0),
            Kind::B => (0, 1),
            Kind::C => (1, 0),
            Kind::D => (1, 1),
        };
        let mut count = 0u64;
        for k in 0..b {
            for i in 0..b {
                if !S::sigma_i(bi * b + i, k) {
                    continue;
                }
                for j in 0..b {
                    if S::sigma_j(bj * b + j, k) {
                        count += 1;
                    }
                }
            }
        }
        count as f64
    }

    #[test]
    fn ge_update_counts_match_brute_force() {
        for b in [4usize, 8, 13] {
            for kind in [Kind::A, Kind::B, Kind::C, Kind::D] {
                assert_eq!(
                    GaussianElim::updates_for(kind, b),
                    brute_force::<GaussianElim>(kind, b),
                    "kind {kind:?} b {b}"
                );
            }
        }
    }

    #[test]
    fn fw_update_counts_match_brute_force() {
        for b in [4usize, 7] {
            for kind in [Kind::A, Kind::B, Kind::C, Kind::D] {
                assert_eq!(
                    Tropical::updates_for(kind, b),
                    brute_force::<Tropical>(kind, b)
                );
            }
        }
        let _ = Matrix::square(1, 0.0f64); // keep Matrix import honest
    }
}
