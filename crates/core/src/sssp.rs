//! Partitioned multi-source SSSP over sparse CSR tiles — the sparse
//! representation's execution path for APSP (after Schoeneman & Zola's
//! observation that for low-density graphs, running Bellman–Ford-style
//! relaxation sweeps from every source beats the dense blocked
//! Floyd–Warshall recurrence, whose work is n³ regardless of density).
//!
//! The graph's `n` vertices are dealt to `parts` contiguous ranges
//! ([`filters::part_bounds`]). Each partition holds one [`SweepVal::State`]
//! value: its owned rows of the global edge matrix (a sparse
//! [`Block::Sparse`] tile), the `sources × owned` slab of the distance
//! table (dense — it fills in as the search expands), and a `changed`
//! counter that drives the frontier predicate
//! ([`filters::sweep_active`]). One round is two Spark-style stages:
//!
//! 1. **Sweep** — every *active* partition relaxes all its stored
//!    edges through the registry-resolved sparse backend
//!    ([`crate::kernels::apply_sweep`], which records nnz-priced
//!    [`cluster_model`] invocations), then cuts the candidate matrix
//!    into per-destination-partition sparse update tiles (dropping
//!    empty ones — the sparse analogue of IM's copy flat-map);
//! 2. **Merge** — a `group_by_key` delivers each partition its state
//!    plus incoming update tiles; the merge folds them in with `min`
//!    and recounts `changed` by comparing the old and new distance
//!    slabs (order-independent, so chaos-induced retries replay to the
//!    same bits).
//!
//! The driver loop counts active partitions per round and stops when
//! the frontier is empty; more than `n` rounds means a negative-weight
//! cycle is reachable and the job fails with a typed driver error.
//! Every value rides the same [`sparklet::Storable`] wire frames as
//! the dense path, so checkpoints, chaos, the tiered store, and the
//! transport all apply unchanged.

use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use gep_kernels::sparse::Csr;
use gep_kernels::{Matrix, Tropical};
use sparklet::{ChaosPolicy, HashPartitioner, JobError, Partitioner, SparkContext, Storable};

use crate::backend::{KernelSpec, SWEEP};
use crate::block::Block;
use crate::filters;
use crate::im;
use crate::kernels::apply_sweep;
use crate::solver::{report_from, SolveReport};

/// Value of the sweep-path RDD, keyed by partition id.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepVal {
    /// A partition's long-lived state.
    State {
        /// Owned rows of the global edge matrix (`owned × n`, sparse).
        edges: Block<f64>,
        /// Distance slab (`sources × owned`, dense).
        dist: Block<f64>,
        /// Cells of `dist` that improved last round (frontier signal).
        changed: u64,
    },
    /// A sparse tile of candidate distances addressed to the key's
    /// owned column range (`sources × owned`, column-rebased).
    Updates(Block<f64>),
}

const TAG_STATE: u8 = 0;
const TAG_UPDATES: u8 = 1;

impl Storable for SweepVal {
    fn encoded_len(&self) -> usize {
        match self {
            SweepVal::State { edges, dist, .. } => 1 + edges.encoded_len() + dist.encoded_len() + 8,
            SweepVal::Updates(b) => 1 + b.encoded_len(),
        }
    }

    fn encode(&self, buf: &mut BytesMut) {
        match self {
            SweepVal::State {
                edges,
                dist,
                changed,
            } => {
                buf.put_u8(TAG_STATE);
                edges.encode(buf);
                dist.encode(buf);
                buf.put_u64_le(*changed);
            }
            SweepVal::Updates(b) => {
                buf.put_u8(TAG_UPDATES);
                b.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, JobError> {
        if buf.remaining() < 1 {
            return Err(JobError::Codec("sweep value: empty buffer".into()));
        }
        match buf.get_u8() {
            TAG_STATE => {
                let edges = Block::decode(buf)?;
                let dist = Block::decode(buf)?;
                if buf.remaining() < 8 {
                    return Err(JobError::Codec("sweep state: truncated counter".into()));
                }
                let changed = buf.get_u64_le();
                Ok(SweepVal::State {
                    edges,
                    dist,
                    changed,
                })
            }
            TAG_UPDATES => Ok(SweepVal::Updates(Block::decode(buf)?)),
            t => Err(JobError::Codec(format!("sweep value: unknown tag {t}"))),
        }
    }

    fn approx_bytes(&self) -> usize {
        match self {
            SweepVal::State { edges, dist, .. } => {
                1 + edges.approx_bytes() + dist.approx_bytes() + 8
            }
            SweepVal::Updates(b) => 1 + b.approx_bytes(),
        }
    }
}

/// Multi-source shortest paths on the engine: distances from each of
/// `sources` to every vertex of the CSR graph, as a
/// `sources.len() × n` matrix. Absent edges are `edges.fill()`
/// (conventionally `+∞`); unreachable vertices stay at `+∞`.
///
/// Results are bitwise-deterministic and independent of `parts` (a
/// pure execution knob): every candidate distance is the same
/// left-to-right path sum a sequential Bellman–Ford forms, and `min`
/// over an identical candidate set is order-blind.
pub fn solve_sparse_apsp(
    sc: &SparkContext,
    edges: &Csr<f64>,
    sources: &[u32],
    parts: usize,
) -> Result<Matrix<f64>, JobError> {
    assert_eq!(edges.rows(), edges.cols(), "graph adjacency must be square");
    let n = edges.rows();
    for &s in sources {
        assert!((s as usize) < n, "source {s} out of range for n={n}");
    }
    let inf = f64::INFINITY;
    if n == 0 || sources.is_empty() {
        return Ok(Matrix::filled(sources.len(), n, inf));
    }
    let parts = parts.clamp(1, n);
    // The sparse path resolves against the representation-gated chain;
    // `sweep` is the one built-in that accepts CSR tiles. Context-level
    // dense-backend overrides (`DP_KERNEL_BACKEND`) do not rebind it —
    // they name dense kernels, which `resolve_for` would reject.
    let kernel = KernelSpec::named(SWEEP);
    let sources_v = sources.to_vec();

    let mut init: Vec<(usize, SweepVal)> = Vec::with_capacity(parts);
    for q in 0..parts {
        let (lo, hi) = filters::part_bounds(n, parts, q);
        let mut dist = Matrix::filled(sources.len(), hi - lo, inf);
        let mut seeded = false;
        for (s, &src) in sources.iter().enumerate() {
            let src = src as usize;
            if (lo..hi).contains(&src) {
                dist.set(s, src - lo, 0.0);
                seeded = true;
            }
        }
        init.push((
            q,
            SweepVal::State {
                edges: Block::Sparse(edges.row_slab(lo, hi)),
                dist: Block::Real(dist),
                changed: u64::from(seeded),
            },
        ));
    }

    let partitioner: Arc<dyn Partitioner<usize>> = Arc::new(HashPartitioner);
    let level = im::default_storage_level();
    let mut state = sc.parallelize_with(init, parts, Arc::clone(&partitioner));
    let mut rounds = 0usize;
    loop {
        let active = state
            .filter(|_, v| {
                matches!(v, SweepVal::State { changed, .. } if filters::sweep_active(*changed))
            })
            .count()?;
        if active == 0 {
            break;
        }
        // Shortest paths use at most n-1 edges and each round extends
        // candidate paths by one edge, so a live frontier after n
        // rounds can only mean a negative-weight cycle keeps improving
        // some distance forever.
        if rounds >= n {
            return Err(JobError::Driver(format!(
                "sparse APSP did not converge after {n} rounds: \
                 a negative-weight cycle is reachable from a source"
            )));
        }
        rounds += 1;

        let kc = kernel.clone();
        let swept = state.map_partitions_to(move |_p, items, tc| {
            let mut out: Vec<(usize, SweepVal)> = Vec::new();
            for (q, v) in items {
                let SweepVal::State {
                    edges,
                    dist,
                    changed,
                } = v
                else {
                    unreachable!("merge stages never emit update tiles")
                };
                if filters::sweep_active(changed) {
                    let dm = dist.expect_real();
                    let mut cand = Matrix::filled(dm.rows(), n, inf);
                    apply_sweep::<Tropical>(&edges, dm, inf, &mut cand, &kc, tc);
                    for t in 0..parts {
                        let (lo, hi) = filters::part_bounds(n, parts, t);
                        let tile = Csr::from_dense_cols(&cand, lo, hi, inf);
                        if tile.nnz() > 0 {
                            out.push((t, SweepVal::Updates(Block::Sparse(tile))));
                        }
                    }
                }
                out.push((
                    q,
                    SweepVal::State {
                        edges,
                        dist,
                        changed: 0,
                    },
                ));
            }
            out
        });

        let grouped = swept.group_by_key(parts, Arc::clone(&partitioner));
        let merged = grouped.map_partitions_to(move |_p, groups, _tc| {
            let mut out: Vec<(usize, SweepVal)> = Vec::new();
            for (q, vals) in groups {
                let mut state_edges: Option<Block<f64>> = None;
                let mut dist: Option<Matrix<f64>> = None;
                let mut tiles: Vec<Block<f64>> = Vec::new();
                for v in vals {
                    match v {
                        SweepVal::State { edges, dist: d, .. } => {
                            state_edges = Some(edges);
                            dist = Some(match d {
                                Block::Real(m) => m,
                                other => panic!(
                                    "sweep state distances must be dense, got {:?}",
                                    other.repr()
                                ),
                            });
                        }
                        SweepVal::Updates(b) => tiles.push(b),
                    }
                }
                let edges = state_edges.expect("every partition carries its state");
                let mut dist = dist.expect("state carries the distance slab");
                let old = dist.clone();
                for tile in &tiles {
                    let csr = tile.expect_sparse();
                    for s in 0..csr.rows() {
                        for (j, w) in csr.row(s) {
                            if w < dist.get(s, j) {
                                dist.set(s, j, w);
                            }
                        }
                    }
                }
                // Recount the frontier against the pre-merge slab, not
                // per-tile: two tiles improving one cell is one change,
                // whatever order the shuffle delivered them in.
                let changed = old
                    .as_slice()
                    .iter()
                    .zip(dist.as_slice())
                    .filter(|(a, b)| a != b)
                    .count() as u64;
                out.push((
                    q,
                    SweepVal::State {
                        edges,
                        dist: Block::Real(dist),
                        changed,
                    },
                ));
            }
            out
        });
        state = merged.checkpoint_with_level(level)?;
    }

    let mut out = Matrix::filled(sources_v.len(), n, inf);
    for (q, v) in state.collect()? {
        let SweepVal::State { dist, .. } = v else {
            unreachable!("converged state holds no update tiles")
        };
        let (lo, _) = filters::part_bounds(n, parts, q);
        out.paste_block(0, lo, dist.expect_real());
    }
    Ok(out)
}

/// Like [`solve_sparse_apsp`], but also returns the run summary.
pub fn solve_sparse_apsp_with_report(
    sc: &SparkContext,
    edges: &Csr<f64>,
    sources: &[u32],
    parts: usize,
) -> Result<(Matrix<f64>, SolveReport), JobError> {
    let out = solve_sparse_apsp(sc, edges, sources, parts)?;
    Ok((out, report_from(sc)))
}

/// Like [`solve_sparse_apsp_with_report`], but with a [`ChaosPolicy`]
/// installed for the duration of the run (removed afterwards), so a
/// seeded context replays the identical fault schedule.
pub fn solve_sparse_apsp_chaos(
    sc: &SparkContext,
    edges: &Csr<f64>,
    sources: &[u32],
    parts: usize,
    chaos: ChaosPolicy,
) -> Result<(Matrix<f64>, SolveReport), JobError> {
    sc.install_chaos(chaos);
    let res = solve_sparse_apsp_with_report(sc, edges, sources, parts);
    sc.clear_chaos();
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use gep_kernels::graph::{bellman_ford, sparse_erdos_renyi};
    use sparklet::SparkConf;

    fn ctx() -> SparkContext {
        SparkContext::new(
            SparkConf::default()
                .with_executors(2)
                .with_partitions(4)
                .with_sim_seed(7),
        )
    }

    #[test]
    fn sweep_value_roundtrips_both_variants() {
        let inf = f64::INFINITY;
        let dense = Matrix::from_fn(2, 3, |i, j| if i == j { 1.5 } else { inf });
        let state = SweepVal::State {
            edges: Block::Sparse(Csr::from_dense(&dense, inf)),
            dist: Block::Real(Matrix::filled(2, 3, 4.0)),
            changed: 9,
        };
        let upd = SweepVal::Updates(Block::Sparse(Csr::from_dense(&dense, inf)));
        for v in [state, upd] {
            let mut buf = BytesMut::new();
            v.encode(&mut buf);
            assert_eq!(buf.len(), v.encoded_len(), "encoded_len is exact");
            let mut bytes = buf.freeze();
            assert_eq!(SweepVal::decode(&mut bytes).unwrap(), v);
            assert!(bytes.is_empty());
        }
    }

    #[test]
    fn sweep_value_decode_rejects_garbage_without_panicking() {
        let mut empty = Bytes::new();
        assert!(matches!(
            SweepVal::decode(&mut empty),
            Err(JobError::Codec(_))
        ));
        let mut bad_tag = Bytes::from_static(&[9, 0, 0]);
        assert!(matches!(
            SweepVal::decode(&mut bad_tag),
            Err(JobError::Codec(_))
        ));
        // A state whose trailing counter is truncated.
        let inf = f64::INFINITY;
        let v = SweepVal::State {
            edges: Block::Sparse(Csr::from_dense(&Matrix::filled(1, 1, inf), inf)),
            dist: Block::Real(Matrix::filled(1, 1, 0.0)),
            changed: 1,
        };
        let mut buf = BytesMut::new();
        v.encode(&mut buf);
        let mut short = buf.freeze().slice(0..v.encoded_len() - 3);
        assert!(matches!(
            SweepVal::decode(&mut short),
            Err(JobError::Codec(_))
        ));
    }

    #[test]
    fn sparse_apsp_matches_bellman_ford_bitwise() {
        let n = 23;
        let g = sparse_erdos_renyi(n, 0.15, 1.0, 10.0, 42);
        let adj = g.to_dense();
        let sources: Vec<u32> = (0..n as u32).collect();
        let sc = ctx();
        let out = solve_sparse_apsp(&sc, &g, &sources, 3).unwrap();
        for (s, &src) in sources.iter().enumerate() {
            let oracle = bellman_ford(&adj, src as usize).expect("no negative cycles");
            for (v, d) in oracle.iter().enumerate() {
                assert_eq!(out.get(s, v).to_bits(), d.to_bits(), "src={src} v={v}");
            }
        }
    }

    #[test]
    fn partition_count_is_an_execution_knob_not_a_result_knob() {
        let n = 17;
        let g = sparse_erdos_renyi(n, 0.2, 0.5, 4.0, 11);
        let sources = [0u32, 5, 16];
        let base = solve_sparse_apsp(&ctx(), &g, &sources, 1).unwrap();
        for parts in [2, 3, 5, 17, 64] {
            let out = solve_sparse_apsp(&ctx(), &g, &sources, parts).unwrap();
            assert_eq!(
                base.first_difference(&out),
                None,
                "parts={parts} drifted from the single-partition run"
            );
        }
    }

    #[test]
    fn empty_source_set_is_a_trivial_run() {
        let g = sparse_erdos_renyi(6, 0.3, 1.0, 2.0, 1);
        let out = solve_sparse_apsp(&ctx(), &g, &[], 2).unwrap();
        assert_eq!((out.rows(), out.cols()), (0, 6));
    }

    #[test]
    fn negative_cycle_is_a_typed_driver_error() {
        // 0 → 1 → 0 with total weight -1, plus a source that reaches it.
        let inf = f64::INFINITY;
        let m = Matrix::from_vec(3, 3, vec![inf, 2.0, inf, -3.0, inf, 1.0, inf, inf, inf]);
        let g = Csr::from_dense(&m, inf);
        let err = solve_sparse_apsp(&ctx(), &g, &[0], 2).unwrap_err();
        assert!(matches!(err, JobError::Driver(ref msg) if msg.contains("negative")));
    }

    #[test]
    fn disconnected_vertices_stay_unreachable() {
        // Two components: {0,1} and {2}.
        let inf = f64::INFINITY;
        let m = Matrix::from_vec(3, 3, vec![inf, 1.0, inf, 1.0, inf, inf, inf, inf, inf]);
        let g = Csr::from_dense(&m, inf);
        let out = solve_sparse_apsp(&ctx(), &g, &[0, 2], 3).unwrap();
        assert_eq!(out.get(0, 0), 0.0);
        assert_eq!(out.get(0, 1), 1.0);
        assert_eq!(out.get(0, 2), inf);
        assert_eq!(out.get(1, 2), 0.0);
        assert_eq!(out.get(1, 0), inf);
    }
}
