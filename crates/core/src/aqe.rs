//! Adaptive query execution: re-plan the remaining GEP iterations from
//! live stage metrics.
//!
//! Spark 3's AQE re-optimizes a query between stages using runtime
//! statistics; the analogue for the paper's bounded-iteration DP jobs
//! is a driver-side loop that, after each iteration commits, feeds the
//! *measured* event-log records (bytes moved, kernel updates, spill
//! and eviction counters) into the `cluster-model` cost terms and
//! decides for the iterations still to run:
//!
//! * **partition count** — the GEP active set shrinks phase by phase
//!   (for Gaussian elimination, phase `k` touches `(g-k)²` blocks), so
//!   the per-task overhead of a wide partition count eventually
//!   outweighs its parallelism. The planner prices candidate counts
//!   (divisors of the current count, so [`sparklet::Rdd::coalesce`]
//!   stays narrow *and* keeps the partitioner signature, plus one 2×
//!   split) against the model and coalesces or splits the winner.
//! * **strategy** — IM's wide shuffles are priced against CB's serial
//!   driver collect/broadcast phase at the *next* phase's volumes; the
//!   loop switches when the other pattern wins by a clear margin.
//! * **kernel shape** — for recursive kernels, `r_shared` is re-picked
//!   per level from [`cluster_model::CostModel::core_seconds`].
//! * **storage tier** — observed spills or evictions under
//!   `MemoryOnly` re-tier the materialization level to
//!   `MemoryAndDisk` (one-way: never flaps back).
//!
//! Every input is a recorded byte count or task count — never host
//! wall time — so under [`sparklet::SparkConf::with_sim_seed`] the
//! decision sequence is a pure function of the seed and replays
//! bit-identically. Each adopted decision is recorded via
//! [`sparklet::SparkContext::log_adaptive_decision`] and surfaces in
//! [`crate::SolveReport::adaptive_decisions`].

use cluster_model::{
    ClusterSpec, CostModel, KernelInvocation, KernelType, StageRecord, TaskRecord,
};
use sparklet::{GridPartitioner, HashPartitioner, Partitioner, SparkContext, StorageLevel};

use crate::backend::{registry, KernelBackend, KernelSpec};
use crate::config::{DpConfig, Strategy};
use crate::filters;
use crate::problem::DpProblem;

/// Wide-ish stages one IM iteration runs (combine ×2 + repartition +
/// materialize) — overhead multiplier for modeled iteration cost.
const IM_STAGES_PER_ITER: usize = 4;
/// Stages one CB iteration runs (collect/broadcast pseudo-stages,
/// kernel maps, materialize).
const CB_STAGES_PER_ITER: usize = 6;
/// Relative improvement a re-plan must promise before it is adopted
/// (hysteresis against flapping on model noise).
const REPLAN_MARGIN: f64 = 0.95;
/// Stronger margin for strategy switches, which change the stage graph
/// wholesale.
const STRATEGY_MARGIN: f64 = 0.80;

/// One adopted re-plan step.
#[derive(Debug, Clone, PartialEq)]
pub enum AqeAction {
    /// Change the RDD partition count for the remaining iterations
    /// (coalesce when it shrinks by a divisor, shuffle split otherwise).
    Repartition(usize),
    /// Switch the distribution strategy for the remaining iterations.
    SwitchStrategy(Strategy),
    /// Change the executor kernel shape for the remaining iterations.
    Retune(KernelSpec),
    /// Re-tier the materialization storage level.
    Retier(StorageLevel),
}

/// An adopted decision plus its audit strings (what/why), as logged to
/// the event log.
#[derive(Debug, Clone, PartialEq)]
pub struct AqeDecision {
    /// The plan change to apply.
    pub action: AqeAction,
    /// Machine-readable label, e.g. `coalesce:64->16`.
    pub label: String,
    /// The cost comparison that drove it.
    pub reason: String,
}

/// What one iteration measurably did, aggregated from the event-log
/// records it appended.
#[derive(Debug, Clone, Copy, Default)]
struct IterStats {
    shuffle_bytes: u64,
    updates: f64,
    collect_bytes: u64,
    broadcast_bytes: u64,
    spilled_bytes: u64,
    evicted_bytes: u64,
}

/// Driver-side adaptive planner. One instance lives for the duration
/// of a solve; it keeps a watermark into the event log so each replan
/// only reads the records of the iteration that just committed.
pub struct AqePlanner {
    model: CostModel,
    stage_watermark: usize,
    min_partitions: usize,
    elem_bytes: usize,
    retiered: bool,
}

impl AqePlanner {
    /// Planner for a run on `sc`, pricing with a model shaped like the
    /// context (node count, cores) on the reference cluster node.
    pub fn new(sc: &SparkContext, cfg: &DpConfig, elem_bytes: usize) -> Self {
        let conf = sc.conf();
        let spec = ClusterSpec::skylake().with_nodes(conf.executors);
        AqePlanner {
            model: CostModel::new(spec, conf.executor_cores),
            stage_watermark: sc.with_event_log(|log| log.stage_count()),
            min_partitions: cfg.min_partitions.unwrap_or(conf.executors).max(1),
            elem_bytes,
            retiered: false,
        }
    }

    /// Planner with an explicit cost model (tests, custom clusters).
    pub fn with_model(mut self, model: CostModel) -> Self {
        self.model = model;
        self
    }

    /// Model-only plan for iteration 0, taken before anything runs:
    /// phase volumes are estimated exactly from the problem's filters
    /// and per-kind update counts (no measurements exist yet), and the
    /// partition count is re-picked the same way [`Self::replan`]
    /// does. Measured records then refine the plan every iteration.
    pub fn plan_initial<S: DpProblem>(
        &mut self,
        cfg: &DpConfig,
        partitions: usize,
        strategy: Strategy,
        kernel: &KernelSpec,
    ) -> Vec<AqeDecision> {
        let backend = registry::<S>()
            .resolve(kernel)
            .unwrap_or_else(|e| panic!("{e}"));
        let kt = backend.kernel_type(&kernel.params);
        let g = cfg.grid();
        let b = cfg.block;
        let keys = active_keys::<S>(0, g, b);
        if keys.is_empty() {
            return Vec::new();
        }
        let updates: f64 = keys
            .iter()
            .filter_map(|&key| filters::kind_of::<S>(key, 0, b))
            .map(|kind| S::updates_for(kind, b))
            .sum();
        let block_bytes = (b * b * self.elem_bytes) as u64;
        let nb = count_keys(g, |key| filters::filter_b::<S>(key, 0, b));
        let nc = count_keys(g, |key| filters::filter_c::<S>(key, 0, b));
        let nd = count_keys(g, |key| filters::filter_d::<S>(key, 0, b));
        // IM moves each D block's B and C inputs plus the panels
        // themselves through the shuffle.
        let bytes = (2 * nd + nb + nc + 1) as u64 * block_bytes;
        let part: Box<dyn Partitioner<(usize, usize)>> = if cfg.grid_partitioner {
            Box::new(GridPartitioner::new(g))
        } else {
            Box::new(HashPartitioner)
        };
        self.repartition(
            partitions,
            &keys,
            part.as_ref(),
            bytes,
            updates,
            b,
            strategy,
            kt,
        )
        .into_iter()
        .collect()
    }

    /// Consume the records the finished iteration `k` appended and
    /// decide the plan for iteration `k + 1`. Returns the adopted
    /// decisions in application order (storage, partitions, strategy,
    /// kernel — at most one each).
    #[allow(clippy::too_many_arguments)]
    pub fn replan<S: DpProblem>(
        &mut self,
        sc: &SparkContext,
        cfg: &DpConfig,
        k: usize,
        partitions: usize,
        strategy: Strategy,
        kernel: &KernelSpec,
        level: StorageLevel,
    ) -> Vec<AqeDecision> {
        let backend = registry::<S>()
            .resolve(kernel)
            .unwrap_or_else(|e| panic!("{e}"));
        let kt = backend.kernel_type(&kernel.params);
        let stats = self.drain_stats(sc);
        let g = cfg.grid();
        let b = cfg.block;
        let active_now = active_blocks::<S>(k, g, b);
        let next_keys = active_keys::<S>(k + 1, g, b);
        let active_next = next_keys.len();
        if active_now == 0 || active_next == 0 {
            return Vec::new();
        }
        let ratio = active_next as f64 / active_now as f64;
        let next_bytes = (stats.shuffle_bytes as f64 * ratio) as u64;
        let next_updates = stats.updates * ratio;
        let part: Box<dyn Partitioner<(usize, usize)>> = if cfg.grid_partitioner {
            Box::new(GridPartitioner::new(g))
        } else {
            Box::new(HashPartitioner)
        };

        let mut out = Vec::new();
        if let Some(d) = self.retier(&stats, level) {
            out.push(d);
        }
        let mut partitions = partitions;
        if let Some(d) = self.repartition(
            partitions,
            &next_keys,
            part.as_ref(),
            next_bytes,
            next_updates,
            b,
            strategy,
            kt,
        ) {
            if let AqeAction::Repartition(p) = d.action {
                partitions = p;
            }
            out.push(d);
        }
        let loads = placement_loads(&next_keys, part.as_ref(), partitions);
        if let Some(d) =
            self.switch_strategy::<S>(k + 1, g, b, &loads, strategy, kt, next_bytes, next_updates)
        {
            out.push(d);
        }
        if let Some(d) = self.retune(backend.as_ref(), kernel, next_updates, partitions, b) {
            out.push(d);
        }
        out
    }

    /// Aggregate and consume the event-log delta since the watermark.
    fn drain_stats(&mut self, sc: &SparkContext) -> IterStats {
        sc.with_event_log(|log| {
            let stages = log.stages();
            let mut s = IterStats::default();
            for ev in &stages[self.stage_watermark.min(stages.len())..] {
                s.collect_bytes += ev.record.collect_bytes;
                s.broadcast_bytes += ev.record.broadcast_bytes;
                s.spilled_bytes += ev.record.spilled_bytes;
                s.evicted_bytes += ev.record.evicted_bytes;
                for t in &ev.record.tasks {
                    s.shuffle_bytes += t.shuffle_write_bytes;
                    s.updates += t.kernels.iter().map(|inv| inv.updates).sum::<f64>();
                }
            }
            self.stage_watermark = stages.len();
            s
        })
    }

    /// Synthetic stage record: `bytes` shuffled and `updates` computed
    /// over `p` tasks placed round-robin across the cluster's nodes.
    /// `loads` weights each task's share (the candidate partitioner's
    /// actual per-partition block counts) — uniform spread would hide
    /// the quantization skew that makes very low partition counts
    /// straggle, and the planner would over-coalesce.
    fn synth_stage(
        &self,
        loads: &[f64],
        bytes: u64,
        updates: f64,
        b: usize,
        kernel: KernelType,
    ) -> StageRecord {
        let nodes = self.model.spec.nodes.max(1) as u64;
        let total: f64 = loads.iter().sum::<f64>().max(1.0);
        let tasks = loads
            .iter()
            .enumerate()
            .map(|(t, share)| {
                let frac = share / total;
                let task_bytes = (bytes as f64 * frac) as u64;
                TaskRecord {
                    node: t % nodes as usize,
                    kernels: vec![KernelInvocation {
                        updates: updates * frac,
                        block_side: b,
                        elem_bytes: self.elem_bytes,
                        kernel,
                    }],
                    remote_read_bytes: task_bytes * (nodes - 1) / nodes,
                    local_read_bytes: task_bytes / nodes,
                    shuffle_write_bytes: task_bytes,
                    ..Default::default()
                }
            })
            .collect();
        StageRecord {
            tasks,
            ..Default::default()
        }
    }

    /// Overhead-only stage: `p` empty tasks (models the extra stages of
    /// an iteration beyond its dominant one).
    fn synth_overhead(&self, p: usize) -> StageRecord {
        let nodes = self.model.spec.nodes.max(1);
        StageRecord {
            tasks: (0..p)
                .map(|t| TaskRecord {
                    node: t % nodes,
                    ..Default::default()
                })
                .collect(),
            ..Default::default()
        }
    }

    /// Modeled seconds for one IM iteration with per-task `loads`.
    fn im_iter_seconds(
        &self,
        loads: &[f64],
        bytes: u64,
        updates: f64,
        b: usize,
        kt: KernelType,
    ) -> f64 {
        let main = self
            .model
            .stage_seconds(&self.synth_stage(loads, bytes, updates, b, kt));
        let extra = self.model.stage_seconds(&self.synth_overhead(loads.len()));
        main + extra * (IM_STAGES_PER_ITER - 1) as f64
    }

    /// Modeled seconds for one CB iteration with per-task `loads` and
    /// `collect`/`broadcast` driver volume.
    fn cb_iter_seconds(
        &self,
        loads: &[f64],
        updates: f64,
        b: usize,
        kt: KernelType,
        collect: u64,
        broadcast: u64,
    ) -> f64 {
        let compute = self
            .model
            .stage_seconds(&self.synth_stage(loads, 0, updates, b, kt));
        let driver = self.model.stage_seconds(&StageRecord {
            collect_bytes: collect,
            broadcast_bytes: broadcast,
            ..Default::default()
        });
        let extra = self.model.stage_seconds(&self.synth_overhead(loads.len()));
        compute + driver + extra * (CB_STAGES_PER_ITER - 2) as f64
    }

    /// Price candidate partition counts for the next iteration and
    /// adopt the winner if it clears the margin. Candidates are the
    /// divisors of `current` at or above the floor (narrow,
    /// signature-preserving coalesce) plus one 2× split. Each
    /// candidate is priced at the partitioner's *actual* placement of
    /// the next phase's active keys, so quantization skew at low
    /// counts is charged honestly.
    #[allow(clippy::too_many_arguments)]
    fn repartition(
        &self,
        current: usize,
        next_keys: &[(usize, usize)],
        part: &dyn Partitioner<(usize, usize)>,
        bytes: u64,
        updates: f64,
        b: usize,
        strategy: Strategy,
        kt: KernelType,
    ) -> Option<AqeDecision> {
        let active_next = next_keys.len();
        let price = |p: usize| {
            let loads = placement_loads(next_keys, part, p);
            match strategy {
                Strategy::InMemory => self.im_iter_seconds(&loads, bytes, updates, b, kt),
                Strategy::CollectBroadcast => {
                    self.cb_iter_seconds(&loads, updates, b, kt, bytes, bytes)
                }
            }
        };
        let mut candidates: Vec<usize> = (self.min_partitions..=current)
            .filter(|p| current.is_multiple_of(*p))
            .collect();
        if current * 2 <= active_next {
            candidates.push(current * 2);
        }
        let now = price(current);
        let best = candidates
            .into_iter()
            .map(|p| (p, price(p)))
            .min_by(|a, b| a.1.total_cmp(&b.1))?;
        if best.0 == current || best.1 >= now * REPLAN_MARGIN {
            return None;
        }
        let (p, cost) = best;
        let verb = if p < current { "coalesce" } else { "split" };
        Some(AqeDecision {
            action: AqeAction::Repartition(p),
            label: format!("{verb}:{current}->{p}"),
            reason: format!(
                "modeled iter {:.3}s at {p} parts vs {:.3}s at {current} ({active_next} active blocks)",
                cost, now
            ),
        })
    }

    /// Price IM vs CB at the next phase's volumes and switch if the
    /// other strategy wins by [`STRATEGY_MARGIN`].
    #[allow(clippy::too_many_arguments)]
    fn switch_strategy<S: DpProblem>(
        &self,
        k: usize,
        g: usize,
        b: usize,
        loads: &[f64],
        strategy: Strategy,
        kt: KernelType,
        im_bytes: u64,
        updates: f64,
    ) -> Option<AqeDecision> {
        // CB moves the A block plus the B/C panels through the driver,
        // regardless of what IM would shuffle.
        let panel = 1
            + count_keys(g, |key| filters::filter_b::<S>(key, k, b))
            + count_keys(g, |key| filters::filter_c::<S>(key, k, b));
        let cb_volume = (panel * b * b * self.elem_bytes) as u64;
        // IM's shuffle volume: measured when we are running IM (scaled
        // by the caller), reconstructed from the panel volume when we
        // are running CB (every D block re-fetches its B and C inputs).
        let d_blocks = count_keys(g, |key| filters::filter_d::<S>(key, k, b));
        let im_volume = if strategy == Strategy::InMemory {
            im_bytes
        } else {
            ((2 * d_blocks + panel) * b * b * self.elem_bytes) as u64
        };
        let im = self.im_iter_seconds(loads, im_volume, updates, b, kt);
        let cb = self.cb_iter_seconds(loads, updates, b, kt, cb_volume, cb_volume);
        let (to, ours, theirs) = match strategy {
            Strategy::InMemory => (Strategy::CollectBroadcast, im, cb),
            Strategy::CollectBroadcast => (Strategy::InMemory, cb, im),
        };
        if theirs >= ours * STRATEGY_MARGIN {
            return None;
        }
        let name = |s: Strategy| match s {
            Strategy::InMemory => "im",
            Strategy::CollectBroadcast => "cb",
        };
        Some(AqeDecision {
            action: AqeAction::SwitchStrategy(to),
            label: format!("strategy:{}->{}", name(strategy), name(to)),
            reason: format!("modeled iter {theirs:.3}s vs {ours:.3}s staying"),
        })
    }

    /// Re-pick `r_shared` for fan-out-parametric backends (the
    /// recursive family) from the compute model at the next
    /// iteration's update volume. Backends whose shape has no fan-out
    /// knob ([`KernelBackend::fanout_parametric`] is `false`) are left
    /// alone.
    fn retune<S: DpProblem>(
        &self,
        backend: &dyn KernelBackend<S>,
        kernel: &KernelSpec,
        updates: f64,
        partitions: usize,
        b: usize,
    ) -> Option<AqeDecision> {
        if !backend.fanout_parametric() {
            return None;
        }
        let r_shared = kernel.params.r_shared;
        let per_task = updates / partitions.max(1) as f64;
        let price = |r: usize| {
            let mut params = kernel.params;
            params.r_shared = r;
            self.model.core_seconds(&KernelInvocation {
                updates: per_task,
                block_side: b,
                elem_bytes: self.elem_bytes,
                kernel: backend.kernel_type(&params),
            })
        };
        let now = price(r_shared);
        let best = [2usize, 4, 8]
            .into_iter()
            .filter(|&r| r != r_shared && r <= b)
            .map(|r| (r, price(r)))
            .min_by(|a, b| a.1.total_cmp(&b.1))?;
        if best.1 >= now * REPLAN_MARGIN {
            return None;
        }
        let mut retuned = kernel.clone();
        retuned.params.r_shared = best.0;
        Some(AqeDecision {
            action: AqeAction::Retune(retuned),
            label: format!("kernel:r{}->r{}", r_shared, best.0),
            reason: format!(
                "modeled task compute {:.4}s vs {:.4}s at r={}",
                best.1, now, r_shared
            ),
        })
    }

    /// Re-tier `MemoryOnly` to `MemoryAndDisk` once pressure shows up
    /// in the counters. One-way: never flaps back.
    fn retier(&mut self, stats: &IterStats, level: StorageLevel) -> Option<AqeDecision> {
        if self.retiered
            || level != StorageLevel::MemoryOnly
            || (stats.spilled_bytes == 0 && stats.evicted_bytes == 0)
        {
            return None;
        }
        self.retiered = true;
        Some(AqeDecision {
            action: AqeAction::Retier(StorageLevel::MemoryAndDisk),
            label: "storage:memory->memory+disk".into(),
            reason: format!(
                "pressure observed: {} spilled, {} evicted bytes",
                stats.spilled_bytes, stats.evicted_bytes
            ),
        })
    }
}

/// Blocks phase `k` touches on a `g×g` grid.
fn active_blocks<S: DpProblem>(k: usize, g: usize, b: usize) -> usize {
    active_keys::<S>(k, g, b).len()
}

/// The block keys phase `k` touches, in row-major order.
fn active_keys<S: DpProblem>(k: usize, g: usize, b: usize) -> Vec<(usize, usize)> {
    let mut keys = Vec::new();
    if k >= g {
        return keys;
    }
    for i in 0..g {
        for j in 0..g {
            if filters::touched::<S>((i, j), k, b) {
                keys.push((i, j));
            }
        }
    }
    keys
}

/// Per-partition active-block counts under `part` at count `p`.
fn placement_loads(
    keys: &[(usize, usize)],
    part: &dyn Partitioner<(usize, usize)>,
    p: usize,
) -> Vec<f64> {
    let mut loads = vec![0.0; p.max(1)];
    for key in keys {
        loads[part.partition(key, p.max(1))] += 1.0;
    }
    loads
}

fn count_keys(g: usize, f: impl Fn((usize, usize)) -> bool) -> usize {
    let mut n = 0;
    for i in 0..g {
        for j in 0..g {
            if f((i, j)) {
                n += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use gep_kernels::{GaussianElim, Tropical};

    #[test]
    fn active_set_shrinks_for_ge_not_fw() {
        let b = 8;
        let ge0 = active_blocks::<GaussianElim>(0, 8, b);
        let ge6 = active_blocks::<GaussianElim>(6, 8, b);
        assert!(ge6 < ge0, "GE active set must shrink: {ge0} -> {ge6}");
        assert_eq!(active_blocks::<Tropical>(0, 8, b), 64);
        assert_eq!(active_blocks::<Tropical>(6, 8, b), 64, "FW touches all");
        assert_eq!(active_blocks::<GaussianElim>(8, 8, b), 0, "past the end");
    }

    #[test]
    fn repartition_prefers_divisors_and_respects_floor() {
        let sc = SparkContext::new(
            sparklet::SparkConf::default()
                .with_executors(4)
                .with_executor_cores(2)
                .with_sim_seed(7),
        );
        let cfg = DpConfig::new(64, 8);
        let planner = AqePlanner::new(&sc, &cfg, 8);
        // A tiny next-phase volume at a huge partition count: overhead
        // dominates, so the planner must coalesce — and only to a
        // divisor at or above the 4-executor floor.
        let keys = [(0, 0), (0, 1), (1, 0), (1, 1)];
        let d = planner
            .repartition(
                96,
                &keys,
                &HashPartitioner,
                1 << 12,
                1e4,
                8,
                Strategy::InMemory,
                KernelType::Iterative,
            )
            .expect("overhead-dominated stage must coalesce");
        let AqeAction::Repartition(p) = d.action else {
            panic!("expected repartition, got {d:?}");
        };
        assert!(96 % p == 0 && p >= 4, "non-divisor or below floor: {p}");
        assert!(d.label.starts_with("coalesce:96->"), "{}", d.label);
    }

    #[test]
    fn retier_fires_once_and_only_under_pressure() {
        let sc = SparkContext::new(sparklet::SparkConf::default().with_sim_seed(3));
        let cfg = DpConfig::new(64, 8);
        let mut planner = AqePlanner::new(&sc, &cfg, 8);
        let clean = IterStats::default();
        assert!(planner.retier(&clean, StorageLevel::MemoryOnly).is_none());
        let pressured = IterStats {
            spilled_bytes: 1 << 20,
            ..Default::default()
        };
        let d = planner
            .retier(&pressured, StorageLevel::MemoryOnly)
            .expect("spill must re-tier");
        assert_eq!(d.action, AqeAction::Retier(StorageLevel::MemoryAndDisk));
        assert!(
            planner
                .retier(&pressured, StorageLevel::MemoryOnly)
                .is_none(),
            "one-way: must not fire twice"
        );
    }
}
