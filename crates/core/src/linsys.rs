//! Distributed linear-system solving — the end-to-end use case behind
//! the paper's GE benchmark: forward-eliminate on the cluster, then
//! back-substitute on the driver.

use gep_kernels::linalg::{pack_system, unpack_solution};
use gep_kernels::{GaussianElim, Matrix};
use sparklet::{JobError, SparkContext};

use crate::config::DpConfig;
use crate::solver::solve;

/// Solve `A·x = b` for an `m×m` diagonally dominant (or SPD) system by
/// distributed GE without pivoting. `template` supplies the execution
/// knobs (block size, strategy, kernel); its `n` is replaced by the
/// packed table size `m+1`.
pub fn solve_linear_system(
    sc: &SparkContext,
    template: &DpConfig,
    a: &Matrix<f64>,
    b: &[f64],
) -> Result<Vec<f64>, JobError> {
    assert_eq!(a.rows(), a.cols(), "coefficient matrix must be square");
    assert_eq!(a.rows(), b.len(), "rhs length must match");
    let table = pack_system(a, b);
    let mut cfg = template.clone();
    cfg.n = table.rows();
    let reduced = solve::<GaussianElim>(sc, &cfg, &table)?;
    Ok(unpack_solution(&reduced))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::KernelSpec;
    use crate::config::Strategy;
    use sparklet::SparkConf;

    fn dd_system(m: usize, seed: u64) -> (Matrix<f64>, Vec<f64>, Vec<f64>) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut a = Matrix::from_fn(m, m, |_, _| next() - 0.5);
        for i in 0..m {
            a.set(i, i, m as f64 + 1.0);
        }
        let x_true: Vec<f64> = (0..m).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let b: Vec<f64> = (0..m)
            .map(|i| (0..m).map(|j| a.get(i, j) * x_true[j]).sum())
            .collect();
        (a, b, x_true)
    }

    #[test]
    fn distributed_solve_recovers_the_solution() {
        let (a, b, x_true) = dd_system(31, 5);
        let sc = SparkContext::new(SparkConf::default().with_executors(3).with_partitions(9));
        let template = DpConfig::new(1, 8)
            .with_strategy(Strategy::CollectBroadcast)
            .with_kernel(KernelSpec::recursive(2, 2, 2));
        let x = solve_linear_system(&sc, &template, &a, &b).expect("solve");
        for i in 0..31 {
            assert!((x[i] - x_true[i]).abs() < 1e-9, "x[{i}]");
        }
    }

    #[test]
    fn matches_sequential_linalg_solver_bitwise() {
        let (a, b, _) = dd_system(23, 9);
        let sc = SparkContext::new(SparkConf::default().with_executors(2).with_partitions(4));
        let template = DpConfig::new(1, 6).with_strategy(Strategy::InMemory);
        let distributed = solve_linear_system(&sc, &template, &a, &b).expect("solve");
        let sequential = gep_kernels::linalg::solve_system(&a, &b);
        // GE is order-exact, and both paths back-substitute the same
        // reduced table → bitwise identical solutions.
        assert_eq!(distributed, sequential);
    }
}
