//! Property tests: the cost model's qualitative guarantees — the
//! monotonicities the reproduction's conclusions lean on.

use cluster_model::{
    ClusterSpec, CostModel, KernelInvocation, KernelType, StageRecord, TaskRecord,
};
use proptest::prelude::*;

fn task(node: usize, updates: f64, block: usize, kernel: KernelType) -> TaskRecord {
    TaskRecord {
        node,
        kernels: vec![KernelInvocation {
            updates,
            block_side: block,
            elem_bytes: 8,
            kernel,
        }],
        ..Default::default()
    }
}

fn any_kernel() -> impl Strategy<Value = KernelType> {
    prop_oneof![
        Just(KernelType::Iterative),
        (2usize..=16, 1usize..=32).prop_map(|(r, t)| KernelType::Recursive {
            r_shared: r,
            threads: t
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn stage_time_is_finite_and_positive(
        ntasks in 1usize..64,
        updates in 1.0f64..1e12,
        block in 64usize..4096,
        kernel in any_kernel(),
        ec in 1usize..64,
    ) {
        let model = CostModel::new(ClusterSpec::skylake(), ec);
        let stage = StageRecord {
            tasks: (0..ntasks).map(|i| task(i % 16, updates, block, kernel)).collect(),
            ..Default::default()
        };
        let secs = model.stage_seconds(&stage);
        prop_assert!(secs.is_finite() && secs > 0.0);
    }

    #[test]
    fn more_work_never_runs_faster(
        updates in 1.0f64..1e11,
        factor in 1.0f64..10.0,
        kernel in any_kernel(),
    ) {
        let model = CostModel::new(ClusterSpec::skylake(), 32);
        let small = StageRecord {
            tasks: vec![task(0, updates, 1024, kernel)],
            ..Default::default()
        };
        let big = StageRecord {
            tasks: vec![task(0, updates * factor, 1024, kernel)],
            ..Default::default()
        };
        prop_assert!(model.stage_seconds(&big) >= model.stage_seconds(&small));
    }

    #[test]
    fn more_bytes_never_run_faster(
        bytes in 0u64..(1 << 34),
        extra in 0u64..(1 << 33),
    ) {
        let model = CostModel::new(ClusterSpec::skylake(), 32);
        let mk = |b: u64| StageRecord {
            tasks: vec![TaskRecord {
                node: 0,
                remote_read_bytes: b,
                shuffle_write_bytes: b / 2,
                ..Default::default()
            }],
            ..Default::default()
        };
        prop_assert!(model.stage_seconds(&mk(bytes + extra)) >= model.stage_seconds(&mk(bytes)));
    }

    #[test]
    fn spreading_tasks_across_nodes_never_hurts(
        ntasks in 2usize..64,
        updates in 1e6f64..1e10,
        kernel in any_kernel(),
    ) {
        let model = CostModel::new(ClusterSpec::skylake(), 32);
        let clumped = StageRecord {
            tasks: (0..ntasks).map(|_| task(0, updates, 512, kernel)).collect(),
            ..Default::default()
        };
        let spread = StageRecord {
            tasks: (0..ntasks).map(|i| task(i % 16, updates, 512, kernel)).collect(),
            ..Default::default()
        };
        prop_assert!(
            model.stage_seconds(&spread) <= model.stage_seconds(&clumped) * 1.0001
        );
    }

    #[test]
    fn weaker_cluster_is_never_faster(
        updates in 1e6f64..1e11,
        bytes in 0u64..(1 << 32),
        kernel in any_kernel(),
    ) {
        let mut t = task(0, updates, 1024, kernel);
        t.remote_read_bytes = bytes;
        t.shuffle_write_bytes = bytes;
        let stage = StageRecord {
            tasks: vec![t],
            ..Default::default()
        };
        let strong = CostModel::new(ClusterSpec::skylake(), 32).stage_seconds(&stage);
        let weak = CostModel::new(ClusterSpec::haswell(), 20).stage_seconds(&stage);
        prop_assert!(weak >= strong * 0.999, "weak={weak} strong={strong}");
    }

    #[test]
    fn iterative_never_beats_its_own_l2_resident_rate(
        block in 600usize..4096,
        updates in 1e6f64..1e10,
    ) {
        // Per-update time at big blocks ≥ per-update time at 256.
        let model = CostModel::new(ClusterSpec::skylake(), 32);
        let small = KernelInvocation {
            updates,
            block_side: 256,
            elem_bytes: 8,
            kernel: KernelType::Iterative,
        };
        let big = KernelInvocation {
            updates,
            block_side: block,
            elem_bytes: 8,
            kernel: KernelType::Iterative,
        };
        prop_assert!(model.core_seconds(&big) >= model.core_seconds(&small));
    }
}
