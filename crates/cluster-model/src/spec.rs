//! Hardware descriptions of the paper's experimental platforms.

use serde::{Deserialize, Serialize};

/// A spec or model rate that would poison cost estimates: a divisor
/// that is zero, negative, NaN, or infinite turns every downstream
/// `stage_seconds` into inf/NaN, which silently corrupts tuner and
/// adaptive-execution rankings instead of failing. Validation surfaces
/// the offending field by name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError {
    /// Dotted path of the offending field (e.g. `storage.read_bw`).
    pub field: &'static str,
    /// The rejected value.
    pub value: f64,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid rate `{}` = {}: must be finite and positive",
            self.field, self.value
        )
    }
}

impl std::error::Error for SpecError {}

/// A divisor must be finite and strictly positive to be usable in a
/// cost term.
pub(crate) fn check_rate(field: &'static str, value: f64) -> Result<(), SpecError> {
    if value.is_finite() && value > 0.0 {
        Ok(())
    } else {
        Err(SpecError { field, value })
    }
}

/// Per-node compute resources.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Physical cores per node (the paper sets `executor-cores` to this).
    pub cores: usize,
    /// Nominal clock in GHz.
    pub clock_ghz: f64,
    /// L2 cache per core, bytes.
    pub l2_bytes: usize,
    /// Shared last-level cache per socket, bytes.
    pub llc_bytes: usize,
    /// DRAM per node, bytes.
    pub dram_bytes: usize,
    /// Aggregate DRAM bandwidth, bytes/s.
    pub mem_bw: f64,
}

/// Local storage technology — the paper's clusters differ exactly here
/// (SSD vs 7500 rpm spinning disks), which drives the Fig. 8 gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StorageKind {
    /// Solid-state local storage (cluster 1).
    Ssd,
    /// 7500-rpm spinning disks (cluster 2).
    Hdd,
}

/// Local storage used for shuffle staging and CB shared files.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageSpec {
    /// Storage technology.
    pub kind: StorageKind,
    /// Sequential read bandwidth, bytes/s.
    pub read_bw: f64,
    /// Sequential write bandwidth, bytes/s.
    pub write_bw: f64,
    /// Capacity available for shuffle staging, bytes.
    pub capacity: u64,
}

/// A whole cluster: homogeneous nodes plus interconnect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Human-readable cluster name.
    pub name: String,
    /// Number of (homogeneous) nodes.
    pub nodes: usize,
    /// Per-node compute resources.
    pub node: NodeSpec,
    /// Per-node local storage.
    pub storage: StorageSpec,
    /// Per-node network bandwidth, bytes/s (GbE in both clusters).
    pub network_bw: f64,
    /// One-way network latency per transfer, seconds.
    pub network_latency: f64,
}

impl ClusterSpec {
    /// Cluster 1 of the paper: 16 nodes, dual 16-core Intel Skylake
    /// (Xeon Gold 6130, 2.10 GHz), 32 KB L1 / 1 MB L2 per core, 192 GB
    /// RAM, 1 TB SSD, GbE.
    pub fn skylake() -> Self {
        ClusterSpec {
            name: "cluster1-skylake".into(),
            nodes: 16,
            node: NodeSpec {
                cores: 32,
                clock_ghz: 2.1,
                l2_bytes: 1 << 20,
                llc_bytes: 22 << 20,
                dram_bytes: 192 << 30,
                mem_bw: 100.0e9,
            },
            storage: StorageSpec {
                kind: StorageKind::Ssd,
                read_bw: 500.0e6,
                write_bw: 450.0e6,
                capacity: 1 << 40,
            },
            network_bw: 125.0e6, // 1 GbE ≈ 125 MB/s
            network_latency: 100.0e-6,
        }
    }

    /// Cluster 2 of the paper: 16 nodes, dual 10-core Intel Haswell
    /// (Xeon E5-2650 v3, 2.30 GHz), 256 KB L2 per core, 64 GB RAM,
    /// 7500 rpm SATA spinning disks, GbE.
    pub fn haswell() -> Self {
        ClusterSpec {
            name: "cluster2-haswell".into(),
            nodes: 16,
            node: NodeSpec {
                cores: 20,
                clock_ghz: 2.3,
                l2_bytes: 256 << 10,
                llc_bytes: 25 << 20,
                dram_bytes: 64 << 30,
                mem_bw: 68.0e9,
            },
            storage: StorageSpec {
                kind: StorageKind::Hdd,
                read_bw: 120.0e6,
                write_bw: 110.0e6,
                capacity: 1 << 40,
            },
            network_bw: 125.0e6,
            network_latency: 100.0e-6,
        }
    }

    /// Same nodes, different node count (for the weak-scaling runs on
    /// 1, 8, and 64 nodes).
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        assert!(nodes >= 1);
        self.nodes = nodes;
        self
    }

    /// Check every rate the cost terms divide by. `Err` names the
    /// first offending field; an unset (zero) or non-finite bandwidth
    /// would otherwise propagate inf/NaN through every estimate.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.nodes == 0 {
            return Err(SpecError {
                field: "nodes",
                value: 0.0,
            });
        }
        if self.node.cores == 0 {
            return Err(SpecError {
                field: "node.cores",
                value: 0.0,
            });
        }
        check_rate("node.clock_ghz", self.node.clock_ghz)?;
        check_rate("node.mem_bw", self.node.mem_bw)?;
        check_rate("storage.read_bw", self.storage.read_bw)?;
        check_rate("storage.write_bw", self.storage.write_bw)?;
        check_rate("network_bw", self.network_bw)?;
        if !self.network_latency.is_finite() || self.network_latency < 0.0 {
            return Err(SpecError {
                field: "network_latency",
                value: self.network_latency,
            });
        }
        Ok(())
    }

    /// Total physical cores in the cluster.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.node.cores
    }

    /// The paper's RDD-partition guideline: 2× the total core count.
    pub fn default_partitions(&self) -> usize {
        2 * self.total_cores()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_configurations() {
        let c1 = ClusterSpec::skylake();
        assert_eq!(c1.total_cores(), 512);
        assert_eq!(c1.default_partitions(), 1024); // the paper's 1024
        let c2 = ClusterSpec::haswell();
        assert_eq!(c2.total_cores(), 320);
        assert_eq!(c2.default_partitions(), 640); // the paper's 640
        assert_eq!(c2.storage.kind, StorageKind::Hdd);
        assert!(c2.node.l2_bytes < c1.node.l2_bytes);
    }

    #[test]
    fn with_nodes_scales() {
        let c = ClusterSpec::skylake().with_nodes(64);
        assert_eq!(c.nodes, 64);
        assert_eq!(c.total_cores(), 2048);
    }

    #[test]
    fn clone_and_eq_work() {
        let c = ClusterSpec::haswell();
        assert_eq!(c.clone(), c);
    }
}
