//! The analytical cost model.
//!
//! Inputs are *records* of what a real `sparklet` execution did — which
//! kernels each task ran (with block geometry and kernel type), and how
//! many bytes moved where. The model converts records into simulated
//! seconds on a [`ClusterSpec`]. Constants live in [`ModelParams`] with
//! defaults calibrated so the paper-scale configurations land in the
//! right few-hundred-seconds regime; the *shape* conclusions (who wins,
//! where crossovers fall) come from the mechanisms, not the constants.

use serde::{Deserialize, Serialize};

use crate::spec::{ClusterSpec, SpecError};

/// How a task executed its block kernels — the paper's two kernel types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelType {
    /// Loop-based kernel, single-threaded per task (the Numba baseline).
    Iterative,
    /// r-way R-DP kernel on an OpenMP-style pool with `threads` workers
    /// (the paper's `OMP_NUM_THREADS`).
    Recursive {
        /// Recursive fan-out inside the executor kernel.
        r_shared: usize,
        /// OpenMP-style thread-team size (`OMP_NUM_THREADS`).
        threads: usize,
    },
    /// Relaxation sweep over a CSR tile (the partitioned multi-source
    /// SSSP path for sparse APSP). Work is one update per stored edge
    /// per source row, so `updates ≈ sources · nnz` — priced by nnz,
    /// not block-side². Single-threaded per task.
    SparseSweep,
}

/// One block-kernel execution inside a task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelInvocation {
    /// Number of GEP element updates performed (≈ Σ_G ∩ block volume).
    pub updates: f64,
    /// Side length of the updated block.
    pub block_side: usize,
    /// Bytes per table element.
    pub elem_bytes: usize,
    /// Which kernel family executed the block.
    pub kernel: KernelType,
}

/// One task's recorded footprint.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Executor (node) index the task ran on.
    pub node: usize,
    /// Block kernels this task executed.
    pub kernels: Vec<KernelInvocation>,
    /// Shuffle bytes fetched from other nodes.
    pub remote_read_bytes: u64,
    /// Shuffle bytes fetched from this node's own map outputs.
    pub local_read_bytes: u64,
    /// Map-output bytes staged to local storage for later shuffles.
    pub shuffle_write_bytes: u64,
    /// Cached bytes this task serialized to the disk tier (spills it
    /// triggered plus `DISK_ONLY` puts).
    pub spill_write_bytes: u64,
    /// Cached bytes this task deserialized back from the disk tier.
    pub spill_read_bytes: u64,
    /// Compressed frame bytes actually fetched from other nodes, when
    /// the engine's data-plane codec was on (0 = frames moved at their
    /// declared size; the model falls back to its assumed
    /// [`ModelParams::compression`] ratio).
    #[serde(default)]
    pub remote_read_wire_bytes: u64,
    /// Compressed frame bytes actually read from this node's storage
    /// (0 = uncompressed).
    #[serde(default)]
    pub local_read_wire_bytes: u64,
    /// Compressed frame bytes actually staged for later shuffles
    /// (0 = uncompressed).
    #[serde(default)]
    pub shuffle_write_wire_bytes: u64,
    /// Compressed frame bytes actually written to the disk tier
    /// (0 = uncompressed).
    #[serde(default)]
    pub spill_write_wire_bytes: u64,
    /// Compressed frame bytes actually read back from the disk tier
    /// (0 = uncompressed).
    #[serde(default)]
    pub spill_read_wire_bytes: u64,
}

/// One stage's recorded footprint (plus driver-side traffic for CB).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StageRecord {
    /// Engine-assigned global stage ordinal (driver-only pseudo-stages
    /// keep the default 0).
    #[serde(default)]
    pub stage_id: u64,
    /// Stage ids of the direct parent stages in the job DAG — the map
    /// stages whose shuffles this stage read.
    #[serde(default)]
    pub parent_stage_ids: Vec<u64>,
    /// Stages the DAG scheduler had in flight when this one launched
    /// (including this one); 1 means serial execution.
    #[serde(default)]
    pub concurrent_stages: u64,
    /// Every task of the stage (with placement).
    pub tasks: Vec<TaskRecord>,
    /// Bytes collected to the driver at the end of the stage (CB).
    pub collect_bytes: u64,
    /// Bytes each node reads back from shared storage (CB broadcast).
    pub broadcast_bytes: u64,
    /// Failed attempts that were re-launched via lineage retry.
    pub retries: u64,
    /// Straggler attempts re-launched speculatively on another node.
    pub speculative_launches: u64,
    /// Late (zombie-attempt) shuffle writes dropped by attempt fencing.
    pub zombie_writes_fenced: u64,
    /// Staged shuffle bytes released back during the stage window
    /// (per-shuffle GC plus retry re-staging reconciliation).
    pub staged_released_bytes: u64,
    /// Cached-partition reads served from either storage tier during
    /// the stage window.
    pub cache_hits: u64,
    /// Cached-partition reads that found neither tier populated.
    pub cache_misses: u64,
    /// Cached bytes serialized into the disk tier during the stage
    /// window (LRU spills plus `DISK_ONLY` puts).
    pub spilled_bytes: u64,
    /// Cached bytes dropped under memory pressure (recompute-backed
    /// evictions; unpersists are not counted).
    pub evicted_bytes: u64,
    /// Lineage recomputations of dropped cached blocks.
    pub recomputes: u64,
}

/// Converts one task's recorded footprint into logical milliseconds
/// for the deterministic simulation harness's virtual clock.
///
/// Deliberately much cruder than [`CostModel`]: the sim needs task
/// durations that are *ordered sensibly* (bigger tasks take longer, so
/// stragglers and backoff deadlines interleave realistically), not
/// calibrated cluster seconds. Pure integer arithmetic on the record —
/// identical on every platform, so virtual timelines replay exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickCharger {
    /// Modeled bytes/s for every byte the task moved (shuffle reads,
    /// writes, spills).
    pub io_bw: f64,
    /// Modeled GEP updates/s for the task's kernels.
    pub update_rate: f64,
    /// Fixed per-task overhead in logical milliseconds (keeps even
    /// zero-byte tasks from completing in zero time).
    pub task_overhead_ms: u64,
}

impl Default for TickCharger {
    fn default() -> Self {
        TickCharger {
            io_bw: 8.0e8,
            update_rate: 1.2e8,
            task_overhead_ms: 1,
        }
    }
}

impl TickCharger {
    /// Check the rates every tick divides by; `Err` names the bad one.
    pub fn validate(&self) -> Result<(), SpecError> {
        crate::spec::check_rate("tick.io_bw", self.io_bw)?;
        crate::spec::check_rate("tick.update_rate", self.update_rate)
    }

    /// Logical milliseconds one task occupies on the virtual clock.
    ///
    /// Panics on a zero/non-finite rate: an unchecked division here
    /// would turn the u64 cast's saturation into a silently absurd
    /// virtual timeline instead of an error.
    pub fn task_ticks(&self, task: &TaskRecord) -> u64 {
        if let Err(e) = self.validate() {
            panic!("TickCharger: {e}");
        }
        let bytes = task.remote_read_bytes
            + task.local_read_bytes
            + task.shuffle_write_bytes
            + task.spill_write_bytes
            + task.spill_read_bytes;
        let updates: f64 = task.kernels.iter().map(|k| k.updates).sum();
        let io_ms = (bytes as f64 / self.io_bw * 1000.0).ceil() as u64;
        let compute_ms = (updates / self.update_rate * 1000.0).ceil() as u64;
        self.task_overhead_ms + io_ms + compute_ms
    }
}

/// A stage's simulated time decomposed into components (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageCost {
    /// End-to-end stage seconds.
    pub total: f64,
    /// Kernel compute on the critical node.
    pub compute: f64,
    /// Shuffle fetch + staging + serde on the critical node.
    pub io: f64,
    /// Serial driver phase (collect + broadcast writes).
    pub driver: f64,
    /// Fixed stage overhead.
    pub overhead: f64,
}

/// Tunable constants. Defaults are calibrated against the paper's
/// reported runtimes for cluster 1 (see `dp-bench` calibration notes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// GEP updates/s per core for an L2-resident iterative kernel.
    pub base_update_rate: f64,
    /// Working-set slack: a block "fits L2" when
    /// `side² · elem_bytes ≤ l2_slack · l2_bytes`.
    pub l2_slack: f64,
    /// Rate multiplier when the working set spills to LLC.
    pub llc_factor: f64,
    /// Rate multiplier when the working set spills to DRAM.
    pub dram_factor: f64,
    /// Recursive kernels' rate relative to L2-resident iterative
    /// (greater than 1: the paper's recursive kernels are native C +
    /// OpenMP where the iterative baseline pays the Numba/PySpark
    /// runtime; they are also cache-oblivious, so no L2 cliff).
    pub recursive_factor: f64,
    /// Efficiency loss for tiny recursion base cases: multiplier
    /// `min(1, (base_side / ref_base)^base_exponent)`.
    pub ref_base_side: f64,
    /// Exponent of the base-case efficiency factor.
    pub base_exponent: f64,
    /// Parallel speedup of a t-thread recursive kernel: `t^parallel_exponent`.
    pub parallel_exponent: f64,
    /// Oversubscription soft knee: thread demand up to
    /// `oversub_knee × cores` is near-free (the paper's best configs
    /// oversubscribe 4-16×); beyond it the penalty ramps as
    /// `1/(1 + (demand/cores/knee)^sharpness)`.
    pub oversub_knee: f64,
    /// Ramp sharpness of the oversubscription penalty.
    pub oversub_sharpness: f64,
    /// Fixed scheduling cost per task, seconds.
    pub task_overhead: f64,
    /// Fixed cost per stage (DAG bookkeeping, barrier), seconds.
    pub stage_overhead: f64,
    /// Serialization/deserialization rate for shuffle data, bytes/s/core.
    pub serde_bw: f64,

    /// Effective compression ratio of shuffle/collect traffic (Spark
    /// enables LZ4 shuffle compression by default; DP tables of small
    /// integer-ish distances compress well).
    pub compression: f64,

    /// Sparse-sweep kernels' per-update rate relative to L2-resident
    /// iterative (below 1: CSR relaxation chases row indices and
    /// scatters into the candidate matrix instead of streaming a dense
    /// tile). Defaults when absent from serialized params, so
    /// dense-era JSON keeps loading.
    #[serde(default = "default_sweep_factor")]
    pub sweep_factor: f64,
}

fn default_sweep_factor() -> f64 {
    0.45
}

impl Default for ModelParams {
    fn default() -> Self {
        ModelParams {
            base_update_rate: 1.2e8,
            l2_slack: 2.0,
            llc_factor: 0.55,
            dram_factor: 0.30,
            recursive_factor: 2.6,
            ref_base_side: 64.0,
            base_exponent: 0.35,
            parallel_exponent: 0.88,
            oversub_knee: 20.0,
            oversub_sharpness: 1.5,
            task_overhead: 0.030,
            stage_overhead: 0.20,
            serde_bw: 8.0e8,
            compression: 2.5,
            sweep_factor: default_sweep_factor(),
        }
    }
}

impl ModelParams {
    /// Check every constant the cost terms divide by.
    pub fn validate(&self) -> Result<(), SpecError> {
        crate::spec::check_rate("params.base_update_rate", self.base_update_rate)?;
        crate::spec::check_rate("params.llc_factor", self.llc_factor)?;
        crate::spec::check_rate("params.dram_factor", self.dram_factor)?;
        crate::spec::check_rate("params.recursive_factor", self.recursive_factor)?;
        crate::spec::check_rate("params.serde_bw", self.serde_bw)?;
        crate::spec::check_rate("params.compression", self.compression)?;
        crate::spec::check_rate("params.sweep_factor", self.sweep_factor)?;
        if !self.task_overhead.is_finite() || self.task_overhead < 0.0 {
            return Err(SpecError {
                field: "params.task_overhead",
                value: self.task_overhead,
            });
        }
        if !self.stage_overhead.is_finite() || self.stage_overhead < 0.0 {
            return Err(SpecError {
                field: "params.stage_overhead",
                value: self.stage_overhead,
            });
        }
        Ok(())
    }
}

/// Side length of the recursion base case actually reached by an r-way
/// R-DP kernel on a block of side `b` (recursion stops when the side is
/// ≤ `base` or no longer divisible by `r`).
pub fn base_case_side(b: usize, r: usize, base: usize) -> usize {
    let mut side = b;
    while side > base && side >= r && side.is_multiple_of(r) {
        side /= r;
    }
    side
}

/// The cost model: a cluster, the Spark-level concurrency knob
/// (`executor-cores`), and the constants.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// The cluster being modelled.
    pub spec: ClusterSpec,
    /// Concurrent task slots per executor.
    pub executor_cores: usize,
    /// Model constants.
    pub params: ModelParams,
}

impl CostModel {
    /// Model for `spec` with `executor_cores` task slots per node.
    ///
    /// Panics if the spec fails [`ClusterSpec::validate`]; use
    /// [`CostModel::try_new`] for the typed error.
    pub fn new(spec: ClusterSpec, executor_cores: usize) -> Self {
        match CostModel::try_new(spec, executor_cores) {
            Ok(model) => model,
            Err(e) => panic!("CostModel: {e}"),
        }
    }

    /// Model for `spec`, rejecting any spec whose rates would divide
    /// to inf/NaN (zero or unset bandwidths included).
    pub fn try_new(spec: ClusterSpec, executor_cores: usize) -> Result<Self, SpecError> {
        if executor_cores == 0 {
            return Err(SpecError {
                field: "executor_cores",
                value: 0.0,
            });
        }
        spec.validate()?;
        Ok(CostModel {
            spec,
            executor_cores,
            params: ModelParams::default(),
        })
    }

    /// Replace the model constants. Panics on invalid constants; use
    /// [`CostModel::try_with_params`] for the typed error.
    pub fn with_params(self, params: ModelParams) -> Self {
        match self.try_with_params(params) {
            Ok(model) => model,
            Err(e) => panic!("CostModel: {e}"),
        }
    }

    /// Replace the model constants, rejecting non-finite or
    /// non-positive rates.
    pub fn try_with_params(mut self, params: ModelParams) -> Result<Self, SpecError> {
        params.validate()?;
        self.params = params;
        Ok(self)
    }

    /// Pure single-core seconds of one invocation: updates divided by
    /// the kernel's single-thread rate (cache/base-case factors
    /// included, no concurrency effects).
    pub fn core_seconds(&self, inv: &KernelInvocation) -> f64 {
        let p = &self.params;
        let node = &self.spec.node;
        let rate = match inv.kernel {
            KernelType::Iterative => {
                // Loop kernel: spatial locality is fine either way;
                // temporal locality dies outside L2.
                let ws = (inv.block_side * inv.block_side * inv.elem_bytes) as f64;
                let cache_factor = if ws <= p.l2_slack * node.l2_bytes as f64 {
                    1.0
                } else if ws <= node.llc_bytes as f64 {
                    p.llc_factor
                } else {
                    p.dram_factor
                };
                p.base_update_rate * cache_factor
            }
            KernelType::Recursive { r_shared, .. } => {
                // Cache-oblivious: flat across block sizes; tiny base
                // cases lose some vectorization efficiency.
                let base_side =
                    base_case_side(inv.block_side, r_shared.max(2), p.ref_base_side as usize);
                let base_factor = (base_side as f64 / p.ref_base_side)
                    .powf(p.base_exponent)
                    .min(1.0);
                p.base_update_rate * p.recursive_factor * base_factor
            }
            KernelType::SparseSweep => {
                // Index-chasing over CSR rows: there is no dense-tile
                // temporal reuse to lose to cache cliffs, but also no
                // contiguous streaming to vectorize — a flat,
                // discounted per-update rate independent of block
                // geometry. `updates` already carries the nnz term.
                p.base_update_rate * p.sweep_factor
            }
        };
        inv.updates / rate
    }

    /// Coarse whole-job pricing for service admission control: modeled
    /// wall seconds assuming the job's update volume spreads perfectly
    /// over every task slot in the cluster, plus one pass of its input
    /// bytes through a node NIC. Deliberately much cheaper (and
    /// coarser) than [`CostModel::stage_seconds`] — admission prices
    /// jobs *before* any stage graph exists, and only relative order
    /// matters to the budget check. Pure: same inputs, same price.
    pub fn admission_seconds(&self, inv: &KernelInvocation, input_bytes: u64) -> f64 {
        let slots = (self.spec.nodes * self.executor_cores).max(1) as f64;
        let compute = self.core_seconds(inv) / slots;
        let transfer = input_bytes as f64 / self.spec.network_bw + self.spec.network_latency;
        compute + transfer
    }

    /// Maximum speedup one task can reach when it has the node to
    /// itself (the straggler bound): its thread team, nothing more.
    fn task_max_speedup(&self, kernel: &KernelType) -> f64 {
        match kernel {
            KernelType::Iterative | KernelType::SparseSweep => 1.0,
            KernelType::Recursive { threads, .. } => {
                let t = (*threads).max(1).min(self.spec.node.cores) as f64;
                t.powf(self.params.parallel_exponent).max(1.0)
            }
        }
    }

    /// Decompose a stage's simulated time into its cost components
    /// (driver time is serial; the rest is the critical node's split).
    pub fn stage_breakdown(&self, stage: &StageRecord) -> StageCost {
        let total = self.stage_seconds(stage);
        // Re-price with I/O made free to isolate compute, and with
        // kernels removed to isolate I/O.
        let mut no_io = self.params.clone();
        no_io.compression = 1e18;
        no_io.serde_bw = 1e18;
        no_io.task_overhead = 0.0;
        no_io.stage_overhead = 0.0;
        let compute_model = CostModel {
            spec: self.spec.clone(),
            executor_cores: self.executor_cores,
            params: no_io,
        };
        let mut bare = stage.clone();
        bare.collect_bytes = 0;
        bare.broadcast_bytes = 0;
        for t in &mut bare.tasks {
            // Measured wire sizes bypass the compression knob, so they
            // must be dropped too for the no-I/O repricing to actually
            // zero the transfer terms.
            t.remote_read_wire_bytes = 0;
            t.local_read_wire_bytes = 0;
            t.shuffle_write_wire_bytes = 0;
            t.spill_write_wire_bytes = 0;
            t.spill_read_wire_bytes = 0;
        }
        let compute = compute_model.stage_seconds(&bare) - compute_model.params.stage_overhead;
        let comp = self.params.compression.max(1.0);
        let driver = stage.collect_bytes as f64 / comp / self.spec.network_bw
            + stage.collect_bytes as f64 / comp / self.spec.storage.write_bw
            + stage.broadcast_bytes as f64 / comp / self.spec.storage.write_bw;
        let io = (total - compute - driver - self.params.stage_overhead).max(0.0);
        StageCost {
            total,
            compute: compute.max(0.0),
            io,
            driver,
            overhead: self.params.stage_overhead,
        }
    }

    /// Simulated seconds of one stage.
    ///
    /// Per node, compute time is the larger of two bounds, modelling a
    /// dynamic task scheduler plus adaptive thread teams:
    ///
    /// * **throughput bound** — total single-core work divided by the
    ///   node's effective cores: `min(cores, slots × team-width)`,
    ///   discounted for oversubscription. Single-threaded (iterative)
    ///   tasks can never use more cores than there are runnable tasks —
    ///   the paper's "too large a block size may serialize the Spark
    ///   execution";
    /// * **straggler bound** — the longest single task at its own best
    ///   speedup (1 for iterative; its thread team for recursive).
    ///
    /// I/O (shuffle fetch, staging, serde) flows through the task slots
    /// the same way, and the CB driver phase is serial.
    pub fn stage_seconds(&self, stage: &StageRecord) -> f64 {
        let p = &self.params;
        let comp = p.compression.max(1.0);
        let nodes = self.spec.nodes;
        let cores = self.spec.node.cores as f64;
        // Per node accumulators.
        struct NodeAcc {
            tasks: usize,
            busy: usize,
            work: f64,
            longest: f64,
            io: f64,
            longest_io: f64,
            width_sum: f64,
            max_team: f64,
        }
        let mut acc: Vec<NodeAcc> = (0..nodes)
            .map(|_| NodeAcc {
                tasks: 0,
                busy: 0,
                work: 0.0,
                longest: 0.0,
                io: 0.0,
                longest_io: 0.0,
                width_sum: 0.0,
                max_team: 1.0,
            })
            .collect();
        for t in &stage.tasks {
            let a = &mut acc[t.node % nodes];
            a.tasks += 1;
            let mut task_work = 0.0;
            let mut task_straggler = 0.0;
            let mut task_width = 0.0f64;
            for inv in &t.kernels {
                let w = self.core_seconds(inv);
                task_work += w;
                task_straggler += w / self.task_max_speedup(&inv.kernel);
                let width = match inv.kernel {
                    KernelType::Iterative | KernelType::SparseSweep => 1.0,
                    KernelType::Recursive { threads, .. } => threads.max(1) as f64,
                };
                // A task runs its kernels sequentially: its thread
                // footprint is one team, not one per kernel.
                task_width = task_width.max(width);
            }
            if !t.kernels.is_empty() {
                a.busy += 1;
                a.width_sum += task_width;
                a.max_team = a.max_team.max(task_width);
            }
            a.work += task_work;
            a.longest = a.longest.max(task_straggler);
            // Bytes a transfer actually moves: the measured wire size
            // when the engine's codec compressed the frame, else the
            // declared volume discounted by the assumed ratio. Serde
            // terms always run on declared (logical) bytes — codecs
            // change what crosses the wire, not what gets serialized.
            let xfer = |logical: u64, wire: u64| {
                if wire > 0 {
                    wire as f64
                } else {
                    logical as f64 / comp
                }
            };
            let bytes = t.remote_read_bytes + t.local_read_bytes;
            let mut io = xfer(t.remote_read_bytes, t.remote_read_wire_bytes)
                / self.spec.network_bw
                + xfer(t.local_read_bytes, t.local_read_wire_bytes) / self.spec.storage.read_bw
                + bytes as f64 / p.serde_bw
                + xfer(t.shuffle_write_bytes, t.shuffle_write_wire_bytes)
                    / self.spec.storage.write_bw
                + t.shuffle_write_bytes as f64 / p.serde_bw
                // Cache spill traffic is priced like shuffle staging:
                // serialized (serde) and compressed through the node's
                // local storage bandwidth.
                + xfer(t.spill_write_bytes, t.spill_write_wire_bytes)
                    / self.spec.storage.write_bw
                + t.spill_write_bytes as f64 / p.serde_bw
                + xfer(t.spill_read_bytes, t.spill_read_wire_bytes) / self.spec.storage.read_bw
                + t.spill_read_bytes as f64 / p.serde_bw;
            io += p.task_overhead;
            a.io += io;
            a.longest_io = a.longest_io.max(io);
        }
        let mut makespan = 0.0f64;
        for a in &acc {
            if a.tasks == 0 {
                continue;
            }
            let slots = (self.executor_cores.min(a.tasks)).max(1) as f64;
            let node_compute = if a.busy > 0 {
                // Concurrent kernel width: slots limited by runnable
                // busy tasks, each contributing its average team width.
                let busy_slots = (self.executor_cores.min(a.busy)).max(1) as f64;
                let avg_width = (a.width_sum / a.busy as f64).max(1.0);
                let demand = busy_slots * avg_width;
                let oversub = if demand > cores {
                    1.0 / (1.0 + (demand / cores / p.oversub_knee).powf(p.oversub_sharpness))
                } else {
                    1.0
                };
                let eff_cores = demand.min(cores) * oversub;
                (a.work / eff_cores).max(a.longest)
            } else {
                0.0
            };
            let node_io = (a.io / slots).max(a.longest_io);
            makespan = makespan.max(node_compute + node_io);
        }
        // Driver phase (CB): collect over the network to one node, write
        // to shared storage, then write the broadcast files out. The
        // executor-side broadcast *reads* are recorded per task (as
        // local storage traffic) and priced in the makespan above.
        let driver = stage.collect_bytes as f64 / comp / self.spec.network_bw
            + stage.collect_bytes as f64 / comp / self.spec.storage.write_bw
            + stage.broadcast_bytes as f64 / comp / self.spec.storage.write_bw;
        makespan + driver + p.stage_overhead
    }

    /// Simulated seconds of a whole job (stages are barriers).
    pub fn job_seconds(&self, stages: &[StageRecord]) -> f64 {
        stages.iter().map(|s| self.stage_seconds(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv(b: usize, kernel: KernelType) -> KernelInvocation {
        KernelInvocation {
            updates: (b as f64).powi(3),
            block_side: b,
            elem_bytes: 8,
            kernel,
        }
    }

    fn model() -> CostModel {
        CostModel::new(ClusterSpec::skylake(), 32)
    }

    fn stage_with(tasks: Vec<TaskRecord>) -> StageRecord {
        StageRecord {
            tasks,
            ..Default::default()
        }
    }

    fn kernel_task(node: usize, invs: Vec<KernelInvocation>) -> TaskRecord {
        TaskRecord {
            node,
            kernels: invs,
            ..Default::default()
        }
    }

    #[test]
    fn base_case_side_arithmetic() {
        assert_eq!(base_case_side(1024, 4, 64), 64);
        assert_eq!(base_case_side(1024, 2, 64), 64);
        assert_eq!(base_case_side(2048, 16, 64), 8);
        assert_eq!(base_case_side(1024, 16, 64), 64);
        assert_eq!(base_case_side(96, 4, 16), 6); // 96→24→6 (24%4==0, 24>16)
        assert_eq!(base_case_side(50, 4, 16), 50); // not divisible
    }

    #[test]
    fn iterative_kernel_has_l2_cliff() {
        let m = model();
        // 512²·8 = 2 MB ≤ 2·1 MB slack → fits; 1024²·8 = 8 MB → LLC.
        let t512 = m.core_seconds(&inv(512, KernelType::Iterative));
        let t1024 = m.core_seconds(&inv(1024, KernelType::Iterative));
        // 8× the work at a lower rate → much more than 8× the time.
        assert!(t1024 > 8.0 * t512 * 1.5, "t512={t512} t1024={t1024}");
    }

    #[test]
    fn recursive_kernel_is_cache_oblivious() {
        let m = model();
        let k = KernelType::Recursive {
            r_shared: 4,
            threads: 1,
        };
        let t512 = m.core_seconds(&inv(512, k));
        let t1024 = m.core_seconds(&inv(1024, k));
        // 8× the work → between 5× and 9× the time (no L2 cliff; the
        // small residual comes from the base-case-size factor).
        let ratio = t1024 / t512;
        assert!((5.0..9.0).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn sparse_sweep_prices_by_nnz_not_geometry() {
        let m = model();
        let sweep = |updates: f64, side: usize| {
            m.core_seconds(&KernelInvocation {
                updates,
                block_side: side,
                elem_bytes: 8,
                kernel: KernelType::SparseSweep,
            })
        };
        // Linear in updates, flat across tile geometry (no cache cliff
        // keyed on block_side² — the working set is nnz-sized).
        assert_eq!(sweep(2.0e6, 4096), 2.0 * sweep(1.0e6, 4096));
        assert_eq!(sweep(1.0e6, 64), sweep(1.0e6, 8192));
        // A sparse sweep on a low-density graph beats the dense DRAM-
        // resident FW on the same logical n: n=4096, density 1% →
        // updates n·nnz·≈ vs n³.
        let n = 4096f64;
        let sparse_updates = n * (n * n * 0.01);
        let dense = m.core_seconds(&inv(4096, KernelType::Iterative));
        assert!(sweep(sparse_updates, 4096) < dense / 10.0);
    }

    #[test]
    fn sweep_factor_default_is_valid_and_discounted() {
        // The serde fallback (dense-era params carry no sweep term)
        // and Default must agree, validate, and price sweeps below
        // the L2-resident iterative rate.
        let p = ModelParams::default();
        assert_eq!(p.sweep_factor, default_sweep_factor());
        assert!(p.sweep_factor > 0.0 && p.sweep_factor < 1.0);
        assert!(p.validate().is_ok());
        let mut bad = p;
        bad.sweep_factor = 0.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn recursive_beats_iterative_beyond_l2() {
        let m = model();
        let it = m.core_seconds(&inv(2048, KernelType::Iterative));
        let rec = m.core_seconds(&inv(
            2048,
            KernelType::Recursive {
                r_shared: 4,
                threads: 1,
            },
        ));
        assert!(rec < it * 0.5, "rec={rec} it={it}");
    }

    #[test]
    fn threads_fill_idle_cores_when_tasks_are_scarce() {
        // 2 busy tasks on a 32-core node: single-threaded kernels leave
        // 30 cores idle; 16-thread teams fill them.
        let m = model();
        let narrow = stage_with(vec![
            kernel_task(
                0,
                vec![inv(
                    1024,
                    KernelType::Recursive {
                        r_shared: 4,
                        threads: 1,
                    },
                )],
            ),
            kernel_task(
                0,
                vec![inv(
                    1024,
                    KernelType::Recursive {
                        r_shared: 4,
                        threads: 1,
                    },
                )],
            ),
        ]);
        let wide = stage_with(vec![
            kernel_task(
                0,
                vec![inv(
                    1024,
                    KernelType::Recursive {
                        r_shared: 4,
                        threads: 16,
                    },
                )],
            ),
            kernel_task(
                0,
                vec![inv(
                    1024,
                    KernelType::Recursive {
                        r_shared: 4,
                        threads: 16,
                    },
                )],
            ),
        ]);
        let t_narrow = m.stage_seconds(&narrow);
        let t_wide = m.stage_seconds(&wide);
        assert!(t_wide < t_narrow / 4.0, "narrow={t_narrow} wide={t_wide}");
    }

    #[test]
    fn oversubscription_is_penalized() {
        // 32 busy tasks already saturate the node; 32-thread teams
        // (1024 threads on 32 cores) must not be faster than 2-thread
        // teams (64 threads).
        let m = model();
        let mk = |threads| {
            stage_with(
                (0..64)
                    .map(|_| {
                        kernel_task(
                            0,
                            vec![inv(
                                1024,
                                KernelType::Recursive {
                                    r_shared: 4,
                                    threads,
                                },
                            )],
                        )
                    })
                    .collect(),
            )
        };
        let t2 = m.stage_seconds(&mk(2));
        let t32 = m.stage_seconds(&mk(32));
        assert!(t32 > t2, "t2={t2} t32={t32}");
    }

    #[test]
    fn single_huge_block_serializes_iterative_execution() {
        // One giant iterative task cannot use more than one core — the
        // paper's "too large a block size may serialize" effect.
        let m = model();
        let iter = stage_with(vec![kernel_task(0, vec![inv(4096, KernelType::Iterative)])]);
        let rec = stage_with(vec![kernel_task(
            0,
            vec![inv(
                4096,
                KernelType::Recursive {
                    r_shared: 4,
                    threads: 16,
                },
            )],
        )]);
        let t_iter = m.stage_seconds(&iter);
        let t_rec = m.stage_seconds(&rec);
        assert!(t_rec < t_iter / 8.0, "iter={t_iter} rec={t_rec}");
    }

    #[test]
    fn tiny_base_cases_are_penalized() {
        let m = model();
        let good = m.core_seconds(&inv(
            1024,
            KernelType::Recursive {
                r_shared: 4,
                threads: 1,
            },
        ));
        // Normalize 2048³ work down to 1024³.
        let tiny = m.core_seconds(&inv(
            2048,
            KernelType::Recursive {
                r_shared: 16,
                threads: 1,
            },
        )) / 8.0;
        assert!(tiny > good, "tiny-base should be slower per update");
    }

    #[test]
    fn stage_seconds_accounts_network_and_staging() {
        let m = model();
        let bare = stage_with(vec![kernel_task(0, vec![inv(256, KernelType::Iterative)])]);
        let mut heavy_task = kernel_task(0, vec![inv(256, KernelType::Iterative)]);
        heavy_task.remote_read_bytes = 1 << 30;
        heavy_task.shuffle_write_bytes = 1 << 30;
        let heavy = stage_with(vec![heavy_task]);
        let t_bare = m.stage_seconds(&bare);
        let t_heavy = m.stage_seconds(&heavy);
        // 1 GiB over GbE is ~8.6 s pre-compression, ~3.4 s after the
        // default 2.5× ratio; plus staging and serde.
        assert!(t_heavy > t_bare + 4.0, "bare={t_bare} heavy={t_heavy}");
    }

    #[test]
    fn stage_makespan_is_max_over_nodes() {
        let m = model();
        let one_node = stage_with(
            (0..64)
                .map(|_| kernel_task(0, vec![inv(512, KernelType::Iterative)]))
                .collect(),
        );
        let spread = stage_with(
            (0..64)
                .map(|i| kernel_task(i % 16, vec![inv(512, KernelType::Iterative)]))
                .collect(),
        );
        assert!(m.stage_seconds(&one_node) > 1.5 * m.stage_seconds(&spread));
    }

    #[test]
    fn collect_broadcast_adds_driver_serial_time() {
        let m = model();
        let stage = StageRecord {
            tasks: vec![],
            collect_bytes: 1 << 30,
            broadcast_bytes: 1 << 30,
            ..Default::default()
        };
        // ≥ 1 GiB compressed over GbE + storage writes: several seconds.
        assert!(m.stage_seconds(&stage) > 4.0);
    }

    #[test]
    fn spill_traffic_is_priced_like_staging() {
        let m = model();
        let bare = stage_with(vec![kernel_task(0, vec![inv(256, KernelType::Iterative)])]);
        let mut spilled_task = kernel_task(0, vec![inv(256, KernelType::Iterative)]);
        spilled_task.spill_write_bytes = 4 << 30;
        spilled_task.spill_read_bytes = 4 << 30;
        let spilled = stage_with(vec![spilled_task]);
        let t_bare = m.stage_seconds(&bare);
        let t_spill = m.stage_seconds(&spilled);
        assert!(t_spill > t_bare + 1.0, "bare={t_bare} spill={t_spill}");
        // An HDD cluster pays more for the same spill volume.
        let hdd = CostModel::new(ClusterSpec::haswell(), 20);
        assert!(hdd.stage_seconds(&spilled) > t_spill);
    }

    #[test]
    fn hdd_cluster_pays_more_for_staging() {
        let ssd = CostModel::new(ClusterSpec::skylake(), 32);
        let hdd = CostModel::new(ClusterSpec::haswell(), 20);
        let mut task = TaskRecord {
            node: 0,
            ..Default::default()
        };
        task.shuffle_write_bytes = 4 << 30;
        let stage = stage_with(vec![task]);
        assert!(hdd.stage_seconds(&stage) > 2.0 * ssd.stage_seconds(&stage));
    }

    #[test]
    fn breakdown_components_are_consistent() {
        let m = model();
        let mut t = kernel_task(0, vec![inv(1024, KernelType::Iterative)]);
        t.remote_read_bytes = 1 << 28;
        t.shuffle_write_bytes = 1 << 28;
        let stage = StageRecord {
            tasks: vec![t],
            collect_bytes: 1 << 27,
            broadcast_bytes: 0,
            ..Default::default()
        };
        let cost = m.stage_breakdown(&stage);
        assert!(cost.compute > 0.0 && cost.io > 0.0 && cost.driver > 0.0);
        let sum = cost.compute + cost.io + cost.driver + cost.overhead;
        assert!(
            (sum - cost.total).abs() < 0.05 * cost.total + 1e-6,
            "components {sum} vs total {}",
            cost.total
        );
    }

    #[test]
    fn breakdown_of_pure_compute_is_compute() {
        let m = model();
        let stage = stage_with(vec![kernel_task(0, vec![inv(2048, KernelType::Iterative)])]);
        let cost = m.stage_breakdown(&stage);
        assert!(cost.compute > 10.0 * (cost.io + cost.driver));
    }

    #[test]
    fn measured_wire_bytes_replace_the_assumed_ratio() {
        let m = model();
        let mut assumed = kernel_task(0, vec![inv(256, KernelType::Iterative)]);
        assumed.remote_read_bytes = 1 << 30;
        assumed.shuffle_write_bytes = 1 << 30;
        // Same logical traffic, but the engine measured an 8× smaller
        // wire footprint — tighter than the default 2.5× assumption.
        let mut measured = assumed.clone();
        measured.remote_read_wire_bytes = (1 << 30) / 8;
        measured.shuffle_write_wire_bytes = (1 << 30) / 8;
        let t_assumed = m.stage_seconds(&stage_with(vec![assumed]));
        let t_measured = m.stage_seconds(&stage_with(vec![measured]));
        assert!(
            t_measured < t_assumed,
            "assumed={t_assumed} measured={t_measured}"
        );
        // And a measured wire size *larger* than logical/2.5 costs more.
        let mut bloated = kernel_task(0, vec![inv(256, KernelType::Iterative)]);
        bloated.remote_read_bytes = 1 << 30;
        bloated.shuffle_write_bytes = 1 << 30;
        bloated.remote_read_wire_bytes = 1 << 30;
        bloated.shuffle_write_wire_bytes = 1 << 30;
        let t_bloated = m.stage_seconds(&stage_with(vec![bloated]));
        assert!(
            t_bloated > t_assumed,
            "ratio-priced={t_assumed} raw={t_bloated}"
        );
    }

    #[test]
    fn breakdown_isolates_compute_with_wire_bytes_present() {
        let m = model();
        let mut t = kernel_task(0, vec![inv(1024, KernelType::Iterative)]);
        t.remote_read_bytes = 1 << 28;
        t.remote_read_wire_bytes = 1 << 26;
        t.spill_write_bytes = 1 << 28;
        t.spill_write_wire_bytes = 1 << 26;
        let plain = stage_with(vec![kernel_task(0, vec![inv(1024, KernelType::Iterative)])]);
        let stage = stage_with(vec![t]);
        let cost = m.stage_breakdown(&stage);
        let ref_cost = m.stage_breakdown(&plain);
        // Wire bytes change the io component, never the compute one.
        assert!((cost.compute - ref_cost.compute).abs() < 1e-9);
        assert!(cost.io > 0.0);
    }

    #[test]
    fn job_is_sum_of_stages() {
        let m = model();
        let s = stage_with(vec![kernel_task(0, vec![inv(256, KernelType::Iterative)])]);
        let one = m.stage_seconds(&s);
        let job = m.job_seconds(&[s.clone(), s]);
        assert!((job - 2.0 * one).abs() < 1e-9);
    }

    // Regression: a zero or unset bandwidth used to flow straight into
    // the division terms and produce inf/NaN estimates that silently
    // corrupted every downstream ranking. Construction now rejects it
    // with a typed error naming the field.
    #[test]
    fn zero_bandwidth_is_a_typed_error_not_nan() {
        let mut spec = ClusterSpec::skylake();
        spec.network_bw = 0.0;
        let err = CostModel::try_new(spec, 32).unwrap_err();
        assert_eq!(err.field, "network_bw");

        let mut spec = ClusterSpec::skylake();
        spec.storage.read_bw = f64::NAN;
        let err = CostModel::try_new(spec, 32).unwrap_err();
        assert_eq!(err.field, "storage.read_bw");

        let mut spec = ClusterSpec::skylake();
        spec.storage.write_bw = -1.0;
        assert_eq!(spec.validate().unwrap_err().field, "storage.write_bw");

        // Valid paper specs still construct.
        assert!(CostModel::try_new(ClusterSpec::skylake(), 32).is_ok());
        assert!(CostModel::try_new(ClusterSpec::haswell(), 20).is_ok());
        assert_eq!(
            CostModel::try_new(ClusterSpec::skylake(), 0)
                .unwrap_err()
                .field,
            "executor_cores"
        );
    }

    #[test]
    fn bad_model_params_are_rejected() {
        let m = model();
        let p = ModelParams {
            serde_bw: 0.0,
            ..ModelParams::default()
        };
        let err = m.clone().try_with_params(p).unwrap_err();
        assert_eq!(err.field, "params.serde_bw");
        let p = ModelParams {
            compression: f64::INFINITY,
            ..ModelParams::default()
        };
        assert_eq!(
            m.try_with_params(p).unwrap_err().field,
            "params.compression"
        );
    }

    #[test]
    fn admission_pricing_is_pure_and_monotone() {
        let m = CostModel::new(ClusterSpec::skylake(), 4);
        let inv = |updates: f64| KernelInvocation {
            updates,
            block_side: 256,
            elem_bytes: 8,
            kernel: KernelType::Iterative,
        };
        let a = m.admission_seconds(&inv(1e9), 1 << 20);
        let b = m.admission_seconds(&inv(1e9), 1 << 20);
        assert_eq!(a.to_bits(), b.to_bits(), "pricing must be pure");
        assert!(a.is_finite() && a > 0.0);
        // More updates or more bytes never price cheaper.
        assert!(m.admission_seconds(&inv(2e9), 1 << 20) > a);
        assert!(m.admission_seconds(&inv(1e9), 1 << 24) > a);
        // Whole-cluster parallelism: far below one core's seconds.
        assert!(a < m.core_seconds(&inv(1e9)));
    }

    #[test]
    fn tick_charger_rejects_unset_rates() {
        let good = TickCharger::default();
        assert!(good.validate().is_ok());
        let bad = TickCharger {
            io_bw: 0.0,
            ..TickCharger::default()
        };
        assert_eq!(bad.validate().unwrap_err().field, "tick.io_bw");
        let t = TaskRecord {
            remote_read_bytes: 1 << 20,
            ..Default::default()
        };
        let res = std::panic::catch_unwind(|| bad.task_ticks(&t));
        assert!(res.is_err(), "invalid charger must fail loudly");
        // A valid charger still prices the same record.
        assert!(good.task_ticks(&t) > 0);
    }
}
