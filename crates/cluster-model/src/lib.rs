//! `cluster-model` — cluster hardware specs and the analytical cost
//! model used to regenerate the paper's tables and figures.
//!
//! We cannot run on the paper's two 16-node clusters, so every
//! experiment executes the *real* distributed dataflow (real DAG,
//! stages, shuffles, partitioning) on the `sparklet` engine while
//! recording per-task work and byte counters, and this crate maps those
//! records onto a parameterised cluster to produce **simulated
//! seconds**. The model encodes the mechanisms the paper's evaluation
//! hinges on:
//!
//! * iterative kernels fall off a cliff once a block no longer fits L2
//!   (Fig. 6's 512 → 1024 crossover), while recursive kernels are
//!   cache-oblivious and stay flat;
//! * `executor-cores × OMP_NUM_THREADS` beyond the physical core count
//!   oversubscribes the node (Tables I–II's valley shape);
//! * wide shuffles pay network *and* SSD-staging costs and scale with
//!   copy multiplicity (IM), while collect-broadcast serializes through
//!   the driver and shared storage (CB);
//! * per-task scheduling overhead punishes very small blocks.

#![warn(missing_docs)]

pub mod cost;
pub mod spec;

pub use cost::{
    CostModel, KernelInvocation, KernelType, ModelParams, StageCost, StageRecord, TaskRecord,
    TickCharger,
};
pub use spec::{ClusterSpec, NodeSpec, SpecError, StorageKind, StorageSpec};
