//! Execution event log — the bridge between real `sparklet` runs and
//! the `cluster-model` cost model.

use cluster_model::StageRecord;

/// One completed stage with a human-readable label.
#[derive(Debug, Clone, Default)]
pub struct StageEvent {
    /// Stage label (engine-assigned).
    pub label: String,
    /// The stage's recorded tasks and traffic.
    pub record: StageRecord,
    /// Real wall-clock seconds the stage took on the host (for
    /// comparing against the simulated cluster seconds).
    pub wall_seconds: f64,
}

/// One adaptive re-plan decision, recorded when a driver running under
/// [`crate::SparkConf::with_adaptive_execution`] changes the remaining
/// plan from live stage metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveDecision {
    /// Stage ordinal the decision was taken at: every stage with an id
    /// `>= at_stage` ran under the new plan.
    pub at_stage: u64,
    /// Driver-level step (e.g. DP iteration) the decision follows.
    pub iteration: u64,
    /// What changed, machine-readable (e.g. `coalesce:64->16`).
    pub action: String,
    /// Why, human-readable (the cost-model comparison that drove it).
    pub reason: String,
}

/// Ordered log of every stage a context has executed.
#[derive(Debug, Default)]
pub struct EventLog {
    stages: Vec<StageEvent>,
    decisions: Vec<AdaptiveDecision>,
}

impl EventLog {
    /// Append a completed stage.
    pub fn push(&mut self, label: String, record: StageRecord) {
        self.push_timed(label, record, 0.0);
    }

    /// Append a completed stage with its measured host wall time.
    pub fn push_timed(&mut self, label: String, record: StageRecord, wall_seconds: f64) {
        self.stages.push(StageEvent {
            label,
            record,
            wall_seconds,
        });
    }

    /// Total host wall seconds across stages.
    pub fn total_wall_seconds(&self) -> f64 {
        self.stages.iter().map(|s| s.wall_seconds).sum()
    }

    /// All stages in execution order.
    pub fn stages(&self) -> &[StageEvent] {
        &self.stages
    }

    /// Number of stages executed.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Total tasks across all stages.
    pub fn task_count(&self) -> usize {
        self.stages.iter().map(|s| s.record.tasks.len()).sum()
    }

    /// Total shuffle bytes fetched across node boundaries.
    pub fn total_remote_bytes(&self) -> u64 {
        self.stages
            .iter()
            .flat_map(|s| &s.record.tasks)
            .map(|t| t.remote_read_bytes)
            .sum()
    }

    /// Total shuffle bytes fetched from the task's own node.
    pub fn total_local_bytes(&self) -> u64 {
        self.stages
            .iter()
            .flat_map(|s| &s.record.tasks)
            .map(|t| t.local_read_bytes)
            .sum()
    }

    /// Total map-output bytes staged to local storage.
    pub fn total_staged_bytes(&self) -> u64 {
        self.stages
            .iter()
            .flat_map(|s| &s.record.tasks)
            .map(|t| t.shuffle_write_bytes)
            .sum()
    }

    /// Total measured wire bytes behind shuffle fetches (local +
    /// remote). Non-zero only when compression is on and the frames
    /// actually shrank; deliberately NOT part of the sim counter
    /// fingerprint, which must be identical across codec settings.
    pub fn total_shuffle_wire_bytes(&self) -> u64 {
        self.stages
            .iter()
            .flat_map(|s| &s.record.tasks)
            .map(|t| t.remote_read_wire_bytes + t.local_read_wire_bytes)
            .sum()
    }

    /// Total measured wire bytes behind spill writes and reads.
    /// Same caveats as [`EventLog::total_shuffle_wire_bytes`].
    pub fn total_spill_wire_bytes(&self) -> u64 {
        self.stages
            .iter()
            .flat_map(|s| &s.record.tasks)
            .map(|t| t.spill_write_wire_bytes + t.spill_read_wire_bytes)
            .sum()
    }

    /// Total driver collect bytes (CB pattern).
    pub fn total_collect_bytes(&self) -> u64 {
        self.stages.iter().map(|s| s.record.collect_bytes).sum()
    }

    /// Total broadcast bytes read back by executors (CB pattern).
    pub fn total_broadcast_bytes(&self) -> u64 {
        self.stages.iter().map(|s| s.record.broadcast_bytes).sum()
    }

    /// Total failed attempts re-launched via lineage retry.
    pub fn total_retries(&self) -> u64 {
        self.stages.iter().map(|s| s.record.retries).sum()
    }

    /// Total straggler attempts re-launched speculatively.
    pub fn total_speculative_launches(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| s.record.speculative_launches)
            .sum()
    }

    /// Total late shuffle writes dropped by attempt fencing.
    pub fn total_zombie_writes_fenced(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| s.record.zombie_writes_fenced)
            .sum()
    }

    /// Total staged bytes released back (shuffle GC + reconciliation).
    pub fn total_staged_released_bytes(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| s.record.staged_released_bytes)
            .sum()
    }

    /// Total cached-partition reads served from either storage tier.
    pub fn total_cache_hits(&self) -> u64 {
        self.stages.iter().map(|s| s.record.cache_hits).sum()
    }

    /// Total cached-partition reads that found neither tier populated.
    pub fn total_cache_misses(&self) -> u64 {
        self.stages.iter().map(|s| s.record.cache_misses).sum()
    }

    /// Total cached bytes serialized into the disk tier (spills +
    /// `DiskOnly` puts).
    pub fn total_spilled_bytes(&self) -> u64 {
        self.stages.iter().map(|s| s.record.spilled_bytes).sum()
    }

    /// Total cached bytes dropped under memory pressure
    /// (recompute-backed evictions).
    pub fn total_evicted_bytes(&self) -> u64 {
        self.stages.iter().map(|s| s.record.evicted_bytes).sum()
    }

    /// Total lineage recomputations of dropped cached blocks.
    pub fn total_recomputes(&self) -> u64 {
        self.stages.iter().map(|s| s.record.recomputes).sum()
    }

    /// Mutable view of the most recent stage (action annotations).
    pub fn last_stage_mut(&mut self) -> Option<&mut StageEvent> {
        self.stages.last_mut()
    }

    /// Mutable view of the stage with the given stage id. Searches
    /// from the back: with concurrent jobs, the most recent record
    /// need not be the caller's, and ids are assigned monotonically so
    /// a match near the tail is the right one.
    pub fn stage_mut_by_id(&mut self, stage_id: u64) -> Option<&mut StageEvent> {
        self.stages
            .iter_mut()
            .rev()
            .find(|s| s.record.stage_id == stage_id)
    }

    /// Highest number of stages the DAG scheduler had in flight
    /// simultaneously at any stage launch (each record carries the
    /// driver's in-flight gauge at its launch instant).
    pub fn max_concurrent_stages(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| s.record.concurrent_stages)
            .max()
            .unwrap_or(0)
    }

    /// Schedule fingerprint: `(stage_id, label)` in completion order.
    /// Two runs with the same sim seed must produce identical
    /// fingerprints — this is what the simulation harness compares to
    /// assert a seed fully determines the schedule.
    pub fn stage_order(&self) -> Vec<(u64, String)> {
        self.stages
            .iter()
            .map(|s| (s.record.stage_id, s.label.clone()))
            .collect()
    }

    /// Plain records for the cost model.
    pub fn records(&self) -> Vec<StageRecord> {
        self.stages.iter().map(|s| s.record.clone()).collect()
    }

    /// Record an adaptive re-plan decision.
    pub fn push_decision(&mut self, decision: AdaptiveDecision) {
        self.decisions.push(decision);
    }

    /// All adaptive re-plan decisions, in the order they were taken.
    pub fn decisions(&self) -> &[AdaptiveDecision] {
        &self.decisions
    }

    /// Drain everything (e.g. between benchmark configurations).
    pub fn take(&mut self) -> Vec<StageEvent> {
        self.decisions.clear();
        std::mem::take(&mut self.stages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_model::TaskRecord;

    #[test]
    fn aggregates_sum_over_stages() {
        let mut log = EventLog::default();
        log.push(
            "s0".into(),
            StageRecord {
                tasks: vec![TaskRecord {
                    node: 0,
                    remote_read_bytes: 10,
                    local_read_bytes: 5,
                    shuffle_write_bytes: 7,
                    remote_read_wire_bytes: 4,
                    local_read_wire_bytes: 2,
                    spill_write_wire_bytes: 3,
                    ..Default::default()
                }],
                collect_bytes: 100,
                broadcast_bytes: 50,
                retries: 2,
                staged_released_bytes: 30,
                ..Default::default()
            },
        );
        log.push(
            "s1".into(),
            StageRecord {
                tasks: vec![TaskRecord {
                    node: 1,
                    remote_read_bytes: 1,
                    ..Default::default()
                }],
                ..Default::default()
            },
        );
        assert_eq!(log.stage_count(), 2);
        assert_eq!(log.task_count(), 2);
        assert_eq!(log.total_remote_bytes(), 11);
        assert_eq!(log.total_local_bytes(), 5);
        assert_eq!(log.total_staged_bytes(), 7);
        assert_eq!(log.total_collect_bytes(), 100);
        assert_eq!(log.total_broadcast_bytes(), 50);
        assert_eq!(log.total_retries(), 2);
        assert_eq!(log.total_speculative_launches(), 0);
        assert_eq!(log.total_staged_released_bytes(), 30);
        assert_eq!(log.total_shuffle_wire_bytes(), 6);
        assert_eq!(log.total_spill_wire_bytes(), 3);
        let taken = log.take();
        assert_eq!(taken.len(), 2);
        assert_eq!(log.stage_count(), 0);
    }

    #[test]
    fn decisions_are_ordered_and_drained_with_take() {
        let mut log = EventLog::default();
        log.push_decision(AdaptiveDecision {
            at_stage: 4,
            iteration: 1,
            action: "coalesce:64->16".into(),
            reason: "modeled 0.8s < 1.3s".into(),
        });
        log.push_decision(AdaptiveDecision {
            at_stage: 9,
            iteration: 2,
            action: "storage:memory->memory+disk".into(),
            reason: "spill observed".into(),
        });
        assert_eq!(log.decisions().len(), 2);
        assert_eq!(log.decisions()[0].at_stage, 4);
        assert!(log.decisions()[1].action.starts_with("storage:"));
        log.take();
        assert!(log.decisions().is_empty(), "take() drains decisions too");
    }
}
