//! The multi-tenant job service: a long-running driver front end that
//! multiplexes concurrent job submissions over one [`SparkContext`]
//! (ROADMAP item 2 — serve heavy traffic instead of cold-starting per
//! query).
//!
//! Three policies compose, each deterministic on its own:
//!
//! * **admission control** ([`admit`]) prices every submission with a
//!   caller-supplied cost estimate and rejects over-budget work with
//!   typed errors — a pure function of an explicit queue snapshot;
//! * **fair scheduling** ([`sched`]) dispatches queued jobs across
//!   tenants by weighted round-robin with per-tenant and global
//!   in-flight caps, sitting *above* the DAG scheduler's
//!   `max_concurrent_stages` window (the service bounds whole jobs,
//!   the DAG scheduler bounds stages within them);
//! * **lineage-keyed result caching** ([`cache`]) memoizes completed
//!   results under a digest of the job's logical lineage, so
//!   identical — or overlapping, via [`JobRunner::project`] — queries
//!   skip the engine entirely.
//!
//! The engine binding is the [`JobRunner`] trait: the service is
//! generic over what a "job" is (dp-core supplies the DP descriptors),
//! which keeps sparklet free of problem-specific code.
//!
//! Every policy outcome is appended to a [`ServiceDecision`] log. In
//! sim mode (driven by [`JobService::pump`] /
//! [`JobService::run_script`] on a seeded context) the whole service
//! is single-threaded and clock-free, so two runs of the same script
//! produce byte-identical decision logs and results — the replay
//! property the acceptance tests pin. Worker threads
//! ([`JobService::start_workers`]) and the socket front end
//! ([`JobService::serve`]) trade that determinism for real
//! concurrency.

pub mod cache;
pub mod sched;
pub mod wire;

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use crate::context::SparkContext;
use crate::dag::{with_cancel, CancelToken};
use crate::error::JobError;
use crate::payload::{Compression, Payload};

pub use cache::LineageHasher;
pub use sched::{admit, AdmissionState, JobId, Rejection, TenantId};
pub use wire::SvcMsg;

use cache::ResultCache;
use sched::FairScheduler;

// ---------------------------------------------------------------------
// Engine binding
// ---------------------------------------------------------------------

/// What the service needs to know about a job, given only its opaque
/// body bytes. Implementations must be deterministic: same body, same
/// estimate / key / result — the service's replay guarantee is only as
/// strong as the runner's.
pub trait JobRunner: Send + Sync + 'static {
    /// Price the job in cost units (modeled seconds) for admission
    /// control. Must be cheap — it runs on the submission path.
    fn estimate(&self, body: &Bytes) -> Result<f64, JobError>;

    /// The job's lineage digest: jobs with equal keys must produce
    /// bitwise-identical *cacheable* results ([`JobRunner::run`]'s
    /// output). `None` opts the job out of caching. Overlapping
    /// queries (same underlying computation, different slice) should
    /// map to the same key and differ only in
    /// [`JobRunner::project`].
    fn cache_key(&self, body: &Bytes) -> Result<Option<u128>, JobError>;

    /// Execute the job on the engine, returning the cacheable result
    /// encoding (the *full* result for overlapping-query families).
    fn run(&self, sc: &SparkContext, body: &Bytes) -> Result<Bytes, JobError>;

    /// Derive this request's response from a cacheable result (its
    /// own or a cached peer's). Identity by default.
    fn project(&self, _body: &Bytes, full: &Bytes) -> Result<Bytes, JobError> {
        Ok(full.clone())
    }
}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Service policy knobs (the engine's own knobs stay on
/// [`crate::SparkConf`]).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Per-tenant WRR weights; tenants not listed get
    /// [`ServiceConfig::default_weight`].
    pub tenant_weights: Vec<(TenantId, u32)>,
    /// Weight for tenants without an explicit entry.
    pub default_weight: u32,
    /// Max jobs one tenant may have in flight.
    pub per_tenant_inflight: usize,
    /// Max jobs in flight across all tenants (the service-level
    /// concurrency window on top of `max_concurrent_stages`).
    pub max_inflight: usize,
    /// Cost units (queued + in-flight) admission may commit to.
    pub admission_budget: f64,
    /// Per-job cost ceiling.
    pub max_job_cost: f64,
    /// Max queued (undispatched) jobs per tenant.
    pub max_queued_per_tenant: usize,
    /// Result-cache capacity in bytes (0 disables caching).
    pub cache_capacity: u64,
    /// How many settled (done/failed/cancelled) jobs to retain for
    /// [`JobService::poll`] / [`JobService::wait`]. Oldest settled
    /// entries beyond this are dropped — their bodies and results are
    /// freed, and late status probes see "unknown job" — so a
    /// long-running front end holds bounded memory.
    pub settled_retention: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            tenant_weights: Vec::new(),
            default_weight: 1,
            per_tenant_inflight: 2,
            max_inflight: 4,
            admission_budget: f64::INFINITY,
            max_job_cost: f64::INFINITY,
            max_queued_per_tenant: 64,
            cache_capacity: 64 << 20,
            settled_retention: 1024,
        }
    }
}

impl ServiceConfig {
    /// Set one tenant's WRR weight (≥ 1).
    pub fn with_tenant_weight(mut self, tenant: TenantId, weight: u32) -> Self {
        self.tenant_weights.retain(|(t, _)| *t != tenant);
        self.tenant_weights.push((tenant, weight.max(1)));
        self
    }

    /// Set the global and per-tenant in-flight caps.
    pub fn with_inflight(mut self, global: usize, per_tenant: usize) -> Self {
        self.max_inflight = global.max(1);
        self.per_tenant_inflight = per_tenant.max(1);
        self
    }

    /// Set the admission budget in cost units.
    pub fn with_admission_budget(mut self, budget: f64) -> Self {
        self.admission_budget = budget;
        self
    }

    /// Set the per-job cost ceiling.
    pub fn with_max_job_cost(mut self, limit: f64) -> Self {
        self.max_job_cost = limit;
        self
    }

    /// Set the per-tenant queue cap.
    pub fn with_max_queued_per_tenant(mut self, limit: usize) -> Self {
        self.max_queued_per_tenant = limit.max(1);
        self
    }

    /// Set the result-cache capacity in bytes (0 disables caching).
    pub fn with_cache_capacity(mut self, bytes: u64) -> Self {
        self.cache_capacity = bytes;
        self
    }

    /// Set how many settled jobs stay pollable (≥ 1).
    pub fn with_settled_retention(mut self, keep: usize) -> Self {
        self.settled_retention = keep.max(1);
        self
    }
}

// ---------------------------------------------------------------------
// Job lifecycle
// ---------------------------------------------------------------------

/// Client-visible job lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a dispatch slot.
    Queued,
    /// Dispatched and executing.
    Running,
    /// Finished successfully; the result is available.
    Done,
    /// Finished with an error.
    Failed,
    /// Aborted before completion.
    Cancelled,
}

/// Wire code for a [`JobState`].
pub fn state_code(s: JobState) -> u8 {
    match s {
        JobState::Queued => 0,
        JobState::Running => 1,
        JobState::Done => 2,
        JobState::Failed => 3,
        JobState::Cancelled => 4,
    }
}

/// Decode a wire state code.
pub fn state_from_code(c: u8) -> Option<JobState> {
    Some(match c {
        0 => JobState::Queued,
        1 => JobState::Running,
        2 => JobState::Done,
        3 => JobState::Failed,
        4 => JobState::Cancelled,
        _ => return None,
    })
}

/// Wire code for a [`Rejection`] (carried in
/// [`SvcMsg::SubmitErr`]).
pub fn rejection_code(r: &Rejection) -> u8 {
    match r {
        Rejection::OverBudget { .. } => 1,
        Rejection::TooExpensive { .. } => 2,
        Rejection::QueueFull { .. } => 3,
        Rejection::Malformed(_) => 4,
        Rejection::ShuttingDown => 5,
    }
}

/// A job's status snapshot as returned by [`JobService::poll`] /
/// [`JobService::wait`] and reconstructed by [`ServiceClient`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatusView {
    /// The job's id.
    pub job: JobId,
    /// Lifecycle state at snapshot time.
    pub state: JobState,
    /// Whether the result came from the lineage cache.
    pub cache_hit: bool,
    /// Engine stages this job ran (0 on a cache hit; meaningful when
    /// jobs run sequentially, e.g. sim mode — concurrent jobs
    /// interleave the shared stage counter).
    pub stages_run: u64,
    /// The response bytes, present iff `state == Done`.
    pub result: Option<Bytes>,
    /// The failure message, present iff `state == Failed`.
    pub error: Option<String>,
}

enum EntryState {
    Queued,
    Running,
    Done { resp: Bytes, hit: bool, stages: u64 },
    Failed(JobError),
    Cancelled,
}

struct JobEntry {
    tenant: TenantId,
    cost: f64,
    key: Option<u128>,
    body: Bytes,
    cancel: CancelToken,
    state: EntryState,
}

impl JobEntry {
    fn view(&self, job: JobId) -> JobStatusView {
        match &self.state {
            EntryState::Queued => JobStatusView {
                job,
                state: JobState::Queued,
                cache_hit: false,
                stages_run: 0,
                result: None,
                error: None,
            },
            EntryState::Running => JobStatusView {
                job,
                state: JobState::Running,
                cache_hit: false,
                stages_run: 0,
                result: None,
                error: None,
            },
            EntryState::Done { resp, hit, stages } => JobStatusView {
                job,
                state: JobState::Done,
                cache_hit: *hit,
                stages_run: *stages,
                result: Some(resp.clone()),
                error: None,
            },
            EntryState::Failed(e) => JobStatusView {
                job,
                state: JobState::Failed,
                cache_hit: false,
                stages_run: 0,
                result: None,
                error: Some(e.to_string()),
            },
            EntryState::Cancelled => JobStatusView {
                job,
                state: JobState::Cancelled,
                cache_hit: false,
                stages_run: 0,
                result: None,
                error: None,
            },
        }
    }
}

// ---------------------------------------------------------------------
// Decision log & counters
// ---------------------------------------------------------------------

/// One policy decision, appended in the order taken. Under sequential
/// driving (sim mode) the log is a pure function of the submission
/// script, so replay equality is byte equality of two logs. Costs are
/// recorded in integer milli-units to keep the log `Eq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceDecision {
    /// Admission accepted the job.
    Admitted {
        /// Assigned job id.
        job: JobId,
        /// Submitting tenant.
        tenant: TenantId,
        /// Cost estimate in milli-units.
        cost_milli: u64,
    },
    /// Admission rejected the submission (no job id was assigned).
    Rejected {
        /// Submitting tenant.
        tenant: TenantId,
        /// Rejection class ([`rejection_code`]).
        code: u8,
    },
    /// The WRR scheduler dispatched the job.
    Dispatched {
        /// Dispatched job.
        job: JobId,
        /// Its tenant.
        tenant: TenantId,
        /// Global dispatch sequence number.
        seq: u64,
    },
    /// The job was served from the lineage cache.
    CacheHit {
        /// The job.
        job: JobId,
        /// Its tenant.
        tenant: TenantId,
        /// The lineage key that hit.
        key: u128,
    },
    /// The job's result was stored in the cache.
    CacheStore {
        /// The job.
        job: JobId,
        /// The lineage key stored.
        key: u128,
    },
    /// The job settled (success or failure).
    Completed {
        /// The job.
        job: JobId,
        /// Its tenant.
        tenant: TenantId,
        /// Whether it succeeded.
        ok: bool,
        /// Engine stages it ran.
        stages_run: u64,
    },
    /// The job was cancelled (queued drop or mid-run abort).
    Cancelled {
        /// The job.
        job: JobId,
        /// Its tenant.
        tenant: TenantId,
    },
}

/// Monotonic service counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Submissions seen (admitted + rejected).
    pub submitted: u64,
    /// Submissions admitted.
    pub admitted: u64,
    /// Submissions rejected.
    pub rejected: u64,
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs failed.
    pub failed: u64,
    /// Jobs cancelled.
    pub cancelled: u64,
    /// Completions served from the cache.
    pub cache_hits: u64,
    /// Results stored into the cache.
    pub cache_stores: u64,
}

// ---------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------

struct SvcState {
    sched: FairScheduler,
    jobs: HashMap<JobId, JobEntry>,
    /// Settled job ids in settling order: the retention ring. Only
    /// terminal entries are ever listed here, so eviction never drops
    /// a queued or running job.
    settled: VecDeque<JobId>,
    next_job: JobId,
    committed: f64,
    dispatch_seq: u64,
    decisions: Vec<ServiceDecision>,
    stats: ServiceStats,
}

impl SvcState {
    /// Record `job` as settled and evict the oldest settled entries
    /// beyond the retention cap, freeing their bodies and results.
    fn retire(&mut self, job: JobId, keep: usize) {
        self.settled.push_back(job);
        while self.settled.len() > keep.max(1) {
            let old = self.settled.pop_front().expect("nonempty ring");
            self.jobs.remove(&old);
        }
    }
}

struct SvcInner {
    sc: SparkContext,
    conf: ServiceConfig,
    runner: Box<dyn JobRunner>,
    state: Mutex<SvcState>,
    /// Workers park here for dispatchable jobs.
    work: Condvar,
    /// Waiters park here for job completions.
    done: Condvar,
    cache: Mutex<ResultCache>,
    stopping: AtomicBool,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// A running job service. Cheap to clone (all clones share state);
/// drive it inline ([`JobService::pump`], deterministic), with worker
/// threads ([`JobService::start_workers`]), or over a socket
/// ([`JobService::serve`]).
#[derive(Clone)]
pub struct JobService {
    inner: Arc<SvcInner>,
}

struct Dispatch {
    job: JobId,
    tenant: TenantId,
    body: Bytes,
    key: Option<u128>,
    cancel: CancelToken,
}

/// Run a [`JobRunner`] hook with a panic fence: `JobRunner` is a
/// public trait, and a panicking implementation must settle the job
/// as failed — not kill a worker thread that holds a dispatched
/// scheduler slot and committed admission budget.
fn catch_runner<T>(what: &str, f: impl FnOnce() -> Result<T, JobError>) -> Result<T, JobError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into());
            Err(JobError::Driver(format!(
                "job runner panicked in {what}: {msg}"
            )))
        }
    }
}

impl JobService {
    /// Build a service over `sc` with the given policy knobs and
    /// engine binding.
    pub fn new(sc: SparkContext, conf: ServiceConfig, runner: impl JobRunner) -> Self {
        let sched = FairScheduler::new(&conf);
        let cache = ResultCache::new(conf.cache_capacity);
        JobService {
            inner: Arc::new(SvcInner {
                sc,
                conf,
                runner: Box::new(runner),
                state: Mutex::new(SvcState {
                    sched,
                    jobs: HashMap::new(),
                    settled: VecDeque::new(),
                    next_job: 1,
                    committed: 0.0,
                    dispatch_seq: 0,
                    decisions: Vec::new(),
                    stats: ServiceStats::default(),
                }),
                work: Condvar::new(),
                done: Condvar::new(),
                cache: Mutex::new(cache),
                stopping: AtomicBool::new(false),
                workers: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The context the service runs jobs on.
    pub fn sc(&self) -> &SparkContext {
        &self.inner.sc
    }

    /// Submit a job body for `tenant`: price it, take the admission
    /// decision against the current queue snapshot, and enqueue it
    /// under the WRR scheduler. Returns the job id, or the typed
    /// rejection.
    pub fn submit(&self, tenant: TenantId, body: Bytes) -> Result<JobId, Rejection> {
        let inner = &self.inner;
        let reject = |st: &mut SvcState, r: Rejection| {
            st.stats.submitted += 1;
            st.stats.rejected += 1;
            st.decisions.push(ServiceDecision::Rejected {
                tenant,
                code: rejection_code(&r),
            });
            Err(r)
        };
        if inner.stopping.load(Ordering::Acquire) {
            let mut st = inner.state.lock();
            return reject(&mut st, Rejection::ShuttingDown);
        }
        // Price and key the body outside the lock — both are pure.
        // Panic-fenced: this runs on the submitting client's thread.
        let priced = catch_runner("estimate", || {
            inner
                .runner
                .estimate(&body)
                .and_then(|cost| inner.runner.cache_key(&body).map(|key| (cost, key)))
        });
        let mut st = inner.state.lock();
        let (cost, key) = match priced {
            Ok(ck) => ck,
            Err(e) => return reject(&mut st, Rejection::Malformed(e.to_string())),
        };
        let snapshot = AdmissionState {
            committed: st.committed,
            tenant_queued: st.sched.queued(tenant),
        };
        if let Err(r) = admit(&snapshot, tenant, cost, &inner.conf) {
            return reject(&mut st, r);
        }
        let job = st.next_job;
        st.next_job += 1;
        st.committed += cost;
        st.stats.submitted += 1;
        st.stats.admitted += 1;
        st.decisions.push(ServiceDecision::Admitted {
            job,
            tenant,
            cost_milli: (cost * 1000.0).round() as u64,
        });
        st.jobs.insert(
            job,
            JobEntry {
                tenant,
                cost,
                key,
                body,
                cancel: CancelToken::new(),
                state: EntryState::Queued,
            },
        );
        st.sched.enqueue(tenant, job);
        drop(st);
        inner.work.notify_all();
        Ok(job)
    }

    /// Take the next WRR dispatch, marking it running. `None` when
    /// nothing is dispatchable (empty queues or caps reached).
    fn dispatch_next(&self) -> Option<Dispatch> {
        let mut st = self.inner.state.lock();
        let (tenant, job) = st.sched.next()?;
        let seq = st.dispatch_seq;
        st.dispatch_seq += 1;
        st.decisions
            .push(ServiceDecision::Dispatched { job, tenant, seq });
        let entry = st.jobs.get_mut(&job).expect("dispatched job exists");
        entry.state = EntryState::Running;
        Some(Dispatch {
            job,
            tenant,
            body: entry.body.clone(),
            key: entry.key,
            cancel: entry.cancel.clone(),
        })
    }

    fn settle(
        &self,
        d: &Dispatch,
        outcome: Result<(Bytes, bool, u64), JobError>,
        stored_key: Option<u128>,
    ) {
        let mut st = self.inner.state.lock();
        st.sched.job_finished(d.tenant);
        st.committed = (st.committed - st.jobs[&d.job].cost).max(0.0);
        if let Some(key) = stored_key {
            st.stats.cache_stores += 1;
            st.decisions
                .push(ServiceDecision::CacheStore { job: d.job, key });
        }
        let state = match outcome {
            Ok((resp, hit, stages)) => {
                if hit {
                    st.stats.cache_hits += 1;
                    st.decisions.push(ServiceDecision::CacheHit {
                        job: d.job,
                        tenant: d.tenant,
                        key: d.key.expect("hit implies key"),
                    });
                }
                st.stats.completed += 1;
                st.decisions.push(ServiceDecision::Completed {
                    job: d.job,
                    tenant: d.tenant,
                    ok: true,
                    stages_run: stages,
                });
                EntryState::Done { resp, hit, stages }
            }
            Err(JobError::Cancelled(_)) => {
                st.stats.cancelled += 1;
                st.decisions.push(ServiceDecision::Cancelled {
                    job: d.job,
                    tenant: d.tenant,
                });
                EntryState::Cancelled
            }
            Err(e) => {
                st.stats.failed += 1;
                st.decisions.push(ServiceDecision::Completed {
                    job: d.job,
                    tenant: d.tenant,
                    ok: false,
                    stages_run: 0,
                });
                EntryState::Failed(e)
            }
        };
        st.jobs.get_mut(&d.job).expect("job exists").state = state;
        st.retire(d.job, self.inner.conf.settled_retention);
        drop(st);
        self.inner.done.notify_all();
        self.inner.work.notify_all();
    }

    /// Execute one dispatched job to completion on the calling thread.
    fn execute(&self, d: Dispatch) {
        let inner = &self.inner;
        // Cache probe first: a hit runs zero engine stages.
        if let Some(key) = d.key {
            let cached = inner.cache.lock().get(key);
            if let Some(full) = cached {
                let outcome = catch_runner("project", || inner.runner.project(&d.body, &full))
                    .map(|r| (r, true, 0));
                self.settle(&d, outcome, None);
                return;
            }
        }
        if d.cancel.is_cancelled() {
            self.settle(
                &d,
                Err(JobError::Cancelled("cancelled before start".into())),
                None,
            );
            return;
        }
        let before = inner.sc.with_event_log(|l| l.stage_count()) as u64;
        let res = catch_runner("run", || {
            with_cancel(&d.cancel, || inner.runner.run(&inner.sc, &d.body))
        });
        let stages = (inner.sc.with_event_log(|l| l.stage_count()) as u64).saturating_sub(before);
        match res {
            Ok(full) => {
                let stored = match d.key {
                    Some(key) if inner.cache.lock().put(key, full.clone()) => Some(key),
                    _ => None,
                };
                let outcome = catch_runner("project", || inner.runner.project(&d.body, &full))
                    .map(|r| (r, false, stages));
                self.settle(&d, outcome, stored);
            }
            Err(e) => self.settle(&d, Err(e), None),
        }
    }

    /// Run one queued job inline on the calling thread (the
    /// deterministic sim driver). Returns `false` when nothing was
    /// dispatchable.
    pub fn pump(&self) -> bool {
        match self.dispatch_next() {
            Some(d) => {
                self.execute(d);
                true
            }
            None => false,
        }
    }

    /// Drain every queued job inline; returns jobs run.
    pub fn pump_all(&self) -> usize {
        let mut n = 0;
        while self.pump() {
            n += 1;
        }
        n
    }

    /// Spawn `n` worker threads that dispatch and execute jobs until
    /// [`JobService::stop`].
    pub fn start_workers(&self, n: usize) {
        let mut workers = self.inner.workers.lock();
        for i in 0..n.max(1) {
            let svc = self.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("svc-worker-{i}"))
                    .spawn(move || loop {
                        if let Some(d) = svc.dispatch_next() {
                            svc.execute(d);
                            continue;
                        }
                        let mut st = svc.inner.state.lock();
                        if svc.inner.stopping.load(Ordering::Acquire) {
                            return;
                        }
                        // Re-check under the lock: a submit between our
                        // failed dispatch and this wait would be lost.
                        if st.sched.total_queued() == 0 || st.sched.inflight() > 0 {
                            svc.inner.work.wait(&mut st);
                        }
                    })
                    .expect("spawn service worker"),
            );
        }
    }

    /// Stop the service: reject new submissions, drop every queued job
    /// as cancelled (releasing its admission budget), let running jobs
    /// finish, and join the workers.
    pub fn stop(&self) {
        self.inner.stopping.store(true, Ordering::Release);
        {
            let mut st = self.inner.state.lock();
            let queued: Vec<(JobId, TenantId)> = st
                .jobs
                .iter()
                .filter(|(_, e)| matches!(e.state, EntryState::Queued))
                .map(|(&j, e)| (j, e.tenant))
                .collect();
            for (job, tenant) in queued {
                st.sched.remove_queued(tenant, job);
                let cost = st.jobs[&job].cost;
                st.committed = (st.committed - cost).max(0.0);
                st.jobs.get_mut(&job).expect("queued job").state = EntryState::Cancelled;
                st.retire(job, self.inner.conf.settled_retention);
                st.stats.cancelled += 1;
                st.decisions
                    .push(ServiceDecision::Cancelled { job, tenant });
            }
        }
        self.inner.work.notify_all();
        self.inner.done.notify_all();
        let workers: Vec<JoinHandle<()>> = self.inner.workers.lock().drain(..).collect();
        for w in workers {
            let _ = w.join();
        }
    }

    /// Non-blocking status probe.
    pub fn poll(&self, job: JobId) -> Option<JobStatusView> {
        self.inner.state.lock().jobs.get(&job).map(|e| e.view(job))
    }

    /// Block until `job` settles (done, failed, or cancelled).
    pub fn wait(&self, job: JobId) -> Option<JobStatusView> {
        let mut st = self.inner.state.lock();
        loop {
            match st.jobs.get(&job) {
                None => return None,
                Some(e) if !matches!(e.state, EntryState::Queued | EntryState::Running) => {
                    return Some(e.view(job));
                }
                Some(_) => self.inner.done.wait(&mut st),
            }
        }
    }

    /// Abort a job: queued jobs are dropped immediately (admission
    /// budget released), running jobs get their [`CancelToken`]
    /// tripped and settle as cancelled at the next stage boundary.
    /// Returns `false` for unknown job ids.
    pub fn cancel(&self, job: JobId) -> bool {
        let mut st = self.inner.state.lock();
        let Some(entry) = st.jobs.get(&job) else {
            return false;
        };
        let tenant = entry.tenant;
        let cost = entry.cost;
        match entry.state {
            EntryState::Queued => {
                st.sched.remove_queued(tenant, job);
                st.committed = (st.committed - cost).max(0.0);
                st.jobs.get_mut(&job).expect("present").state = EntryState::Cancelled;
                st.retire(job, self.inner.conf.settled_retention);
                st.stats.cancelled += 1;
                st.decisions
                    .push(ServiceDecision::Cancelled { job, tenant });
                drop(st);
                self.inner.done.notify_all();
                self.inner.work.notify_all();
            }
            EntryState::Running => {
                entry.cancel.cancel();
            }
            _ => {}
        }
        true
    }

    /// The decision log so far (replay-comparable under sequential
    /// driving).
    pub fn decisions(&self) -> Vec<ServiceDecision> {
        self.inner.state.lock().decisions.clone()
    }

    /// Counters snapshot.
    pub fn stats(&self) -> ServiceStats {
        self.inner.state.lock().stats.clone()
    }

    /// Cost units currently committed (queued + in-flight). Returns to
    /// zero when the service quiesces — cancellation included.
    pub fn committed_cost(&self) -> f64 {
        self.inner.state.lock().committed
    }

    /// Result-cache (hits, misses, evictions).
    pub fn cache_stats(&self) -> (u64, u64, u64) {
        self.inner.cache.lock().stats()
    }

    /// Result-cache (entries, used bytes).
    pub fn cache_usage(&self) -> (usize, u64) {
        let c = self.inner.cache.lock();
        (c.len(), c.used_bytes())
    }

    /// Invalidate one cached lineage key (e.g. after recovery events
    /// that make re-validation desirable). Returns whether an entry
    /// was dropped.
    pub fn invalidate_cached(&self, key: u128) -> bool {
        self.inner.cache.lock().invalidate(key)
    }

    // -----------------------------------------------------------------
    // Scripted (sim-harness) driving
    // -----------------------------------------------------------------

    /// Run a scripted tenant arrival process deterministically:
    /// arrivals are processed in `(at_ms, script order)` order, the
    /// sim virtual clock (when the context is deterministic) advancing
    /// to each arrival time; after each time step's submissions,
    /// `pump_per_step` queued jobs run inline. Whatever remains queued
    /// is drained at the end. Returns each arrival's admission
    /// outcome, in script order.
    pub fn run_script(
        &self,
        script: &[Arrival],
        pump_per_step: usize,
    ) -> Vec<Result<JobId, Rejection>> {
        let mut order: Vec<usize> = (0..script.len()).collect();
        order.sort_by_key(|&i| script[i].at_ms); // stable: ties keep script order
        let mut results: Vec<Option<Result<JobId, Rejection>>> = vec![None; script.len()];
        let mut at = 0;
        while at < order.len() {
            let t = script[order[at]].at_ms;
            if let Some(vc) = &self.inner.sc.inner.vclock {
                vc.advance_to(t);
            }
            while at < order.len() && script[order[at]].at_ms == t {
                let i = order[at];
                results[i] = Some(self.submit(script[i].tenant, script[i].body.clone()));
                at += 1;
            }
            for _ in 0..pump_per_step {
                if !self.pump() {
                    break;
                }
            }
        }
        self.pump_all();
        results
            .into_iter()
            .map(|r| r.expect("all filled"))
            .collect()
    }
}

/// One scripted submission for [`JobService::run_script`].
#[derive(Debug, Clone)]
pub struct Arrival {
    /// Virtual-clock arrival time in milliseconds.
    pub at_ms: u64,
    /// Submitting tenant.
    pub tenant: TenantId,
    /// Job body.
    pub body: Bytes,
}

// ---------------------------------------------------------------------
// Socket front end
// ---------------------------------------------------------------------

/// Where the service listens.
#[derive(Debug, Clone)]
pub enum ServiceAddr {
    /// TCP `host:port` (use port 0 to bind ephemerally).
    Tcp(String),
    /// Unix-domain socket path.
    Unix(std::path::PathBuf),
}

trait Conn: Read + Write + Send {}
impl Conn for std::net::TcpStream {}
impl Conn for std::os::unix::net::UnixStream {}

enum Listener {
    Tcp(std::net::TcpListener),
    Unix(std::os::unix::net::UnixListener, std::path::PathBuf),
}

impl Listener {
    fn bind(addr: &ServiceAddr) -> std::io::Result<(Self, ServiceAddr)> {
        match addr {
            ServiceAddr::Tcp(a) => {
                let l = std::net::TcpListener::bind(a.as_str())?;
                let actual = ServiceAddr::Tcp(l.local_addr()?.to_string());
                Ok((Listener::Tcp(l), actual))
            }
            ServiceAddr::Unix(path) => {
                let _ = std::fs::remove_file(path);
                let l = std::os::unix::net::UnixListener::bind(path)?;
                Ok((Listener::Unix(l, path.clone()), addr.clone()))
            }
        }
    }

    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            Listener::Unix(l, _) => l.set_nonblocking(nb),
        }
    }

    fn accept(&self) -> std::io::Result<Box<dyn Conn>> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                s.set_nonblocking(false)?;
                Ok(Box::new(s))
            }
            Listener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                Ok(Box::new(s))
            }
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Handle on a listening service front end.
pub struct ServeHandle {
    addr: ServiceAddr,
    accept: Option<JoinHandle<()>>,
    svc: JobService,
}

impl ServeHandle {
    /// The actually-bound address (resolves an ephemeral port).
    pub fn addr(&self) -> &ServiceAddr {
        &self.addr
    }

    /// Stop accepting, stop the service, and join the accept loop.
    pub fn stop(mut self) {
        self.svc.inner.stopping.store(true, Ordering::Release);
        self.svc.stop();
        if let Some(j) = self.accept.take() {
            let _ = j.join();
        }
    }
}

impl JobService {
    /// Serve the submission protocol on `addr`: an accept loop thread
    /// plus one handler thread per connection. A client disconnect
    /// cancels that connection's unfinished jobs (the tenant gave up).
    pub fn serve(&self, addr: ServiceAddr) -> std::io::Result<ServeHandle> {
        let (listener, actual) = Listener::bind(&addr)?;
        listener.set_nonblocking(true)?;
        let svc = self.clone();
        let accept = std::thread::Builder::new()
            .name("svc-accept".into())
            .spawn(move || loop {
                if svc.inner.stopping.load(Ordering::Acquire) {
                    return;
                }
                match listener.accept() {
                    Ok(conn) => {
                        let svc = svc.clone();
                        let _ = std::thread::Builder::new()
                            .name("svc-conn".into())
                            .spawn(move || handle_conn(&svc, conn));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    Err(_) => return,
                }
            })?;
        Ok(ServeHandle {
            addr: actual,
            accept: Some(accept),
            svc: self.clone(),
        })
    }
}

fn status_msg(view: &JobStatusView) -> SvcMsg {
    SvcMsg::Status {
        job: view.job,
        state: state_code(view.state),
        cache_hit: view.cache_hit,
        stages_run: view.stages_run,
        frame: view
            .result
            .as_ref()
            .map(|r| Payload::seal(r.clone(), Compression::None).frame()),
        error: view.error.clone(),
    }
}

fn unknown_job_status(job: JobId) -> SvcMsg {
    SvcMsg::Status {
        job,
        state: u8::MAX,
        cache_hit: false,
        stages_run: 0,
        frame: None,
        error: Some("unknown job".into()),
    }
}

fn handle_conn(svc: &JobService, mut conn: Box<dyn Conn>) {
    // Jobs this connection submitted and has not yet seen settle: a
    // disconnect cancels them (client-gone tenant abort).
    let mut open_jobs: Vec<JobId> = Vec::new();
    // Until EOF or a protocol violation (either means disconnect):
    while let Ok((msg, _)) = wire::read_msg(&mut conn) {
        let reply = match msg {
            SvcMsg::Submit { tenant, frame } => {
                let body = Payload::from_frame(frame).and_then(|p| p.open());
                match body {
                    Ok(body) => match svc.submit(tenant, body) {
                        Ok(job) => {
                            open_jobs.push(job);
                            SvcMsg::SubmitOk { job }
                        }
                        Err(r) => SvcMsg::SubmitErr {
                            code: rejection_code(&r),
                            message: r.to_string(),
                        },
                    },
                    Err(e) => SvcMsg::SubmitErr {
                        code: rejection_code(&Rejection::Malformed(String::new())),
                        message: e.to_string(),
                    },
                }
            }
            SvcMsg::Poll { job } => match svc.poll(job) {
                Some(view) => status_msg(&view),
                None => unknown_job_status(job),
            },
            SvcMsg::Wait { job } => match svc.wait(job) {
                Some(view) => {
                    open_jobs.retain(|&j| j != job);
                    status_msg(&view)
                }
                None => unknown_job_status(job),
            },
            SvcMsg::Cancel { job } => {
                svc.cancel(job);
                SvcMsg::CancelOk
            }
            SvcMsg::Stats => {
                let s = svc.stats();
                SvcMsg::StatsOk {
                    submitted: s.submitted,
                    admitted: s.admitted,
                    rejected: s.rejected,
                    completed: s.completed,
                    cache_hits: s.cache_hits,
                    cancelled: s.cancelled,
                }
            }
            SvcMsg::Shutdown => {
                let _ = wire::write_msg(&mut conn, &SvcMsg::ShutdownAck);
                // Full stop, same as ServeHandle::stop's service half:
                // fence submissions, cancel queued jobs (releasing
                // their admission budget), let running jobs finish,
                // and join the workers. Only the accept loop is left
                // for ServeHandle::stop to reap.
                svc.stop();
                break;
            }
            // Server-to-client messages arriving here are protocol
            // violations; drop the connection.
            _ => break,
        };
        if wire::write_msg(&mut conn, &reply).is_err() {
            break;
        }
    }
    for job in open_jobs {
        if let Some(view) = svc.poll(job) {
            if matches!(view.state, JobState::Queued | JobState::Running) {
                svc.cancel(job);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// Blocking client for the submission protocol.
pub struct ServiceClient {
    conn: Box<dyn Conn>,
}

impl ServiceClient {
    /// Connect to a serving [`JobService`].
    pub fn connect(addr: &ServiceAddr) -> std::io::Result<Self> {
        let conn: Box<dyn Conn> = match addr {
            ServiceAddr::Tcp(a) => {
                let s = std::net::TcpStream::connect(a.as_str())?;
                s.set_nodelay(true)?;
                Box::new(s)
            }
            ServiceAddr::Unix(path) => Box::new(std::os::unix::net::UnixStream::connect(path)?),
        };
        Ok(ServiceClient { conn })
    }

    fn rpc(&mut self, msg: &SvcMsg) -> std::io::Result<SvcMsg> {
        wire::write_msg(&mut self.conn, msg)?;
        Ok(wire::read_msg(&mut self.conn)?.0)
    }

    /// Submit a job body for `tenant`. `Err((code, message))` carries
    /// the typed rejection ([`rejection_code`] classes).
    pub fn submit(
        &mut self,
        tenant: TenantId,
        body: Bytes,
    ) -> std::io::Result<Result<JobId, (u8, String)>> {
        let frame = Payload::seal(body, Compression::None).frame();
        match self.rpc(&SvcMsg::Submit { tenant, frame })? {
            SvcMsg::SubmitOk { job } => Ok(Ok(job)),
            SvcMsg::SubmitErr { code, message } => Ok(Err((code, message))),
            other => Err(protocol_err(&other)),
        }
    }

    fn view_from_status(msg: SvcMsg) -> std::io::Result<JobStatusView> {
        let SvcMsg::Status {
            job,
            state,
            cache_hit,
            stages_run,
            frame,
            error,
        } = msg
        else {
            return Err(protocol_err(&msg));
        };
        let state = state_from_code(state)
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad job state"))?;
        let result = match frame {
            Some(f) => Some(Payload::from_frame(f).and_then(|p| p.open()).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
            })?),
            None => None,
        };
        Ok(JobStatusView {
            job,
            state,
            cache_hit,
            stages_run,
            result,
            error,
        })
    }

    /// Non-blocking status probe.
    pub fn poll(&mut self, job: JobId) -> std::io::Result<JobStatusView> {
        let msg = self.rpc(&SvcMsg::Poll { job })?;
        Self::view_from_status(msg)
    }

    /// Block until the job settles; returns the final status.
    pub fn wait(&mut self, job: JobId) -> std::io::Result<JobStatusView> {
        let msg = self.rpc(&SvcMsg::Wait { job })?;
        Self::view_from_status(msg)
    }

    /// Abort a job.
    pub fn cancel(&mut self, job: JobId) -> std::io::Result<()> {
        match self.rpc(&SvcMsg::Cancel { job })? {
            SvcMsg::CancelOk => Ok(()),
            other => Err(protocol_err(&other)),
        }
    }

    /// Service counters: (submitted, admitted, rejected, completed,
    /// cache_hits, cancelled).
    pub fn stats(&mut self) -> std::io::Result<(u64, u64, u64, u64, u64, u64)> {
        match self.rpc(&SvcMsg::Stats)? {
            SvcMsg::StatsOk {
                submitted,
                admitted,
                rejected,
                completed,
                cache_hits,
                cancelled,
            } => Ok((
                submitted, admitted, rejected, completed, cache_hits, cancelled,
            )),
            other => Err(protocol_err(&other)),
        }
    }

    /// Request service shutdown (acknowledged before the connection
    /// closes).
    pub fn shutdown(&mut self) -> std::io::Result<()> {
        match self.rpc(&SvcMsg::Shutdown)? {
            SvcMsg::ShutdownAck => Ok(()),
            other => Err(protocol_err(&other)),
        }
    }
}

fn protocol_err(got: &SvcMsg) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("unexpected service reply: {got:?}"),
    )
}
