//! Tenant-aware fair scheduling and admission control for the job
//! service.
//!
//! **Fairness** is deficit-style weighted round-robin: each tenant
//! holds a credit balance refilled to its weight once per round, and
//! the dispatcher scans tenants in ascending id order, dispatching
//! from any tenant that still has credits, queued jobs, and a free
//! in-flight slot. Credits refill only when some tenant is blocked
//! purely by an exhausted balance, so dispatch proportions track the
//! configured weights while a lone tenant still gets the whole
//! window. The scan order and credit arithmetic use no clocks or
//! randomness, so the dispatch sequence is a pure function of the
//! submission sequence — the property the sim-mode replay tests pin.
//!
//! **Admission** is a pure function of an explicit queue-state
//! snapshot and the job's cost estimate ([`admit`]): same snapshot,
//! same estimate, same decision, with typed rejections.

use std::collections::{BTreeMap, VecDeque};

use super::ServiceConfig;

/// Tenant identity as submitted on the wire.
pub type TenantId = u64;
/// Service-assigned job identity (monotonic per service).
pub type JobId = u64;

struct TenantQueue {
    weight: u32,
    credits: u32,
    q: VecDeque<JobId>,
    inflight: usize,
}

/// Weighted round-robin dispatcher over per-tenant FIFO queues with
/// per-tenant and global in-flight caps.
pub(crate) struct FairScheduler {
    tenants: BTreeMap<TenantId, TenantQueue>,
    default_weight: u32,
    weights: Vec<(TenantId, u32)>,
    per_tenant_inflight: usize,
    max_inflight: usize,
    inflight_total: usize,
}

impl FairScheduler {
    pub(crate) fn new(conf: &ServiceConfig) -> Self {
        FairScheduler {
            tenants: BTreeMap::new(),
            default_weight: conf.default_weight.max(1),
            weights: conf.tenant_weights.clone(),
            per_tenant_inflight: conf.per_tenant_inflight.max(1),
            max_inflight: conf.max_inflight.max(1),
            inflight_total: 0,
        }
    }

    fn weight_of(&self, tenant: TenantId) -> u32 {
        self.weights
            .iter()
            .find(|(t, _)| *t == tenant)
            .map(|(_, w)| (*w).max(1))
            .unwrap_or(self.default_weight)
    }

    pub(crate) fn enqueue(&mut self, tenant: TenantId, job: JobId) {
        let weight = self.weight_of(tenant);
        self.tenants
            .entry(tenant)
            .or_insert_with(|| TenantQueue {
                weight,
                credits: weight,
                q: VecDeque::new(),
                inflight: 0,
            })
            .q
            .push_back(job);
    }

    /// Drop a still-queued job (tenant abort before dispatch).
    pub(crate) fn remove_queued(&mut self, tenant: TenantId, job: JobId) -> bool {
        let removed = match self.tenants.get_mut(&tenant) {
            Some(t) => match t.q.iter().position(|&j| j == job) {
                Some(at) => {
                    t.q.remove(at);
                    true
                }
                None => false,
            },
            None => false,
        };
        self.prune_idle(tenant);
        removed
    }

    /// Drop a tenant's bookkeeping entry once it has nothing queued
    /// and nothing in flight — tenant ids are client-chosen u64s, so
    /// retaining every id ever seen grows without bound. A returning
    /// tenant is re-created by [`FairScheduler::enqueue`] with a fresh
    /// credit balance, which keeps dispatch a pure function of the
    /// submission sequence.
    fn prune_idle(&mut self, tenant: TenantId) {
        if let Some(t) = self.tenants.get(&tenant) {
            if t.q.is_empty() && t.inflight == 0 {
                self.tenants.remove(&tenant);
            }
        }
    }

    /// Live tenant bookkeeping entries (tests observe pruning).
    #[cfg(test)]
    pub(crate) fn tenant_entries(&self) -> usize {
        self.tenants.len()
    }

    /// Queued (undispatched) jobs for one tenant.
    pub(crate) fn queued(&self, tenant: TenantId) -> usize {
        self.tenants.get(&tenant).map_or(0, |t| t.q.len())
    }

    /// Queued jobs across all tenants.
    pub(crate) fn total_queued(&self) -> usize {
        self.tenants.values().map(|t| t.q.len()).sum()
    }

    pub(crate) fn inflight(&self) -> usize {
        self.inflight_total
    }

    /// Next job to dispatch under the WRR policy, or `None` when every
    /// queued job is blocked by an in-flight cap (or nothing is
    /// queued). Marks the job in flight.
    pub(crate) fn next(&mut self) -> Option<(TenantId, JobId)> {
        if self.inflight_total >= self.max_inflight {
            return None;
        }
        // Two scans at most: the current credit round, then — if some
        // tenant was blocked only by an empty balance — a refill round.
        for pass in 0..2 {
            let mut credit_starved = false;
            let order: Vec<TenantId> = self.tenants.keys().copied().collect();
            for t in order {
                let entry = self.tenants.get_mut(&t).expect("tenant present");
                if entry.q.is_empty() || entry.inflight >= self.per_tenant_inflight {
                    continue;
                }
                if entry.credits == 0 {
                    credit_starved = true;
                    continue;
                }
                entry.credits -= 1;
                let job = entry.q.pop_front().expect("nonempty queue");
                entry.inflight += 1;
                self.inflight_total += 1;
                return Some((t, job));
            }
            if pass == 0 && credit_starved {
                for e in self.tenants.values_mut() {
                    e.credits = e.weight;
                }
            } else {
                break;
            }
        }
        None
    }

    /// A dispatched job finished (any outcome): free its slot.
    pub(crate) fn job_finished(&mut self, tenant: TenantId) {
        if let Some(t) = self.tenants.get_mut(&tenant) {
            debug_assert!(t.inflight > 0, "finish without dispatch");
            t.inflight = t.inflight.saturating_sub(1);
        }
        self.inflight_total = self.inflight_total.saturating_sub(1);
        self.prune_idle(tenant);
    }
}

// ---------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------

/// The queue-state snapshot an admission decision is a function of.
/// Everything the decision may read is in here — the decision logic
/// itself holds no other state, which is what makes admission
/// replayable: same snapshot + same estimate ⇒ same outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionState {
    /// Cost units committed to queued + in-flight jobs.
    pub committed: f64,
    /// Jobs the submitting tenant already has queued (undispatched).
    pub tenant_queued: usize,
}

/// Typed admission rejection, also carried over the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Rejection {
    /// Admitting the job would push committed cost over the budget.
    OverBudget {
        /// The job's cost estimate.
        estimate: f64,
        /// Cost units already committed.
        committed: f64,
        /// The configured budget.
        budget: f64,
    },
    /// The job alone exceeds the per-job cost ceiling.
    TooExpensive {
        /// The job's cost estimate.
        estimate: f64,
        /// The configured per-job ceiling.
        limit: f64,
    },
    /// The tenant's queue is at capacity.
    QueueFull {
        /// The submitting tenant.
        tenant: TenantId,
        /// Jobs it has queued.
        queued: usize,
        /// The configured per-tenant queue cap.
        limit: usize,
    },
    /// The job body failed to price or decode.
    Malformed(String),
    /// The service is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::OverBudget {
                estimate,
                committed,
                budget,
            } => write!(
                f,
                "over budget: estimate {estimate:.3} + committed {committed:.3} exceeds {budget:.3}"
            ),
            Rejection::TooExpensive { estimate, limit } => {
                write!(
                    f,
                    "too expensive: estimate {estimate:.3} exceeds {limit:.3}"
                )
            }
            Rejection::QueueFull {
                tenant,
                queued,
                limit,
            } => write!(f, "queue full for tenant {tenant}: {queued} of {limit}"),
            Rejection::Malformed(why) => write!(f, "malformed job: {why}"),
            Rejection::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

/// Decide admission for a job priced at `estimate` against a queue
/// snapshot. Pure: no clocks, no randomness, no hidden state.
/// Checks are ordered — per-job ceiling, per-tenant queue cap, then
/// the global budget — so the rejection a client sees is stable too.
pub fn admit(
    state: &AdmissionState,
    tenant: TenantId,
    estimate: f64,
    conf: &ServiceConfig,
) -> Result<(), Rejection> {
    if !estimate.is_finite() || estimate < 0.0 {
        return Err(Rejection::Malformed(format!(
            "cost estimate must be finite and non-negative, got {estimate}"
        )));
    }
    if estimate > conf.max_job_cost {
        return Err(Rejection::TooExpensive {
            estimate,
            limit: conf.max_job_cost,
        });
    }
    if state.tenant_queued >= conf.max_queued_per_tenant {
        return Err(Rejection::QueueFull {
            tenant,
            queued: state.tenant_queued,
            limit: conf.max_queued_per_tenant,
        });
    }
    if state.committed + estimate > conf.admission_budget {
        return Err(Rejection::OverBudget {
            estimate,
            committed: state.committed,
            budget: conf.admission_budget,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conf() -> ServiceConfig {
        ServiceConfig::default()
            .with_tenant_weight(1, 3)
            .with_inflight(8, 2)
    }

    #[test]
    fn wrr_dispatch_tracks_weights() {
        let mut s = FairScheduler::new(&conf().with_inflight(100, 100));
        for j in 0..12 {
            s.enqueue(1, j); // weight 3
            s.enqueue(2, 100 + j); // weight 1
        }
        let mut order = Vec::new();
        while let Some((t, _)) = s.next() {
            order.push(t);
        }
        // Bursty WRR: three of tenant 1, one of tenant 2, repeat.
        assert_eq!(&order[..8], &[1, 1, 1, 2, 1, 1, 1, 2]);
        let t1 = order.iter().filter(|&&t| t == 1).count();
        let t2 = order.iter().filter(|&&t| t == 2).count();
        assert_eq!((t1, t2), (12, 12));
    }

    #[test]
    fn inflight_caps_gate_dispatch() {
        let mut s = FairScheduler::new(&conf()); // per-tenant 2, global 8
        for j in 0..4 {
            s.enqueue(7, j);
        }
        assert!(s.next().is_some());
        assert!(s.next().is_some());
        assert!(s.next().is_none(), "per-tenant cap of 2");
        s.job_finished(7);
        assert!(s.next().is_some(), "freed slot re-dispatches");
    }

    #[test]
    fn lone_tenant_is_not_throttled_by_credits() {
        let mut s = FairScheduler::new(&conf().with_inflight(100, 100));
        for j in 0..10 {
            s.enqueue(2, j); // weight 1
        }
        let mut n = 0;
        while s.next().is_some() {
            n += 1;
        }
        assert_eq!(n, 10, "credits refill for a lone tenant");
    }

    #[test]
    fn remove_queued_drops_only_that_job() {
        let mut s = FairScheduler::new(&conf());
        s.enqueue(1, 10);
        s.enqueue(1, 11);
        assert!(s.remove_queued(1, 10));
        assert!(!s.remove_queued(1, 10));
        assert_eq!(s.queued(1), 1);
        assert_eq!(s.next().map(|(_, j)| j), Some(11));
    }

    #[test]
    fn idle_tenants_are_pruned() {
        let mut s = FairScheduler::new(&conf());
        for t in 0..100 {
            s.enqueue(t, t);
        }
        assert_eq!(s.tenant_entries(), 100);
        for t in 0..100 {
            assert!(s.remove_queued(t, t));
        }
        assert_eq!(s.tenant_entries(), 0, "aborted tenants are dropped");
        s.enqueue(7, 1);
        let (t, j) = s.next().expect("dispatchable");
        assert_eq!((t, j), (7, 1));
        assert_eq!(s.tenant_entries(), 1, "in-flight tenant is retained");
        s.job_finished(7);
        assert_eq!(s.tenant_entries(), 0, "drained tenant is dropped");
    }

    #[test]
    fn admission_is_pure_and_ordered() {
        let c = ServiceConfig::default()
            .with_admission_budget(10.0)
            .with_max_job_cost(6.0)
            .with_max_queued_per_tenant(2);
        let st = AdmissionState {
            committed: 7.0,
            tenant_queued: 0,
        };
        // Same inputs, same decision.
        assert_eq!(admit(&st, 1, 2.0, &c), admit(&st, 1, 2.0, &c));
        assert!(admit(&st, 1, 2.0, &c).is_ok());
        assert!(matches!(
            admit(&st, 1, 4.0, &c),
            Err(Rejection::OverBudget { .. })
        ));
        assert!(matches!(
            admit(&st, 1, 7.0, &c),
            Err(Rejection::TooExpensive { .. })
        ));
        let full = AdmissionState {
            committed: 0.0,
            tenant_queued: 2,
        };
        assert!(matches!(
            admit(&full, 9, 1.0, &c),
            Err(Rejection::QueueFull { tenant: 9, .. })
        ));
        assert!(matches!(
            admit(&st, 1, f64::NAN, &c),
            Err(Rejection::Malformed(_))
        ));
    }
}
