//! Lineage-keyed result cache for the job service.
//!
//! Keys are 128-bit digests of a job's *logical* lineage (problem
//! kind plus canonical input encoding — execution knobs excluded,
//! because every engine path is validated bitwise-identical), by the
//! service's [`super::JobRunner`]. Values are the job's cacheable
//! result encoding — for overlapping queries the *full* table, from
//! which each request projects its slice — so "same graph, different
//! source set" is one entry, one computation.
//!
//! Bounded by bytes with deterministic LRU eviction: no clocks, no
//! sampling, so a seeded sim replay sees identical hit/miss/evict
//! sequences.

use std::collections::{HashMap, VecDeque};

use bytes::Bytes;

/// Byte-bounded LRU cache keyed by 128-bit lineage digests.
pub(crate) struct ResultCache {
    capacity: u64,
    used: u64,
    map: HashMap<u128, Bytes>,
    /// Recency order, front = least recently used.
    lru: VecDeque<u128>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    pub(crate) fn new(capacity: u64) -> Self {
        ResultCache {
            capacity,
            used: 0,
            map: HashMap::new(),
            lru: VecDeque::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn touch(&mut self, key: u128) {
        if let Some(at) = self.lru.iter().position(|&k| k == key) {
            self.lru.remove(at);
        }
        self.lru.push_back(key);
    }

    /// Look up a lineage key, refreshing its recency on a hit.
    pub(crate) fn get(&mut self, key: u128) -> Option<Bytes> {
        match self.map.get(&key).cloned() {
            Some(v) => {
                self.hits += 1;
                self.touch(key);
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a result, evicting LRU entries until it fits. An entry
    /// larger than the whole cache is not stored at all (storing it
    /// would just evict everything for a value that must be evicted
    /// next insert anyway).
    pub(crate) fn put(&mut self, key: u128, value: Bytes) -> bool {
        let len = value.len() as u64;
        if len > self.capacity {
            return false;
        }
        if let Some(old) = self.map.remove(&key) {
            self.used -= old.len() as u64;
            if let Some(at) = self.lru.iter().position(|&k| k == key) {
                self.lru.remove(at);
            }
        }
        while self.used + len > self.capacity {
            let victim = self.lru.pop_front().expect("used>0 implies entries");
            let gone = self.map.remove(&victim).expect("lru tracks map");
            self.used -= gone.len() as u64;
            self.evictions += 1;
        }
        self.used += len;
        self.map.insert(key, value);
        self.lru.push_back(key);
        true
    }

    /// Drop one entry (recovery invalidation).
    pub(crate) fn invalidate(&mut self, key: u128) -> bool {
        match self.map.remove(&key) {
            Some(gone) => {
                self.used -= gone.len() as u64;
                if let Some(at) = self.lru.iter().position(|&k| k == key) {
                    self.lru.remove(at);
                }
                true
            }
            None => false,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    pub(crate) fn used_bytes(&self) -> u64 {
        self.used
    }

    /// (hits, misses, evictions) since creation.
    pub(crate) fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }
}

/// 128-bit FNV-1a over a byte stream — the service's standard lineage
/// digest. Stable across platforms and runs (no per-process seeding):
/// cache decisions must replay bit-identically from a script.
#[derive(Clone, Copy, Debug)]
pub struct LineageHasher(u128);

impl Default for LineageHasher {
    fn default() -> Self {
        // FNV-1a 128-bit offset basis.
        LineageHasher(0x6c62272e07bb014262b821756295c58d)
    }
}

impl LineageHasher {
    /// Fold bytes into the digest.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        // FNV-1a 128-bit prime.
        const PRIME: u128 = 0x0000000001000000000000000000013b;
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
        self
    }

    /// The digest so far.
    pub fn finish(&self) -> u128 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_oldest_first() {
        let mut c = ResultCache::new(10);
        assert!(c.put(1, Bytes::from(vec![0u8; 4])));
        assert!(c.put(2, Bytes::from(vec![0u8; 4])));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(1).is_some());
        assert!(c.put(3, Bytes::from(vec![0u8; 4])));
        assert!(c.get(2).is_none(), "2 was evicted");
        assert!(c.get(1).is_some() && c.get(3).is_some());
        assert_eq!(c.stats().2, 1);
        assert!(c.used_bytes() <= 10);
    }

    #[test]
    fn oversized_entries_are_not_stored() {
        let mut c = ResultCache::new(4);
        assert!(!c.put(1, Bytes::from(vec![0u8; 5])));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn reinsert_replaces_and_reaccounts() {
        let mut c = ResultCache::new(10);
        assert!(c.put(1, Bytes::from(vec![0u8; 8])));
        assert!(c.put(1, Bytes::from(vec![0u8; 2])));
        assert_eq!(c.used_bytes(), 2);
        assert_eq!(c.len(), 1);
        assert!(c.invalidate(1));
        assert!(!c.invalidate(1));
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn lineage_digest_is_stable_and_input_sensitive() {
        let a = *LineageHasher::default().update(b"graph-1");
        let b = *LineageHasher::default().update(b"graph-1");
        let c = *LineageHasher::default().update(b"graph-2");
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), c.finish());
    }
}
