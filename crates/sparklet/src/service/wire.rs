//! The submission protocol: length-prefixed frames over a byte
//! stream, sharing the executor wire's framing rules ([`MAX_FRAME`],
//! 4-byte little-endian length prefix, tag-first bodies) and embedding
//! job bodies and results as sealed [`Payload`] frames verbatim — the
//! zero-copy frame of PR 5 is the submission format too, re-validated
//! with [`Payload::from_frame`] at each boundary.
//!
//! Decoding is defensive end to end: truncated bodies, unknown tags,
//! lying length prefixes, and oversized frames surface as
//! [`JobError::Codec`] (or `io::Error` at the socket layer), never a
//! panic and never an unbounded allocation.

use std::io::{Read, Write};

use bytes::Bytes;

use crate::error::JobError;
use crate::payload::Payload;
pub use crate::transport::wire::MAX_FRAME;

/// One submission-protocol message. Fixed-width little-endian
/// integers; job bodies and results travel as sealed payload frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SvcMsg {
    /// Client → service: submit a job for `tenant`. `frame` is the
    /// sealed payload frame of the job body (answered by
    /// [`SvcMsg::SubmitOk`] or [`SvcMsg::SubmitErr`]).
    Submit {
        /// Submitting tenant.
        tenant: u64,
        /// Sealed payload frame of the job body, verbatim.
        frame: Bytes,
    },
    /// The job was admitted and queued.
    SubmitOk {
        /// Service-assigned job id.
        job: u64,
    },
    /// The job was rejected by admission control (typed; `code` is a
    /// [`super::Rejection`] discriminant via [`rejection_code`]).
    SubmitErr {
        /// Machine-readable rejection class.
        code: u8,
        /// Human-readable detail.
        message: String,
    },
    /// Client → service: non-blocking status probe (answered by
    /// [`SvcMsg::Status`]).
    Poll {
        /// Job to probe.
        job: u64,
    },
    /// Client → service: block until the job settles, then answer
    /// with [`SvcMsg::Status`].
    Wait {
        /// Job to wait for.
        job: u64,
    },
    /// Job status snapshot. `state` encodes
    /// [`super::JobState`] via [`state_code`]; `frame` carries the
    /// sealed result payload once done.
    Status {
        /// Job the status describes.
        job: u64,
        /// Lifecycle state code.
        state: u8,
        /// Whether the result came from the lineage cache.
        cache_hit: bool,
        /// Engine stages this job ran (0 on a cache hit).
        stages_run: u64,
        /// Sealed result payload frame, present iff done.
        frame: Option<Bytes>,
        /// Failure message, present iff failed.
        error: Option<String>,
    },
    /// Client → service: abort a job (queued jobs are dropped, running
    /// jobs are cancelled at their next stage boundary; answered by
    /// [`SvcMsg::CancelOk`]).
    Cancel {
        /// Job to abort.
        job: u64,
    },
    /// Cancellation was recorded.
    CancelOk,
    /// Client → service: ask for service counters (answered by
    /// [`SvcMsg::StatsOk`]).
    Stats,
    /// Service counters snapshot.
    StatsOk {
        /// Jobs submitted (admitted + rejected).
        submitted: u64,
        /// Jobs admitted.
        admitted: u64,
        /// Jobs rejected by admission.
        rejected: u64,
        /// Jobs completed successfully.
        completed: u64,
        /// Completions served from the lineage cache.
        cache_hits: u64,
        /// Jobs cancelled.
        cancelled: u64,
    },
    /// Client → service: orderly service stop (answered by
    /// [`SvcMsg::ShutdownAck`]): new submissions are rejected, queued
    /// jobs are cancelled with their admission budget released,
    /// running jobs finish, and the worker threads are joined.
    Shutdown,
    /// Last message before the service closes the connection.
    ShutdownAck,
}

const TAG_SUBMIT: u8 = 1;
const TAG_SUBMIT_OK: u8 = 2;
const TAG_SUBMIT_ERR: u8 = 3;
const TAG_POLL: u8 = 4;
const TAG_WAIT: u8 = 5;
const TAG_STATUS: u8 = 6;
const TAG_CANCEL: u8 = 7;
const TAG_CANCEL_OK: u8 = 8;
const TAG_STATS: u8 = 9;
const TAG_STATS_OK: u8 = 10;
const TAG_SHUTDOWN: u8 = 11;
const TAG_SHUTDOWN_ACK: u8 = 12;

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Encode a message body (everything after the 4-byte length prefix).
pub fn encode_body(msg: &SvcMsg) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    match msg {
        SvcMsg::Submit { tenant, frame } => {
            out.push(TAG_SUBMIT);
            put_u64(&mut out, *tenant);
            out.extend_from_slice(frame);
        }
        SvcMsg::SubmitOk { job } => {
            out.push(TAG_SUBMIT_OK);
            put_u64(&mut out, *job);
        }
        SvcMsg::SubmitErr { code, message } => {
            out.push(TAG_SUBMIT_ERR);
            out.push(*code);
            put_str(&mut out, message);
        }
        SvcMsg::Poll { job } => {
            out.push(TAG_POLL);
            put_u64(&mut out, *job);
        }
        SvcMsg::Wait { job } => {
            out.push(TAG_WAIT);
            put_u64(&mut out, *job);
        }
        SvcMsg::Status {
            job,
            state,
            cache_hit,
            stages_run,
            frame,
            error,
        } => {
            out.push(TAG_STATUS);
            put_u64(&mut out, *job);
            out.push(*state);
            out.push(u8::from(*cache_hit));
            put_u64(&mut out, *stages_run);
            match error {
                Some(e) => {
                    out.push(1);
                    put_str(&mut out, e);
                }
                None => out.push(0),
            }
            // The frame is the variable-length tail, like the
            // executor wire's `Block`.
            match frame {
                Some(f) => {
                    out.push(1);
                    out.extend_from_slice(f);
                }
                None => out.push(0),
            }
        }
        SvcMsg::Cancel { job } => {
            out.push(TAG_CANCEL);
            put_u64(&mut out, *job);
        }
        SvcMsg::CancelOk => out.push(TAG_CANCEL_OK),
        SvcMsg::Stats => out.push(TAG_STATS),
        SvcMsg::StatsOk {
            submitted,
            admitted,
            rejected,
            completed,
            cache_hits,
            cancelled,
        } => {
            out.push(TAG_STATS_OK);
            put_u64(&mut out, *submitted);
            put_u64(&mut out, *admitted);
            put_u64(&mut out, *rejected);
            put_u64(&mut out, *completed);
            put_u64(&mut out, *cache_hits);
            put_u64(&mut out, *cancelled);
        }
        SvcMsg::Shutdown => out.push(TAG_SHUTDOWN),
        SvcMsg::ShutdownAck => out.push(TAG_SHUTDOWN_ACK),
    }
    out
}

/// Bounds-checked cursor over a message body.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, JobError> {
        let b = *self
            .buf
            .get(self.at)
            .ok_or_else(|| JobError::Codec("service message truncated".into()))?;
        self.at += 1;
        Ok(b)
    }

    fn u64(&mut self) -> Result<u64, JobError> {
        let end = self
            .at
            .checked_add(8)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| JobError::Codec("service message truncated".into()))?;
        let mut n = [0u8; 8];
        n.copy_from_slice(&self.buf[self.at..end]);
        self.at = end;
        Ok(u64::from_le_bytes(n))
    }

    fn str(&mut self) -> Result<String, JobError> {
        let len = self.u64()? as usize;
        let end = self
            .at
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| JobError::Codec("service string truncated".into()))?;
        let s = std::str::from_utf8(&self.buf[self.at..end])
            .map_err(|_| JobError::Codec("service string is not UTF-8".into()))?
            .to_string();
        self.at = end;
        Ok(s)
    }

    /// Remaining bytes as an owned embedded payload frame, validated
    /// against the frame's own header before it travels further.
    fn frame(&mut self) -> Result<Bytes, JobError> {
        let b = Bytes::copy_from_slice(&self.buf[self.at..]);
        self.at = self.buf.len();
        Payload::from_frame(b.clone())?;
        Ok(b)
    }

    fn done(&self) -> Result<(), JobError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(JobError::Codec(format!(
                "service message carries {} trailing bytes",
                self.buf.len() - self.at
            )))
        }
    }
}

/// Decode a message body. Any malformed input — truncation, unknown
/// tag, trailing garbage — yields [`JobError::Codec`], never a panic.
pub fn decode_body(body: &[u8]) -> Result<SvcMsg, JobError> {
    let mut c = Cursor { buf: body, at: 0 };
    let msg = match c.u8()? {
        TAG_SUBMIT => SvcMsg::Submit {
            tenant: c.u64()?,
            frame: c.frame()?,
        },
        TAG_SUBMIT_OK => SvcMsg::SubmitOk { job: c.u64()? },
        TAG_SUBMIT_ERR => SvcMsg::SubmitErr {
            code: c.u8()?,
            message: c.str()?,
        },
        TAG_POLL => SvcMsg::Poll { job: c.u64()? },
        TAG_WAIT => SvcMsg::Wait { job: c.u64()? },
        TAG_STATUS => {
            let job = c.u64()?;
            let state = c.u8()?;
            let cache_hit = match c.u8()? {
                0 => false,
                1 => true,
                other => {
                    return Err(JobError::Codec(format!(
                        "cache-hit flag must be 0/1, got {other}"
                    )))
                }
            };
            let stages_run = c.u64()?;
            let error = match c.u8()? {
                0 => None,
                1 => Some(c.str()?),
                other => {
                    return Err(JobError::Codec(format!(
                        "error presence flag must be 0/1, got {other}"
                    )))
                }
            };
            let frame = match c.u8()? {
                0 => {
                    c.done()?;
                    None
                }
                1 => Some(c.frame()?),
                other => {
                    return Err(JobError::Codec(format!(
                        "result presence flag must be 0/1, got {other}"
                    )))
                }
            };
            SvcMsg::Status {
                job,
                state,
                cache_hit,
                stages_run,
                frame,
                error,
            }
        }
        TAG_CANCEL => SvcMsg::Cancel { job: c.u64()? },
        TAG_CANCEL_OK => SvcMsg::CancelOk,
        TAG_STATS => SvcMsg::Stats,
        TAG_STATS_OK => SvcMsg::StatsOk {
            submitted: c.u64()?,
            admitted: c.u64()?,
            rejected: c.u64()?,
            completed: c.u64()?,
            cache_hits: c.u64()?,
            cancelled: c.u64()?,
        },
        TAG_SHUTDOWN => SvcMsg::Shutdown,
        TAG_SHUTDOWN_ACK => SvcMsg::ShutdownAck,
        other => return Err(JobError::Codec(format!("unknown service tag {other}"))),
    };
    c.done()?;
    Ok(msg)
}

/// Write one framed message; returns total bytes put on the wire.
pub fn write_msg<W: Write>(w: &mut W, msg: &SvcMsg) -> std::io::Result<u64> {
    let body = encode_body(msg);
    debug_assert!(body.len() as u64 <= MAX_FRAME as u64);
    let len = body.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&body)?;
    w.flush()?;
    Ok(4 + body.len() as u64)
}

/// Read one framed message. A length prefix above [`MAX_FRAME`] is
/// rejected *before* any allocation; a malformed body surfaces as
/// `io::ErrorKind::InvalidData` carrying the codec error.
pub fn read_msg<R: Read>(r: &mut R) -> std::io::Result<(SvcMsg, u64)> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("service frame of {len} bytes exceeds MAX_FRAME {MAX_FRAME}"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let msg = decode_body(&body)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    Ok((msg, 4 + len as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::{Compression, Payload};

    fn all_messages() -> Vec<SvcMsg> {
        let frame = Payload::seal(Bytes::from_static(b"job-body"), Compression::None).frame();
        vec![
            SvcMsg::Submit {
                tenant: 42,
                frame: frame.clone(),
            },
            SvcMsg::SubmitOk { job: 7 },
            SvcMsg::SubmitErr {
                code: 2,
                message: "over budget".into(),
            },
            SvcMsg::Poll { job: 7 },
            SvcMsg::Wait { job: 7 },
            SvcMsg::Status {
                job: 7,
                state: 2,
                cache_hit: true,
                stages_run: 0,
                frame: Some(frame),
                error: None,
            },
            SvcMsg::Status {
                job: 8,
                state: 3,
                cache_hit: false,
                stages_run: 4,
                frame: None,
                error: Some("task failed".into()),
            },
            SvcMsg::Cancel { job: 7 },
            SvcMsg::CancelOk,
            SvcMsg::Stats,
            SvcMsg::StatsOk {
                submitted: 9,
                admitted: 8,
                rejected: 1,
                completed: 7,
                cache_hits: 3,
                cancelled: 1,
            },
            SvcMsg::Shutdown,
            SvcMsg::ShutdownAck,
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        for msg in all_messages() {
            let body = encode_body(&msg);
            assert_eq!(decode_body(&body).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn truncated_bodies_error_never_panic() {
        for msg in all_messages() {
            let body = encode_body(&msg);
            for cut in 0..body.len() {
                assert!(decode_body(&body[..cut]).is_err(), "{msg:?} cut {cut}");
            }
        }
    }

    #[test]
    fn streamed_roundtrip_counts_wire_bytes() {
        let mut buf = Vec::new();
        let mut sent = 0;
        for msg in all_messages() {
            sent += write_msg(&mut buf, &msg).unwrap();
        }
        assert_eq!(sent as usize, buf.len());
        let mut r = &buf[..];
        for msg in all_messages() {
            let (back, _) = read_msg(&mut r).unwrap();
            assert_eq!(back, msg);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut framed = Vec::new();
        framed.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        framed.extend_from_slice(&[0u8; 16]);
        let err = read_msg(&mut &framed[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn embedded_job_frames_survive_verbatim() {
        let p = Payload::seal(Bytes::from(vec![7u8; 300]), Compression::Lz4);
        let body = encode_body(&SvcMsg::Submit {
            tenant: 1,
            frame: p.frame(),
        });
        match decode_body(&body).unwrap() {
            SvcMsg::Submit { frame, .. } => {
                assert_eq!(frame, p.frame());
                let back = Payload::from_frame(frame).unwrap();
                assert_eq!(back.open().unwrap(), p.open().unwrap());
            }
            other => panic!("{other:?}"),
        }
    }
}
