//! Compact binary serialization for shuffle and broadcast traffic.
//!
//! Real Spark serializes everything that crosses an executor boundary;
//! the byte counts drive the paper's communication story, so `sparklet`
//! serializes for real too. The codec is deliberately simple:
//! little-endian fixed-width scalars, length-prefixed sequences —
//! enough to measure honest byte volumes and to round-trip exactly.
//!
//! The trait is bulk-oriented: [`Storable::encoded_len`] sizes a value
//! exactly without encoding it (O(1) for fixed-width and container
//! types), and [`Storable::encode_slice`] / [`Storable::decode_slice`]
//! let dense scalar runs move as single `memcpy`s instead of
//! per-element loops. On little-endian targets, decoding a dense run
//! whose buffer happens to be aligned reinterprets the words in place;
//! unaligned buffers fall back to a byte-wise path with identical
//! results.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::JobError;

/// A type that can cross an executor boundary (shuffle, broadcast,
/// collect). Implementations must round-trip exactly, and
/// [`Storable::encoded_len`] must equal the number of bytes
/// [`Storable::encode`] appends.
pub trait Storable: Sized {
    /// `Some(w)` when every value of the type encodes to exactly `w`
    /// bytes — enables O(1) sizing of containers and bulk slice codecs.
    const WIRE_SIZE: Option<usize> = None;

    /// Exact number of bytes [`Storable::encode`] will append. O(1)
    /// for scalars and for containers of fixed-width elements.
    fn encoded_len(&self) -> usize;

    /// Append this value's encoding to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Decode one value from the front of `buf`, advancing it.
    fn decode(buf: &mut Bytes) -> Result<Self, JobError>;

    /// Declared footprint for staging/storage/broadcast accounting.
    /// Defaults to the exact wire size; types whose wire form is a
    /// placeholder (virtual blocks) override this with their logical
    /// size instead.
    fn approx_bytes(&self) -> usize {
        self.encoded_len()
    }

    /// Append every item of `items`. Containers call this so
    /// fixed-width scalars hit a single-`memcpy` path; the default is
    /// the element-wise loop.
    fn encode_slice(items: &[Self], buf: &mut BytesMut) {
        for item in items {
            item.encode(buf);
        }
    }

    /// Decode `n` items — the bulk inverse of
    /// [`Storable::encode_slice`].
    fn decode_slice(buf: &mut Bytes, n: usize) -> Result<Vec<Self>, JobError> {
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(Self::decode(buf)?);
        }
        Ok(out)
    }
}

fn need(buf: &Bytes, n: usize) -> Result<(), JobError> {
    if buf.remaining() < n {
        Err(JobError::Codec(format!(
            "buffer underrun: need {n} bytes, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

/// Fixed-width numeric scalars whose in-memory representation is their
/// wire representation on little-endian targets.
///
/// # Safety
///
/// Implementors must be plain-old-data: no padding, no invalid bit
/// patterns, and `size_of::<Self>() == WIDTH`, so that viewing a
/// `&[Self]` as bytes (and, on aligned little-endian buffers, viewing
/// wire bytes as `&[Self]`) is sound.
pub unsafe trait LeScalar: Copy {
    /// Wire width in bytes (== `size_of::<Self>()`).
    const WIDTH: usize;

    /// Decode one value from a `WIDTH`-byte little-endian chunk.
    fn from_le(chunk: &[u8]) -> Self;

    /// Append one value as little-endian bytes.
    fn put_le(self, buf: &mut BytesMut);
}

/// Append a dense scalar run in one copy (little-endian targets) or
/// element-wise (big-endian fallback, byte-identical output).
pub fn encode_le_slice<T: LeScalar>(items: &[T], buf: &mut BytesMut) {
    if cfg!(target_endian = "little") {
        // SAFETY: `LeScalar` guarantees no padding and no invalid bit
        // patterns, so the memory of `items` is `len * WIDTH` valid
        // bytes; on little-endian targets memory order is wire order.
        let bytes = unsafe {
            std::slice::from_raw_parts(items.as_ptr().cast::<u8>(), std::mem::size_of_val(items))
        };
        buf.extend_from_slice(bytes);
    } else {
        for v in items {
            v.put_le(buf);
        }
    }
}

/// Decode a dense run of `n` scalars. On little-endian targets with an
/// aligned buffer the words are reinterpreted in place (one bulk copy
/// into the result); unaligned or big-endian buffers take the byte-wise
/// fallback. Underruns yield [`JobError::Codec`].
pub fn decode_le_slice<T: LeScalar>(buf: &mut Bytes, n: usize) -> Result<Vec<T>, JobError> {
    let need_bytes = n
        .checked_mul(T::WIDTH)
        .ok_or_else(|| JobError::Codec(format!("slice length {n} overflows")))?;
    need(buf, need_bytes)?;
    let raw = buf.split_to(need_bytes);
    if cfg!(target_endian = "little") {
        // SAFETY: `LeScalar` rules out padding and invalid bit
        // patterns, so any aligned `WIDTH`-byte chunk is a valid value.
        let (head, mid, tail) = unsafe { raw.align_to::<T>() };
        if head.is_empty() && tail.is_empty() && mid.len() == n {
            return Ok(mid.to_vec());
        }
    }
    let mut out = Vec::with_capacity(n);
    for chunk in raw.chunks_exact(T::WIDTH) {
        out.push(T::from_le(chunk));
    }
    Ok(out)
}

macro_rules! scalar_storable {
    ($t:ty, $put:ident, $get:ident, $n:expr) => {
        // SAFETY: primitive numeric type — no padding, no invalid bit
        // patterns, in-memory width equals wire width.
        unsafe impl LeScalar for $t {
            const WIDTH: usize = $n;
            fn from_le(chunk: &[u8]) -> Self {
                <$t>::from_le_bytes(chunk.try_into().expect("chunk width"))
            }
            fn put_le(self, buf: &mut BytesMut) {
                buf.$put(self);
            }
        }
        impl Storable for $t {
            const WIRE_SIZE: Option<usize> = Some($n);
            fn encoded_len(&self) -> usize {
                $n
            }
            fn encode(&self, buf: &mut BytesMut) {
                buf.$put(*self);
            }
            fn decode(buf: &mut Bytes) -> Result<Self, JobError> {
                need(buf, $n)?;
                Ok(buf.$get())
            }
            fn encode_slice(items: &[Self], buf: &mut BytesMut) {
                encode_le_slice(items, buf);
            }
            fn decode_slice(buf: &mut Bytes, n: usize) -> Result<Vec<Self>, JobError> {
                decode_le_slice(buf, n)
            }
        }
    };
}

scalar_storable!(u8, put_u8, get_u8, 1);
scalar_storable!(u32, put_u32_le, get_u32_le, 4);
scalar_storable!(u64, put_u64_le, get_u64_le, 8);
scalar_storable!(i64, put_i64_le, get_i64_le, 8);
scalar_storable!(f64, put_f64_le, get_f64_le, 8);
scalar_storable!(f32, put_f32_le, get_f32_le, 4);

impl Storable for usize {
    // Always 8 wire bytes regardless of the host's pointer width.
    const WIRE_SIZE: Option<usize> = Some(8);
    fn encoded_len(&self) -> usize {
        8
    }
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self as u64);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, JobError> {
        need(buf, 8)?;
        Ok(buf.get_u64_le() as usize)
    }
}

impl Storable for () {
    fn encoded_len(&self) -> usize {
        0
    }
    fn encode(&self, _buf: &mut BytesMut) {}
    fn decode(_buf: &mut Bytes) -> Result<Self, JobError> {
        Ok(())
    }
}

impl Storable for bool {
    const WIRE_SIZE: Option<usize> = Some(1);
    fn encoded_len(&self) -> usize {
        1
    }
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
    fn decode(buf: &mut Bytes) -> Result<Self, JobError> {
        need(buf, 1)?;
        Ok(buf.get_u8() != 0)
    }
}

impl<A: Storable, B: Storable> Storable for (A, B) {
    const WIRE_SIZE: Option<usize> = match (A::WIRE_SIZE, B::WIRE_SIZE) {
        (Some(a), Some(b)) => Some(a + b),
        _ => None,
    };
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len()
    }
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, JobError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
    fn approx_bytes(&self) -> usize {
        self.0.approx_bytes() + self.1.approx_bytes()
    }
}

impl<A: Storable, B: Storable, C: Storable> Storable for (A, B, C) {
    const WIRE_SIZE: Option<usize> = match (A::WIRE_SIZE, B::WIRE_SIZE, C::WIRE_SIZE) {
        (Some(a), Some(b), Some(c)) => Some(a + b + c),
        _ => None,
    };
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len() + self.2.encoded_len()
    }
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, JobError> {
        Ok((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
    fn approx_bytes(&self) -> usize {
        self.0.approx_bytes() + self.1.approx_bytes() + self.2.approx_bytes()
    }
}

impl<T: Storable> Storable for Vec<T> {
    fn encoded_len(&self) -> usize {
        8 + match T::WIRE_SIZE {
            Some(w) => w * self.len(),
            None => self.iter().map(Storable::encoded_len).sum(),
        }
    }
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.len() as u64);
        T::encode_slice(self, buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, JobError> {
        need(buf, 8)?;
        let n = buf.get_u64_le() as usize;
        T::decode_slice(buf, n)
    }
    fn approx_bytes(&self) -> usize {
        8 + self.iter().map(Storable::approx_bytes).sum::<usize>()
    }
}

impl Storable for String {
    fn encoded_len(&self) -> usize {
        8 + self.len()
    }
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.len() as u64);
        buf.put_slice(self.as_bytes());
    }
    fn decode(buf: &mut Bytes) -> Result<Self, JobError> {
        need(buf, 8)?;
        let n = buf.get_u64_le() as usize;
        need(buf, n)?;
        let raw = buf.split_to(n);
        String::from_utf8(raw.to_vec()).map_err(|e| JobError::Codec(format!("invalid utf8: {e}")))
    }
}

impl<T: Storable> Storable for Option<T> {
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Storable::encoded_len)
    }
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, JobError> {
        need(buf, 1)?;
        match buf.get_u8() {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            t => Err(JobError::Codec(format!("invalid Option tag {t}"))),
        }
    }
    fn approx_bytes(&self) -> usize {
        1 + self.as_ref().map_or(0, Storable::approx_bytes)
    }
}

/// Encode a single value to a frozen buffer (sized exactly up front).
pub fn encode_one<T: Storable>(value: &T) -> Bytes {
    let mut buf = BytesMut::with_capacity(value.encoded_len());
    value.encode(&mut buf);
    buf.freeze()
}

/// Decode a single value from a buffer, requiring full consumption.
pub fn decode_one<T: Storable>(mut buf: Bytes) -> Result<T, JobError> {
    let v = T::decode(&mut buf)?;
    if buf.has_remaining() {
        return Err(JobError::Codec(format!(
            "{} trailing bytes after decode",
            buf.remaining()
        )));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Storable + PartialEq + std::fmt::Debug>(v: T) {
        let enc = encode_one(&v);
        assert_eq!(enc.len(), v.encoded_len(), "encoded_len must be exact");
        let dec: T = decode_one(enc).unwrap();
        assert_eq!(dec, v);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(42u8);
        roundtrip(7u32);
        roundtrip(u64::MAX);
        roundtrip(-12i64);
        roundtrip(3.25f64);
        roundtrip(f64::INFINITY);
        roundtrip(true);
        roundtrip(123456usize);
    }

    #[test]
    fn nan_roundtrips_bitwise() {
        let v = f64::from_bits(0x7ff8_0000_dead_beef);
        let enc = encode_one(&v);
        let dec: f64 = decode_one(enc).unwrap();
        assert_eq!(dec.to_bits(), v.to_bits());
    }

    #[test]
    fn composites_roundtrip() {
        roundtrip((3usize, 4usize));
        roundtrip((1u32, 2.5f64, String::from("tile")));
        roundtrip(vec![1.0f64, f64::INFINITY, -0.0]);
        roundtrip(Some(vec![(1usize, 2usize), (3, 4)]));
        roundtrip(Option::<u64>::None);
        roundtrip(String::from("κλειστό ημιδακτύλιο"));
    }

    #[test]
    fn decode_rejects_truncation() {
        let enc = encode_one(&vec![1.0f64; 10]);
        let cut = enc.slice(0..enc.len() - 3);
        assert!(decode_one::<Vec<f64>>(cut).is_err());
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut buf = BytesMut::new();
        5u64.encode(&mut buf);
        buf.put_u8(9);
        assert!(decode_one::<u64>(buf.freeze()).is_err());
    }

    #[test]
    fn approx_bytes_matches_encoding_for_dense_data() {
        let v = vec![0.5f64; 1000];
        assert_eq!(v.approx_bytes(), encode_one(&v).len());
    }

    #[test]
    fn encoded_len_is_exact_for_every_impl() {
        roundtrip(());
        roundtrip(Some(8.5f64));
        roundtrip(vec![String::from("a"), String::from("bcd")]);
        roundtrip(vec![vec![1u32, 2], vec![], vec![3]]);
        roundtrip((true, 9u8, -1i64));
        roundtrip(vec![3.5f32; 31]);
    }

    #[test]
    fn wire_size_composes_through_tuples() {
        assert_eq!(<(usize, u64)>::WIRE_SIZE, Some(16));
        assert_eq!(<(u8, f32, bool)>::WIRE_SIZE, Some(6));
        assert_eq!(<(u8, String)>::WIRE_SIZE, None);
        assert_eq!(<f64 as Storable>::WIRE_SIZE, Some(8));
        assert_eq!(Vec::<f64>::WIRE_SIZE, None);
    }

    #[test]
    fn bulk_slice_encoding_matches_element_wise() {
        let vals: Vec<f64> = (0..257).map(|i| i as f64 * 0.75 - 3.0).collect();
        let bulk = encode_one(&vals);
        let mut element_wise = BytesMut::new();
        element_wise.put_u64_le(vals.len() as u64);
        for v in &vals {
            element_wise.put_f64_le(*v);
        }
        assert_eq!(&bulk[..], &element_wise.freeze()[..]);
        let back: Vec<f64> = decode_one(bulk).unwrap();
        assert_eq!(back, vals);
    }

    #[test]
    fn unaligned_buffers_decode_via_fallback() {
        let vals: Vec<f64> = (0..64).map(|i| (i * i) as f64).collect();
        // Plain frame: the f64 run starts 8 bytes in (aligned whenever
        // the allocation base is 8-aligned).
        assert_eq!(decode_one::<Vec<f64>>(encode_one(&vals)).unwrap(), vals);
        // Padded frame: a 1-byte prefix shifts the run to offset 9 —
        // misaligned whenever the plain run was aligned, so between the
        // two frames both decode paths execute.
        let mut framed = BytesMut::new();
        framed.put_u8(0xEE);
        vals.encode(&mut framed);
        let mut view = framed.freeze();
        assert_eq!(u8::decode(&mut view).unwrap(), 0xEE);
        assert_eq!(Vec::<f64>::decode(&mut view).unwrap(), vals);
    }
}
