//! Compact binary serialization for shuffle and broadcast traffic.
//!
//! Real Spark serializes everything that crosses an executor boundary;
//! the byte counts drive the paper's communication story, so `sparklet`
//! serializes for real too. The codec is deliberately simple:
//! little-endian fixed-width scalars, length-prefixed sequences —
//! enough to measure honest byte volumes and to round-trip exactly.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::JobError;

/// A type that can cross an executor boundary (shuffle, broadcast,
/// collect). Implementations must round-trip exactly.
pub trait Storable: Sized {
    /// Append this value's encoding to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Decode one value from the front of `buf`, advancing it.
    fn decode(buf: &mut Bytes) -> Result<Self, JobError>;

    /// Approximate in-memory footprint in bytes (used for block-manager
    /// accounting; defaults to the encoded size which is close enough
    /// for the dense numeric payloads used here).
    fn approx_bytes(&self) -> usize {
        let mut b = BytesMut::new();
        self.encode(&mut b);
        b.len()
    }
}

fn need(buf: &Bytes, n: usize) -> Result<(), JobError> {
    if buf.remaining() < n {
        Err(JobError::Codec(format!(
            "buffer underrun: need {n} bytes, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

macro_rules! scalar_storable {
    ($t:ty, $put:ident, $get:ident, $n:expr) => {
        impl Storable for $t {
            fn encode(&self, buf: &mut BytesMut) {
                buf.$put(*self);
            }
            fn decode(buf: &mut Bytes) -> Result<Self, JobError> {
                need(buf, $n)?;
                Ok(buf.$get())
            }
            fn approx_bytes(&self) -> usize {
                $n
            }
        }
    };
}

scalar_storable!(u8, put_u8, get_u8, 1);
scalar_storable!(u32, put_u32_le, get_u32_le, 4);
scalar_storable!(u64, put_u64_le, get_u64_le, 8);
scalar_storable!(i64, put_i64_le, get_i64_le, 8);
scalar_storable!(f64, put_f64_le, get_f64_le, 8);
scalar_storable!(f32, put_f32_le, get_f32_le, 4);

impl Storable for usize {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self as u64);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, JobError> {
        need(buf, 8)?;
        Ok(buf.get_u64_le() as usize)
    }
    fn approx_bytes(&self) -> usize {
        8
    }
}

impl Storable for () {
    fn encode(&self, _buf: &mut BytesMut) {}
    fn decode(_buf: &mut Bytes) -> Result<Self, JobError> {
        Ok(())
    }
    fn approx_bytes(&self) -> usize {
        0
    }
}

impl Storable for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
    fn decode(buf: &mut Bytes) -> Result<Self, JobError> {
        need(buf, 1)?;
        Ok(buf.get_u8() != 0)
    }
    fn approx_bytes(&self) -> usize {
        1
    }
}

impl<A: Storable, B: Storable> Storable for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, JobError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
    fn approx_bytes(&self) -> usize {
        self.0.approx_bytes() + self.1.approx_bytes()
    }
}

impl<A: Storable, B: Storable, C: Storable> Storable for (A, B, C) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, JobError> {
        Ok((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
    fn approx_bytes(&self) -> usize {
        self.0.approx_bytes() + self.1.approx_bytes() + self.2.approx_bytes()
    }
}

impl<T: Storable> Storable for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, JobError> {
        need(buf, 8)?;
        let n = buf.get_u64_le() as usize;
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
    fn approx_bytes(&self) -> usize {
        8 + self.iter().map(Storable::approx_bytes).sum::<usize>()
    }
}

impl Storable for String {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.len() as u64);
        buf.put_slice(self.as_bytes());
    }
    fn decode(buf: &mut Bytes) -> Result<Self, JobError> {
        need(buf, 8)?;
        let n = buf.get_u64_le() as usize;
        need(buf, n)?;
        let raw = buf.split_to(n);
        String::from_utf8(raw.to_vec()).map_err(|e| JobError::Codec(format!("invalid utf8: {e}")))
    }
    fn approx_bytes(&self) -> usize {
        8 + self.len()
    }
}

impl<T: Storable> Storable for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, JobError> {
        need(buf, 1)?;
        match buf.get_u8() {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            t => Err(JobError::Codec(format!("invalid Option tag {t}"))),
        }
    }
}

/// Encode a single value to a frozen buffer.
pub fn encode_one<T: Storable>(value: &T) -> Bytes {
    let mut buf = BytesMut::new();
    value.encode(&mut buf);
    buf.freeze()
}

/// Decode a single value from a buffer, requiring full consumption.
pub fn decode_one<T: Storable>(mut buf: Bytes) -> Result<T, JobError> {
    let v = T::decode(&mut buf)?;
    if buf.has_remaining() {
        return Err(JobError::Codec(format!(
            "{} trailing bytes after decode",
            buf.remaining()
        )));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Storable + PartialEq + std::fmt::Debug>(v: T) {
        let enc = encode_one(&v);
        let dec: T = decode_one(enc).unwrap();
        assert_eq!(dec, v);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(42u8);
        roundtrip(7u32);
        roundtrip(u64::MAX);
        roundtrip(-12i64);
        roundtrip(3.25f64);
        roundtrip(f64::INFINITY);
        roundtrip(true);
        roundtrip(123456usize);
    }

    #[test]
    fn nan_roundtrips_bitwise() {
        let v = f64::from_bits(0x7ff8_0000_dead_beef);
        let enc = encode_one(&v);
        let dec: f64 = decode_one(enc).unwrap();
        assert_eq!(dec.to_bits(), v.to_bits());
    }

    #[test]
    fn composites_roundtrip() {
        roundtrip((3usize, 4usize));
        roundtrip((1u32, 2.5f64, String::from("tile")));
        roundtrip(vec![1.0f64, f64::INFINITY, -0.0]);
        roundtrip(Some(vec![(1usize, 2usize), (3, 4)]));
        roundtrip(Option::<u64>::None);
        roundtrip(String::from("κλειστό ημιδακτύλιο"));
    }

    #[test]
    fn decode_rejects_truncation() {
        let enc = encode_one(&vec![1.0f64; 10]);
        let cut = enc.slice(0..enc.len() - 3);
        assert!(decode_one::<Vec<f64>>(cut).is_err());
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut buf = BytesMut::new();
        5u64.encode(&mut buf);
        buf.put_u8(9);
        assert!(decode_one::<u64>(buf.freeze()).is_err());
    }

    #[test]
    fn approx_bytes_matches_encoding_for_dense_data() {
        let v = vec![0.5f64; 1000];
        assert_eq!(v.approx_bytes(), encode_one(&v).len());
    }
}
