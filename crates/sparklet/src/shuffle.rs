//! The shuffle service: map-output staging and reduce-side fetch.
//!
//! Map tasks serialize their output into per-reduce-partition buckets
//! "staged on local storage" (per-node byte accounting against the
//! configured capacity — the paper's IM failure mode when exceeded).
//! Reduce tasks fetch every map task's bucket for their partition; a
//! fetch from another node counts as remote (network) traffic, from
//! the same node as local (storage) traffic.
//!
//! Writes are attempt-aware and idempotent: re-executed map tasks
//! (lineage retries, speculative twins) overwrite their previous
//! bucket and the staging accounting is *reconciled* — the prior
//! attempt's declared bytes are released before the new bytes are
//! charged, so retry never inflates `staged_bytes` toward a spurious
//! [`JobError::StagingOverflow`]. Attempts that lost the commit race
//! for their partition are fenced out entirely (see
//! [`crate::context::TaskContext::is_fenced`]). Whole shuffles are
//! released individually when their RDD lineage is dropped
//! ([`ShuffleManager::release`]) instead of only on global
//! [`ShuffleManager::clear`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::context::TaskContext;
use crate::error::JobError;
use crate::payload::Payload;
use crate::transport::ExecutorManager;

/// Identifier of one shuffle (one wide dependency).
pub type ShuffleId = u64;

/// One map task's output for one reduce partition.
#[derive(Debug, Clone)]
pub struct MapBucket {
    /// Node whose map task produced this bucket.
    pub origin_node: usize,
    /// Attempt number of the map-task execution that wrote it.
    pub attempt: u64,
    /// Sealed frame of serialized pairs. Stored, fetched, and opened
    /// by refcount — the bucket matrix never copies payload bytes.
    pub data: Payload,
    /// Accounted ("declared") size: the logical payload size used for
    /// all byte accounting. Equals the frame's raw (uncompressed)
    /// stream length for real payloads; virtual-mode payloads declare
    /// their full-scale size while shipping only headers.
    pub declared: u64,
}

/// One cell of the bucket matrix. Three states, not two: a bucket
/// whose executor died must read as *lost* (failing the fetch so the
/// map stage is resubmitted), never as "was empty" — collapsing the
/// two silently returns partial reduce inputs.
#[derive(Debug, Clone)]
enum Slot {
    /// Never written (map task produced nothing for this partition).
    Empty,
    /// Staged map output.
    Data(MapBucket),
    /// Written, then lost with its executor.
    Lost,
}

#[derive(Debug, Default)]
struct ShuffleData {
    /// `buckets[reduce_partition][map_task] = slot` (map task order is
    /// preserved so downstream merging is deterministic).
    buckets: Vec<Vec<Slot>>,
}

/// State behind one lock: the bucket matrices plus the staging
/// accounting they imply. Invariant: `staged[n]` equals the sum of
/// `declared` over every [`Slot::Data`] bucket with `origin_node == n`.
#[derive(Debug)]
struct ShuffleInner {
    shuffles: HashMap<ShuffleId, ShuffleData>,
    /// Currently staged bytes per node.
    staged: Vec<u64>,
    /// High-water mark of `staged` per node.
    peak: Vec<u64>,
}

/// Global shuffle state shared by all executors (it *is* the network).
#[derive(Debug)]
pub struct ShuffleManager {
    inner: Mutex<ShuffleInner>,
    capacity: Option<u64>,
    /// Late writes dropped because another attempt already committed
    /// the partition.
    zombie_writes_fenced: AtomicU64,
    /// Bytes released back to staging: per-shuffle GC plus retry
    /// reconciliation of overwritten buckets.
    staged_released: AtomicU64,
    /// Bytes written off when their executor died (distinct from
    /// orderly releases — these were destroyed, not reconciled).
    staged_lost: AtomicU64,
    /// Wire transport to executor subprocesses. When set, the bucket
    /// matrix stays the authoritative *ledger* (origin, attempt,
    /// declared bytes — and the driver-side frame, which doubles as
    /// the node's "local disk image" for same-node fetches), but the
    /// remote data path is real: a write ships the frame to the origin
    /// executor and a cross-node fetch pulls it back over the socket,
    /// with measured wire bytes recorded on the task.
    remote: Option<Arc<ExecutorManager>>,
}

impl ShuffleManager {
    /// Manager for `nodes` nodes with optional per-node staging cap.
    pub fn new(nodes: usize, capacity: Option<u64>) -> Self {
        ShuffleManager {
            inner: Mutex::new(ShuffleInner {
                shuffles: HashMap::new(),
                staged: vec![0; nodes],
                peak: vec![0; nodes],
            }),
            capacity,
            zombie_writes_fenced: AtomicU64::new(0),
            staged_released: AtomicU64::new(0),
            staged_lost: AtomicU64::new(0),
            remote: None,
        }
    }

    /// Route the remote data path through executor subprocesses.
    pub(crate) fn with_remote(mut self, manager: Arc<ExecutorManager>) -> Self {
        self.remote = Some(manager);
        self
    }

    /// Create the bucket matrix for a shuffle.
    pub fn register(&self, id: ShuffleId, map_tasks: usize, reduce_partitions: usize) {
        let mut inner = self.inner.lock();
        inner.shuffles.entry(id).or_insert_with(|| ShuffleData {
            buckets: vec![vec![Slot::Empty; map_tasks]; reduce_partitions],
        });
    }

    /// Stage one map task's bucket for one reduce partition. Fails the
    /// job when the origin node's staging capacity is exceeded.
    ///
    /// The write is keyed by the attempt carried on `tc`: overwriting
    /// an earlier attempt's bucket releases its declared bytes first
    /// (idempotent re-staging), a fenced (zombie) attempt's write is
    /// dropped, and empty buckets are never stored. A capacity failure
    /// mutates nothing.
    #[allow(clippy::too_many_arguments)]
    pub fn write(
        &self,
        id: ShuffleId,
        map_task: usize,
        reduce_partition: usize,
        origin_node: usize,
        data: Payload,
        declared: u64,
        tc: &TaskContext,
    ) -> Result<(), JobError> {
        // Empty buckets are skipped (map tasks keep the bucket matrix
        // sparse); a `None` slot already reads as "no data".
        if data.raw_len() == 0 && declared == 0 {
            return Ok(());
        }
        // A zombie attempt (its partition was committed by a different
        // attempt) must not disturb committed data or accounting.
        if tc.is_fenced() {
            self.zombie_writes_fenced.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        let shuffle = inner
            .shuffles
            .get_mut(&id)
            .ok_or_else(|| JobError::MissingBlock(format!("shuffle {id}")))?;
        let slot = shuffle
            .buckets
            .get_mut(reduce_partition)
            .and_then(|row| row.get_mut(map_task))
            .ok_or_else(|| {
                JobError::MissingBlock(format!(
                    "shuffle {id} bucket ({reduce_partition}, {map_task})"
                ))
            })?;
        // Capacity check on the post-reconciliation total, before any
        // mutation: a rejected write leaves accounting untouched. A
        // `Lost` slot carries no credit — its bytes were written off
        // when the executor died; the rewrite charges fresh.
        let prev = match &*slot {
            Slot::Data(b) => Some((b.origin_node, b.declared)),
            Slot::Empty | Slot::Lost => None,
        };
        let credit = match prev {
            Some((node, bytes)) if node == origin_node => bytes,
            _ => 0,
        };
        let prospective = inner.staged[origin_node] - credit + declared;
        if let Some(cap) = self.capacity {
            if prospective > cap {
                return Err(JobError::StagingOverflow {
                    node: origin_node,
                    used: prospective,
                    capacity: cap,
                });
            }
        }
        // With a wire transport, stage the frame on the origin node's
        // executor *before* committing the slot: a failed ship mutates
        // nothing (the task attempt fails with a retryable transport
        // error, and the retry re-stages). The measured socket bytes
        // replace the compression-only wire hint.
        let mut wire = data.wire_hint(declared);
        if let Some(manager) = &self.remote {
            wire = manager.put_block(
                origin_node,
                id,
                map_task as u64,
                reduce_partition as u64,
                data.frame(),
            )?;
            // A retry that moved to another node strands the previous
            // attempt's copy on the old executor: drop it there so
            // executor inventories keep matching this ledger.
            if let Some((prev_node, _)) = prev {
                if prev_node != origin_node {
                    manager.remove_block(prev_node, id, map_task as u64, reduce_partition as u64);
                }
            }
        }
        if let Some((node, bytes)) = prev {
            inner.staged[node] -= bytes;
            self.staged_released.fetch_add(bytes, Ordering::Relaxed);
        }
        inner.staged[origin_node] += declared;
        if inner.staged[origin_node] > inner.peak[origin_node] {
            inner.peak[origin_node] = inner.staged[origin_node];
        }
        *slot = Slot::Data(MapBucket {
            origin_node,
            attempt: tc.attempt(),
            data,
            declared,
        });
        drop(guard);
        tc.add_shuffle_write(declared, wire);
        Ok(())
    }

    /// Fetch all map buckets for `reduce_partition`, recording
    /// local/remote read bytes on the calling task. Buckets come back
    /// in map-task order as refcounted [`Payload`] frames — the fetch
    /// path performs no byte copies. A [`Slot::Lost`] bucket (its
    /// executor died) fails the fetch with [`JobError::FetchFailed`] —
    /// the reduce must not proceed on partial inputs; the driver
    /// resubmits the producing map stage instead.
    pub fn fetch(
        &self,
        id: ShuffleId,
        reduce_partition: usize,
        tc: &TaskContext,
    ) -> Result<Vec<Payload>, JobError> {
        if tc.take_chaos_fetch_failure() {
            return Err(JobError::FetchFailed {
                shuffle: id,
                partition: reduce_partition,
                reason: "injected fetch failure (chaos)".to_string(),
            });
        }
        let inner = self.inner.lock();
        let shuffle = inner
            .shuffles
            .get(&id)
            .ok_or_else(|| JobError::MissingBlock(format!("shuffle {id}")))?;
        let row = shuffle.buckets.get(reduce_partition).ok_or_else(|| {
            JobError::MissingBlock(format!("shuffle {id} partition {reduce_partition}"))
        })?;
        let mut out = Vec::new();
        for (map_task, slot) in row.iter().enumerate() {
            let bucket = match slot {
                // Empty buckets are never written (map tasks skip them
                // to keep the matrix sparse): genuinely no data.
                Slot::Empty => continue,
                Slot::Lost => {
                    return Err(JobError::FetchFailed {
                        shuffle: id,
                        partition: reduce_partition,
                        reason: format!("map output {map_task} lost with its executor"),
                    });
                }
                Slot::Data(b) => b,
            };
            if bucket.data.raw_len() == 0 {
                continue;
            }
            if bucket.origin_node == tc.node() {
                // Local fetch: the node reads its own staged output — a
                // refcount bump of the driver-held frame in every mode
                // (the executor's copy is the same bytes; re-shipping
                // them to ourselves would model a network hop that the
                // real system doesn't take either).
                tc.add_local_read(bucket.declared, bucket.data.wire_hint(bucket.declared));
                out.push(bucket.data.clone());
            } else if let Some(manager) = &self.remote {
                // Remote fetch: a real frame handoff from the origin
                // node's executor. A miss means that executor died and
                // was respawned empty since the write — the same
                // condition [`Slot::Lost`] models — so it fails the
                // fetch the same way, driving map-stage resubmission.
                match manager.fetch_block(
                    bucket.origin_node,
                    id,
                    map_task as u64,
                    reduce_partition as u64,
                ) {
                    Ok(Some((payload, wire))) => {
                        tc.add_remote_read(bucket.declared, wire);
                        out.push(payload);
                    }
                    Ok(None) => {
                        return Err(JobError::FetchFailed {
                            shuffle: id,
                            partition: reduce_partition,
                            reason: format!(
                                "executor {} no longer holds map output {map_task}",
                                bucket.origin_node
                            ),
                        });
                    }
                    Err(e) => {
                        return Err(JobError::FetchFailed {
                            shuffle: id,
                            partition: reduce_partition,
                            reason: format!("fetch from executor {}: {e}", bucket.origin_node),
                        });
                    }
                }
            } else {
                tc.add_remote_read(bucket.declared, bucket.data.wire_hint(bucket.declared));
                // Refcount bump of the stored frame — never a byte copy.
                out.push(bucket.data.clone());
            }
        }
        Ok(out)
    }

    /// Current staged bytes on `node`.
    pub fn staged_bytes(&self, node: usize) -> u64 {
        self.inner.lock().staged[node]
    }

    /// High-water mark of staged bytes on `node`.
    pub fn peak_staged_bytes(&self, node: usize) -> u64 {
        self.inner.lock().peak[node]
    }

    /// Late writes dropped by attempt fencing so far.
    pub fn zombie_writes_fenced(&self) -> u64 {
        self.zombie_writes_fenced.load(Ordering::Relaxed)
    }

    /// Bytes released back to staging so far (GC + reconciliation).
    pub fn staged_released_bytes(&self) -> u64 {
        self.staged_released.load(Ordering::Relaxed)
    }

    /// Bytes destroyed with dead executors so far.
    pub fn staged_lost_bytes(&self) -> u64 {
        self.staged_lost.load(Ordering::Relaxed)
    }

    /// Executor death: every bucket `node` staged becomes
    /// [`Slot::Lost`] (reduces fetching it see
    /// [`JobError::FetchFailed`]) and its bytes leave the staging
    /// accounting as *lost*, not released. Returns `(buckets, bytes)`
    /// destroyed.
    pub fn drop_node_outputs(&self, node: usize) -> (u64, u64) {
        let mut inner = self.inner.lock();
        let mut buckets_lost = 0u64;
        let mut bytes_lost = 0u64;
        for data in inner.shuffles.values_mut() {
            for row in data.buckets.iter_mut() {
                for slot in row.iter_mut() {
                    if let Slot::Data(b) = slot {
                        if b.origin_node == node {
                            buckets_lost += 1;
                            bytes_lost += b.declared;
                            *slot = Slot::Lost;
                        }
                    }
                }
            }
        }
        inner.staged[node] -= bytes_lost;
        drop(inner);
        if bytes_lost > 0 {
            self.staged_lost.fetch_add(bytes_lost, Ordering::Relaxed);
        }
        (buckets_lost, bytes_lost)
    }

    /// Verify the staging invariant: `staged[n]` must equal the sum of
    /// declared bytes over every stored [`Slot::Data`] bucket with
    /// origin `n`. Returns a description of the first discrepancy.
    pub fn audit(&self) -> Result<(), String> {
        let inner = self.inner.lock();
        let mut expect = vec![0u64; inner.staged.len()];
        for (id, data) in &inner.shuffles {
            for row in &data.buckets {
                for slot in row {
                    if let Slot::Data(b) = slot {
                        if b.origin_node >= expect.len() {
                            return Err(format!(
                                "shuffle {id}: bucket origin {} out of range",
                                b.origin_node
                            ));
                        }
                        expect[b.origin_node] += b.declared;
                    }
                }
            }
        }
        for (node, (&want, &got)) in expect.iter().zip(inner.staged.iter()).enumerate() {
            if want != got {
                return Err(format!(
                    "node {node}: staged counter {got} != stored bucket bytes {want}"
                ));
            }
        }
        Ok(())
    }

    /// Release one shuffle: drop its buckets and return their declared
    /// bytes to the owning nodes' staging budgets. Called when the
    /// consuming RDD lineage is dropped (per-shuffle GC); releasing an
    /// unknown or already-released id is a no-op.
    pub fn release(&self, id: ShuffleId) {
        let mut inner = self.inner.lock();
        let Some(data) = inner.shuffles.remove(&id) else {
            return;
        };
        if let Some(manager) = &self.remote {
            manager.shuffle_release(id);
        }
        let mut released = 0u64;
        for row in data.buckets {
            for slot in row {
                if let Slot::Data(bucket) = slot {
                    inner.staged[bucket.origin_node] -= bucket.declared;
                    released += bucket.declared;
                }
            }
        }
        drop(inner);
        if released > 0 {
            self.staged_released.fetch_add(released, Ordering::Relaxed);
        }
    }

    /// Drop all shuffle data and reset staging accounting (a wholesale
    /// reset between benchmark configurations; per-iteration cleanup
    /// happens through [`ShuffleManager::release`]).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.shuffles.clear();
        for b in inner.staged.iter_mut() {
            *b = 0;
        }
        if let Some(manager) = &self.remote {
            manager.shuffle_clear();
        }
    }

    /// Number of stored [`Slot::Data`] buckets per origin node — the
    /// driver-side inventory an executor audit checks each subprocess
    /// against.
    pub fn bucket_counts(&self) -> Vec<u64> {
        let inner = self.inner.lock();
        let mut counts = vec![0u64; inner.staged.len()];
        for data in inner.shuffles.values() {
            for row in &data.buckets {
                for slot in row {
                    if let Slot::Data(b) = slot {
                        counts[b.origin_node] += 1;
                    }
                }
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::TaskContext;
    use crate::payload::{Compression, FRAME_HEADER};
    use bytes::Bytes;
    use std::sync::Arc;

    /// Seal a raw byte run into an uncompressed frame.
    fn pay(data: &[u8]) -> Payload {
        Payload::seal(Bytes::copy_from_slice(data), Compression::None)
    }

    /// The raw streams of fetched frames, for equality assertions.
    fn opened(got: &[Payload]) -> Vec<Vec<u8>> {
        got.iter().map(|p| p.open().unwrap().to_vec()).collect()
    }

    #[test]
    fn write_then_fetch_roundtrips_in_map_order() {
        let sm = ShuffleManager::new(2, None);
        sm.register(1, 3, 2);
        let tc0 = TaskContext::new(0);
        let tc1 = TaskContext::new(1);
        sm.write(1, 0, 0, 0, pay(b"aa"), 2, &tc0).unwrap();
        sm.write(1, 1, 0, 1, pay(b"bb"), 2, &tc1).unwrap();
        sm.write(1, 2, 0, 0, pay(b"cc"), 2, &tc0).unwrap();
        sm.write(1, 0, 1, 0, pay(b""), 0, &tc0).unwrap();
        sm.write(1, 1, 1, 1, pay(b""), 0, &tc1).unwrap();
        sm.write(1, 2, 1, 0, pay(b""), 0, &tc0).unwrap();
        let reader = TaskContext::new(0);
        let got = sm.fetch(1, 0, &reader).unwrap();
        assert_eq!(
            opened(&got),
            vec![b"aa".to_vec(), b"bb".to_vec(), b"cc".to_vec()]
        );
        let rec = reader.snapshot();
        assert_eq!(rec.local_read_bytes, 4); // aa + cc from node 0
        assert_eq!(rec.remote_read_bytes, 2); // bb from node 1
    }

    #[test]
    fn fetch_shares_the_written_frame_zero_copy() {
        let sm = ShuffleManager::new(1, None);
        sm.register(11, 1, 1);
        let tc = TaskContext::new(0);
        let payload = pay(&[7u8; 1024]);
        let frame_ptr = payload.frame().as_ptr() as usize;
        sm.write(11, 0, 0, 0, payload, 1024, &tc).unwrap();
        let got = sm.fetch(11, 0, &tc).unwrap();
        assert_eq!(got.len(), 1);
        // The fetched frame is the written allocation (refcount bump)…
        assert_eq!(got[0].frame().as_ptr() as usize, frame_ptr);
        // …and opening it slices that same allocation: the read path
        // does zero full-buffer copies end to end.
        let body = got[0].open().unwrap();
        assert_eq!(body.as_ptr() as usize, frame_ptr + FRAME_HEADER);
        assert_eq!(body.len(), 1024);
    }

    #[test]
    fn compressed_buckets_declare_logical_but_report_wire() {
        let sm = ShuffleManager::new(2, None);
        sm.register(12, 1, 1);
        let tc = TaskContext::new(0);
        let p = Payload::seal(Bytes::from(vec![0u8; 4096]), Compression::Lz4);
        assert!(p.is_compressed());
        let wire = p.wire_len();
        assert!(wire < 4096);
        sm.write(12, 0, 0, 0, p, 4096, &tc).unwrap();
        // The staging ledger runs on declared (logical) bytes — wire
        // compression never changes capacity or reconciliation math.
        assert_eq!(sm.staged_bytes(0), 4096);
        let w = tc.snapshot();
        assert_eq!(w.shuffle_write_bytes, 4096);
        assert_eq!(w.shuffle_write_wire_bytes, wire);
        let remote = TaskContext::new(1);
        let got = sm.fetch(12, 0, &remote).unwrap();
        assert_eq!(got[0].open().unwrap(), vec![0u8; 4096]);
        let r = remote.snapshot();
        assert_eq!(r.remote_read_bytes, 4096);
        assert_eq!(r.remote_read_wire_bytes, wire);
        // Uncompressed frames report no wire hint: the cost model keeps
        // its assumed-ratio pricing for them.
        let plain = TaskContext::new(0);
        sm.register(13, 1, 1);
        sm.write(13, 0, 0, 0, pay(b"abcd"), 4, &plain).unwrap();
        assert_eq!(plain.snapshot().shuffle_write_wire_bytes, 0);
    }

    #[test]
    fn staging_capacity_overflow_fails() {
        let sm = ShuffleManager::new(1, Some(10));
        sm.register(7, 2, 1);
        let tc = TaskContext::new(0);
        sm.write(7, 0, 0, 0, pay(&[0u8; 8]), 8, &tc).unwrap();
        let err = sm.write(7, 1, 0, 0, pay(&[0u8; 8]), 8, &tc).unwrap_err();
        assert!(matches!(err, JobError::StagingOverflow { node: 0, .. }));
        // The rejected write mutated nothing.
        assert_eq!(sm.staged_bytes(0), 8);
    }

    #[test]
    fn rewrite_reconciles_staging_instead_of_inflating() {
        // Capacity holds one attempt's bucket but not two: retry must
        // release the first attempt's bytes before charging the new.
        let sm = ShuffleManager::new(1, Some(10));
        sm.register(7, 1, 1);
        let tc = TaskContext::new(0);
        sm.write(7, 0, 0, 0, pay(&[0u8; 8]), 8, &tc).unwrap();
        sm.write(7, 0, 0, 0, pay(&[1u8; 8]), 8, &tc).unwrap();
        assert_eq!(sm.staged_bytes(0), 8);
        assert_eq!(sm.staged_released_bytes(), 8);
        let got = sm.fetch(7, 0, &TaskContext::new(0)).unwrap();
        assert_eq!(opened(&got), vec![vec![1u8; 8]]);
    }

    #[test]
    fn rewrite_from_another_node_moves_the_accounting() {
        let sm = ShuffleManager::new(2, None);
        sm.register(9, 1, 1);
        sm.write(9, 0, 0, 0, pay(b"xyz"), 3, &TaskContext::new(0))
            .unwrap();
        assert_eq!((sm.staged_bytes(0), sm.staged_bytes(1)), (3, 0));
        // The retry landed on node 1 (Spark-style placement rotation).
        sm.write(9, 0, 0, 1, pay(b"xyz"), 3, &TaskContext::new(1))
            .unwrap();
        assert_eq!((sm.staged_bytes(0), sm.staged_bytes(1)), (0, 3));
    }

    #[test]
    fn empty_buckets_are_not_staged() {
        let sm = ShuffleManager::new(1, Some(4));
        sm.register(5, 2, 1);
        let tc = TaskContext::new(0);
        sm.write(5, 0, 0, 0, pay(b""), 0, &tc).unwrap();
        assert_eq!(sm.staged_bytes(0), 0);
        assert_eq!(tc.snapshot().shuffle_write_bytes, 0);
        assert!(sm.fetch(5, 0, &tc).unwrap().is_empty());
    }

    #[test]
    fn fenced_zombie_write_is_dropped() {
        let sm = ShuffleManager::new(1, None);
        sm.register(2, 1, 1);
        let board = Arc::new(vec![AtomicU64::new(0)]);
        let winner = TaskContext::for_attempt(0, 2, Arc::clone(&board), 0);
        sm.write(2, 0, 0, 0, pay(b"win"), 3, &winner).unwrap();
        board[0].store(2, Ordering::Release);
        // Attempt 1 limps in after attempt 2 committed: fenced.
        let zombie = TaskContext::for_attempt(0, 1, Arc::clone(&board), 0);
        sm.write(2, 0, 0, 0, pay(b"old"), 3, &zombie).unwrap();
        assert_eq!(sm.zombie_writes_fenced(), 1);
        assert_eq!(sm.staged_bytes(0), 3);
        assert_eq!(zombie.snapshot().shuffle_write_bytes, 0);
        let got = sm.fetch(2, 0, &TaskContext::new(0)).unwrap();
        assert_eq!(opened(&got), vec![b"win".to_vec()]);
    }

    #[test]
    fn release_returns_staged_bytes_per_shuffle() {
        let sm = ShuffleManager::new(2, Some(100));
        sm.register(1, 1, 1);
        sm.register(2, 1, 1);
        sm.write(1, 0, 0, 0, pay(b"aaaa"), 4, &TaskContext::new(0))
            .unwrap();
        sm.write(2, 0, 0, 1, pay(b"bb"), 2, &TaskContext::new(1))
            .unwrap();
        sm.release(1);
        assert_eq!((sm.staged_bytes(0), sm.staged_bytes(1)), (0, 2));
        assert_eq!(sm.staged_released_bytes(), 4);
        assert!(sm.fetch(1, 0, &TaskContext::new(0)).is_err());
        assert!(sm.fetch(2, 0, &TaskContext::new(0)).is_ok());
        sm.release(1); // double release is a no-op
        assert_eq!(sm.staged_released_bytes(), 4);
    }

    #[test]
    fn peak_tracks_high_water_mark_across_release() {
        let sm = ShuffleManager::new(1, None);
        sm.register(4, 2, 1);
        let tc = TaskContext::new(0);
        sm.write(4, 0, 0, 0, pay(&[0u8; 6]), 6, &tc).unwrap();
        sm.write(4, 1, 0, 0, pay(&[0u8; 4]), 4, &tc).unwrap();
        sm.release(4);
        assert_eq!(sm.staged_bytes(0), 0);
        assert_eq!(sm.peak_staged_bytes(0), 10);
    }

    #[test]
    fn clear_resets_staging() {
        let sm = ShuffleManager::new(1, Some(10));
        sm.register(7, 1, 1);
        let tc = TaskContext::new(0);
        sm.write(7, 0, 0, 0, pay(&[0u8; 8]), 8, &tc).unwrap();
        assert_eq!(sm.staged_bytes(0), 8);
        sm.clear();
        assert_eq!(sm.staged_bytes(0), 0);
        assert!(sm.fetch(7, 0, &tc).is_err());
    }

    #[test]
    fn lost_buckets_fail_the_fetch_instead_of_reading_as_empty() {
        let sm = ShuffleManager::new(2, None);
        sm.register(1, 2, 1);
        sm.write(1, 0, 0, 0, pay(b"aa"), 2, &TaskContext::new(0))
            .unwrap();
        sm.write(1, 1, 0, 1, pay(b"bb"), 2, &TaskContext::new(1))
            .unwrap();
        let (buckets, bytes) = sm.drop_node_outputs(1);
        assert_eq!((buckets, bytes), (1, 2));
        assert_eq!(sm.staged_bytes(1), 0);
        assert_eq!(sm.staged_lost_bytes(), 2);
        assert_eq!(sm.staged_released_bytes(), 0, "loss is not a release");
        let err = sm.fetch(1, 0, &TaskContext::new(0)).unwrap_err();
        assert!(
            matches!(
                err,
                JobError::FetchFailed {
                    shuffle: 1,
                    partition: 0,
                    ..
                }
            ),
            "got {err:?}"
        );
        sm.audit().unwrap();
        // A map re-run rewrites the lost bucket; fetch recovers fully.
        sm.write(1, 1, 0, 0, pay(b"bb"), 2, &TaskContext::new(0))
            .unwrap();
        let got = sm.fetch(1, 0, &TaskContext::new(0)).unwrap();
        assert_eq!(opened(&got), vec![b"aa".to_vec(), b"bb".to_vec()]);
        assert_eq!(sm.staged_bytes(0), 4, "rewrite charges fresh bytes");
        sm.audit().unwrap();
    }

    #[test]
    fn chaos_fetch_failure_fires_once_per_task() {
        let sm = ShuffleManager::new(1, None);
        sm.register(6, 1, 1);
        let writer = TaskContext::new(0);
        sm.write(6, 0, 0, 0, pay(b"zz"), 2, &writer).unwrap();
        let doomed = TaskContext::new(0).with_chaos(Some(&crate::sim::ChaosEvent::FetchFailure));
        let err = sm.fetch(6, 0, &doomed).unwrap_err();
        assert!(matches!(err, JobError::FetchFailed { shuffle: 6, .. }));
        // Consumed: the retry on the same context succeeds.
        assert!(sm.fetch(6, 0, &doomed).is_ok());
    }

    #[test]
    fn unwritten_buckets_read_as_empty() {
        let sm = ShuffleManager::new(1, None);
        sm.register(3, 2, 1);
        let tc = TaskContext::new(0);
        sm.write(3, 0, 0, 0, pay(b"x"), 1, &tc).unwrap();
        let got = sm.fetch(3, 0, &tc).unwrap();
        assert_eq!(opened(&got), vec![b"x".to_vec()]);
    }
}
