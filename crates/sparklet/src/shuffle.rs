//! The shuffle service: map-output staging and reduce-side fetch.
//!
//! Map tasks serialize their output into per-reduce-partition buckets
//! "staged on local storage" (per-node byte accounting against the
//! configured capacity — the paper's IM failure mode when exceeded).
//! Reduce tasks fetch every map task's bucket for their partition; a
//! fetch from another node counts as remote (network) traffic, from
//! the same node as local (storage) traffic.

use std::collections::HashMap;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::context::TaskContext;
use crate::error::JobError;

/// Identifier of one shuffle (one wide dependency).
pub type ShuffleId = u64;

/// One map task's output for one reduce partition.
#[derive(Debug, Clone)]
pub struct MapBucket {
    /// Node whose map task produced this bucket.
    pub origin_node: usize,
    /// Serialized pairs.
    pub data: Bytes,
    /// Accounted ("declared") size: the logical payload size used for
    /// all byte accounting. Equals `data.len()` for real payloads;
    /// virtual-mode payloads declare their full-scale size while
    /// shipping only headers.
    pub declared: u64,
}

#[derive(Debug, Default)]
struct ShuffleData {
    /// `buckets[reduce_partition][map_task] = bucket` (map task order is
    /// preserved so downstream merging is deterministic).
    buckets: Vec<Vec<Option<MapBucket>>>,
}

/// Global shuffle state shared by all executors (it *is* the network).
#[derive(Debug)]
pub struct ShuffleManager {
    shuffles: Mutex<HashMap<ShuffleId, ShuffleData>>,
    /// Currently staged bytes per node.
    staged: Mutex<Vec<u64>>,
    capacity: Option<u64>,
}

impl ShuffleManager {
    /// Manager for `nodes` nodes with optional per-node staging cap.
    pub fn new(nodes: usize, capacity: Option<u64>) -> Self {
        ShuffleManager {
            shuffles: Mutex::new(HashMap::new()),
            staged: Mutex::new(vec![0; nodes]),
            capacity,
        }
    }

    /// Create the bucket matrix for a shuffle.
    pub fn register(&self, id: ShuffleId, map_tasks: usize, reduce_partitions: usize) {
        let mut shuffles = self.shuffles.lock();
        shuffles.entry(id).or_insert_with(|| ShuffleData {
            buckets: vec![vec![None; map_tasks]; reduce_partitions],
        });
    }

    /// Stage one map task's bucket for one reduce partition. Fails the
    /// job when the origin node's staging capacity is exceeded.
    #[allow(clippy::too_many_arguments)]
    pub fn write(
        &self,
        id: ShuffleId,
        map_task: usize,
        reduce_partition: usize,
        origin_node: usize,
        data: Bytes,
        declared: u64,
        tc: &TaskContext,
    ) -> Result<(), JobError> {
        let len = declared;
        {
            let mut staged = self.staged.lock();
            staged[origin_node] += len;
            if let Some(cap) = self.capacity {
                if staged[origin_node] > cap {
                    return Err(JobError::StagingOverflow {
                        node: origin_node,
                        used: staged[origin_node],
                        capacity: cap,
                    });
                }
            }
        }
        tc.add_shuffle_write(len);
        let mut shuffles = self.shuffles.lock();
        let shuffle = shuffles
            .get_mut(&id)
            .ok_or_else(|| JobError::MissingBlock(format!("shuffle {id}")))?;
        shuffle.buckets[reduce_partition][map_task] = Some(MapBucket {
            origin_node,
            data,
            declared,
        });
        Ok(())
    }

    /// Fetch all map buckets for `reduce_partition`, recording
    /// local/remote read bytes on the calling task. Buckets come back
    /// in map-task order.
    pub fn fetch(
        &self,
        id: ShuffleId,
        reduce_partition: usize,
        tc: &TaskContext,
    ) -> Result<Vec<Bytes>, JobError> {
        let shuffles = self.shuffles.lock();
        let shuffle = shuffles
            .get(&id)
            .ok_or_else(|| JobError::MissingBlock(format!("shuffle {id}")))?;
        let row = shuffle
            .buckets
            .get(reduce_partition)
            .ok_or_else(|| JobError::MissingBlock(format!("shuffle {id} partition {reduce_partition}")))?;
        // Empty buckets are never written (map tasks skip them to keep
        // the bucket matrix sparse), so a `None` slot means "no data".
        let mut out = Vec::new();
        for bucket in row.iter().flatten() {
            {
                if bucket.data.is_empty() {
                    continue;
                }
                if bucket.origin_node == tc.node() {
                    tc.add_local_read(bucket.declared);
                } else {
                    tc.add_remote_read(bucket.declared);
                }
                out.push(bucket.data.clone());
            }
        }
        Ok(out)
    }

    /// Current staged bytes on `node`.
    pub fn staged_bytes(&self, node: usize) -> u64 {
        self.staged.lock()[node]
    }

    /// Drop all shuffle data and reset staging accounting (the
    /// between-iterations cleanup a checkpoint performs).
    pub fn clear(&self) {
        self.shuffles.lock().clear();
        for b in self.staged.lock().iter_mut() {
            *b = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::TaskContext;

    #[test]
    fn write_then_fetch_roundtrips_in_map_order() {
        let sm = ShuffleManager::new(2, None);
        sm.register(1, 3, 2);
        let tc0 = TaskContext::new(0);
        let tc1 = TaskContext::new(1);
        sm.write(1, 0, 0, 0, Bytes::from_static(b"aa"), 2, &tc0).unwrap();
        sm.write(1, 1, 0, 1, Bytes::from_static(b"bb"), 2, &tc1).unwrap();
        sm.write(1, 2, 0, 0, Bytes::from_static(b"cc"), 2, &tc0).unwrap();
        sm.write(1, 0, 1, 0, Bytes::new(), 0, &tc0).unwrap();
        sm.write(1, 1, 1, 1, Bytes::new(), 0, &tc1).unwrap();
        sm.write(1, 2, 1, 0, Bytes::new(), 0, &tc0).unwrap();
        let reader = TaskContext::new(0);
        let got = sm.fetch(1, 0, &reader).unwrap();
        assert_eq!(got, vec![Bytes::from_static(b"aa"), Bytes::from_static(b"bb"), Bytes::from_static(b"cc")]);
        let rec = reader.snapshot();
        assert_eq!(rec.local_read_bytes, 4); // aa + cc from node 0
        assert_eq!(rec.remote_read_bytes, 2); // bb from node 1
    }

    #[test]
    fn staging_capacity_overflow_fails() {
        let sm = ShuffleManager::new(1, Some(10));
        sm.register(7, 1, 1);
        let tc = TaskContext::new(0);
        sm.write(7, 0, 0, 0, Bytes::from(vec![0u8; 8]), 8, &tc).unwrap();
        let err = sm
            .write(7, 0, 0, 0, Bytes::from(vec![0u8; 8]), 8, &tc)
            .unwrap_err();
        assert!(matches!(err, JobError::StagingOverflow { node: 0, .. }));
    }

    #[test]
    fn clear_resets_staging() {
        let sm = ShuffleManager::new(1, Some(10));
        sm.register(7, 1, 1);
        let tc = TaskContext::new(0);
        sm.write(7, 0, 0, 0, Bytes::from(vec![0u8; 8]), 8, &tc).unwrap();
        assert_eq!(sm.staged_bytes(0), 8);
        sm.clear();
        assert_eq!(sm.staged_bytes(0), 0);
        assert!(sm.fetch(7, 0, &tc).is_err());
    }

    #[test]
    fn unwritten_buckets_read_as_empty() {
        let sm = ShuffleManager::new(1, None);
        sm.register(3, 2, 1);
        let tc = TaskContext::new(0);
        sm.write(3, 0, 0, 0, Bytes::from_static(b"x"), 1, &tc).unwrap();
        let got = sm.fetch(3, 0, &tc).unwrap();
        assert_eq!(got, vec![Bytes::from_static(b"x")]);
    }
}
