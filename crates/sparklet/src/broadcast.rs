//! Driver-mediated broadcast through "shared persistent storage" — the
//! transport of the paper's Collect-Broadcast implementation.
//!
//! The driver serializes a value once into the shared store — a single
//! sealed [`Payload`] frame, optionally compressed; each node
//! deserializes it at most once (per-node cache), mirroring how the
//! paper's executors read broadcast blocks from the shared filesystem.
//! Handing the frame to a node is a refcount bump, never a copy.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::codec::{decode_one, Storable};
use crate::context::TaskContext;
use crate::error::JobError;
use crate::payload::{Compression, Payload, PayloadBuilder};
use crate::transport::ExecutorManager;
use crate::Data;

/// The shared store the driver writes into (one per context).
#[derive(Debug, Default)]
pub struct BroadcastStore {
    entries: Mutex<HashMap<u64, Payload>>,
}

impl BroadcastStore {
    /// Store a serialized broadcast payload.
    pub fn put(&self, id: u64, data: Payload) {
        self.entries.lock().insert(id, data);
    }

    /// Fetch a broadcast payload by id (refcount bump, no copy).
    pub fn get(&self, id: u64) -> Result<Payload, JobError> {
        self.entries
            .lock()
            .get(&id)
            .cloned()
            .ok_or_else(|| JobError::MissingBlock(format!("broadcast {id}")))
    }

    /// Drop a broadcast payload.
    pub fn remove(&self, id: u64) {
        self.entries.lock().remove(&id);
    }
}

/// Removes the serialized payload when the last broadcast handle is
/// dropped (Spark's ContextCleaner unpersisting a dead broadcast) —
/// without this, iterative CB jobs would retain every iteration's
/// broadcast for the context's lifetime.
struct BroadcastGuard {
    id: u64,
    store: Arc<BroadcastStore>,
    remote: Option<Arc<ExecutorManager>>,
}

impl Drop for BroadcastGuard {
    fn drop(&mut self) {
        self.store.remove(self.id);
        if let Some(manager) = &self.remote {
            manager.broadcast_remove(self.id);
        }
    }
}

/// Handle to a broadcast value; cheap to clone into task closures.
pub struct Broadcast<T> {
    id: u64,
    bytes: u64,
    store: Arc<BroadcastStore>,
    /// Wire transport: each node's executor caches the frame and
    /// serves its own node's first read.
    remote: Option<Arc<ExecutorManager>>,
    /// Per-node deserialized cache.
    per_node: Arc<Mutex<HashMap<usize, Arc<T>>>>,
    /// Cleanup on last drop.
    _guard: Arc<BroadcastGuard>,
}

impl<T> Clone for Broadcast<T> {
    fn clone(&self) -> Self {
        Broadcast {
            id: self.id,
            bytes: self.bytes,
            store: Arc::clone(&self.store),
            remote: self.remote.clone(),
            per_node: Arc::clone(&self.per_node),
            _guard: Arc::clone(&self._guard),
        }
    }
}

impl<T: Data + Storable> Broadcast<T> {
    pub(crate) fn create(
        id: u64,
        value: &T,
        store: Arc<BroadcastStore>,
        compression: Compression,
        remote: Option<Arc<ExecutorManager>>,
    ) -> Self {
        // Serialize exactly once, straight into the sealed frame.
        let mut builder = PayloadBuilder::with_capacity(value.encoded_len());
        value.encode(builder.buf());
        let encoded = builder.seal(compression);
        // Accounting uses the declared (approx) size so virtual-mode
        // payloads price at full scale.
        let bytes = value.approx_bytes() as u64;
        // With a wire transport the driver pushes the sealed frame
        // exactly once per executor (Spark's one-shipment-per-node
        // broadcast); a push failure is tolerated here — the node's
        // first read falls back to the driver copy and re-pushes.
        if let Some(manager) = &remote {
            for node in 0..manager.executors() {
                let _ = manager.broadcast_put(node, id, encoded.frame());
            }
        }
        store.put(id, encoded);
        Broadcast {
            id,
            bytes,
            store: Arc::clone(&store),
            remote: remote.clone(),
            per_node: Arc::new(Mutex::new(HashMap::new())),
            _guard: Arc::new(BroadcastGuard { id, store, remote }),
        }
    }

    /// Serialized size — this is what the driver shipped.
    pub fn serialized_bytes(&self) -> u64 {
        self.bytes
    }

    /// Read the value from a task. The first read on each node
    /// deserializes from shared storage (and is recorded as local
    /// storage traffic); subsequent reads hit the node cache.
    pub fn value(&self, tc: &TaskContext) -> Result<Arc<T>, JobError> {
        let mut cache = self.per_node.lock();
        if let Some(v) = cache.get(&tc.node()) {
            return Ok(Arc::clone(v));
        }
        let payload = match &self.remote {
            // Wire transport: the node's first read pulls the frame
            // from its own executor — a measured socket transfer. An
            // executor that was respawned since the push no longer
            // holds it; fall back to the driver copy and re-push so
            // the node's cache is warm again.
            Some(manager) => match manager.broadcast_get(tc.node(), self.id)? {
                Some((payload, wire)) => {
                    tc.add_local_read(self.bytes, wire);
                    payload
                }
                None => {
                    let payload = self.store.get(self.id)?;
                    let wire = manager
                        .broadcast_put(tc.node(), self.id, payload.frame())
                        .unwrap_or(0);
                    tc.add_local_read(self.bytes, wire);
                    payload
                }
            },
            None => {
                let payload = self.store.get(self.id)?;
                tc.add_local_read(self.bytes, payload.wire_hint(self.bytes));
                payload
            }
        };
        let value = Arc::new(decode_one::<T>(payload.open()?)?);
        cache.insert(tc.node(), Arc::clone(&value));
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_roundtrips_and_caches_per_node() {
        let store = Arc::new(BroadcastStore::default());
        let bc = Broadcast::create(
            9,
            &vec![1.5f64, 2.5],
            Arc::clone(&store),
            Compression::None,
            None,
        );
        let tc0 = TaskContext::new(0);
        let v1 = bc.value(&tc0).unwrap();
        let v2 = bc.value(&tc0).unwrap();
        assert_eq!(*v1, vec![1.5, 2.5]);
        assert!(Arc::ptr_eq(&v1, &v2), "second read hits node cache");
        // Only the first read on the node touched storage.
        assert_eq!(tc0.snapshot().local_read_bytes, bc.serialized_bytes());
        let tc1 = TaskContext::new(1);
        let v3 = bc.value(&tc1).unwrap();
        assert_eq!(*v3, *v1);
        assert!(!Arc::ptr_eq(&v1, &v3), "different node deserializes anew");
    }

    #[test]
    fn payload_is_reclaimed_when_last_handle_drops() {
        let store = Arc::new(BroadcastStore::default());
        let bc = Broadcast::create(5, &1u64, Arc::clone(&store), Compression::None, None);
        let bc2 = bc.clone();
        drop(bc);
        assert!(store.get(5).is_ok(), "still referenced");
        drop(bc2);
        assert!(store.get(5).is_err(), "reclaimed after last drop");
    }

    #[test]
    fn missing_broadcast_errors() {
        let store = Arc::new(BroadcastStore::default());
        let bc = Broadcast::create(1, &0u64, Arc::clone(&store), Compression::None, None);
        store.remove(1);
        let tc = TaskContext::new(0);
        assert!(bc.value(&tc).is_err());
    }

    #[test]
    fn compressed_broadcast_roundtrips_and_reports_wire_bytes() {
        let store = Arc::new(BroadcastStore::default());
        let value: Vec<u64> = vec![7; 512];
        let bc = Broadcast::create(3, &value, Arc::clone(&store), Compression::Lz4, None);
        // Declared size is unchanged by the codec.
        assert_eq!(bc.serialized_bytes(), value.approx_bytes() as u64);
        let tc = TaskContext::new(0);
        assert_eq!(*bc.value(&tc).unwrap(), value);
        let rec = tc.snapshot();
        assert_eq!(rec.local_read_bytes, bc.serialized_bytes());
        assert!(
            rec.local_read_wire_bytes > 0 && rec.local_read_wire_bytes < rec.local_read_bytes,
            "repetitive payload must report a smaller measured wire size, got {}",
            rec.local_read_wire_bytes
        );
    }
}
