//! Deterministic simulation: seeded chaos policies and the logical
//! random stream behind the simulated scheduler.
//!
//! In sim mode ([`crate::SparkConf::with_sim_seed`]) the whole engine —
//! task completion order, stage launch order, retry deadlines, fault
//! injection — is a pure function of one `u64` seed. The pieces here:
//!
//! * [`SimRng`]: a SplitMix64 stream drawn from by the simulated task
//!   and DAG schedulers to pick *which* ready item runs next;
//! * [`ChaosPolicy`]: decides *what goes wrong* for a given
//!   `(stage, partition, attempt)` coordinate. Probabilistic draws are
//!   stateless hashes of `(seed, event-stream, coordinate)`, so the
//!   verdict for a coordinate never depends on the order in which the
//!   scheduler asks — only executor-loss consumes a stateful budget
//!   (and sim-mode queries are themselves deterministically ordered).
//!
//! Replay: every scenario failure prints `CHAOS_SEED=<seed>`; exporting
//! that variable re-runs the identical schedule.

use std::collections::HashMap;

/// One injected fault, scoped to a single task attempt (except
/// [`ChaosEvent::ExecutorLoss`], which takes out a whole node).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEvent {
    /// The task attempt panics after its side effects landed (the
    /// harshest ordering: retries must reconcile the partial writes).
    TaskPanic,
    /// The attempt completes, but only after `delay_ms` of extra
    /// logical time — long enough to trip speculation thresholds.
    Straggler {
        /// Extra logical milliseconds before the attempt finishes.
        delay_ms: u64,
    },
    /// The attempt's first shuffle fetch fails
    /// ([`crate::JobError::FetchFailed`]), forcing a map-stage
    /// resubmission at the job level.
    FetchFailure,
    /// The executor the attempt was placed on dies before running it:
    /// all its cached blocks and staged map outputs are lost.
    ExecutorLoss,
    /// Every disk write the attempt tries (spill or `DiskOnly` put)
    /// hits a full disk.
    DiskFull,
}

/// SplitMix64: the deterministic random stream for scheduler choices.
///
/// Not cryptographic — chosen for a tiny, well-studied, dependency-free
/// generator whose output is identical on every platform.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// A stream determined entirely by `seed`.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Next value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix64(self.state)
    }

    /// Uniform pick in `0..n` (`n > 0`).
    pub fn pick(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// SplitMix64 finalizer: avalanches all input bits.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Stateless per-coordinate hash: one independent draw per
/// `(seed, stream, stage, partition, attempt)`.
fn coord_hash(seed: u64, stream: u64, stage: u64, partition: usize, attempt: u64) -> u64 {
    let mut h = mix64(seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    h = mix64(h ^ stage.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    h = mix64(h ^ (partition as u64).wrapping_mul(0x94d0_49bb_1331_11eb));
    mix64(h ^ attempt.wrapping_mul(0x2545_f491_4f6c_dd1d))
}

// Stream tags separating the per-event-type draws.
const STREAM_PANIC: u64 = 1;
const STREAM_STRAGGLER: u64 = 2;
const STREAM_FETCH: u64 = 3;
const STREAM_LOSS: u64 = 4;
const STREAM_DISK: u64 = 5;

/// A seeded script of faults, installed on a [`crate::SparkContext`]
/// via [`crate::SparkContext::install_chaos`].
///
/// Probabilities are per-mille (`0..=1000`) so draws stay in exact
/// integer arithmetic. Scripted entries
/// ([`ChaosPolicy::script`]) override the probabilistic draws for
/// their exact coordinate.
#[derive(Debug, Clone)]
pub struct ChaosPolicy {
    seed: u64,
    panic_per_mille: u32,
    straggler_per_mille: u32,
    fetch_per_mille: u32,
    loss_per_mille: u32,
    disk_per_mille: u32,
    straggler_delay_ms: u64,
    loss_budget: u32,
    scripted: HashMap<(u64, usize, u64), ChaosEvent>,
}

impl ChaosPolicy {
    /// A policy with every probability zero: only scripted events fire.
    pub fn seeded(seed: u64) -> Self {
        ChaosPolicy {
            seed,
            panic_per_mille: 0,
            straggler_per_mille: 0,
            fetch_per_mille: 0,
            loss_per_mille: 0,
            disk_per_mille: 0,
            straggler_delay_ms: 500,
            loss_budget: 0,
            scripted: HashMap::new(),
        }
    }

    /// Per-mille chance a task attempt panics.
    pub fn with_task_panics(mut self, per_mille: u32) -> Self {
        self.panic_per_mille = per_mille.min(1000);
        self
    }

    /// Per-mille chance an attempt straggles, and by how long.
    pub fn with_stragglers(mut self, per_mille: u32, delay_ms: u64) -> Self {
        self.straggler_per_mille = per_mille.min(1000);
        self.straggler_delay_ms = delay_ms;
        self
    }

    /// Per-mille chance an attempt's shuffle fetch fails.
    pub fn with_fetch_failures(mut self, per_mille: u32) -> Self {
        self.fetch_per_mille = per_mille.min(1000);
        self
    }

    /// Per-mille chance an attempt's executor dies, capped at `budget`
    /// losses per run (losses are expensive to recover; an unbounded
    /// rate can exceed any retry budget).
    pub fn with_executor_loss(mut self, per_mille: u32, budget: u32) -> Self {
        self.loss_per_mille = per_mille.min(1000);
        self.loss_budget = budget;
        self
    }

    /// Per-mille chance an attempt sees a full disk on every spill.
    pub fn with_disk_full(mut self, per_mille: u32) -> Self {
        self.disk_per_mille = per_mille.min(1000);
        self
    }

    /// Force `event` at exactly `(stage, partition, attempt)`,
    /// overriding the probabilistic draws. `stage` is the stage ordinal
    /// ([`cluster_model::StageRecord::stage_id`] order of launch).
    pub fn script(mut self, stage: u64, partition: usize, attempt: u64, event: ChaosEvent) -> Self {
        self.scripted.insert((stage, partition, attempt), event);
        self
    }

    /// The seed this policy was built from (printed on scenario
    /// failure for replay).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn draw(
        &self,
        stream: u64,
        per_mille: u32,
        stage: u64,
        partition: usize,
        attempt: u64,
    ) -> bool {
        per_mille > 0
            && coord_hash(self.seed, stream, stage, partition, attempt) % 1000 < per_mille as u64
    }

    /// The fault (if any) for one task attempt. At most one event fires
    /// per coordinate; when several draws hit, the most disruptive
    /// wins: loss > panic > fetch failure > disk full > straggler.
    pub fn event_for(&mut self, stage: u64, partition: usize, attempt: u64) -> Option<ChaosEvent> {
        // Scripted entries bypass the draws (and the loss budget: a
        // script is an explicit ask).
        if let Some(ev) = self.scripted.get(&(stage, partition, attempt)) {
            return Some(*ev);
        }
        if self.loss_budget > 0
            && self.draw(STREAM_LOSS, self.loss_per_mille, stage, partition, attempt)
        {
            self.loss_budget -= 1;
            return Some(ChaosEvent::ExecutorLoss);
        }
        if self.draw(
            STREAM_PANIC,
            self.panic_per_mille,
            stage,
            partition,
            attempt,
        ) {
            return Some(ChaosEvent::TaskPanic);
        }
        if self.draw(
            STREAM_FETCH,
            self.fetch_per_mille,
            stage,
            partition,
            attempt,
        ) {
            return Some(ChaosEvent::FetchFailure);
        }
        if self.draw(STREAM_DISK, self.disk_per_mille, stage, partition, attempt) {
            return Some(ChaosEvent::DiskFull);
        }
        if self.draw(
            STREAM_STRAGGLER,
            self.straggler_per_mille,
            stage,
            partition,
            attempt,
        ) {
            return Some(ChaosEvent::Straggler {
                delay_ms: self.straggler_delay_ms,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_stream_is_deterministic() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::new(43);
        assert_ne!(SimRng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn draws_are_order_independent() {
        // The verdict for a coordinate must not depend on query order.
        let mut fwd = ChaosPolicy::seeded(7).with_task_panics(300);
        let mut rev = fwd.clone();
        let coords: Vec<(u64, usize, u64)> = (0..4)
            .flat_map(|s| (0..8).map(move |p| (s, p, 1)))
            .collect();
        let a: Vec<_> = coords
            .iter()
            .map(|&(s, p, t)| fwd.event_for(s, p, t))
            .collect();
        let b: Vec<_> = coords
            .iter()
            .rev()
            .map(|&(s, p, t)| rev.event_for(s, p, t))
            .collect();
        assert_eq!(a, b.into_iter().rev().collect::<Vec<_>>());
    }

    #[test]
    fn probabilities_land_near_their_rate() {
        let mut policy = ChaosPolicy::seeded(99).with_task_panics(250);
        let hits = (0..1000)
            .filter(|&p| policy.event_for(0, p, 1) == Some(ChaosEvent::TaskPanic))
            .count();
        assert!((150..350).contains(&hits), "250‰ drew {hits}/1000");
    }

    #[test]
    fn scripted_events_override_draws() {
        let mut policy = ChaosPolicy::seeded(1).script(2, 3, 1, ChaosEvent::FetchFailure);
        assert_eq!(policy.event_for(2, 3, 1), Some(ChaosEvent::FetchFailure));
        assert_eq!(policy.event_for(2, 3, 2), None, "other attempts untouched");
        assert_eq!(
            policy.event_for(2, 4, 1),
            None,
            "other partitions untouched"
        );
    }

    #[test]
    fn loss_budget_caps_executor_deaths() {
        let mut policy = ChaosPolicy::seeded(5).with_executor_loss(1000, 2);
        let losses = (0..50)
            .filter(|&p| policy.event_for(0, p, 1) == Some(ChaosEvent::ExecutorLoss))
            .count();
        assert_eq!(losses, 2, "budget of 2 must stop the third loss");
    }

    #[test]
    fn different_seeds_give_different_fault_patterns() {
        let pattern = |seed| {
            let mut p = ChaosPolicy::seeded(seed).with_task_panics(200);
            (0..64u64)
                .map(|i| p.event_for(i / 8, (i % 8) as usize, 1).is_some())
                .collect::<Vec<_>>()
        };
        assert_ne!(pattern(1), pattern(2));
    }
}
