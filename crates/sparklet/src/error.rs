//! Job-level errors.

use std::fmt;

/// Why a job (action or checkpoint) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// A task panicked (message captured) and exhausted its retries.
    TaskFailed {
        /// Label of the failing stage.
        stage: String,
        /// Partition whose task failed.
        partition: usize,
        /// Attempts made before giving up.
        attempts: usize,
        /// Panic or error message of the last attempt.
        message: String,
    },
    /// Shuffle staging exceeded the node's local-storage capacity — the
    /// paper's In-Memory failure mode for large inputs/many replicas.
    StagingOverflow {
        /// Node whose staging filled up.
        node: usize,
        /// Bytes staged at failure.
        used: u64,
        /// Configured capacity.
        capacity: u64,
    },
    /// Cached partitions exceeded configured executor memory.
    MemoryOverflow {
        /// Node whose cache filled up.
        node: usize,
        /// Bytes cached at failure.
        used: u64,
        /// Configured capacity.
        capacity: u64,
    },
    /// Spilled/cached blocks exceeded the node's disk-tier capacity.
    DiskOverflow {
        /// Node whose disk tier filled up.
        node: usize,
        /// Bytes on disk at failure.
        used: u64,
        /// Configured capacity.
        capacity: u64,
    },
    /// A reduce task could not fetch a map output (the bucket was lost
    /// with its executor, or chaos failed the fetch). Not retryable at
    /// task level — the lost map outputs must be regenerated, so the
    /// driver resubmits the producing map stage (Spark's
    /// `FetchFailed` → stage-resubmission path).
    FetchFailed {
        /// Shuffle whose map output could not be fetched.
        shuffle: u64,
        /// Reduce partition that was fetching.
        partition: usize,
        /// What went wrong.
        reason: String,
    },
    /// Serialization error.
    Codec(String),
    /// A wire-transport exchange with an executor subprocess failed
    /// (connection lost, refused put, protocol violation). Retryable at
    /// task level: the respawned executor serves the retry.
    Transport(String),
    /// A referenced shuffle/broadcast/cache entry is missing (lineage
    /// was cleared while still referenced, or an engine bug).
    MissingBlock(String),
    /// A cached block exists but holds a different type than the
    /// reader asked for (a caller bug, not a missing block).
    TypeMismatch(String),
    /// A driver-side job thread died without producing a result (e.g.
    /// the closure behind a [`crate::JobHandle`] panicked).
    Driver(String),
    /// The job was cancelled (client disconnect, tenant abort, or an
    /// explicit [`crate::CancelToken`]). Not retryable: the caller gave
    /// up on the result. Cancellation takes effect at stage
    /// boundaries, so latches already claimed by the job still settle
    /// normally and stay usable by other jobs.
    Cancelled(String),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::TaskFailed {
                stage,
                partition,
                attempts,
                message,
            } => write!(
                f,
                "task for partition {partition} of stage '{stage}' failed after {attempts} attempts: {message}"
            ),
            JobError::StagingOverflow { node, used, capacity } => write!(
                f,
                "shuffle staging overflow on node {node}: {used} bytes staged, capacity {capacity}"
            ),
            JobError::MemoryOverflow { node, used, capacity } => write!(
                f,
                "executor memory overflow on node {node}: {used} bytes cached, capacity {capacity}"
            ),
            JobError::DiskOverflow { node, used, capacity } => write!(
                f,
                "disk tier overflow on node {node}: {used} bytes stored, capacity {capacity}"
            ),
            JobError::FetchFailed {
                shuffle,
                partition,
                reason,
            } => write!(
                f,
                "fetch failed for reduce partition {partition} of shuffle #{shuffle}: {reason}"
            ),
            JobError::Codec(msg) => write!(f, "codec error: {msg}"),
            JobError::Transport(msg) => write!(f, "transport error: {msg}"),
            JobError::MissingBlock(what) => write!(f, "missing block: {what}"),
            JobError::TypeMismatch(what) => write!(f, "cached block type mismatch: {what}"),
            JobError::Driver(what) => write!(f, "driver job failed: {what}"),
            JobError::Cancelled(why) => write!(f, "job cancelled: {why}"),
        }
    }
}

impl std::error::Error for JobError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_usefully() {
        let e = JobError::StagingOverflow {
            node: 3,
            used: 100,
            capacity: 64,
        };
        let s = e.to_string();
        assert!(s.contains("node 3") && s.contains("100") && s.contains("64"));
    }
}
