//! The driver-side DAG scheduler.
//!
//! Actions no longer materialize upstream shuffles through a recursive
//! serial walk. Instead the driver runs a *plan pass* that extracts a
//! stage graph from the lineage — narrow chains stay fused into their
//! consuming stage; every shuffle boundary becomes a stage node with
//! explicit parent edges — and an *event loop* that keeps every ready
//! stage in flight simultaneously on the shared executor pools
//! ([`materialize_stage_graph`]). Independent branches of a lineage
//! (and independent concurrently-submitted jobs) therefore overlap,
//! like Spark's `DAGScheduler`.
//!
//! Exactly-once in-flight dedup is latched per shuffle id
//! ([`ShuffleLatch`]): a shuffle referenced by several branches or by
//! several concurrent jobs is materialized once; late arrivals wait on
//! the winner's latch instead of re-running the map stage. A failed
//! materialization is sticky, exactly like the old per-node
//! `ShuffleState::Failed`.
//!
//! Async job submission ([`JobHandle`]) rides on the same machinery:
//! each job runs its own event loop on a driver thread, and the
//! per-context latches keep overlapping jobs consistent.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::context::SparkContext;
use crate::error::JobError;
use crate::scheduler::StageMeta;

// ---------------------------------------------------------------------
// Cooperative job cancellation
// ---------------------------------------------------------------------

/// Cooperative cancellation flag for a driver-side job. Cloning shares
/// the flag. The DAG event loop polls the *installed* token (see
/// [`with_cancel`]) at every stage boundary: once cancelled, no new
/// stage launches and the job drains to [`JobError::Cancelled`].
/// Stages already in flight settle their shuffle latches normally, so
/// a cancelled job never wedges lineage shared with other jobs.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; wakes nothing by itself — the
    /// job observes the flag at its next stage boundary.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// `Err(JobError::Cancelled)` once cancellation was requested.
    pub fn check(&self) -> Result<(), JobError> {
        if self.is_cancelled() {
            Err(JobError::Cancelled("cancel token tripped".into()))
        } else {
            Ok(())
        }
    }
}

thread_local! {
    /// Token installed for the job running on this driver thread.
    static CURRENT_CANCEL: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Run `f` with `token` installed as the current thread's job
/// cancellation token: every engine stage boundary reached under `f`
/// (plan passes, the DAG event loop, action resubmission) polls it.
/// The previous token is restored on exit, so nested jobs compose.
pub fn with_cancel<R>(token: &CancelToken, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<CancelToken>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            CURRENT_CANCEL.with(|c| *c.borrow_mut() = prev);
        }
    }
    // Restore-on-drop so a panicking job never leaves its token
    // installed on a long-lived worker thread.
    let _restore = Restore(CURRENT_CANCEL.with(|c| c.replace(Some(token.clone()))));
    f()
}

/// Poll the installed token; `Err(Cancelled)` stops the current job at
/// this boundary. No token installed means not cancellable.
pub(crate) fn check_cancelled() -> Result<(), JobError> {
    CURRENT_CANCEL.with(|c| match &*c.borrow() {
        Some(token) => token.check(),
        None => Ok(()),
    })
}

/// A shuffle boundary in a lineage: one stage node of the DAG. Wide
/// RDD nodes implement this; narrow nodes forward to their parents.
pub(crate) trait ShuffleDep: Send + Sync {
    /// Unique shuffle id — also the plan-level identity of the map
    /// stage that materializes it.
    fn shuffle_id(&self) -> u64;
    /// Operator name for plan output.
    fn op_name(&self) -> &'static str;
    /// Map-task count (the parent RDD's partition count).
    fn num_maps(&self) -> usize;
    /// Reduce-side partition count.
    fn num_reduces(&self) -> usize;
    /// Direct upstream shuffle dependencies.
    fn parents(&self) -> Vec<Arc<dyn ShuffleDep>>;
    /// Execute the map stage that stages this shuffle's buckets.
    fn run_map_stage(&self, meta: StageMeta) -> Result<(), JobError>;
}

// ---------------------------------------------------------------------
// Per-shuffle dedup latch
// ---------------------------------------------------------------------

enum LatchState {
    Idle,
    Running,
    Done,
    Failed(JobError),
    /// Failed in a *recoverable* way (a fetch failure while reading a
    /// parent shuffle): waiters see the error, but unlike
    /// [`LatchState::Failed`] the latch is claimable again, so a
    /// job-level resubmission can re-run the map stage.
    Aborted(JobError),
}

/// What a stage launch is allowed to do with a shuffle.
pub(crate) enum Claim {
    /// Caller won the claim: run the map stage, then [`ShuffleLatch::finish`].
    Run,
    /// Another job is materializing it: [`ShuffleLatch::wait_done`].
    Wait,
    /// Already staged — nothing to do.
    Done,
    /// A previous materialization failed (sticky).
    Failed(JobError),
}

const STAGE_UNSET: u64 = u64::MAX;

/// Exactly-once in-flight dedup latch for one shuffle id.
pub(crate) struct ShuffleLatch {
    state: Mutex<LatchState>,
    cond: Condvar,
    /// Ordinal of the map stage that materialized the shuffle (for
    /// parent-edge resolution in stage records).
    stage_id: AtomicU64,
}

impl ShuffleLatch {
    fn new() -> Self {
        ShuffleLatch {
            state: Mutex::new(LatchState::Idle),
            cond: Condvar::new(),
            stage_id: AtomicU64::new(STAGE_UNSET),
        }
    }

    /// Claim the right to materialize the shuffle (non-blocking).
    pub(crate) fn try_claim(&self) -> Claim {
        let mut st = self.state.lock();
        match &*st {
            LatchState::Idle => {
                *st = LatchState::Running;
                Claim::Run
            }
            LatchState::Running => Claim::Wait,
            LatchState::Done => Claim::Done,
            LatchState::Failed(e) => Claim::Failed(e.clone()),
            // A fetch-failure abort is claimable again: the resubmitted
            // job re-runs the map stage from lineage.
            LatchState::Aborted(_) => {
                *st = LatchState::Running;
                Claim::Run
            }
        }
    }

    /// Publish the map stage's outcome and wake waiters. A failure is
    /// sticky — every later claim observes the winner's error — except
    /// a [`JobError::FetchFailed`], which marks the latch *aborted* so
    /// a job-level resubmission can re-run the stage after its lost
    /// parent outputs are regenerated.
    pub(crate) fn finish(&self, result: &Result<(), JobError>) {
        let mut st = self.state.lock();
        *st = match result {
            Ok(()) => LatchState::Done,
            Err(e @ JobError::FetchFailed { .. }) => LatchState::Aborted(e.clone()),
            Err(e) => LatchState::Failed(e.clone()),
        };
        self.cond.notify_all();
    }

    /// Block until the in-flight materialization settles.
    pub(crate) fn wait_done(&self) -> Result<(), JobError> {
        let mut st = self.state.lock();
        while matches!(&*st, LatchState::Idle | LatchState::Running) {
            self.cond.wait(&mut st);
        }
        match &*st {
            LatchState::Done => Ok(()),
            LatchState::Failed(e) | LatchState::Aborted(e) => Err(e.clone()),
            _ => unreachable!("latch settled"),
        }
    }

    fn is_done(&self) -> bool {
        matches!(&*self.state.lock(), LatchState::Done)
    }

    /// Reset a settled latch back to `Idle` so the next plan pass
    /// re-runs the map stage. Only `Done`/`Aborted` latches reopen:
    /// an in-flight materialization keeps running and a hard failure
    /// stays sticky.
    fn reopen(&self) {
        let mut st = self.state.lock();
        if matches!(&*st, LatchState::Done | LatchState::Aborted(_)) {
            *st = LatchState::Idle;
            self.stage_id.store(STAGE_UNSET, Ordering::Release);
        }
    }

    fn set_stage(&self, stage: u64) {
        self.stage_id.store(stage, Ordering::Release);
    }

    fn stage(&self) -> Option<u64> {
        match self.stage_id.load(Ordering::Acquire) {
            STAGE_UNSET => None,
            s => Some(s),
        }
    }
}

/// Context-wide table of [`ShuffleLatch`]es, keyed by shuffle id.
/// Entries are created lazily at plan time and removed by the owning
/// wide RDD's `Drop` (alongside shuffle GC).
#[derive(Default)]
pub(crate) struct ShuffleRegistry {
    latches: Mutex<HashMap<u64, Arc<ShuffleLatch>>>,
}

impl ShuffleRegistry {
    pub(crate) fn latch(&self, id: u64) -> Arc<ShuffleLatch> {
        Arc::clone(
            self.latches
                .lock()
                .entry(id)
                .or_insert_with(|| Arc::new(ShuffleLatch::new())),
        )
    }

    pub(crate) fn remove(&self, id: u64) {
        self.latches.lock().remove(&id);
    }

    pub(crate) fn is_done(&self, id: u64) -> bool {
        self.latches.lock().get(&id).is_some_and(|l| l.is_done())
    }

    /// Record which stage ordinal materialized shuffle `id`.
    pub(crate) fn note_stage(&self, id: u64, stage: u64) {
        self.latch(id).set_stage(stage);
    }

    /// Stage ordinal that materialized shuffle `id`, if it ran.
    pub(crate) fn stage_of(&self, id: u64) -> Option<u64> {
        self.latches.lock().get(&id).and_then(|l| l.stage())
    }

    /// Invalidate shuffle `id` after its map outputs were lost (e.g.
    /// with a dead executor): the next plan pass stops pruning it and
    /// re-runs its map stage.
    pub(crate) fn invalidate(&self, id: u64) {
        if let Some(l) = self.latches.lock().get(&id) {
            l.reopen();
        }
    }

    /// Live latch count (latches are dropped with their owning wide
    /// RDD, so this is an observable for lineage leaks: a finished or
    /// cancelled job must leave none of its own behind).
    pub(crate) fn len(&self) -> usize {
        self.latches.lock().len()
    }
}

// ---------------------------------------------------------------------
// Plan pass: lineage -> stage graph
// ---------------------------------------------------------------------

struct StageNode {
    dep: Arc<dyn ShuffleDep>,
    /// Direct parent shuffle ids (including already-staged ones, for
    /// stage-record edges).
    parents: Vec<u64>,
    /// Children among the plan's pending nodes.
    children: Vec<u64>,
}

struct StagePlan {
    nodes: HashMap<u64, StageNode>,
    /// Deterministic postorder (parents before children, roots in
    /// submission order) — the launch order of the event loop.
    order: Vec<u64>,
}

fn visit(ctx: &SparkContext, dep: &Arc<dyn ShuffleDep>, plan: &mut StagePlan) {
    let id = dep.shuffle_id();
    if plan.nodes.contains_key(&id) {
        return;
    }
    // Prune anything already staged: its whole upstream subgraph was
    // materialized when it ran (same cut the old recursive walk made).
    if ctx.inner.registry.is_done(id) {
        return;
    }
    plan.nodes.insert(
        id,
        StageNode {
            dep: Arc::clone(dep),
            parents: Vec::new(),
            children: Vec::new(),
        },
    );
    let parents = dep.parents();
    let mut pids = Vec::new();
    for parent in &parents {
        let pid = parent.shuffle_id();
        if !pids.contains(&pid) {
            pids.push(pid);
        }
        visit(ctx, parent, plan);
    }
    plan.nodes.get_mut(&id).expect("just inserted").parents = pids;
    plan.order.push(id);
}

fn build_plan(ctx: &SparkContext, roots: &[Arc<dyn ShuffleDep>]) -> StagePlan {
    let mut plan = StagePlan {
        nodes: HashMap::new(),
        order: Vec::new(),
    };
    for root in roots {
        visit(ctx, root, &mut plan);
    }
    // Derive child edges from `order`, not from the node map: HashMap
    // iteration order would make each parent's `children` list — and
    // therefore the ready-queue order of the event loop — vary from
    // run to run, which breaks seeded replay.
    let edges: Vec<(u64, u64)> = plan
        .order
        .iter()
        .flat_map(|&id| {
            plan.nodes[&id]
                .parents
                .iter()
                .copied()
                .map(move |p| (p, id))
                .collect::<Vec<_>>()
        })
        .collect();
    for (parent, child) in edges {
        if let Some(p) = plan.nodes.get_mut(&parent) {
            p.children.push(child);
        }
    }
    plan
}

// ---------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------

/// Materialize every pending shuffle the given roots (transitively)
/// depend on, keeping all ready stages in flight simultaneously.
///
/// Each ready stage claims its shuffle latch: the winner runs the map
/// stage on a runner thread; a stage another job is already
/// materializing gets a waiter thread parked on the latch; an
/// already-staged stage completes instantly. Completions promote
/// children whose parents have all settled. The first failure stops
/// new launches, drains what is in flight, and is returned (late
/// stages of a failed job still settle their latches for other jobs).
pub(crate) fn materialize_stage_graph(
    ctx: &SparkContext,
    roots: &[Arc<dyn ShuffleDep>],
) -> Result<(), JobError> {
    let plan = build_plan(ctx, roots);
    if plan.order.is_empty() {
        return Ok(());
    }
    if ctx.is_deterministic() {
        return materialize_sim(ctx, plan);
    }
    let mut pending: HashMap<u64, usize> = plan
        .nodes
        .iter()
        .map(|(&id, node)| {
            let n = node
                .parents
                .iter()
                .filter(|p| plan.nodes.contains_key(p))
                .count();
            (id, n)
        })
        .collect();
    let mut ready: VecDeque<u64> = plan
        .order
        .iter()
        .copied()
        .filter(|id| pending[id] == 0)
        .collect();
    let cap = ctx
        .conf()
        .max_concurrent_stages
        .unwrap_or(usize::MAX)
        .max(1);
    let (tx, rx) = crossbeam::channel::unbounded::<(u64, bool, Result<(), JobError>)>();
    let mut running = 0usize;
    let mut done: VecDeque<u64> = VecDeque::new();
    let mut failure: Option<JobError> = None;
    loop {
        // Stage-boundary cancellation poll: stop launching, drain
        // what's in flight (those latches settle normally).
        if failure.is_none() {
            if let Err(e) = check_cancelled() {
                failure = Some(e);
            }
        }
        // Cascade completions: unblock children, queue newly-ready.
        while let Some(id) = done.pop_front() {
            for child in &plan.nodes[&id].children {
                let slot = pending.get_mut(child).expect("child in plan");
                *slot -= 1;
                if *slot == 0 {
                    ready.push_back(*child);
                }
            }
        }
        // Launch every ready stage (up to the configured cap).
        while failure.is_none() && running < cap && !ready.is_empty() {
            let id = ready.pop_front().expect("nonempty");
            let node = &plan.nodes[&id];
            let latch = ctx.inner.registry.latch(id);
            match latch.try_claim() {
                Claim::Done => done.push_back(id),
                Claim::Failed(e) => failure = Some(e),
                Claim::Run => {
                    // Ordinal and concurrency gauge are taken at launch
                    // time, on the loop thread: launch order (and thus
                    // fault-injection ordinals) stays deterministic
                    // even when completions race.
                    let meta = StageMeta {
                        stage_id: ctx.alloc_stage_ordinal(),
                        parent_shuffles: node.parents.clone(),
                        concurrent: ctx.stage_launched(),
                    };
                    ctx.inner.registry.note_stage(id, meta.stage_id);
                    let dep = Arc::clone(&node.dep);
                    let tx = tx.clone();
                    std::thread::Builder::new()
                        .name(format!("dag-stage-{id}"))
                        .spawn(move || {
                            let res = dep.run_map_stage(meta);
                            latch.finish(&res);
                            // Drop the lineage reference *before*
                            // reporting, so Drop-based shuffle GC is
                            // never kept alive by a runner thread
                            // racing the driver's own drop.
                            drop(dep);
                            let _ = tx.send((id, true, res));
                        })
                        .expect("spawn stage runner");
                    running += 1;
                }
                Claim::Wait => {
                    let tx = tx.clone();
                    std::thread::Builder::new()
                        .name(format!("dag-wait-{id}"))
                        .spawn(move || {
                            let _ = tx.send((id, false, latch.wait_done()));
                        })
                        .expect("spawn stage waiter");
                    running += 1;
                }
            }
        }
        if !done.is_empty() {
            continue;
        }
        if running == 0 {
            break;
        }
        let (id, executed, res) = rx.recv().expect("stage completion channel");
        running -= 1;
        if executed {
            ctx.stage_finished();
        }
        match res {
            Ok(()) => done.push_back(id),
            Err(e) => {
                if failure.is_none() {
                    failure = Some(e);
                }
            }
        }
    }
    match failure {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

/// Deterministic-mode event loop: no runner threads. Stages execute
/// one at a time on the driver thread, and when several stages are
/// ready the *seeded* context RNG picks which runs next — so a single
/// `u64` seed fully determines the stage schedule, while still
/// exercising every interleaving the threaded loop could produce.
fn materialize_sim(ctx: &SparkContext, plan: StagePlan) -> Result<(), JobError> {
    let mut pending: HashMap<u64, usize> = plan
        .nodes
        .iter()
        .map(|(&id, node)| {
            let n = node
                .parents
                .iter()
                .filter(|p| plan.nodes.contains_key(p))
                .count();
            (id, n)
        })
        .collect();
    let mut ready: Vec<u64> = plan
        .order
        .iter()
        .copied()
        .filter(|id| pending[id] == 0)
        .collect();
    let mut done: VecDeque<u64> = VecDeque::new();
    let mut failure: Option<JobError> = None;
    loop {
        if failure.is_none() {
            if let Err(e) = check_cancelled() {
                failure = Some(e);
            }
        }
        while let Some(id) = done.pop_front() {
            for child in &plan.nodes[&id].children {
                let slot = pending.get_mut(child).expect("child in plan");
                *slot -= 1;
                if *slot == 0 {
                    ready.push(*child);
                }
            }
        }
        if failure.is_some() || ready.is_empty() {
            if done.is_empty() {
                break;
            }
            continue;
        }
        let id = ready.swap_remove(ctx.sim_draw(ready.len()));
        let node = &plan.nodes[&id];
        let latch = ctx.inner.registry.latch(id);
        match latch.try_claim() {
            Claim::Done => done.push_back(id),
            Claim::Failed(e) => failure = Some(e),
            Claim::Run => {
                let meta = StageMeta {
                    stage_id: ctx.alloc_stage_ordinal(),
                    parent_shuffles: node.parents.clone(),
                    concurrent: ctx.stage_launched(),
                };
                ctx.inner.registry.note_stage(id, meta.stage_id);
                let res = node.dep.run_map_stage(meta);
                latch.finish(&res);
                ctx.stage_finished();
                match res {
                    Ok(()) => done.push_back(id),
                    Err(e) => failure = Some(e),
                }
            }
            // Jobs are inlined in sim mode, so a Running latch can only
            // belong to another real thread (mixed-mode use); settle it
            // the same way the threaded loop would.
            Claim::Wait => match latch.wait_done() {
                Ok(()) => done.push_back(id),
                Err(e) => failure = Some(e),
            },
        }
    }
    match failure {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

// ---------------------------------------------------------------------
// Plan explain
// ---------------------------------------------------------------------

/// Render parent shuffle ids as `[shuffle#a, shuffle#b]` or `[input]`.
pub(crate) fn fmt_parent_ids(ids: &[u64]) -> String {
    if ids.is_empty() {
        "[input]".to_string()
    } else {
        format!(
            "[{}]",
            ids.iter()
                .map(|i| format!("shuffle#{i}"))
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

/// Append the full (unpruned) stage graph to `out`, one stage per line
/// in postorder — parents always print before children.
pub(crate) fn explain_graph_into(roots: &[Arc<dyn ShuffleDep>], out: &mut String) {
    fn walk(dep: &Arc<dyn ShuffleDep>, seen: &mut Vec<u64>, out: &mut String) {
        let id = dep.shuffle_id();
        if seen.contains(&id) {
            return;
        }
        seen.push(id);
        let parents = dep.parents();
        for parent in &parents {
            walk(parent, seen, out);
        }
        let mut pids: Vec<u64> = Vec::new();
        for parent in &parents {
            let pid = parent.shuffle_id();
            if !pids.contains(&pid) {
                pids.push(pid);
            }
        }
        out.push_str(&format!(
            "stage shuffle#{} {} [{} map tasks -> {} partitions] <- {}\n",
            id,
            dep.op_name(),
            dep.num_maps(),
            dep.num_reduces(),
            fmt_parent_ids(&pids)
        ));
    }
    let mut seen = Vec::new();
    for root in roots {
        walk(root, &mut seen, out);
    }
}

// ---------------------------------------------------------------------
// Async job handles
// ---------------------------------------------------------------------

/// Handle to a job submitted asynchronously ([`crate::Rdd::collect_async`],
/// [`crate::Rdd::count_async`], [`crate::Rdd::persist_async`], or
/// [`JobHandle::spawn`]). Dropping the handle detaches the job: it
/// keeps running to completion in the background.
pub struct JobHandle<T> {
    rx: crossbeam::channel::Receiver<Result<T, JobError>>,
    cancel: CancelToken,
}

impl<T: Send + 'static> JobHandle<T> {
    /// Run `job` on a dedicated driver thread and return a handle to
    /// its result. The closure typically submits engine actions;
    /// per-shuffle latches dedup any lineage shared with other jobs,
    /// so overlapping submissions are safe and never double-stage a
    /// shuffle.
    ///
    /// The job runs under a fresh [`CancelToken`]:
    /// [`JobHandle::cancel`] aborts it at its next stage boundary with
    /// [`JobError::Cancelled`].
    pub fn spawn(job: impl FnOnce() -> Result<T, JobError> + Send + 'static) -> Self {
        let (tx, rx) = crossbeam::channel::bounded(1);
        let cancel = CancelToken::new();
        let token = cancel.clone();
        std::thread::Builder::new()
            .name("sparklet-job".into())
            .spawn(move || {
                let _ = tx.send(with_cancel(&token, job));
            })
            .expect("spawn job thread");
        JobHandle { rx, cancel }
    }

    /// Wrap an already-computed result. Used in deterministic mode,
    /// where "async" submissions run inline on the caller's thread so
    /// the seeded schedule has no hidden thread interleavings.
    pub(crate) fn ready(result: Result<T, JobError>) -> Self {
        let (tx, rx) = crossbeam::channel::bounded(1);
        let _ = tx.send(result);
        JobHandle {
            rx,
            cancel: CancelToken::new(),
        }
    }

    /// Request cancellation (client disconnect, tenant abort). The job
    /// stops at its next stage boundary and [`JobHandle::wait`]
    /// returns [`JobError::Cancelled`]; stages already in flight
    /// settle their latches normally and any shuffle data the job
    /// staged is released with its lineage. A job that completes
    /// before noticing the flag still delivers its result.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// The job's cancellation token (shareable; e.g. handed to a
    /// connection watchdog that cancels on disconnect).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Has the job finished (its result is ready to [`JobHandle::wait`] for)?
    pub fn is_finished(&self) -> bool {
        !self.rx.is_empty()
    }

    /// Block until the job finishes and return its result.
    pub fn wait(self) -> Result<T, JobError> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(JobError::Driver("job thread died without a result".into())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_claims_run_once_and_waiters_see_result() {
        let latch = Arc::new(ShuffleLatch::new());
        assert!(matches!(latch.try_claim(), Claim::Run));
        assert!(matches!(latch.try_claim(), Claim::Wait));
        let waiter = {
            let latch = Arc::clone(&latch);
            std::thread::spawn(move || latch.wait_done())
        };
        latch.finish(&Ok(()));
        assert!(waiter.join().unwrap().is_ok());
        assert!(matches!(latch.try_claim(), Claim::Done));
    }

    #[test]
    fn latch_failure_is_sticky() {
        let latch = ShuffleLatch::new();
        assert!(matches!(latch.try_claim(), Claim::Run));
        latch.finish(&Err(JobError::MissingBlock("x".into())));
        assert!(matches!(latch.try_claim(), Claim::Failed(_)));
        assert!(latch.wait_done().is_err());
    }

    #[test]
    fn fetch_failure_aborts_without_sticking() {
        let latch = ShuffleLatch::new();
        assert!(matches!(latch.try_claim(), Claim::Run));
        latch.finish(&Err(JobError::FetchFailed {
            shuffle: 7,
            partition: 0,
            reason: "map output lost".into(),
        }));
        // Waiters of the aborted run still see the error...
        assert!(latch.wait_done().is_err());
        // ...but a resubmitted job can claim and re-run the stage.
        assert!(matches!(latch.try_claim(), Claim::Run));
        latch.finish(&Ok(()));
        assert!(matches!(latch.try_claim(), Claim::Done));
    }

    #[test]
    fn invalidate_reopens_done_latches_but_keeps_hard_failures_sticky() {
        let reg = ShuffleRegistry::default();
        let latch = reg.latch(1);
        assert!(matches!(latch.try_claim(), Claim::Run));
        latch.finish(&Ok(()));
        assert!(reg.is_done(1));
        reg.invalidate(1);
        assert!(!reg.is_done(1));
        assert!(matches!(latch.try_claim(), Claim::Run));
        latch.finish(&Err(JobError::MissingBlock("x".into())));
        reg.invalidate(1);
        assert!(matches!(latch.try_claim(), Claim::Failed(_)));
    }

    #[test]
    fn job_handle_ready_is_immediately_finished() {
        let h = JobHandle::ready(Ok(7u32));
        assert!(h.is_finished());
        assert_eq!(h.wait().unwrap(), 7);
    }

    #[test]
    fn job_handle_returns_result_and_surfaces_panics() {
        let h = JobHandle::spawn(|| Ok(41 + 1));
        assert_eq!(h.wait().unwrap(), 42);
        let h: JobHandle<u32> = JobHandle::spawn(|| panic!("boom"));
        assert!(matches!(h.wait(), Err(JobError::Driver(_))));
    }
}
