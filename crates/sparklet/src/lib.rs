//! `sparklet` — a Spark-like distributed dataflow engine, built from
//! scratch as the substrate for reproducing *Efficient Execution of
//! Dynamic Programming Algorithms on Apache Spark* (CLUSTER 2020).
//!
//! The engine reproduces the Spark mechanisms the paper's evaluation
//! depends on:
//!
//! * **lazy pair-RDDs with lineage** — transformations
//!   ([`Rdd::map`], [`Rdd::filter`], [`Rdd::flat_map`], [`Rdd::union`],
//!   [`Rdd::map_partitions`]) build a plan; nothing runs until an
//!   action ([`Rdd::collect`], [`Rdd::count`]) or a checkpoint;
//! * **narrow vs wide dependencies** — narrow chains fuse into one pass
//!   per partition inside a task; wide ops ([`Rdd::partition_by`],
//!   [`Rdd::combine_by_key`], [`Rdd::group_by_key`],
//!   [`Rdd::reduce_by_key`]) cut the job into stages and move data
//!   through a shuffle with **real byte-level serialization**;
//! * **executors** — one per simulated cluster node, each with a
//!   worker pool; tasks are placed by preferred location (cached
//!   partitions) or round-robin, and every task's work and traffic is
//!   recorded into an event log the cost model consumes;
//! * **shuffle staging** — map outputs are staged per node and count
//!   against a configurable local-storage capacity; exceeding it fails
//!   the job exactly like the paper's In-Memory drawback #2;
//! * **tiered block storage** — [`Rdd::checkpoint`]/[`Rdd::persist`]
//!   at `MemoryOnly` / `MemoryAndDisk` / `DiskOnly`
//!   ([`StorageLevel`]), with a per-node LRU memory manager that
//!   spills serialized blocks to a disk tier under pressure and falls
//!   back to lineage recomputation when a block is in neither tier;
//! * **driver collect / broadcast** — the Collect-Broadcast pattern's
//!   primitives, with driver traffic recorded;
//! * **lineage-based recovery** — injected task failures are retried
//!   (bounded attempts) by recomputing from lineage, Spark-style;
//! * **driver-side DAG scheduling** — actions extract a stage graph
//!   from lineage and keep every ready stage in flight simultaneously;
//!   a shuffle shared by several branches or concurrent jobs is
//!   materialized exactly once, and [`Rdd::collect_async`] /
//!   [`Rdd::count_async`] submit whole jobs concurrently via
//!   [`JobHandle`]s;
//! * **deterministic simulation** — [`SparkConf::with_sim_seed`]
//!   switches the whole engine onto a virtual clock and a seeded
//!   scheduler, and [`SparkContext::install_chaos`] scripts faults
//!   (panics, stragglers, fetch failures, executor loss, full disks)
//!   so any concurrency bug replays from its `u64` seed.
//!
//! By default the cluster is *simulated within one process*: executors
//! are thread pools, the "network" is the shuffle manager, and the
//! recorded event log is mapped to cluster seconds by the
//! `cluster-model` crate. The dataflow itself — partitioning, stage
//! structure, bytes moved, task placement — is real, which is what the
//! reproduction needs. [`SparkConf::with_tcp_transport`] (or
//! `with_unix_transport`) upgrades the data plane to *real executor
//! subprocesses* behind a length-prefixed wire protocol
//! ([`crate::transport`]): shuffle buckets and broadcasts live in
//! per-node processes, remote fetches are measured socket traffic, and
//! the chaos harness's executor loss becomes a genuine `SIGKILL`.

#![warn(missing_docs)]

pub mod broadcast;
pub mod codec;
pub mod config;
pub mod context;
pub mod dag;
pub mod error;
pub mod ext;
pub mod metrics;
pub mod partitioner;
pub mod payload;
pub mod rdd;
pub mod scheduler;
pub mod service;
pub mod shuffle;
pub mod sim;
pub mod storage;
pub mod transport;

pub use broadcast::Broadcast;
pub use codec::Storable;
pub use config::SparkConf;
pub use context::{Accumulator, ExecutorLoss, SparkContext, StorageTotals, TaskContext};
pub use dag::{with_cancel, CancelToken, JobHandle};
pub use error::JobError;
pub use ext::{Either, RangePartitioner};
pub use metrics::{AdaptiveDecision, EventLog};
pub use partitioner::{GridPartitioner, HashPartitioner, Partitioner, SigLayout};
pub use payload::{Compression, Payload, PayloadBuilder};
pub use rdd::Rdd;
pub use service::{
    Arrival, JobRunner, JobService, JobState, JobStatusView, LineageHasher, Rejection, ServiceAddr,
    ServiceClient, ServiceConfig, ServiceDecision, ServiceStats,
};
pub use sim::{ChaosEvent, ChaosPolicy};
pub use storage::{BlockStore, PutOutcome, StorageLevel};
pub use transport::TransportMode;

/// Bound for anything that flows through an RDD.
pub trait Data: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> Data for T {}
