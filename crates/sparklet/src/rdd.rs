//! Lazy pair-RDDs with lineage.
//!
//! An [`Rdd<K, V>`] is a handle to a plan node implementing the
//! internal `RddOps` trait.
//! Narrow transformations wrap their parent and fuse at compute time
//! (one pass per partition, like Spark pipelining); wide
//! transformations own a shuffle that becomes a stage node of the
//! extracted stage graph. Actions hand their upstream shuffle roots to
//! the driver-side DAG scheduler ([`crate::dag`]), which materializes
//! all ready stages concurrently, then run a result stage.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Buf;

use crate::codec::Storable;
use crate::context::{SparkContext, TaskContext};
use crate::dag::{self, JobHandle, ShuffleDep};
use crate::error::JobError;
use crate::partitioner::{sig_layout, Partitioner, SigLayout};
use crate::payload::PayloadBuilder;
use crate::scheduler::{StageMeta, TaskFn};
use crate::storage::StorageLevel;
use crate::Data;

/// Key bound: hashable, comparable, serializable.
pub trait Key: Data + Eq + std::hash::Hash + Storable {}
impl<T: Data + Eq + std::hash::Hash + Storable> Key for T {}

/// Value bound: serializable payload.
pub trait ShufVal: Data + Storable {}
impl<T: Data + Storable> ShufVal for T {}

/// Partition-identity signature: (partitioner name, parameter,
/// partition count). Equal signatures ⇒ identical key placement.
pub type PartSig = (&'static str, u64, usize);

/// A plan node. Object-safe so lineages can mix key/value types.
pub(crate) trait RddOps<K: Key, V: ShufVal>: Send + Sync {
    fn ctx(&self) -> &SparkContext;
    fn num_partitions(&self) -> usize;
    /// Present when the keys of this RDD are known to be placed by a
    /// specific partitioner (enables shuffle elision).
    fn partitioner_sig(&self) -> Option<PartSig> {
        None
    }
    /// Direct shuffle dependencies feeding this node's compute — the
    /// stage-graph roots the DAG scheduler must materialize before a
    /// stage over this node can run. Narrow nodes forward to their
    /// parents; wide nodes return themselves.
    fn shuffle_deps(self: Arc<Self>) -> Vec<Arc<dyn ShuffleDep>>;
    /// Produce partition `p` (runs inside a task).
    fn compute(&self, p: usize, tc: &TaskContext) -> Result<Vec<(K, V)>, JobError>;
    fn preferred_node(&self, _p: usize) -> Option<usize> {
        None
    }
    /// Append this node (and its lineage) to a plan description, one
    /// line per node, two spaces per depth level.
    fn explain_into(&self, depth: usize, out: &mut String);
}

fn write_plan_line(out: &mut String, depth: usize, line: &str) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(line);
    out.push('\n');
}

fn pairs_bytes<K: Key, V: ShufVal>(items: &[(K, V)]) -> u64 {
    items
        .iter()
        .map(|(k, v)| (k.approx_bytes() + v.approx_bytes()) as u64)
        .sum()
}

// ---------------------------------------------------------------------
// Plan nodes
// ---------------------------------------------------------------------

struct ParallelizeRdd<K, V> {
    ctx: SparkContext,
    parts: Arc<Vec<Vec<(K, V)>>>,
    sig: Option<PartSig>,
}

impl<K: Key, V: ShufVal> RddOps<K, V> for ParallelizeRdd<K, V> {
    fn explain_into(&self, depth: usize, out: &mut String) {
        write_plan_line(
            out,
            depth,
            &format!("Parallelize [{} partitions]", self.parts.len()),
        );
    }
    fn ctx(&self) -> &SparkContext {
        &self.ctx
    }
    fn num_partitions(&self) -> usize {
        self.parts.len()
    }
    fn partitioner_sig(&self) -> Option<PartSig> {
        self.sig
    }
    fn shuffle_deps(self: Arc<Self>) -> Vec<Arc<dyn ShuffleDep>> {
        Vec::new()
    }
    fn compute(&self, p: usize, _tc: &TaskContext) -> Result<Vec<(K, V)>, JobError> {
        // Driver-source fan-out, not the data plane: compute hands an
        // owned Vec to the fused narrow chain above it, so the source
        // partition is cloned per task. Serialized movement (shuffle,
        // spill, broadcast) shares Payload frames by refcount instead.
        Ok(self.parts[p].clone())
    }
}

struct MapRdd<K1: Key, V1: ShufVal, K2, V2> {
    parent: Arc<dyn RddOps<K1, V1>>,
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn((K1, V1)) -> (K2, V2) + Send + Sync>,
}

impl<K1: Key, V1: ShufVal, K2: Key, V2: ShufVal> RddOps<K2, V2> for MapRdd<K1, V1, K2, V2> {
    fn explain_into(&self, depth: usize, out: &mut String) {
        write_plan_line(out, depth, "Map [narrow]");
        self.parent.explain_into(depth + 1, out);
    }
    fn ctx(&self) -> &SparkContext {
        self.parent.ctx()
    }
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn shuffle_deps(self: Arc<Self>) -> Vec<Arc<dyn ShuffleDep>> {
        Arc::clone(&self.parent).shuffle_deps()
    }
    fn compute(&self, p: usize, tc: &TaskContext) -> Result<Vec<(K2, V2)>, JobError> {
        Ok(self
            .parent
            .compute(p, tc)?
            .into_iter()
            .map(|kv| (self.f)(kv))
            .collect())
    }
    fn preferred_node(&self, p: usize) -> Option<usize> {
        self.parent.preferred_node(p)
    }
}

struct FlatMapRdd<K1: Key, V1: ShufVal, K2, V2> {
    parent: Arc<dyn RddOps<K1, V1>>,
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn((K1, V1)) -> Vec<(K2, V2)> + Send + Sync>,
}

impl<K1: Key, V1: ShufVal, K2: Key, V2: ShufVal> RddOps<K2, V2> for FlatMapRdd<K1, V1, K2, V2> {
    fn explain_into(&self, depth: usize, out: &mut String) {
        write_plan_line(out, depth, "FlatMap [narrow]");
        self.parent.explain_into(depth + 1, out);
    }
    fn ctx(&self) -> &SparkContext {
        self.parent.ctx()
    }
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn shuffle_deps(self: Arc<Self>) -> Vec<Arc<dyn ShuffleDep>> {
        Arc::clone(&self.parent).shuffle_deps()
    }
    fn compute(&self, p: usize, tc: &TaskContext) -> Result<Vec<(K2, V2)>, JobError> {
        Ok(self
            .parent
            .compute(p, tc)?
            .into_iter()
            .flat_map(|kv| (self.f)(kv))
            .collect())
    }
    fn preferred_node(&self, p: usize) -> Option<usize> {
        self.parent.preferred_node(p)
    }
}

struct MapValuesRdd<K: Key, V1: ShufVal, V2> {
    parent: Arc<dyn RddOps<K, V1>>,
    f: Arc<dyn Fn(V1) -> V2 + Send + Sync>,
}

impl<K: Key, V1: ShufVal, V2: ShufVal> RddOps<K, V2> for MapValuesRdd<K, V1, V2> {
    fn explain_into(&self, depth: usize, out: &mut String) {
        write_plan_line(out, depth, "MapValues [narrow, preserves partitioning]");
        self.parent.explain_into(depth + 1, out);
    }
    fn ctx(&self) -> &SparkContext {
        self.parent.ctx()
    }
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn partitioner_sig(&self) -> Option<PartSig> {
        // Keys unchanged ⇒ placement preserved.
        self.parent.partitioner_sig()
    }
    fn shuffle_deps(self: Arc<Self>) -> Vec<Arc<dyn ShuffleDep>> {
        Arc::clone(&self.parent).shuffle_deps()
    }
    fn compute(&self, p: usize, tc: &TaskContext) -> Result<Vec<(K, V2)>, JobError> {
        Ok(self
            .parent
            .compute(p, tc)?
            .into_iter()
            .map(|(k, v)| (k, (self.f)(v)))
            .collect())
    }
    fn preferred_node(&self, p: usize) -> Option<usize> {
        self.parent.preferred_node(p)
    }
}

/// Shared predicate over key-value pairs.
type PredFn<K, V> = Arc<dyn Fn(&K, &V) -> bool + Send + Sync>;

struct FilterRdd<K: Key, V: ShufVal> {
    parent: Arc<dyn RddOps<K, V>>,
    pred: PredFn<K, V>,
}

impl<K: Key, V: ShufVal> RddOps<K, V> for FilterRdd<K, V> {
    fn explain_into(&self, depth: usize, out: &mut String) {
        write_plan_line(out, depth, "Filter [narrow, preserves partitioning]");
        self.parent.explain_into(depth + 1, out);
    }
    fn ctx(&self) -> &SparkContext {
        self.parent.ctx()
    }
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn partitioner_sig(&self) -> Option<PartSig> {
        self.parent.partitioner_sig()
    }
    fn shuffle_deps(self: Arc<Self>) -> Vec<Arc<dyn ShuffleDep>> {
        Arc::clone(&self.parent).shuffle_deps()
    }
    fn compute(&self, p: usize, tc: &TaskContext) -> Result<Vec<(K, V)>, JobError> {
        Ok(self
            .parent
            .compute(p, tc)?
            .into_iter()
            .filter(|(k, v)| (self.pred)(k, v))
            .collect())
    }
    fn preferred_node(&self, p: usize) -> Option<usize> {
        self.parent.preferred_node(p)
    }
}

struct UnionRdd<K: Key, V: ShufVal> {
    parents: Vec<Arc<dyn RddOps<K, V>>>,
}

impl<K: Key, V: ShufVal> UnionRdd<K, V> {
    fn locate(&self, p: usize) -> (usize, usize) {
        let mut off = 0;
        for (i, parent) in self.parents.iter().enumerate() {
            let n = parent.num_partitions();
            if p < off + n {
                return (i, p - off);
            }
            off += n;
        }
        panic!("partition {p} out of range");
    }
}

impl<K: Key, V: ShufVal> RddOps<K, V> for UnionRdd<K, V> {
    fn explain_into(&self, depth: usize, out: &mut String) {
        write_plan_line(
            out,
            depth,
            &format!("Union [{} parents, narrow]", self.parents.len()),
        );
        for parent in &self.parents {
            parent.explain_into(depth + 1, out);
        }
    }
    fn ctx(&self) -> &SparkContext {
        self.parents[0].ctx()
    }
    fn num_partitions(&self) -> usize {
        self.parents.iter().map(|p| p.num_partitions()).sum()
    }
    fn shuffle_deps(self: Arc<Self>) -> Vec<Arc<dyn ShuffleDep>> {
        self.parents
            .iter()
            .flat_map(|parent| Arc::clone(parent).shuffle_deps())
            .collect()
    }
    fn compute(&self, p: usize, tc: &TaskContext) -> Result<Vec<(K, V)>, JobError> {
        let (i, local) = self.locate(p);
        self.parents[i].compute(local, tc)
    }
    fn preferred_node(&self, p: usize) -> Option<usize> {
        let (i, local) = self.locate(p);
        self.parents[i].preferred_node(local)
    }
}

#[allow(clippy::type_complexity)]
struct MapPartitionsRdd<K: Key, V: ShufVal> {
    parent: Arc<dyn RddOps<K, V>>,
    f: Arc<dyn Fn(usize, Vec<(K, V)>, &TaskContext) -> Vec<(K, V)> + Send + Sync>,
    preserves_partitioning: bool,
}

impl<K: Key, V: ShufVal> RddOps<K, V> for MapPartitionsRdd<K, V> {
    fn explain_into(&self, depth: usize, out: &mut String) {
        write_plan_line(out, depth, "MapPartitions [narrow]");
        self.parent.explain_into(depth + 1, out);
    }
    fn ctx(&self) -> &SparkContext {
        self.parent.ctx()
    }
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn partitioner_sig(&self) -> Option<PartSig> {
        if self.preserves_partitioning {
            self.parent.partitioner_sig()
        } else {
            None
        }
    }
    fn shuffle_deps(self: Arc<Self>) -> Vec<Arc<dyn ShuffleDep>> {
        Arc::clone(&self.parent).shuffle_deps()
    }
    fn compute(&self, p: usize, tc: &TaskContext) -> Result<Vec<(K, V)>, JobError> {
        Ok((self.f)(p, self.parent.compute(p, tc)?, tc))
    }
    fn preferred_node(&self, p: usize) -> Option<usize> {
        self.parent.preferred_node(p)
    }
}

/// Type-changing whole-partition transform (no partitioning preserved).
#[allow(clippy::type_complexity)]
struct MapPartitionsToRdd<K1: Key, V1: ShufVal, K2, V2> {
    parent: Arc<dyn RddOps<K1, V1>>,
    f: Arc<dyn Fn(usize, Vec<(K1, V1)>, &TaskContext) -> Vec<(K2, V2)> + Send + Sync>,
}

impl<K1: Key, V1: ShufVal, K2: Key, V2: ShufVal> RddOps<K2, V2>
    for MapPartitionsToRdd<K1, V1, K2, V2>
{
    fn explain_into(&self, depth: usize, out: &mut String) {
        write_plan_line(out, depth, "MapPartitionsTo [narrow]");
        self.parent.explain_into(depth + 1, out);
    }
    fn ctx(&self) -> &SparkContext {
        self.parent.ctx()
    }
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn shuffle_deps(self: Arc<Self>) -> Vec<Arc<dyn ShuffleDep>> {
        Arc::clone(&self.parent).shuffle_deps()
    }
    fn compute(&self, p: usize, tc: &TaskContext) -> Result<Vec<(K2, V2)>, JobError> {
        Ok((self.f)(p, self.parent.compute(p, tc)?, tc))
    }
    fn preferred_node(&self, p: usize) -> Option<usize> {
        self.parent.preferred_node(p)
    }
}

/// Shuffle-free partition-count reduction: output partition `g`
/// concatenates a fixed group of parent partitions (Spark's
/// `CoalescedRDD` without locality preferences).
struct CoalescedRdd<K: Key, V: ShufVal> {
    parent: Arc<dyn RddOps<K, V>>,
    groups: Vec<Vec<usize>>,
    /// Partitioner signature the grouping provably preserves (the
    /// parent's signature at the reduced count), or `None` when keys
    /// from different buckets now co-reside.
    sig: Option<PartSig>,
}

impl<K: Key, V: ShufVal> RddOps<K, V> for CoalescedRdd<K, V> {
    fn ctx(&self) -> &SparkContext {
        self.parent.ctx()
    }
    fn num_partitions(&self) -> usize {
        self.groups.len()
    }
    fn partitioner_sig(&self) -> Option<PartSig> {
        self.sig
    }
    fn shuffle_deps(self: Arc<Self>) -> Vec<Arc<dyn ShuffleDep>> {
        Arc::clone(&self.parent).shuffle_deps()
    }
    fn compute(&self, p: usize, tc: &TaskContext) -> Result<Vec<(K, V)>, JobError> {
        let mut out = Vec::new();
        for &pp in &self.groups[p] {
            out.extend(self.parent.compute(pp, tc)?);
        }
        Ok(out)
    }
    fn preferred_node(&self, p: usize) -> Option<usize> {
        self.groups[p]
            .first()
            .and_then(|&pp| self.parent.preferred_node(pp))
    }
    fn explain_into(&self, depth: usize, out: &mut String) {
        let kept = match self.sig {
            Some((name, _, _)) => format!(", keeps {name} partitioning"),
            None => String::new(),
        };
        write_plan_line(
            out,
            depth,
            &format!("Coalesce [{} partitions, narrow{kept}]", self.groups.len()),
        );
        self.parent.explain_into(depth + 1, out);
    }
}

/// Pass-through marker for an elided `partition_by`: the RDD was
/// already partitioned identically, so no shuffle node enters the
/// stage graph — but the elision stays visible in `explain()`.
struct ElidedRdd<K: Key, V: ShufVal> {
    parent: Arc<dyn RddOps<K, V>>,
    partitions: usize,
    part_name: &'static str,
}

impl<K: Key, V: ShufVal> RddOps<K, V> for ElidedRdd<K, V> {
    fn explain_into(&self, depth: usize, out: &mut String) {
        write_plan_line(
            out,
            depth,
            &format!(
                "PartitionBy [elided: already partitioned by {} into {}]",
                self.part_name, self.partitions
            ),
        );
        self.parent.explain_into(depth + 1, out);
    }
    fn ctx(&self) -> &SparkContext {
        self.parent.ctx()
    }
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn partitioner_sig(&self) -> Option<PartSig> {
        self.parent.partitioner_sig()
    }
    fn shuffle_deps(self: Arc<Self>) -> Vec<Arc<dyn ShuffleDep>> {
        Arc::clone(&self.parent).shuffle_deps()
    }
    fn compute(&self, p: usize, tc: &TaskContext) -> Result<Vec<(K, V)>, JobError> {
        self.parent.compute(p, tc)
    }
    fn preferred_node(&self, p: usize) -> Option<usize> {
        self.parent.preferred_node(p)
    }
}

/// Wide node: re-partition by a partitioner (`partitionBy`).
struct ShuffledRdd<K: Key, V: ShufVal> {
    parent: Arc<dyn RddOps<K, V>>,
    partitioner: Arc<dyn Partitioner<K>>,
    partitions: usize,
    shuffle_id: u64,
}

impl<K: Key, V: ShufVal> ShuffleDep for ShuffledRdd<K, V> {
    fn shuffle_id(&self) -> u64 {
        self.shuffle_id
    }
    fn op_name(&self) -> &'static str {
        "partition_by"
    }
    fn num_maps(&self) -> usize {
        self.parent.num_partitions()
    }
    fn num_reduces(&self) -> usize {
        self.partitions
    }
    fn parents(&self) -> Vec<Arc<dyn ShuffleDep>> {
        Arc::clone(&self.parent).shuffle_deps()
    }
    fn run_map_stage(&self, meta: StageMeta) -> Result<(), JobError> {
        let ctx = self.parent.ctx().clone();
        let maps = self.parent.num_partitions();
        ctx.inner
            .shuffle
            .register(self.shuffle_id, maps, self.partitions);
        let parent = Arc::clone(&self.parent);
        let partitioner = Arc::clone(&self.partitioner);
        let partitions = self.partitions;
        let shuffle_id = self.shuffle_id;
        let inner_ctx = ctx.clone();
        let pref = {
            let parent = Arc::clone(&self.parent);
            move |p: usize| parent.preferred_node(p)
        };
        ctx.run_stage(
            &format!("shuffle#{shuffle_id}.map"),
            meta,
            maps,
            pref,
            Arc::new(move |p, tc: &TaskContext| {
                let items = parent.compute(p, tc)?;
                // Sparse bucket map: most of the (often ~1000) reduce
                // partitions receive nothing from a given map task.
                // Pairs are serialized exactly once, straight into each
                // bucket's frame-in-progress.
                let mut bufs: HashMap<usize, (PayloadBuilder, u64)> = HashMap::new();
                for (k, v) in items {
                    let b = partitioner.partition(&k, partitions);
                    let slot = bufs.entry(b).or_default();
                    // Declared (logical) bytes: exact encoded size for
                    // dense types, deliberately larger for virtual
                    // blocks (their accounting weight is the point).
                    slot.1 += (k.approx_bytes() + v.approx_bytes()) as u64;
                    k.encode(slot.0.buf());
                    v.encode(slot.0.buf());
                }
                // Flush in bucket order: HashMap iteration order would
                // vary the shuffle-write sequence (and thus staging
                // overflow points) between runs, breaking seeded replay.
                let mut bufs: Vec<(usize, (PayloadBuilder, u64))> = bufs.into_iter().collect();
                bufs.sort_unstable_by_key(|&(bucket, _)| bucket);
                let compression = inner_ctx.inner.conf.compression;
                for (bucket, (builder, declared)) in bufs {
                    inner_ctx.inner.shuffle.write(
                        shuffle_id,
                        p,
                        bucket,
                        tc.node(),
                        builder.seal(compression),
                        declared,
                        tc,
                    )?;
                }
                Ok(())
            }),
        )?;
        Ok(())
    }
}

impl<K: Key, V: ShufVal> Drop for ShuffledRdd<K, V> {
    fn drop(&mut self) {
        // Last lineage reference gone ⇒ nothing can fetch this shuffle
        // again: release its staged bytes (Spark's ContextCleaner
        // removing a shuffle, but per-shuffle instead of global) and
        // retire its materialization latch.
        let ctx = self.parent.ctx();
        ctx.inner.shuffle.release(self.shuffle_id);
        ctx.inner.registry.remove(self.shuffle_id);
    }
}

impl<K: Key, V: ShufVal> RddOps<K, V> for ShuffledRdd<K, V> {
    fn explain_into(&self, depth: usize, out: &mut String) {
        write_plan_line(
            out,
            depth,
            &format!(
                "PartitionBy [WIDE shuffle #{}, {} partitions, {}]",
                self.shuffle_id,
                self.partitions,
                self.partitioner.signature().0
            ),
        );
        self.parent.explain_into(depth + 1, out);
    }
    fn ctx(&self) -> &SparkContext {
        self.parent.ctx()
    }
    fn num_partitions(&self) -> usize {
        self.partitions
    }
    fn partitioner_sig(&self) -> Option<PartSig> {
        let (name, param) = self.partitioner.signature();
        Some((name, param, self.partitions))
    }
    fn shuffle_deps(self: Arc<Self>) -> Vec<Arc<dyn ShuffleDep>> {
        vec![self]
    }
    fn compute(&self, p: usize, tc: &TaskContext) -> Result<Vec<(K, V)>, JobError> {
        let ctx = self.parent.ctx();
        let payloads = ctx.inner.shuffle.fetch(self.shuffle_id, p, tc)?;
        let mut out = Vec::new();
        for payload in payloads {
            // Uncompressed frames open as a zero-copy view of the
            // staged allocation; decode consumes the view in place.
            let mut buf = payload.open()?;
            while buf.has_remaining() {
                let k = K::decode(&mut buf)?;
                let v = V::decode(&mut buf)?;
                out.push((k, v));
            }
        }
        Ok(out)
    }
}

/// Order-preserving group/merge used by map- and reduce-side combining:
/// deterministic output order (first-seen key order) independent of
/// hash iteration order.
fn combine_ordered<K: Key, C>(
    items: impl IntoIterator<Item = (K, C)>,
    merge: impl Fn(C, C) -> C,
) -> Vec<(K, C)> {
    let mut index: HashMap<K, usize> = HashMap::new();
    let mut out: Vec<(K, Option<C>)> = Vec::new();
    for (k, c) in items {
        match index.get(&k) {
            Some(&i) => {
                let prev = out[i].1.take().expect("slot full");
                out[i].1 = Some(merge(prev, c));
            }
            None => {
                index.insert(k.clone(), out.len());
                out.push((k, Some(c)));
            }
        }
    }
    out.into_iter()
        .map(|(k, c)| (k, c.expect("slot full")))
        .collect()
}

/// Wide node: `combineByKey` with map-side combining.
#[allow(clippy::type_complexity)]
struct CombinedRdd<K: Key, V: ShufVal, C: ShufVal> {
    parent: Arc<dyn RddOps<K, V>>,
    create: Arc<dyn Fn(V) -> C + Send + Sync>,
    merge_value: Arc<dyn Fn(C, V) -> C + Send + Sync>,
    merge_combiners: Arc<dyn Fn(C, C) -> C + Send + Sync>,
    partitioner: Arc<dyn Partitioner<K>>,
    partitions: usize,
    shuffle_id: u64,
}

impl<K: Key, V: ShufVal, C: ShufVal> ShuffleDep for CombinedRdd<K, V, C> {
    fn shuffle_id(&self) -> u64 {
        self.shuffle_id
    }
    fn op_name(&self) -> &'static str {
        "combine_by_key"
    }
    fn num_maps(&self) -> usize {
        self.parent.num_partitions()
    }
    fn num_reduces(&self) -> usize {
        self.partitions
    }
    fn parents(&self) -> Vec<Arc<dyn ShuffleDep>> {
        Arc::clone(&self.parent).shuffle_deps()
    }
    fn run_map_stage(&self, meta: StageMeta) -> Result<(), JobError> {
        let ctx = self.parent.ctx().clone();
        let maps = self.parent.num_partitions();
        ctx.inner
            .shuffle
            .register(self.shuffle_id, maps, self.partitions);
        let parent = Arc::clone(&self.parent);
        let create = Arc::clone(&self.create);
        let merge_value = Arc::clone(&self.merge_value);
        let merge_combiners = Arc::clone(&self.merge_combiners);
        let partitioner = Arc::clone(&self.partitioner);
        let partitions = self.partitions;
        let shuffle_id = self.shuffle_id;
        let inner_ctx = ctx.clone();
        let pref = {
            let parent = Arc::clone(&self.parent);
            move |p: usize| parent.preferred_node(p)
        };
        ctx.run_stage(
            &format!("shuffle#{shuffle_id}.combine-map"),
            meta,
            maps,
            pref,
            Arc::new(move |p, tc: &TaskContext| {
                let items = parent.compute(p, tc)?;
                // Map-side combine (order-preserving, deterministic).
                let combined =
                    combine_ordered(items.into_iter().map(|(k, v)| (k, (create)(v))), |a, b| {
                        (merge_combiners)(a, b)
                    });
                let _ = &merge_value; // map-side path creates then merges combiners
                let mut bufs: HashMap<usize, (PayloadBuilder, u64)> = HashMap::new();
                for (k, c) in combined {
                    let b = partitioner.partition(&k, partitions);
                    let slot = bufs.entry(b).or_default();
                    // Declared bytes follow approx_bytes (see the
                    // ShuffledRdd map path: virtual blocks stay heavy).
                    slot.1 += (k.approx_bytes() + c.approx_bytes()) as u64;
                    k.encode(slot.0.buf());
                    c.encode(slot.0.buf());
                }
                // Flush in bucket order (see ShuffledRdd: deterministic
                // write sequence for seeded replay).
                let mut bufs: Vec<(usize, (PayloadBuilder, u64))> = bufs.into_iter().collect();
                bufs.sort_unstable_by_key(|&(bucket, _)| bucket);
                let compression = inner_ctx.inner.conf.compression;
                for (bucket, (builder, declared)) in bufs {
                    inner_ctx.inner.shuffle.write(
                        shuffle_id,
                        p,
                        bucket,
                        tc.node(),
                        builder.seal(compression),
                        declared,
                        tc,
                    )?;
                }
                Ok(())
            }),
        )?;
        Ok(())
    }
}

impl<K: Key, V: ShufVal, C: ShufVal> Drop for CombinedRdd<K, V, C> {
    fn drop(&mut self) {
        let ctx = self.parent.ctx();
        ctx.inner.shuffle.release(self.shuffle_id);
        ctx.inner.registry.remove(self.shuffle_id);
    }
}

impl<K: Key, V: ShufVal, C: ShufVal> RddOps<K, C> for CombinedRdd<K, V, C> {
    fn explain_into(&self, depth: usize, out: &mut String) {
        write_plan_line(
            out,
            depth,
            &format!(
                "CombineByKey [WIDE shuffle #{}, {} partitions, map-side combine]",
                self.shuffle_id, self.partitions
            ),
        );
        self.parent.explain_into(depth + 1, out);
    }
    fn ctx(&self) -> &SparkContext {
        self.parent.ctx()
    }
    fn num_partitions(&self) -> usize {
        self.partitions
    }
    fn partitioner_sig(&self) -> Option<PartSig> {
        let (name, param) = self.partitioner.signature();
        Some((name, param, self.partitions))
    }
    fn shuffle_deps(self: Arc<Self>) -> Vec<Arc<dyn ShuffleDep>> {
        vec![self]
    }
    fn compute(&self, p: usize, tc: &TaskContext) -> Result<Vec<(K, C)>, JobError> {
        let ctx = self.parent.ctx();
        let payloads = ctx.inner.shuffle.fetch(self.shuffle_id, p, tc)?;
        let mut pairs = Vec::new();
        for payload in payloads {
            let mut buf = payload.open()?;
            while buf.has_remaining() {
                let k = K::decode(&mut buf)?;
                let c = C::decode(&mut buf)?;
                pairs.push((k, c));
            }
        }
        Ok(combine_ordered(pairs, |a, b| (self.merge_combiners)(a, b)))
    }
}

/// Materialized dataset: partitions live in executor block stores at
/// a chosen [`StorageLevel`]. A `checkpoint` cuts the lineage
/// (`parent: None`); a `persist` retains it so dropped blocks can be
/// recomputed on read.
struct MaterializedRdd<K: Key, V: ShufVal> {
    ctx: SparkContext,
    cache_id: u64,
    locations: Vec<usize>,
    sig: Option<PartSig>,
    level: StorageLevel,
    /// Retained lineage (persist). Keeping the parent ops alive also
    /// keeps its upstream shuffles staged — the real cost of
    /// recompute-on-evict.
    parent: Option<Arc<dyn RddOps<K, V>>>,
}

impl<K: Key, V: ShufVal> Drop for MaterializedRdd<K, V> {
    fn drop(&mut self) {
        // Last handle gone ⇒ reclaim executor memory and disk
        // (Spark's ContextCleaner unpersisting a dropped RDD).
        for executor in &self.ctx.inner.executors {
            executor.store.evict(self.cache_id);
        }
    }
}

impl<K: Key, V: ShufVal> RddOps<K, V> for MaterializedRdd<K, V> {
    fn explain_into(&self, depth: usize, out: &mut String) {
        write_plan_line(
            out,
            depth,
            &format!(
                "Materialized [{} #{}, {:?}, {} partitions pinned to executors]",
                if self.parent.is_some() {
                    "persist"
                } else {
                    "checkpoint"
                },
                self.cache_id,
                self.level,
                self.locations.len()
            ),
        );
        if let Some(parent) = &self.parent {
            parent.explain_into(depth + 1, out);
        }
    }
    fn ctx(&self) -> &SparkContext {
        &self.ctx
    }
    fn num_partitions(&self) -> usize {
        self.locations.len()
    }
    fn partitioner_sig(&self) -> Option<PartSig> {
        self.sig
    }
    fn shuffle_deps(self: Arc<Self>) -> Vec<Arc<dyn ShuffleDep>> {
        // Reads serve from the block stores; lineage recomputation of a
        // dropped block (persist) fetches upstream shuffles directly
        // inside the task — they stay staged because the retained
        // parent ops keep them alive, not because the DAG re-plans.
        Vec::new()
    }
    fn compute(&self, p: usize, tc: &TaskContext) -> Result<Vec<(K, V)>, JobError> {
        let owner = self.locations[p];
        let store = &self.ctx.inner.executors[owner].store;
        if let Some((data, bytes)) = store.get::<Vec<(K, V)>>(self.cache_id, p, Some(tc))? {
            if owner != tc.node() {
                // Reading a cached partition from another node crosses
                // the network (in-memory object, no measured wire form).
                tc.add_remote_read(bytes, 0);
            }
            return Ok((*data).clone());
        }
        let Some(parent) = &self.parent else {
            return Err(JobError::MissingBlock(format!(
                "cache {} partition {p} on node {owner} (lineage was cut)",
                self.cache_id
            )));
        };
        // Lineage recomputation, exactly once per dropped block: the
        // per-partition latch serializes concurrent readers; whoever
        // enters first re-checks the store, recomputes on a confirmed
        // miss, and re-caches for the others.
        let latch = store.recompute_latch(self.cache_id, p);
        let _guard = latch.lock();
        if let Some((data, bytes)) = store.get::<Vec<(K, V)>>(self.cache_id, p, Some(tc))? {
            if owner != tc.node() {
                tc.add_remote_read(bytes, 0);
            }
            return Ok((*data).clone());
        }
        let items = parent.compute(p, tc)?;
        store.note_recompute();
        let bytes = pairs_bytes(&items);
        // Re-cache on the owner (keeps `locations` authoritative);
        // best-effort — under unrelenting pressure readers keep
        // recomputing from lineage.
        let _ = store.put(
            self.cache_id,
            p,
            Arc::new(items.clone()),
            bytes,
            self.level,
            true,
            Some(tc),
        );
        Ok(items)
    }
    fn preferred_node(&self, p: usize) -> Option<usize> {
        Some(self.locations[p])
    }
}

// ---------------------------------------------------------------------
// Public handle
// ---------------------------------------------------------------------

/// A distributed collection of key-value pairs (lazily evaluated).
pub struct Rdd<K: Key, V: ShufVal> {
    pub(crate) ctx: SparkContext,
    pub(crate) ops: Arc<dyn RddOps<K, V>>,
}

impl<K: Key, V: ShufVal> Clone for Rdd<K, V> {
    fn clone(&self) -> Self {
        Rdd {
            ctx: self.ctx.clone(),
            ops: Arc::clone(&self.ops),
        }
    }
}

impl<K: Key, V: ShufVal> Rdd<K, V> {
    pub(crate) fn parallelize(
        ctx: SparkContext,
        data: Vec<(K, V)>,
        partitions: usize,
        partitioner: Arc<dyn Partitioner<K>>,
    ) -> Self {
        assert!(partitions >= 1);
        let mut parts: Vec<Vec<(K, V)>> = (0..partitions).map(|_| Vec::new()).collect();
        for (k, v) in data {
            let b = partitioner.partition(&k, partitions);
            parts[b].push((k, v));
        }
        let (name, param) = partitioner.signature();
        let ops = Arc::new(ParallelizeRdd {
            ctx: ctx.clone(),
            parts: Arc::new(parts),
            sig: Some((name, param, partitions)),
        });
        Rdd { ctx, ops }
    }

    /// The owning context.
    pub fn context(&self) -> &SparkContext {
        &self.ctx
    }

    /// Partition count of this RDD.
    pub fn num_partitions(&self) -> usize {
        self.ops.num_partitions()
    }

    /// Known key-placement signature, if any.
    pub fn partitioner_sig(&self) -> Option<PartSig> {
        self.ops.partitioner_sig()
    }

    /// Human-readable plan: the lineage tree (one node per line,
    /// children indented — Spark's `toDebugString`) followed by the
    /// stage graph the DAG scheduler extracts from it (one stage per
    /// shuffle, parents before children, plus the result stage) and a
    /// note counting elided shuffles. RDDs with no upstream shuffles
    /// print the lineage tree alone.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.ops.explain_into(0, &mut out);
        let elided = out.matches("[elided").count();
        let roots = Arc::clone(&self.ops).shuffle_deps();
        if !roots.is_empty() {
            let mut ids: Vec<u64> = Vec::new();
            for root in &roots {
                let id = root.shuffle_id();
                if !ids.contains(&id) {
                    ids.push(id);
                }
            }
            out.push_str("== stage graph ==\n");
            dag::explain_graph_into(&roots, &mut out);
            out.push_str(&format!("stage result <- {}\n", dag::fmt_parent_ids(&ids)));
        }
        if elided > 0 {
            out.push_str(&format!(
                "note: {elided} shuffle(s) elided (already co-partitioned)\n"
            ));
        }
        out
    }

    /// Narrow: transform each pair (may change key and value types).
    pub fn map<K2: Key, V2: ShufVal>(
        &self,
        f: impl Fn((K, V)) -> (K2, V2) + Send + Sync + 'static,
    ) -> Rdd<K2, V2> {
        Rdd {
            ctx: self.ctx.clone(),
            ops: Arc::new(MapRdd {
                parent: Arc::clone(&self.ops),
                f: Arc::new(f),
            }),
        }
    }

    /// Narrow: transform values, keeping keys (and partitioning).
    pub fn map_values<V2: ShufVal>(
        &self,
        f: impl Fn(V) -> V2 + Send + Sync + 'static,
    ) -> Rdd<K, V2> {
        Rdd {
            ctx: self.ctx.clone(),
            ops: Arc::new(MapValuesRdd {
                parent: Arc::clone(&self.ops),
                f: Arc::new(f),
            }),
        }
    }

    /// Narrow: transform each pair into zero or more pairs.
    pub fn flat_map<K2: Key, V2: ShufVal>(
        &self,
        f: impl Fn((K, V)) -> Vec<(K2, V2)> + Send + Sync + 'static,
    ) -> Rdd<K2, V2> {
        Rdd {
            ctx: self.ctx.clone(),
            ops: Arc::new(FlatMapRdd {
                parent: Arc::clone(&self.ops),
                f: Arc::new(f),
            }),
        }
    }

    /// Narrow: keep pairs matching the predicate.
    pub fn filter(&self, pred: impl Fn(&K, &V) -> bool + Send + Sync + 'static) -> Rdd<K, V> {
        Rdd {
            ctx: self.ctx.clone(),
            ops: Arc::new(FilterRdd {
                parent: Arc::clone(&self.ops),
                pred: Arc::new(pred),
            }),
        }
    }

    /// Narrow: concatenate two RDDs' partitions.
    pub fn union(&self, other: &Rdd<K, V>) -> Rdd<K, V> {
        Rdd {
            ctx: self.ctx.clone(),
            ops: Arc::new(UnionRdd {
                parents: vec![Arc::clone(&self.ops), Arc::clone(&other.ops)],
            }),
        }
    }

    /// Narrow: transform whole partitions (receives the partition index
    /// and the task context, so DP kernels can record their work).
    pub fn map_partitions(
        &self,
        preserves_partitioning: bool,
        f: impl Fn(usize, Vec<(K, V)>, &TaskContext) -> Vec<(K, V)> + Send + Sync + 'static,
    ) -> Rdd<K, V> {
        Rdd {
            ctx: self.ctx.clone(),
            ops: Arc::new(MapPartitionsRdd {
                parent: Arc::clone(&self.ops),
                f: Arc::new(f),
                preserves_partitioning,
            }),
        }
    }

    /// Narrow: transform whole partitions with a possible key/value
    /// type change (receives the partition index and task context).
    pub fn map_partitions_to<K2: Key, V2: ShufVal>(
        &self,
        f: impl Fn(usize, Vec<(K, V)>, &TaskContext) -> Vec<(K2, V2)> + Send + Sync + 'static,
    ) -> Rdd<K2, V2> {
        Rdd {
            ctx: self.ctx.clone(),
            ops: Arc::new(MapPartitionsToRdd {
                parent: Arc::clone(&self.ops),
                f: Arc::new(f),
            }),
        }
    }

    /// Narrow: reduce the partition count by concatenating groups of
    /// parent partitions (no shuffle).
    ///
    /// When the parent carries a known partitioner signature and
    /// `target` divides the current count, the grouping is chosen to
    /// match that partitioner's layout family (modulo groups for hash,
    /// contiguous runs for grid — see [`SigLayout`]) so the signature
    /// stays valid at the reduced count and a following `partition_by`
    /// with the same partitioner elides its shuffle. Otherwise keys
    /// from different buckets co-reside and the signature is dropped.
    pub fn coalesce(&self, target: usize) -> Rdd<K, V> {
        let target = target.max(1);
        let current = self.num_partitions();
        if target >= current {
            return self.clone();
        }
        let compat = self.ops.partitioner_sig().and_then(|(name, param, n)| {
            if n == current && current.is_multiple_of(target) {
                sig_layout(name).map(|layout| ((name, param, target), layout))
            } else {
                None
            }
        });
        let contiguous = |g: usize| -> Vec<usize> {
            (0..current).filter(|p| p * target / current == g).collect()
        };
        let (groups, sig): (Vec<Vec<usize>>, Option<PartSig>) = match compat {
            Some((sig, SigLayout::Modulo)) => (
                (0..target)
                    .map(|g| (0..current).filter(|p| p % target == g).collect())
                    .collect(),
                Some(sig),
            ),
            Some((sig, SigLayout::Contiguous)) => {
                ((0..target).map(contiguous).collect(), Some(sig))
            }
            None => ((0..target).map(contiguous).collect(), None),
        };
        Rdd {
            ctx: self.ctx.clone(),
            ops: Arc::new(CoalescedRdd {
                parent: Arc::clone(&self.ops),
                groups,
                sig,
            }),
        }
    }

    /// Wide: redistribute by `partitioner` into `partitions`. Elided
    /// (returns `self`) when the RDD is already partitioned identically
    /// — the paper's footnote-1 fast path.
    pub fn partition_by(
        &self,
        partitions: usize,
        partitioner: Arc<dyn Partitioner<K>>,
    ) -> Rdd<K, V> {
        let (name, param) = partitioner.signature();
        if self.ops.partitioner_sig() == Some((name, param, partitions)) {
            return Rdd {
                ctx: self.ctx.clone(),
                ops: Arc::new(ElidedRdd {
                    parent: Arc::clone(&self.ops),
                    partitions,
                    part_name: name,
                }),
            };
        }
        Rdd {
            ctx: self.ctx.clone(),
            ops: Arc::new(ShuffledRdd {
                parent: Arc::clone(&self.ops),
                partitioner,
                partitions,
                shuffle_id: self.ctx.next_id(),
            }),
        }
    }

    /// Wide: Spark's `combineByKey` with map-side combining.
    pub fn combine_by_key<C: ShufVal>(
        &self,
        create: impl Fn(V) -> C + Send + Sync + 'static,
        merge_value: impl Fn(C, V) -> C + Send + Sync + 'static,
        merge_combiners: impl Fn(C, C) -> C + Send + Sync + 'static,
        partitions: usize,
        partitioner: Arc<dyn Partitioner<K>>,
    ) -> Rdd<K, C> {
        Rdd {
            ctx: self.ctx.clone(),
            ops: Arc::new(CombinedRdd {
                parent: Arc::clone(&self.ops),
                create: Arc::new(create),
                merge_value: Arc::new(merge_value),
                merge_combiners: Arc::new(merge_combiners),
                partitioner,
                partitions,
                shuffle_id: self.ctx.next_id(),
            }),
        }
    }

    /// Wide: group all values per key (deterministic order: map-task
    /// order, then first-seen order within each map task).
    pub fn group_by_key(
        &self,
        partitions: usize,
        partitioner: Arc<dyn Partitioner<K>>,
    ) -> Rdd<K, Vec<V>> {
        self.combine_by_key(
            |v| vec![v],
            |mut acc, v| {
                acc.push(v);
                acc
            },
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
            partitions,
            partitioner,
        )
    }

    /// Wide: reduce values per key.
    pub fn reduce_by_key(
        &self,
        f: impl Fn(V, V) -> V + Send + Sync + Clone + 'static,
        partitions: usize,
        partitioner: Arc<dyn Partitioner<K>>,
    ) -> Rdd<K, V> {
        let g = f.clone();
        self.combine_by_key(|v| v, f, g, partitions, partitioner)
    }

    /// Materialize every upstream shuffle through the DAG scheduler,
    /// then run the result stage itself. Returns the results and the
    /// result stage's ordinal (for post-hoc record annotation).
    ///
    /// A [`JobError::FetchFailed`] — map outputs lost with their
    /// executor — resubmits the whole action (Spark's map-stage
    /// resubmission): the lost shuffle's latch reopens so the next
    /// plan pass re-runs its map stage from lineage, and each retry
    /// walks one more lost lineage level if the recovery itself hits
    /// a missing grandparent. Bounded by
    /// [`crate::SparkConf::max_fetch_retries`].
    fn run_action<R: Send + 'static>(
        &self,
        label: &str,
        work: TaskFn<R>,
    ) -> Result<(Vec<R>, u64), JobError> {
        let mut resubmits = 0usize;
        loop {
            match self.run_action_once(label, Arc::clone(&work)) {
                Err(JobError::FetchFailed { shuffle, .. })
                    if resubmits < self.ctx.conf().max_fetch_retries =>
                {
                    resubmits += 1;
                    self.ctx.note_stage_resubmission(shuffle);
                }
                other => return other,
            }
        }
    }

    fn run_action_once<R: Send + 'static>(
        &self,
        label: &str,
        work: TaskFn<R>,
    ) -> Result<(Vec<R>, u64), JobError> {
        dag::check_cancelled()?;
        let roots = Arc::clone(&self.ops).shuffle_deps();
        dag::materialize_stage_graph(&self.ctx, &roots)?;
        dag::check_cancelled()?;
        let mut parent_shuffles: Vec<u64> = Vec::new();
        for root in &roots {
            let id = root.shuffle_id();
            if !parent_shuffles.contains(&id) {
                parent_shuffles.push(id);
            }
        }
        let meta = StageMeta {
            stage_id: self.ctx.alloc_stage_ordinal(),
            parent_shuffles,
            concurrent: self.ctx.stage_launched(),
        };
        let stage_id = meta.stage_id;
        let n = self.ops.num_partitions();
        let pref = {
            let ops = Arc::clone(&self.ops);
            move |p: usize| ops.preferred_node(p)
        };
        let res = self.ctx.run_stage(label, meta, n, pref, work);
        self.ctx.stage_finished();
        res.map(|r| (r, stage_id))
    }

    /// Action: pull every pair to the driver (partition order).
    pub fn collect(&self) -> Result<Vec<(K, V)>, JobError> {
        let ops = Arc::clone(&self.ops);
        let (parts, stage_id) = self.run_action(
            "collect",
            Arc::new(move |p, tc: &TaskContext| ops.compute(p, tc)),
        )?;
        let total_bytes: u64 = parts.iter().map(|items| pairs_bytes(items)).sum();
        self.ctx.annotate_stage(stage_id, total_bytes, 0);
        Ok(parts.into_iter().flatten().collect())
    }

    /// Action: number of pairs.
    pub fn count(&self) -> Result<usize, JobError> {
        let ops = Arc::clone(&self.ops);
        let (counts, _) = self.run_action(
            "count",
            Arc::new(move |p, tc: &TaskContext| Ok(ops.compute(p, tc)?.len())),
        )?;
        Ok(counts.into_iter().sum())
    }

    /// Submit [`Rdd::collect`] as an asynchronous job on a driver
    /// thread. Independent jobs overlap; a shuffle shared with another
    /// in-flight job is materialized exactly once (latched per shuffle
    /// id by the DAG scheduler).
    /// In deterministic mode the job runs inline on the calling thread
    /// instead — the handle is returned already finished — so the
    /// seeded schedule has no hidden thread interleavings.
    pub fn collect_async(&self) -> JobHandle<Vec<(K, V)>> {
        if self.ctx.is_deterministic() {
            return JobHandle::ready(self.collect());
        }
        let rdd = self.clone();
        JobHandle::spawn(move || rdd.collect())
    }

    /// Submit [`Rdd::count`] as an asynchronous job on a driver thread
    /// (inline when deterministic, like [`Rdd::collect_async`]).
    pub fn count_async(&self) -> JobHandle<usize> {
        if self.ctx.is_deterministic() {
            return JobHandle::ready(self.count());
        }
        let rdd = self.clone();
        JobHandle::spawn(move || rdd.count())
    }

    /// Submit [`Rdd::persist`] as an asynchronous job on a driver
    /// thread (inline when deterministic), returning a handle to the
    /// materialized RDD.
    pub fn persist_async(&self, level: StorageLevel) -> JobHandle<Rdd<K, V>> {
        if self.ctx.is_deterministic() {
            return JobHandle::ready(self.persist(level));
        }
        let rdd = self.clone();
        JobHandle::spawn(move || rdd.persist(level))
    }

    /// Submit [`Rdd::checkpoint_with_level`] as an asynchronous job on
    /// a driver thread (inline when deterministic), returning a handle
    /// to the materialized RDD.
    pub fn checkpoint_async_with_level(&self, level: StorageLevel) -> JobHandle<Rdd<K, V>> {
        if self.ctx.is_deterministic() {
            return JobHandle::ready(self.checkpoint_with_level(level));
        }
        let rdd = self.clone();
        JobHandle::spawn(move || rdd.checkpoint_with_level(level))
    }

    /// Materialize every partition into the block stores at the
    /// configured default storage level
    /// ([`crate::SparkConf::storage_level`]) and cut the lineage
    /// (Spark `persist` + `localCheckpoint`). The returned RDD reads
    /// from the block stores; tasks prefer the owning node.
    pub fn checkpoint(&self) -> Result<Rdd<K, V>, JobError> {
        self.checkpoint_with_level(self.ctx.conf().storage_level)
    }

    /// [`Rdd::checkpoint`] at an explicit [`StorageLevel`]. The
    /// lineage is cut, so blocks are pinned in memory unless `level`
    /// allows spilling them to the disk tier.
    pub fn checkpoint_with_level(&self, level: StorageLevel) -> Result<Rdd<K, V>, JobError> {
        self.materialize_with(level, false)
    }

    /// Materialize every partition at `level` while *retaining* the
    /// lineage (Spark `persist`): blocks dropped under memory pressure
    /// are recomputed from their parents on the next read. Retained
    /// lineage keeps upstream shuffles staged until the returned RDD
    /// is dropped.
    pub fn persist(&self, level: StorageLevel) -> Result<Rdd<K, V>, JobError> {
        self.materialize_with(level, true)
    }

    fn materialize_with(
        &self,
        level: StorageLevel,
        keep_lineage: bool,
    ) -> Result<Rdd<K, V>, JobError> {
        let ops = Arc::clone(&self.ops);
        let cache_id = self.ctx.next_id();
        let ctx = self.ctx.clone();
        let (locations, _) = self.run_action(
            "checkpoint",
            Arc::new(move |p, tc: &TaskContext| {
                let items = ops.compute(p, tc)?;
                let bytes = pairs_bytes(&items);
                ctx.inner.executors[tc.node()].store.put(
                    cache_id,
                    p,
                    Arc::new(items),
                    bytes,
                    level,
                    keep_lineage,
                    Some(tc),
                )?;
                Ok(tc.node())
            }),
        )?;
        // A failed attempt may have cached its block before the fault
        // fired, while the committed retry landed on another node.
        // Only the winner's copy is in `locations`; reclaim the rest
        // so retries never double-charge memory or disk.
        for (p, &owner) in locations.iter().enumerate() {
            for (node, executor) in self.ctx.inner.executors.iter().enumerate() {
                if node != owner {
                    executor.store.discard(cache_id, p);
                }
            }
        }
        Ok(Rdd {
            ctx: self.ctx.clone(),
            ops: Arc::new(MaterializedRdd {
                ctx: self.ctx.clone(),
                cache_id,
                locations,
                sig: self.ops.partitioner_sig(),
                level,
                parent: keep_lineage.then(|| Arc::clone(&self.ops)),
            }),
        })
    }
}
