//! Per-executor block manager: tiered storage for cached
//! (checkpointed/persisted) partitions.
//!
//! Each node runs a unified memory manager over two tiers, mirroring
//! Spark's block manager:
//!
//! * **memory** — partitions stored deserialized (`Arc<dyn Any>`),
//!   accounted against the configured executor memory;
//! * **disk** — partitions serialized through [`crate::codec`] into
//!   real [`Payload`] frames (optionally compressed at the store's
//!   configured codec), accounted against the node's disk capacity by
//!   *declared* bytes the same way shuffle staging is.
//!
//! Under memory pressure the store evicts in LRU order: a block whose
//! [`StorageLevel`] allows disk is *spilled* (serialized and moved to
//! the disk tier); a `MemoryOnly` block backed by retained lineage is
//! *dropped* (readers recompute it); a `MemoryOnly` block whose
//! lineage was cut is pinned — when only pinned blocks remain the put
//! fails with [`JobError::MemoryOverflow`], the pre-tiering failure
//! mode.
//!
//! Writes are attempt-fenced like shuffle writes: a put from a zombie
//! task (its partition already committed by another attempt) is
//! dropped, and a re-put from a retried task credits the prior
//! attempt's bytes in whichever tier they landed before charging the
//! new ones — retries never double-charge memory or disk.

use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::codec::{decode_one, Storable};
use crate::context::TaskContext;
use crate::error::JobError;
use crate::payload::{Compression, Payload, PayloadBuilder};

/// Identifier of a cached dataset (one per checkpoint/persist call).
pub type CacheId = u64;

/// Where a cached partition is allowed to live — Spark's storage
/// levels, selected per `checkpoint`/`persist` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum StorageLevel {
    /// Deserialized in executor memory only (Spark `MEMORY_ONLY`).
    /// Under pressure a block is dropped when it can be recomputed
    /// from lineage, and pinned otherwise.
    #[default]
    MemoryOnly,
    /// Memory first, spilling serialized blocks to the disk tier under
    /// pressure (Spark `MEMORY_AND_DISK`).
    MemoryAndDisk,
    /// Serialized straight to the disk tier (Spark `DISK_ONLY`).
    DiskOnly,
}

impl StorageLevel {
    /// May blocks at this level live in the disk tier?
    pub fn allows_disk(self) -> bool {
        !matches!(self, StorageLevel::MemoryOnly)
    }

    /// May blocks at this level live in the memory tier?
    pub fn allows_memory(self) -> bool {
        !matches!(self, StorageLevel::DiskOnly)
    }
}

/// Where a [`BlockStore::put`] landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutOutcome {
    /// Stored deserialized in the memory tier.
    Memory,
    /// Stored serialized in the disk tier (a `DiskOnly` put, or a
    /// block that did not fit in memory and spilled on arrival).
    Disk,
    /// Not stored: memory is full of unevictable blocks, the level
    /// forbids disk, and this block is recomputable — readers fall
    /// back to lineage.
    Skipped,
    /// Dropped: the putting task was fenced by its stage's commit
    /// board (a zombie attempt).
    Fenced,
}

type AnyArc = Arc<dyn Any + Send + Sync>;
type EncodeFn = Box<dyn Fn(&AnyArc, Compression) -> Payload + Send + Sync>;
type DecodeFn = Box<dyn Fn(&Payload) -> Result<AnyArc, JobError> + Send + Sync>;
type LatchMap = HashMap<(CacheId, usize), Arc<Mutex<()>>>;

/// Type-erased serialize/deserialize pair captured at put time, so the
/// LRU evictor can spill any memory-resident entry without knowing its
/// concrete type. Encoding serializes once, straight into the sealed
/// frame; decoding opens the frame (zero-copy when uncompressed).
struct EntryCodec {
    encode: EncodeFn,
    decode: DecodeFn,
}

fn codec_for<T: Storable + Send + Sync + 'static>() -> Arc<EntryCodec> {
    Arc::new(EntryCodec {
        encode: Box::new(|any, compression| {
            let value = any.downcast_ref::<T>().expect("entry codec type");
            let mut builder = PayloadBuilder::with_capacity(value.encoded_len());
            value.encode(builder.buf());
            builder.seal(compression)
        }),
        decode: Box::new(|payload| Ok(Arc::new(decode_one::<T>(payload.open()?)?) as AnyArc)),
    })
}

enum Tier {
    Memory(AnyArc),
    Disk(Payload),
}

/// Wire bytes to report for spill traffic: the measured frame length
/// when the body compressed *and* the declared size tracks the real
/// stream (the encoded `Vec` length prefix accounts for the 8-byte
/// slack). Inflated declarations — virtual blocks that are heavy in
/// accounting but tiny on the wire — report 0, keeping the cost
/// model's ratio-based pricing over declared bytes.
fn spill_wire(payload: &Payload, declared: u64) -> u64 {
    let raw = payload.raw_len();
    if payload.is_compressed() && declared <= raw && raw <= declared + 8 {
        payload.wire_len()
    } else {
        0
    }
}

struct Entry {
    tier: Tier,
    /// Declared (deserialized) size — the accounting unit in *both*
    /// tiers, like shuffle staging's declared bytes.
    bytes: u64,
    level: StorageLevel,
    /// Lineage retained upstream: the block may be dropped entirely
    /// and recomputed on the next read.
    recoverable: bool,
    codec: Arc<EntryCodec>,
    /// LRU recency stamp (monotonic clock tick of the last touch).
    stamp: u64,
}

/// All mutable store state behind one lock, so capacity checks and
/// tier accounting can never observe each other half-updated (the old
/// split `entries`/`used` mutexes had exactly that window).
struct StoreInner {
    entries: HashMap<(CacheId, usize), Entry>,
    mem_used: u64,
    mem_peak: u64,
    disk_used: u64,
    disk_peak: u64,
}

/// One node's tiered cache.
pub struct BlockStore {
    node: usize,
    inner: Mutex<StoreInner>,
    mem_capacity: Option<u64>,
    disk_capacity: Option<u64>,
    /// Codec applied when entries are serialized to the disk tier.
    /// Accounting stays on declared bytes either way; compression only
    /// changes the measured wire size reported alongside it.
    compression: Compression,
    /// LRU clock; ticks on every put/get touch.
    clock: AtomicU64,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    spilled_bytes: AtomicU64,
    evicted_bytes: AtomicU64,
    recomputes: AtomicU64,
    fenced_puts: AtomicU64,
    /// Per-partition latches serializing lineage recomputation, so
    /// concurrent readers of a dropped block recompute exactly once.
    recompute_latches: Mutex<LatchMap>,
}

impl BlockStore {
    /// Store for `node` with optional memory and disk caps.
    pub fn new(node: usize, mem_capacity: Option<u64>, disk_capacity: Option<u64>) -> Self {
        BlockStore {
            node,
            inner: Mutex::new(StoreInner {
                entries: HashMap::new(),
                mem_used: 0,
                mem_peak: 0,
                disk_used: 0,
                disk_peak: 0,
            }),
            mem_capacity,
            disk_capacity,
            compression: Compression::None,
            clock: AtomicU64::new(0),
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            spilled_bytes: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
            recomputes: AtomicU64::new(0),
            fenced_puts: AtomicU64::new(0),
            recompute_latches: Mutex::new(HashMap::new()),
        }
    }

    /// Set the codec used for the disk tier (builder style).
    pub fn with_compression(mut self, compression: Compression) -> Self {
        self.compression = compression;
        self
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Store one partition at `level`.
    ///
    /// `recoverable` declares that upstream lineage is retained, so
    /// the block may be dropped under pressure and recomputed on read.
    /// Re-putting an existing (cache, partition) — a re-executed
    /// checkpoint task — replaces the entry and reconciles the byte
    /// accounting in whichever tier the prior attempt landed; a put
    /// from a fenced (zombie) attempt is dropped; a rejected put
    /// mutates nothing.
    #[allow(clippy::too_many_arguments)]
    pub fn put<T: Storable + Send + Sync + 'static>(
        &self,
        cache: CacheId,
        partition: usize,
        data: Arc<T>,
        bytes: u64,
        level: StorageLevel,
        recoverable: bool,
        tc: Option<&TaskContext>,
    ) -> Result<PutOutcome, JobError> {
        if tc.is_some_and(|tc| tc.is_fenced()) {
            self.fenced_puts.fetch_add(1, Ordering::Relaxed);
            return Ok(PutOutcome::Fenced);
        }
        let codec = codec_for::<T>();
        let data: AnyArc = data;
        let stamp = self.tick();
        let mut inner = self.inner.lock();
        // Capacity checks below must see the *post-reconciliation*
        // totals, but the old entry may only be removed once the new
        // one is accepted — so compute credits without mutating yet.
        let (mem_credit, disk_credit) = match inner.entries.get(&(cache, partition)) {
            Some(old) => match old.tier {
                Tier::Memory(_) => (old.bytes, 0),
                Tier::Disk(_) => (0, old.bytes),
            },
            None => (0, 0),
        };
        let entry = Entry {
            tier: Tier::Memory(data),
            bytes,
            level,
            recoverable,
            codec,
            stamp,
        };
        if !level.allows_memory() {
            return self.place_on_disk(
                &mut inner,
                cache,
                partition,
                entry,
                mem_credit,
                disk_credit,
                tc,
            );
        }
        if let Some(cap) = self.mem_capacity {
            let needed = (inner.mem_used - mem_credit + bytes).saturating_sub(cap);
            if needed > 0 {
                self.evict_lru(&mut inner, needed, cache, partition, tc);
            }
            if inner.mem_used - mem_credit + bytes > cap {
                // Not enough evictable neighbours: degrade by level.
                if level.allows_disk() {
                    return self.place_on_disk(
                        &mut inner,
                        cache,
                        partition,
                        entry,
                        mem_credit,
                        disk_credit,
                        tc,
                    );
                }
                if recoverable {
                    // Don't cache; readers recompute from lineage. The
                    // stale prior entry (if any) must go, or readers
                    // would see the old attempt's data.
                    self.remove_reconciled(&mut inner, cache, partition, mem_credit, disk_credit);
                    return Ok(PutOutcome::Skipped);
                }
                return Err(JobError::MemoryOverflow {
                    node: self.node,
                    used: inner.mem_used - mem_credit + bytes,
                    capacity: cap,
                });
            }
        }
        self.remove_reconciled(&mut inner, cache, partition, mem_credit, disk_credit);
        inner.mem_used += bytes;
        inner.mem_peak = inner.mem_peak.max(inner.mem_used);
        inner.entries.insert((cache, partition), entry);
        Ok(PutOutcome::Memory)
    }

    /// Serialize `entry` and store it in the disk tier (a `DiskOnly`
    /// put or a memory-pressure fallback). Accounts declared bytes
    /// against the disk capacity; the serialized payload is real.
    #[allow(clippy::too_many_arguments)]
    fn place_on_disk(
        &self,
        inner: &mut StoreInner,
        cache: CacheId,
        partition: usize,
        mut entry: Entry,
        mem_credit: u64,
        disk_credit: u64,
        tc: Option<&TaskContext>,
    ) -> Result<PutOutcome, JobError> {
        // A chaos-doomed task sees a full disk regardless of the real
        // capacity; the failure must take the same path a genuine full
        // disk takes (Skipped when recomputable, DiskOverflow
        // otherwise — never silently swallowed).
        let chaos_full = tc.is_some_and(|t| t.chaos_disk_full());
        let over_cap = self
            .disk_capacity
            .is_some_and(|cap| inner.disk_used - disk_credit + entry.bytes > cap);
        if chaos_full || over_cap {
            if entry.recoverable {
                self.remove_reconciled(inner, cache, partition, mem_credit, disk_credit);
                return Ok(PutOutcome::Skipped);
            }
            return Err(JobError::DiskOverflow {
                node: self.node,
                used: inner.disk_used - disk_credit + entry.bytes,
                capacity: self.disk_capacity.unwrap_or(inner.disk_used),
            });
        }
        let payload = match &entry.tier {
            Tier::Memory(data) => (entry.codec.encode)(data, self.compression),
            Tier::Disk(payload) => payload.clone(),
        };
        let wire = spill_wire(&payload, entry.bytes);
        entry.tier = Tier::Disk(payload);
        self.remove_reconciled(inner, cache, partition, mem_credit, disk_credit);
        inner.disk_used += entry.bytes;
        inner.disk_peak = inner.disk_peak.max(inner.disk_used);
        self.spilled_bytes.fetch_add(entry.bytes, Ordering::Relaxed);
        if let Some(tc) = tc {
            tc.add_spill_write(entry.bytes, wire);
        }
        inner.entries.insert((cache, partition), entry);
        Ok(PutOutcome::Disk)
    }

    /// Drop the prior entry of (cache, partition), returning its bytes
    /// to the owning tier (retry/speculation reconciliation).
    fn remove_reconciled(
        &self,
        inner: &mut StoreInner,
        cache: CacheId,
        partition: usize,
        mem_credit: u64,
        disk_credit: u64,
    ) {
        if inner.entries.remove(&(cache, partition)).is_some() {
            inner.mem_used -= mem_credit;
            inner.disk_used -= disk_credit;
        }
    }

    /// Free at least `needed` memory-tier bytes in LRU order. Spills
    /// blocks whose level allows disk, drops recoverable
    /// `MemoryOnly` blocks, and skips pinned ones. Never touches the
    /// block currently being put.
    fn evict_lru(
        &self,
        inner: &mut StoreInner,
        needed: u64,
        put_cache: CacheId,
        put_partition: usize,
        tc: Option<&TaskContext>,
    ) {
        let mut freed = 0u64;
        let mut skip: HashSet<(CacheId, usize)> = HashSet::new();
        while freed < needed {
            let victim = inner
                .entries
                .iter()
                .filter(|(k, e)| {
                    matches!(e.tier, Tier::Memory(_))
                        && **k != (put_cache, put_partition)
                        && !skip.contains(*k)
                        && (e.level.allows_disk() || e.recoverable)
                })
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k);
            let Some(key) = victim else { break };
            let entry = inner.entries.get(&key).expect("victim present");
            if entry.level.allows_disk() {
                // A chaos-doomed putter also fails the spills its put
                // provokes — disk-full must cascade, not just gate the
                // final placement.
                let fits_disk = !tc.is_some_and(|t| t.chaos_disk_full())
                    && self
                        .disk_capacity
                        .is_none_or(|cap| inner.disk_used + entry.bytes <= cap);
                if fits_disk {
                    // Spill: serialize and move the block to disk.
                    let bytes = entry.bytes;
                    let payload = match &entry.tier {
                        Tier::Memory(data) => (entry.codec.encode)(data, self.compression),
                        Tier::Disk(_) => unreachable!("victims are memory-resident"),
                    };
                    let wire = spill_wire(&payload, bytes);
                    let entry = inner.entries.get_mut(&key).expect("victim present");
                    entry.tier = Tier::Disk(payload);
                    inner.mem_used -= bytes;
                    inner.disk_used += bytes;
                    inner.disk_peak = inner.disk_peak.max(inner.disk_used);
                    freed += bytes;
                    self.spilled_bytes.fetch_add(bytes, Ordering::Relaxed);
                    if let Some(tc) = tc {
                        tc.add_spill_write(bytes, wire);
                    }
                    continue;
                }
                if !entry.recoverable {
                    // Disk full and not recomputable: pinned for now.
                    skip.insert(key);
                    continue;
                }
            }
            // MemoryOnly + recoverable (or disk full + recoverable):
            // drop outright; readers recompute from lineage.
            let entry = inner.entries.remove(&key).expect("victim present");
            inner.mem_used -= entry.bytes;
            freed += entry.bytes;
            self.evicted_bytes.fetch_add(entry.bytes, Ordering::Relaxed);
        }
    }

    /// Fetch a typed partition from whichever tier holds it. Returns
    /// `None` on a miss (evicted / never stored — the caller decides
    /// whether lineage recomputation applies) and the stored value with
    /// its accounted size on a hit. A disk-tier hit deserializes the
    /// real bytes and charges the read to `tc`.
    pub fn get<T: Send + Sync + 'static>(
        &self,
        cache: CacheId,
        partition: usize,
        tc: Option<&TaskContext>,
    ) -> Result<Option<(Arc<T>, u64)>, JobError> {
        let stamp = self.tick();
        let mut inner = self.inner.lock();
        let node = self.node;
        let Some(entry) = inner.entries.get_mut(&(cache, partition)) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        };
        entry.stamp = stamp;
        let mismatch = || {
            JobError::TypeMismatch(format!(
                "cache {cache} partition {partition} on node {node} holds a different type than {}",
                std::any::type_name::<T>()
            ))
        };
        match &entry.tier {
            Tier::Memory(data) => {
                let data = Arc::clone(data).downcast::<T>().map_err(|_| mismatch())?;
                self.mem_hits.fetch_add(1, Ordering::Relaxed);
                Ok(Some((data, entry.bytes)))
            }
            Tier::Disk(payload) => {
                let decoded = (entry.codec.decode)(payload)?;
                let data = decoded.downcast::<T>().map_err(|_| mismatch())?;
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                if let Some(tc) = tc {
                    tc.add_spill_read(entry.bytes, spill_wire(payload, entry.bytes));
                }
                Ok(Some((data, entry.bytes)))
            }
        }
    }

    /// Is this partition cached here (either tier)?
    pub fn contains(&self, cache: CacheId, partition: usize) -> bool {
        self.inner.lock().entries.contains_key(&(cache, partition))
    }

    /// Evict every partition of one cached dataset (unpersist).
    /// Returns the freed `(memory, disk)` bytes.
    pub fn evict(&self, cache: CacheId) -> (u64, u64) {
        let mut inner = self.inner.lock();
        let victims: Vec<_> = inner
            .entries
            .keys()
            .filter(|(c, _)| *c == cache)
            .cloned()
            .collect();
        let (mut mem_freed, mut disk_freed) = (0, 0);
        for k in victims {
            if let Some(e) = inner.entries.remove(&k) {
                match e.tier {
                    Tier::Memory(_) => mem_freed += e.bytes,
                    Tier::Disk(_) => disk_freed += e.bytes,
                }
            }
        }
        inner.mem_used -= mem_freed;
        inner.disk_used -= disk_freed;
        self.recompute_latches
            .lock()
            .retain(|(c, _), _| *c != cache);
        (mem_freed, disk_freed)
    }

    /// Remove a single partition's entry from whichever tier holds it
    /// and return `(mem_freed, disk_freed)`. Used to reclaim orphaned
    /// copies left behind by failed attempts whose retry committed on
    /// a different node — without this, every retried materialization
    /// double-charges the cluster for one partition.
    pub fn discard(&self, cache: CacheId, partition: usize) -> (u64, u64) {
        let mut inner = self.inner.lock();
        match inner.entries.remove(&(cache, partition)) {
            Some(e) => match e.tier {
                Tier::Memory(_) => {
                    inner.mem_used -= e.bytes;
                    (e.bytes, 0)
                }
                Tier::Disk(_) => {
                    inner.disk_used -= e.bytes;
                    (0, e.bytes)
                }
            },
            None => (0, 0),
        }
    }

    /// Latch serializing lineage recomputation of one partition:
    /// concurrent readers that miss lock it, re-check the store, and
    /// only the first recomputes.
    pub fn recompute_latch(&self, cache: CacheId, partition: usize) -> Arc<Mutex<()>> {
        Arc::clone(
            self.recompute_latches
                .lock()
                .entry((cache, partition))
                .or_default(),
        )
    }

    /// Record one lineage recomputation of a dropped block.
    pub fn note_recompute(&self) {
        self.recomputes.fetch_add(1, Ordering::Relaxed);
    }

    /// Currently cached bytes in the memory tier.
    pub fn used_bytes(&self) -> u64 {
        self.inner.lock().mem_used
    }

    /// Currently cached (declared) bytes in the disk tier.
    pub fn disk_used_bytes(&self) -> u64 {
        self.inner.lock().disk_used
    }

    /// High-water mark of memory-tier bytes over the store's lifetime.
    pub fn peak_used_bytes(&self) -> u64 {
        self.inner.lock().mem_peak
    }

    /// High-water mark of disk-tier bytes over the store's lifetime.
    pub fn peak_disk_used_bytes(&self) -> u64 {
        self.inner.lock().disk_peak
    }

    /// Reads served from the memory tier.
    pub fn mem_hits(&self) -> u64 {
        self.mem_hits.load(Ordering::Relaxed)
    }

    /// Reads served by deserializing from the disk tier.
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Reads that found the partition in neither tier.
    pub fn cache_misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total bytes serialized into the disk tier (spills + DiskOnly
    /// puts).
    pub fn spilled_bytes_total(&self) -> u64 {
        self.spilled_bytes.load(Ordering::Relaxed)
    }

    /// Total bytes of blocks dropped under pressure (recompute-backed
    /// evictions; unpersists are not counted).
    pub fn evicted_bytes_total(&self) -> u64 {
        self.evicted_bytes.load(Ordering::Relaxed)
    }

    /// Lineage recomputations of dropped blocks.
    pub fn recomputes_total(&self) -> u64 {
        self.recomputes.load(Ordering::Relaxed)
    }

    /// Cache puts dropped because the task was attempt-fenced.
    pub fn fenced_puts_total(&self) -> u64 {
        self.fenced_puts.load(Ordering::Relaxed)
    }

    /// Executor death: destroy every entry in both tiers and all
    /// recompute latches. Returns the `(memory, disk)` bytes wiped.
    /// Unlike eviction this is not a policy decision, so nothing is
    /// added to the evicted/spilled counters.
    pub fn wipe(&self) -> (u64, u64) {
        let mut inner = self.inner.lock();
        let (mem, disk) = (inner.mem_used, inner.disk_used);
        inner.entries.clear();
        inner.mem_used = 0;
        inner.disk_used = 0;
        drop(inner);
        self.recompute_latches.lock().clear();
        (mem, disk)
    }

    /// Verify the tier accounting: `mem_used`/`disk_used` must equal
    /// the sum of declared bytes over the entries in each tier.
    /// Returns a description of the first discrepancy.
    pub fn audit(&self) -> Result<(), String> {
        let inner = self.inner.lock();
        let (mut mem, mut disk) = (0u64, 0u64);
        for e in inner.entries.values() {
            match e.tier {
                Tier::Memory(_) => mem += e.bytes,
                Tier::Disk(_) => disk += e.bytes,
            }
        }
        if mem != inner.mem_used {
            return Err(format!(
                "node {}: mem_used {} != entry bytes {}",
                self.node, inner.mem_used, mem
            ));
        }
        if disk != inner.disk_used {
            return Err(format!(
                "node {}: disk_used {} != entry bytes {}",
                self.node, inner.disk_used, disk
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ML: StorageLevel = StorageLevel::MemoryOnly;
    const MD: StorageLevel = StorageLevel::MemoryAndDisk;
    const DO: StorageLevel = StorageLevel::DiskOnly;

    #[test]
    fn discard_frees_exactly_one_partition() {
        let store = BlockStore::new(0, None, None);
        store
            .put(1, 0, Arc::new(vec![1u32]), 10, ML, false, None)
            .unwrap();
        store
            .put(1, 1, Arc::new(vec![2u32]), 20, DO, false, None)
            .unwrap();
        assert_eq!(store.discard(1, 0), (10, 0));
        assert_eq!(store.discard(1, 1), (0, 20));
        assert_eq!(store.discard(1, 7), (0, 0), "absent keys are a no-op");
        assert_eq!(store.used_bytes(), 0);
        assert_eq!(store.disk_used_bytes(), 0);
    }

    #[test]
    fn put_get_roundtrip() {
        let store = BlockStore::new(0, None, None);
        let out = store
            .put(1, 0, Arc::new(vec![1u32, 2, 3]), 12, ML, false, None)
            .unwrap();
        assert_eq!(out, PutOutcome::Memory);
        let (data, bytes) = store.get::<Vec<u32>>(1, 0, None).unwrap().unwrap();
        assert_eq!(*data, vec![1, 2, 3]);
        assert_eq!(bytes, 12);
        assert_eq!(store.mem_hits(), 1);
    }

    #[test]
    fn type_mismatch_is_its_own_error() {
        let store = BlockStore::new(0, None, None);
        store
            .put(1, 0, Arc::new(17u64), 8, ML, false, None)
            .unwrap();
        let err = store.get::<String>(1, 0, None).unwrap_err();
        assert!(matches!(err, JobError::TypeMismatch(_)), "{err}");
    }

    #[test]
    fn miss_is_none_not_error() {
        let store = BlockStore::new(0, None, None);
        assert!(store.get::<u64>(9, 0, None).unwrap().is_none());
        assert_eq!(store.cache_misses(), 1);
    }

    #[test]
    fn memory_capacity_enforced_for_pinned_blocks() {
        // MemoryOnly blocks with cut lineage cannot spill or be
        // recomputed: exceeding memory is still a hard failure.
        let store = BlockStore::new(2, Some(10), None);
        store.put(1, 0, Arc::new(()), 6, ML, false, None).unwrap();
        let err = store
            .put(1, 1, Arc::new(()), 6, ML, false, None)
            .unwrap_err();
        assert!(matches!(err, JobError::MemoryOverflow { node: 2, .. }));
    }

    #[test]
    fn re_put_reconciles_accounting() {
        // A re-executed checkpoint task stores the same partition
        // again: accounting must not double-count.
        let store = BlockStore::new(0, Some(10), None);
        store
            .put(1, 0, Arc::new(vec![1u32]), 8, ML, false, None)
            .unwrap();
        store
            .put(1, 0, Arc::new(vec![2u32]), 8, ML, false, None)
            .unwrap();
        assert_eq!(store.used_bytes(), 8);
        let (data, _) = store.get::<Vec<u32>>(1, 0, None).unwrap().unwrap();
        assert_eq!(*data, vec![2]);
        // A rejected put leaves accounting untouched.
        let err = store
            .put(1, 1, Arc::new(()), 6, ML, false, None)
            .unwrap_err();
        assert!(matches!(err, JobError::MemoryOverflow { .. }));
        assert_eq!(store.used_bytes(), 8);
    }

    #[test]
    fn evict_frees_both_tiers_and_returns_bytes() {
        let store = BlockStore::new(0, Some(10), None);
        store.put(1, 0, Arc::new(7u64), 6, ML, false, None).unwrap();
        store.put(1, 1, Arc::new(8u64), 9, DO, false, None).unwrap();
        let (mem, disk) = store.evict(1);
        assert_eq!((mem, disk), (6, 9));
        assert_eq!(store.used_bytes(), 0);
        assert_eq!(store.disk_used_bytes(), 0);
        assert!(!store.contains(1, 0));
        store.put(2, 0, Arc::new(()), 9, ML, false, None).unwrap();
    }

    #[test]
    fn pressure_spills_lru_block_to_disk() {
        let store = BlockStore::new(0, Some(10), None);
        store
            .put(1, 0, Arc::new(vec![1u64, 2]), 6, MD, false, None)
            .unwrap();
        let out = store
            .put(1, 1, Arc::new(vec![3u64]), 6, MD, false, None)
            .unwrap();
        assert_eq!(out, PutOutcome::Memory);
        // Partition 0 was least recently used → spilled.
        assert_eq!(store.used_bytes(), 6);
        assert_eq!(store.disk_used_bytes(), 6);
        assert_eq!(store.spilled_bytes_total(), 6);
        // Disk-tier read round-trips through real serialization.
        let (data, bytes) = store.get::<Vec<u64>>(1, 0, None).unwrap().unwrap();
        assert_eq!(*data, vec![1, 2]);
        assert_eq!(bytes, 6);
        assert_eq!(store.disk_hits(), 1);
    }

    #[test]
    fn lru_touch_protects_recently_read_blocks() {
        let store = BlockStore::new(0, Some(12), None);
        store
            .put(1, 0, Arc::new(10u64), 6, MD, false, None)
            .unwrap();
        store
            .put(1, 1, Arc::new(11u64), 6, MD, false, None)
            .unwrap();
        // Touch partition 0 so partition 1 becomes the LRU victim.
        store.get::<u64>(1, 0, None).unwrap().unwrap();
        store
            .put(1, 2, Arc::new(12u64), 6, MD, false, None)
            .unwrap();
        assert_eq!(store.mem_hits(), 1);
        store.get::<u64>(1, 0, None).unwrap().unwrap();
        assert_eq!(store.mem_hits(), 2, "partition 0 stayed in memory");
        store.get::<u64>(1, 1, None).unwrap().unwrap();
        assert_eq!(store.disk_hits(), 1, "partition 1 was spilled");
    }

    #[test]
    fn recoverable_memory_only_blocks_are_dropped_not_fatal() {
        let store = BlockStore::new(0, Some(10), None);
        store.put(1, 0, Arc::new(1u64), 6, ML, true, None).unwrap();
        let out = store.put(1, 1, Arc::new(2u64), 6, ML, true, None).unwrap();
        assert_eq!(out, PutOutcome::Memory);
        assert_eq!(store.evicted_bytes_total(), 6);
        assert!(store.get::<u64>(1, 0, None).unwrap().is_none());
        // An oversized recoverable block is skipped, not fatal.
        let out = store.put(1, 2, Arc::new(3u64), 99, ML, true, None).unwrap();
        assert_eq!(out, PutOutcome::Skipped);
    }

    #[test]
    fn disk_only_bypasses_memory() {
        let store = BlockStore::new(0, Some(4), Some(100));
        let out = store
            .put(1, 0, Arc::new(vec![1u32, 2, 3]), 40, DO, false, None)
            .unwrap();
        assert_eq!(out, PutOutcome::Disk);
        assert_eq!(store.used_bytes(), 0);
        assert_eq!(store.disk_used_bytes(), 40);
        let (data, _) = store.get::<Vec<u32>>(1, 0, None).unwrap().unwrap();
        assert_eq!(*data, vec![1, 2, 3]);
    }

    #[test]
    fn disk_capacity_enforced() {
        let store = BlockStore::new(3, None, Some(10));
        store.put(1, 0, Arc::new(1u64), 8, DO, false, None).unwrap();
        let err = store
            .put(1, 1, Arc::new(2u64), 8, DO, false, None)
            .unwrap_err();
        assert!(
            matches!(err, JobError::DiskOverflow { node: 3, .. }),
            "{err}"
        );
        assert_eq!(store.disk_used_bytes(), 8);
        // Re-put of the same partition reconciles the disk credit.
        store
            .put(1, 0, Arc::new(3u64), 10, DO, false, None)
            .unwrap();
        assert_eq!(store.disk_used_bytes(), 10);
    }

    #[test]
    fn chaos_disk_full_surfaces_not_swallowed() {
        use crate::sim::ChaosEvent;
        // Unlimited real disk, but the putting task is chaos-doomed:
        // a pinned DiskOnly put must fail loudly...
        let store = BlockStore::new(1, None, None);
        let tc = TaskContext::new(1).with_chaos(Some(&ChaosEvent::DiskFull));
        let err = store
            .put(1, 0, Arc::new(7u64), 8, DO, false, Some(&tc))
            .unwrap_err();
        assert!(
            matches!(err, JobError::DiskOverflow { node: 1, .. }),
            "{err}"
        );
        store.audit().unwrap();
        // ...while a recoverable one degrades to Skipped.
        let out = store
            .put(1, 1, Arc::new(8u64), 8, DO, true, Some(&tc))
            .unwrap();
        assert_eq!(out, PutOutcome::Skipped);
        // An untouched task still writes fine.
        let clean = TaskContext::new(1);
        let out = store
            .put(1, 2, Arc::new(9u64), 8, DO, false, Some(&clean))
            .unwrap();
        assert_eq!(out, PutOutcome::Disk);
        store.audit().unwrap();
    }

    #[test]
    fn wipe_destroys_both_tiers_without_counting_evictions() {
        let store = BlockStore::new(0, Some(20), None);
        store.put(1, 0, Arc::new(1u64), 6, ML, false, None).unwrap();
        store.put(1, 1, Arc::new(2u64), 9, DO, false, None).unwrap();
        assert_eq!(store.wipe(), (6, 9));
        assert_eq!(store.used_bytes(), 0);
        assert_eq!(store.disk_used_bytes(), 0);
        assert_eq!(store.evicted_bytes_total(), 0, "loss is not eviction");
        assert!(store.get::<u64>(1, 0, None).unwrap().is_none());
        store.audit().unwrap();
    }

    #[test]
    fn compressed_spill_roundtrips_and_reports_wire_bytes() {
        let store = BlockStore::new(0, Some(4), Some(10_000)).with_compression(Compression::Lz4);
        let tc = TaskContext::new(0);
        let data: Vec<u64> = vec![0; 100];
        store
            .put(1, 0, Arc::new(data.clone()), 800, DO, false, Some(&tc))
            .unwrap();
        // Ledgers stay on declared bytes no matter what the codec did.
        assert_eq!(store.disk_used_bytes(), 800);
        assert_eq!(store.spilled_bytes_total(), 800);
        let (got, bytes) = store.get::<Vec<u64>>(1, 0, Some(&tc)).unwrap().unwrap();
        assert_eq!(*got, data);
        assert_eq!(bytes, 800);
        let rec = tc.snapshot();
        assert_eq!(rec.spill_write_bytes, 800);
        assert_eq!(rec.spill_read_bytes, 800);
        assert!(
            rec.spill_write_wire_bytes > 0 && rec.spill_write_wire_bytes < 800,
            "zeros must compress: wire {}",
            rec.spill_write_wire_bytes
        );
        assert_eq!(rec.spill_read_wire_bytes, rec.spill_write_wire_bytes);
        store.audit().unwrap();
    }

    #[test]
    fn uncompressed_spill_reports_no_wire_bytes() {
        let store = BlockStore::new(0, Some(4), None);
        let tc = TaskContext::new(0);
        store
            .put(1, 0, Arc::new(vec![1u64, 2, 3]), 24, DO, false, Some(&tc))
            .unwrap();
        store.get::<Vec<u64>>(1, 0, Some(&tc)).unwrap().unwrap();
        let rec = tc.snapshot();
        assert_eq!((rec.spill_write_bytes, rec.spill_read_bytes), (24, 24));
        assert_eq!(rec.spill_write_wire_bytes, 0, "raw frames price by ratio");
        assert_eq!(rec.spill_read_wire_bytes, 0);
    }

    #[test]
    fn re_put_reconciles_across_tiers() {
        // Attempt 1 spilled to disk; the retry lands in memory. Disk
        // bytes must be credited back — no double-charge.
        let store = BlockStore::new(0, None, Some(10));
        store.put(1, 0, Arc::new(5u64), 8, DO, false, None).unwrap();
        assert_eq!(store.disk_used_bytes(), 8);
        store.put(1, 0, Arc::new(5u64), 8, MD, false, None).unwrap();
        assert_eq!(store.disk_used_bytes(), 0);
        assert_eq!(store.used_bytes(), 8);
    }
}
