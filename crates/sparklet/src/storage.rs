//! Per-executor block manager: cached (checkpointed) partitions.
//!
//! Cached partitions are stored deserialized, like Spark's
//! MEMORY_ONLY storage level, with byte accounting against the
//! configured executor memory.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::JobError;

/// Identifier of a cached dataset (one per checkpoint call).
/// Identifier of one cached dataset (one checkpoint call).
pub type CacheId = u64;

struct Entry {
    data: Arc<dyn Any + Send + Sync>,
    bytes: u64,
}

/// One node's cache.
pub struct BlockStore {
    node: usize,
    entries: Mutex<HashMap<(CacheId, usize), Entry>>,
    used: Mutex<u64>,
    capacity: Option<u64>,
}

impl BlockStore {
    /// Store for `node` with an optional memory cap.
    pub fn new(node: usize, capacity: Option<u64>) -> Self {
        BlockStore {
            node,
            entries: Mutex::new(HashMap::new()),
            used: Mutex::new(0),
            capacity,
        }
    }

    /// Store one partition. Fails when executor memory is exhausted.
    ///
    /// Re-putting an existing (cache, partition) — a re-executed
    /// checkpoint task — replaces the entry and reconciles the byte
    /// accounting; a rejected put mutates nothing.
    pub fn put<T: Send + Sync + 'static>(
        &self,
        cache: CacheId,
        partition: usize,
        data: Arc<T>,
        bytes: u64,
    ) -> Result<(), JobError> {
        let mut entries = self.entries.lock();
        let mut used = self.used.lock();
        let credit = entries.get(&(cache, partition)).map_or(0, |e| e.bytes);
        let prospective = *used - credit + bytes;
        if let Some(cap) = self.capacity {
            if prospective > cap {
                return Err(JobError::MemoryOverflow {
                    node: self.node,
                    used: prospective,
                    capacity: cap,
                });
            }
        }
        *used = prospective;
        entries.insert(
            (cache, partition),
            Entry {
                data,
                bytes,
            },
        );
        Ok(())
    }

    /// Fetch a typed partition. Returns the stored `Arc` and its
    /// accounted size.
    pub fn get<T: Send + Sync + 'static>(
        &self,
        cache: CacheId,
        partition: usize,
    ) -> Result<(Arc<T>, u64), JobError> {
        let entries = self.entries.lock();
        let entry = entries.get(&(cache, partition)).ok_or_else(|| {
            JobError::MissingBlock(format!("cache {cache} partition {partition} on node {}", self.node))
        })?;
        let data = Arc::clone(&entry.data)
            .downcast::<T>()
            .map_err(|_| JobError::MissingBlock(format!("cache {cache} type mismatch")))?;
        Ok((data, entry.bytes))
    }

    /// Is this partition cached here?
    pub fn contains(&self, cache: CacheId, partition: usize) -> bool {
        self.entries.lock().contains_key(&(cache, partition))
    }

    /// Evict every partition of one cached dataset.
    pub fn evict(&self, cache: CacheId) {
        let mut entries = self.entries.lock();
        let victims: Vec<_> = entries
            .keys()
            .filter(|(c, _)| *c == cache)
            .cloned()
            .collect();
        let mut freed = 0;
        for k in victims {
            if let Some(e) = entries.remove(&k) {
                freed += e.bytes;
            }
        }
        *self.used.lock() -= freed;
    }

    /// Currently cached bytes.
    pub fn used_bytes(&self) -> u64 {
        *self.used.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let store = BlockStore::new(0, None);
        store.put(1, 0, Arc::new(vec![1u32, 2, 3]), 12).unwrap();
        let (data, bytes) = store.get::<Vec<u32>>(1, 0).unwrap();
        assert_eq!(*data, vec![1, 2, 3]);
        assert_eq!(bytes, 12);
    }

    #[test]
    fn type_mismatch_is_error() {
        let store = BlockStore::new(0, None);
        store.put(1, 0, Arc::new(17u64), 8).unwrap();
        assert!(store.get::<String>(1, 0).is_err());
    }

    #[test]
    fn memory_capacity_enforced() {
        let store = BlockStore::new(2, Some(10));
        store.put(1, 0, Arc::new(()), 6).unwrap();
        let err = store.put(1, 1, Arc::new(()), 6).unwrap_err();
        assert!(matches!(err, JobError::MemoryOverflow { node: 2, .. }));
    }

    #[test]
    fn re_put_reconciles_accounting() {
        // A re-executed checkpoint task stores the same partition
        // again: accounting must not double-count.
        let store = BlockStore::new(0, Some(10));
        store.put(1, 0, Arc::new(vec![1u32]), 8).unwrap();
        store.put(1, 0, Arc::new(vec![2u32]), 8).unwrap();
        assert_eq!(store.used_bytes(), 8);
        let (data, _) = store.get::<Vec<u32>>(1, 0).unwrap();
        assert_eq!(*data, vec![2]);
        // A rejected put leaves accounting untouched.
        let err = store.put(1, 1, Arc::new(()), 6).unwrap_err();
        assert!(matches!(err, JobError::MemoryOverflow { .. }));
        assert_eq!(store.used_bytes(), 8);
    }

    #[test]
    fn evict_frees_accounting() {
        let store = BlockStore::new(0, Some(10));
        store.put(1, 0, Arc::new(()), 6).unwrap();
        store.evict(1);
        assert_eq!(store.used_bytes(), 0);
        assert!(!store.contains(1, 0));
        store.put(2, 0, Arc::new(()), 9).unwrap();
    }
}
