//! The zero-copy data plane: one refcounted buffer layer under codec,
//! shuffle, storage, broadcast, and collect.
//!
//! A [`Payload`] is an immutable, refcounted frame: a 9-byte header
//! (`[tag u8][raw_len u64 LE]`) followed by the body. Tag 0 means the
//! body *is* the encoded record stream — [`Payload::open`] returns a
//! zero-copy slice of the same allocation. Tag 1 means the body is an
//! LZ4-style compressed image of `raw_len` encoded bytes — `open`
//! inflates into a fresh buffer.
//!
//! Ownership rules:
//!
//! * A value is serialized **once**, directly into a
//!   [`PayloadBuilder`]'s buffer; sealing freezes that buffer in place
//!   (no copy on the uncompressed path).
//! * Every consumer after the seal point — shuffle buckets, the disk
//!   spill tier, broadcast entries, fetch results — shares the frame by
//!   refcount (`Payload: Clone` is a pointer bump, never a copy).
//! * Byte **accounting** is always in declared (logical) bytes, never
//!   wire bytes: turning compression on changes what moves, not what
//!   the staging/spill/broadcast ledgers say. Wire sizes are reported
//!   separately for the cost model.

use bytes::{BufMut, Bytes, BytesMut};

use crate::error::JobError;

/// Frame tag: body is the raw encoded stream.
const TAG_RAW: u8 = 0;
/// Frame tag: body is LZ4-style compressed.
const TAG_LZ4: u8 = 1;
/// Frame header length: 1 tag byte + 8 raw-length bytes.
pub const FRAME_HEADER: usize = 9;

/// Compression applied at the single seal point of the data plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Compression {
    /// Frames carry the encoded stream verbatim (the default): sealing
    /// and opening are both zero-copy.
    #[default]
    None,
    /// Frames carry an LZ4-style compressed body when that is smaller
    /// than the raw stream (incompressible frames fall back to raw).
    Lz4,
}

/// An immutable, refcounted data-plane frame. Cloning is a refcount
/// bump; [`Payload::open`] on an uncompressed frame is a zero-copy
/// slice of the same allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Payload {
    frame: Bytes,
}

impl Payload {
    /// Seal an already-materialized raw stream into a frame. This
    /// copies `raw` once (into the framed buffer); production encode
    /// paths avoid even that by writing through [`PayloadBuilder`].
    pub fn seal(raw: Bytes, compression: Compression) -> Payload {
        let mut b = PayloadBuilder::with_capacity(raw.len());
        b.buf().extend_from_slice(&raw);
        b.seal(compression)
    }

    /// Rehydrate a frame received as opaque bytes (e.g. read back from
    /// a disk tier). Validates the header; an LZ4 body is only fully
    /// validated when opened.
    pub fn from_frame(frame: Bytes) -> Result<Payload, JobError> {
        if frame.len() < FRAME_HEADER {
            return Err(JobError::Codec(format!(
                "payload frame truncated: {} bytes < {FRAME_HEADER}-byte header",
                frame.len()
            )));
        }
        let tag = frame[0];
        let raw_len = frame_raw_len(&frame);
        match tag {
            TAG_RAW => {
                if frame.len() - FRAME_HEADER != raw_len as usize {
                    return Err(JobError::Codec(format!(
                        "raw payload body is {} bytes but header declares {raw_len}",
                        frame.len() - FRAME_HEADER
                    )));
                }
            }
            TAG_LZ4 => {}
            other => {
                return Err(JobError::Codec(format!("unknown payload tag {other}")));
            }
        }
        Ok(Payload { frame })
    }

    /// The encoded-stream length in bytes (before compression).
    pub fn raw_len(&self) -> u64 {
        frame_raw_len(&self.frame)
    }

    /// The on-wire frame length in bytes (header + body as stored).
    pub fn wire_len(&self) -> u64 {
        self.frame.len() as u64
    }

    /// Whether the body is stored compressed.
    pub fn is_compressed(&self) -> bool {
        self.frame[0] == TAG_LZ4
    }

    /// Wire bytes to report to the cost model for a transfer that
    /// declares `declared` logical bytes: the actual frame length when
    /// the frame is compressed *and* the declaration matches the raw
    /// stream (so the measured ratio is meaningful), else 0 — which
    /// tells the model to fall back to its assumed compression ratio
    /// over the declared bytes (virtual payloads declare logical sizes
    /// far above their wire form, and uncompressed runs keep the
    /// pre-existing modeled costs).
    pub fn wire_hint(&self, declared: u64) -> u64 {
        if self.is_compressed() && declared == self.raw_len() {
            self.wire_len()
        } else {
            0
        }
    }

    /// The whole frame, for shipping or spilling verbatim. Refcount
    /// bump, no copy.
    pub fn frame(&self) -> Bytes {
        self.frame.clone()
    }

    /// Recover the raw encoded stream. Uncompressed frames return a
    /// zero-copy slice of the frame allocation; compressed frames
    /// inflate into a fresh buffer (with full bounds checking — a
    /// corrupted body yields [`JobError::Codec`], never a panic).
    pub fn open(&self) -> Result<Bytes, JobError> {
        let raw_len = frame_raw_len(&self.frame) as usize;
        match self.frame[0] {
            TAG_RAW => Ok(self.frame.slice(FRAME_HEADER..)),
            TAG_LZ4 => {
                let body = &self.frame[FRAME_HEADER..];
                Ok(Bytes::from(lz_decompress(body, raw_len)?))
            }
            // Unreachable: construction validates the tag.
            other => Err(JobError::Codec(format!("unknown payload tag {other}"))),
        }
    }
}

fn frame_raw_len(frame: &Bytes) -> u64 {
    let mut n = [0u8; 8];
    n.copy_from_slice(&frame[1..FRAME_HEADER]);
    u64::from_le_bytes(n)
}

/// Builds a frame in place: the header is reserved up front so encoders
/// append the record stream directly into the final allocation, and
/// [`PayloadBuilder::seal`] freezes it without copying (unless the body
/// compresses, in which case the smaller image replaces it).
#[derive(Debug)]
pub struct PayloadBuilder {
    buf: BytesMut,
}

impl Default for PayloadBuilder {
    fn default() -> Self {
        PayloadBuilder::with_capacity(0)
    }
}

impl PayloadBuilder {
    /// A builder with room for `raw_capacity` body bytes.
    pub fn with_capacity(raw_capacity: usize) -> PayloadBuilder {
        let mut buf = BytesMut::with_capacity(FRAME_HEADER + raw_capacity);
        buf.put_u8(TAG_RAW);
        buf.put_u64_le(0);
        PayloadBuilder { buf }
    }

    /// The body buffer encoders append to.
    pub fn buf(&mut self) -> &mut BytesMut {
        &mut self.buf
    }

    /// Bytes of body appended so far.
    pub fn raw_len(&self) -> usize {
        self.buf.len() - FRAME_HEADER
    }

    /// Freeze into a [`Payload`]. With [`Compression::None`] this is
    /// zero-copy (header fix-up + freeze). With [`Compression::Lz4`]
    /// the body is compressed and kept only if strictly smaller.
    pub fn seal(mut self, compression: Compression) -> Payload {
        let raw_len = (self.buf.len() - FRAME_HEADER) as u64;
        if compression == Compression::Lz4 {
            let packed = lz_compress(&self.buf[FRAME_HEADER..]);
            if (packed.len() as u64) < raw_len {
                let mut frame = BytesMut::with_capacity(FRAME_HEADER + packed.len());
                frame.put_u8(TAG_LZ4);
                frame.put_u64_le(raw_len);
                frame.extend_from_slice(&packed);
                return Payload {
                    frame: frame.freeze(),
                };
            }
        }
        self.buf[1..FRAME_HEADER].copy_from_slice(&raw_len.to_le_bytes());
        Payload {
            frame: self.buf.freeze(),
        }
    }
}

// ---------------------------------------------------------------------
// LZ4-style block codec (self-contained; no external crates).
//
// Sequence format, patterned on the LZ4 block spec: a token byte whose
// high nibble is the literal-run length and low nibble is the match
// length minus 4 (each nibble saturates at 15 and extends with 255-run
// bytes), the literals, a 2-byte little-endian back-reference offset,
// then the match-length extension. The final sequence is literals-only.
// ---------------------------------------------------------------------

const MIN_MATCH: usize = 4;
const HASH_BITS: u32 = 13;
const MAX_OFFSET: usize = 0xFFFF;

#[inline]
fn hash4(v: u32) -> usize {
    (v.wrapping_mul(2_654_435_761) >> (32 - HASH_BITS)) as usize
}

#[inline]
fn read_u32(s: &[u8], i: usize) -> u32 {
    u32::from_le_bytes([s[i], s[i + 1], s[i + 2], s[i + 3]])
}

fn put_len_ext(out: &mut Vec<u8>, mut rest: usize) {
    while rest >= 255 {
        out.push(255);
        rest -= 255;
    }
    out.push(rest as u8);
}

fn put_sequence(out: &mut Vec<u8>, literals: &[u8], offset: usize, match_len: usize) {
    let lit = literals.len();
    let ml = match_len - MIN_MATCH;
    out.push(((lit.min(15) as u8) << 4) | ml.min(15) as u8);
    if lit >= 15 {
        put_len_ext(out, lit - 15);
    }
    out.extend_from_slice(literals);
    out.extend_from_slice(&(offset as u16).to_le_bytes());
    if ml >= 15 {
        put_len_ext(out, ml - 15);
    }
}

fn put_literal_run(out: &mut Vec<u8>, literals: &[u8]) {
    // An empty final run carries no information, and omitting it keeps
    // truncation detectable: every proper prefix of a stream now either
    // cuts a sequence or drops decoded bytes, so the decoder's length
    // check always fires.
    if literals.is_empty() {
        return;
    }
    let lit = literals.len();
    out.push((lit.min(15) as u8) << 4);
    if lit >= 15 {
        put_len_ext(out, lit - 15);
    }
    out.extend_from_slice(literals);
}

/// Greedy single-pass compressor over 4-byte hash candidates.
pub(crate) fn lz_compress(src: &[u8]) -> Vec<u8> {
    let n = src.len();
    let mut out = Vec::with_capacity(n / 2 + 16);
    if n < MIN_MATCH {
        put_literal_run(&mut out, src);
        return out;
    }
    // Candidate positions, stored +1 so 0 means "empty slot".
    let mut table = vec![0usize; 1 << HASH_BITS];
    let match_limit = n - MIN_MATCH;
    let mut anchor = 0usize;
    let mut i = 0usize;
    while i <= match_limit {
        let here = read_u32(src, i);
        let slot = &mut table[hash4(here)];
        let cand = *slot;
        *slot = i + 1;
        if cand != 0 {
            let c = cand - 1;
            if i - c <= MAX_OFFSET && read_u32(src, c) == here {
                let mut len = MIN_MATCH;
                while i + len < n && src[c + len] == src[i + len] {
                    len += 1;
                }
                put_sequence(&mut out, &src[anchor..i], i - c, len);
                i += len;
                anchor = i;
                continue;
            }
        }
        i += 1;
    }
    put_literal_run(&mut out, &src[anchor..]);
    out
}

/// Fully bounds-checked decompressor: any truncation, overrun, or
/// invalid back-reference yields [`JobError::Codec`].
pub(crate) fn lz_decompress(src: &[u8], raw_len: usize) -> Result<Vec<u8>, JobError> {
    fn err(msg: &str) -> JobError {
        JobError::Codec(format!("lz4 body: {msg}"))
    }
    // Cap the up-front allocation; a lying header cannot OOM us because
    // growth past this point comes from actual decoded bytes.
    let mut out = Vec::with_capacity(raw_len.min(1 << 26));
    let mut i = 0usize;
    while i < src.len() {
        let token = src[i];
        i += 1;
        let mut lit = (token >> 4) as usize;
        if lit == 15 {
            loop {
                let b = *src.get(i).ok_or_else(|| err("truncated literal length"))?;
                i += 1;
                lit += b as usize;
                if b != 255 {
                    break;
                }
            }
        }
        let lit_end = i
            .checked_add(lit)
            .ok_or_else(|| err("literal length overflow"))?;
        if lit_end > src.len() {
            return Err(err("literal run past end of input"));
        }
        if out.len() + lit > raw_len {
            return Err(err("decoded past declared length"));
        }
        out.extend_from_slice(&src[i..lit_end]);
        i = lit_end;
        if i == src.len() {
            // Final literals-only sequence.
            break;
        }
        if i + 2 > src.len() {
            return Err(err("truncated match offset"));
        }
        let offset = u16::from_le_bytes([src[i], src[i + 1]]) as usize;
        i += 2;
        if offset == 0 || offset > out.len() {
            return Err(err("match offset out of range"));
        }
        let mut match_len = (token & 0x0F) as usize + MIN_MATCH;
        if token & 0x0F == 0x0F {
            loop {
                let b = *src.get(i).ok_or_else(|| err("truncated match length"))?;
                i += 1;
                match_len += b as usize;
                if b != 255 {
                    break;
                }
            }
        }
        if out.len() + match_len > raw_len {
            return Err(err("decoded past declared length"));
        }
        // Byte-at-a-time: matches may overlap their own output (RLE).
        let start = out.len() - offset;
        for k in start..start + match_len {
            let b = out[k];
            out.push(b);
        }
    }
    if out.len() != raw_len {
        return Err(err(&format!(
            "decoded {} bytes, header declared {raw_len}",
            out.len()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sealed(data: &[u8], compression: Compression) -> Payload {
        let mut b = PayloadBuilder::with_capacity(data.len());
        b.buf().extend_from_slice(data);
        b.seal(compression)
    }

    /// Deterministic pseudo-random bytes (xorshift64*).
    fn noise(n: usize, mut state: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let word = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            out.extend_from_slice(&word.to_le_bytes());
        }
        out.truncate(n);
        out
    }

    #[test]
    fn raw_roundtrip_is_a_slice_of_the_frame() {
        let p = sealed(b"hello payload", Compression::None);
        assert!(!p.is_compressed());
        assert_eq!(p.raw_len(), 13);
        assert_eq!(p.wire_len(), 13 + FRAME_HEADER as u64);
        let opened = p.open().unwrap();
        assert_eq!(&opened[..], b"hello payload");
        // Zero-copy: the opened body points into the frame allocation.
        let frame = p.frame();
        assert_eq!(
            opened.as_ptr() as usize,
            frame.as_ptr() as usize + FRAME_HEADER
        );
    }

    #[test]
    fn clone_shares_the_allocation() {
        let p = sealed(&noise(4096, 7), Compression::None);
        let q = p.clone();
        assert_eq!(p.frame().as_ptr(), q.frame().as_ptr());
    }

    #[test]
    fn compressible_data_shrinks_and_roundtrips() {
        let mut data = Vec::new();
        for i in 0..2000u64 {
            data.extend_from_slice(&(i % 17).to_le_bytes());
        }
        let p = sealed(&data, Compression::Lz4);
        assert!(p.is_compressed(), "periodic data must compress");
        assert!(p.wire_len() < p.raw_len());
        assert_eq!(&p.open().unwrap()[..], &data[..]);
    }

    #[test]
    fn incompressible_data_falls_back_to_raw() {
        let data = noise(4096, 99);
        let p = sealed(&data, Compression::Lz4);
        assert!(!p.is_compressed(), "noise must not grow the frame");
        assert_eq!(&p.open().unwrap()[..], &data[..]);
    }

    #[test]
    fn empty_and_tiny_payloads_roundtrip() {
        for compression in [Compression::None, Compression::Lz4] {
            for len in 0..24usize {
                let data: Vec<u8> = (0..len as u8).collect();
                let p = sealed(&data, compression);
                assert_eq!(p.raw_len(), len as u64);
                assert_eq!(&p.open().unwrap()[..], &data[..], "len {len}");
            }
        }
    }

    #[test]
    fn long_runs_exercise_length_extensions() {
        // >15 literals, then a match far longer than 15+4.
        let mut data = noise(300, 3);
        data.extend(std::iter::repeat_n(0xAB, 5000));
        let p = sealed(&data, Compression::Lz4);
        assert!(p.is_compressed());
        assert_eq!(&p.open().unwrap()[..], &data[..]);
    }

    #[test]
    fn from_frame_validates_headers() {
        assert!(Payload::from_frame(Bytes::from_static(b"")).is_err());
        assert!(Payload::from_frame(Bytes::from_static(b"\x00\x01\x00")).is_err());
        // Unknown tag.
        let mut bad = vec![7u8];
        bad.extend_from_slice(&0u64.to_le_bytes());
        assert!(Payload::from_frame(Bytes::from(bad)).is_err());
        // Raw frame whose body length disagrees with the header.
        let mut lying = vec![TAG_RAW];
        lying.extend_from_slice(&100u64.to_le_bytes());
        lying.extend_from_slice(b"abc");
        assert!(Payload::from_frame(Bytes::from(lying)).is_err());
        // A good frame survives the trip through from_frame.
        let p = sealed(b"ok", Compression::None);
        let back = Payload::from_frame(p.frame()).unwrap();
        assert_eq!(&back.open().unwrap()[..], b"ok");
    }

    #[test]
    fn corrupted_compressed_bodies_error_not_panic() {
        let mut data = Vec::new();
        for i in 0..500u64 {
            data.extend_from_slice(&(i % 5).to_le_bytes());
        }
        let p = sealed(&data, Compression::Lz4);
        assert!(p.is_compressed());
        let frame = p.frame();
        // Truncate the body at every length and flip bytes at every
        // position: decode must return Codec errors or wrong-but-sized
        // data, never panic. (Length mismatches are always caught.)
        for cut in FRAME_HEADER..frame.len() {
            let trunc = Payload::from_frame(frame.slice(..cut));
            if let Ok(t) = trunc {
                let _ = t.open();
            }
        }
        for pos in FRAME_HEADER..frame.len() {
            let mut bent = frame.to_vec();
            bent[pos] ^= 0x5A;
            if let Ok(b) = Payload::from_frame(Bytes::from(bent)) {
                let _ = b.open();
            }
        }
    }

    #[test]
    fn decompress_rejects_overrun_and_bad_offsets() {
        // Offset 0 is invalid.
        let bad_offset = [0x40u8, b'a', b'b', b'c', b'd', 0, 0];
        assert!(lz_decompress(&bad_offset, 100).is_err());
        // Offset beyond what has been decoded so far.
        let far_offset = [0x40u8, b'a', b'b', b'c', b'd', 9, 0];
        assert!(lz_decompress(&far_offset, 100).is_err());
        // Declared length smaller than the literal run.
        let long_lits = [0x40u8, b'a', b'b', b'c', b'd'];
        assert!(lz_decompress(&long_lits, 2).is_err());
    }
}
