//! The driver-side context: executors, shared services, and task state.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use cluster_model::{KernelInvocation, TaskRecord, TickCharger};
use par_pool::{Clock, SystemClock, VirtualClock};
use parking_lot::Mutex;

use crate::broadcast::{Broadcast, BroadcastStore};
use crate::codec::Storable;
use crate::config::SparkConf;
use crate::dag::ShuffleRegistry;
use crate::metrics::EventLog;
use crate::partitioner::{HashPartitioner, Partitioner};
use crate::rdd::{Key, Rdd, ShufVal};
use crate::scheduler::FaultPlan;
use crate::shuffle::ShuffleManager;
use crate::sim::{ChaosEvent, ChaosPolicy, SimRng};
use crate::storage::BlockStore;
use crate::transport::{ExecutorManager, TransportMode};
use crate::Data;

/// One simulated cluster node: a worker pool plus its block store.
pub struct Executor {
    /// Node index.
    pub node: usize,
    /// Worker pool executing this node's tasks.
    pub pool: par_pool::Pool,
    /// This node's cached-partition store.
    pub store: BlockStore,
}

pub(crate) struct CtxInner {
    pub conf: SparkConf,
    pub executors: Vec<Executor>,
    pub shuffle: ShuffleManager,
    pub bcast: Arc<BroadcastStore>,
    pub log: Mutex<EventLog>,
    pub faults: Mutex<FaultPlan>,
    ids: AtomicU64,
    pub stage_ordinal: AtomicU64,
    /// Per-shuffle materialization latches (exactly-once in-flight
    /// dedup across branches and concurrent jobs).
    pub registry: ShuffleRegistry,
    /// Engine-counter watermarks: totals already attributed to a stage
    /// record. The next stage to finish claims the delta under this one
    /// mutex, so between-stage GC releases still land in the event log
    /// and concurrently completing stages claim disjoint slices.
    pub claim_marks: Mutex<ClaimMarks>,
    /// Stages currently in flight (driver-wide gauge).
    pub stages_in_flight: AtomicU64,
    /// High-water mark of [`CtxInner::stages_in_flight`].
    pub peak_stages_in_flight: AtomicU64,
    /// The context's time source: wall clock normally, the virtual
    /// clock in sim mode.
    pub clock: Arc<dyn Clock>,
    /// Concrete handle on the virtual clock when in sim mode (the
    /// simulated scheduler advances it explicitly).
    pub vclock: Option<Arc<VirtualClock>>,
    /// Seeded scheduler state, present iff `conf.sim_seed` is set.
    pub sim: Option<SimState>,
    /// Installed chaos policy, consulted per task attempt.
    pub chaos: Mutex<Option<ChaosPolicy>>,
    /// Whole-job resubmissions taken after fetch failures.
    pub stage_resubmissions: AtomicU64,
    /// Executor subprocess manager, present iff the conf selects a
    /// wire transport. Shared with the shuffle manager (remote bucket
    /// routing) and every broadcast (per-executor distribution).
    pub remote: Option<Arc<ExecutorManager>>,
}

/// Deterministic-mode scheduler state: the seeded pick stream and the
/// virtual-time cost charger.
pub(crate) struct SimState {
    /// Stream behind every "which ready item next" choice.
    pub rng: Mutex<SimRng>,
    /// Converts task records into logical milliseconds.
    pub charger: TickCharger,
}

/// Watermarks of engine counters already attributed to stage records.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ClaimMarks {
    pub zombies: u64,
    pub released: u64,
    pub storage: StorageTotals,
}

/// Snapshot of the cache-behaviour counters summed over every node's
/// block store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageTotals {
    /// Reads served from either tier (memory + disk hits).
    pub cache_hits: u64,
    /// Reads that found the partition in neither tier.
    pub cache_misses: u64,
    /// Bytes serialized into the disk tier (spills + DiskOnly puts).
    pub spilled_bytes: u64,
    /// Bytes of blocks dropped under pressure (recompute-backed).
    pub evicted_bytes: u64,
    /// Lineage recomputations of dropped blocks.
    pub recomputes: u64,
}

/// The entry point: create one per simulated cluster. Cheap to clone
/// (shared handle), like Spark's `SparkContext`.
#[derive(Clone)]
pub struct SparkContext {
    pub(crate) inner: Arc<CtxInner>,
}

impl SparkContext {
    /// Build a context (spawns the executor pools, and — under a wire
    /// transport — the executor subprocesses).
    pub fn new(conf: SparkConf) -> Self {
        assert!(conf.executors >= 1);
        assert!(
            conf.transport == TransportMode::InProcess || conf.sim_seed.is_none(),
            "deterministic simulation requires the in-process transport"
        );
        let remote = match conf.transport {
            TransportMode::InProcess => None,
            mode => Some(Arc::new(
                ExecutorManager::launch(mode, conf.executors)
                    .unwrap_or_else(|e| panic!("launch executor subprocesses: {e}")),
            )),
        };
        let vclock = conf.sim_seed.map(|_| Arc::new(VirtualClock::new()));
        let clock: Arc<dyn Clock> = match &vclock {
            Some(v) => Arc::clone(v) as Arc<dyn Clock>,
            None => Arc::new(SystemClock::new()),
        };
        let sim = conf.sim_seed.map(|seed| SimState {
            rng: Mutex::new(SimRng::new(seed)),
            charger: TickCharger::default(),
        });
        let executors = (0..conf.executors)
            .map(|node| Executor {
                node,
                pool: par_pool::Pool::builder()
                    .threads(conf.worker_threads.min(conf.executor_cores).max(1))
                    .name_prefix(format!("exec-{node}"))
                    .clock(Arc::clone(&clock))
                    .build(),
                store: BlockStore::new(node, conf.executor_memory, conf.disk_capacity)
                    .with_compression(conf.compression),
            })
            .collect();
        let mut shuffle = ShuffleManager::new(conf.executors, conf.staging_capacity);
        if let Some(manager) = &remote {
            shuffle = shuffle.with_remote(Arc::clone(manager));
        }
        SparkContext {
            inner: Arc::new(CtxInner {
                executors,
                shuffle,
                bcast: Arc::new(BroadcastStore::default()),
                log: Mutex::new(EventLog::default()),
                faults: Mutex::new(FaultPlan::default()),
                ids: AtomicU64::new(1),
                stage_ordinal: AtomicU64::new(0),
                registry: ShuffleRegistry::default(),
                claim_marks: Mutex::new(ClaimMarks::default()),
                stages_in_flight: AtomicU64::new(0),
                peak_stages_in_flight: AtomicU64::new(0),
                clock,
                vclock,
                sim,
                chaos: Mutex::new(None),
                stage_resubmissions: AtomicU64::new(0),
                remote,
                conf,
            }),
        }
    }

    /// The configuration this context was built with.
    pub fn conf(&self) -> &SparkConf {
        &self.inner.conf
    }

    /// Number of executors (simulated nodes).
    pub fn num_executors(&self) -> usize {
        self.inner.conf.executors
    }

    pub(crate) fn next_id(&self) -> u64 {
        self.inner.ids.fetch_add(1, Ordering::Relaxed)
    }

    /// Create a pair RDD from driver-side data, hash-partitioned into
    /// `partitions` (defaults to the configured partition count).
    pub fn parallelize<K: Key, V: ShufVal>(
        &self,
        data: Vec<(K, V)>,
        partitions: Option<usize>,
    ) -> Rdd<K, V> {
        let parts = partitions.unwrap_or(self.inner.conf.default_partitions);
        self.parallelize_with(data, parts, Arc::new(HashPartitioner))
    }

    /// Create a pair RDD with an explicit partitioner.
    pub fn parallelize_with<K: Key, V: ShufVal>(
        &self,
        data: Vec<(K, V)>,
        partitions: usize,
        partitioner: Arc<dyn Partitioner<K>>,
    ) -> Rdd<K, V> {
        Rdd::parallelize(self.clone(), data, partitions, partitioner)
    }

    /// Union several RDDs (partitions concatenate; no shuffle).
    pub fn union<K: Key, V: ShufVal>(&self, rdds: Vec<Rdd<K, V>>) -> Rdd<K, V> {
        assert!(!rdds.is_empty(), "union of zero RDDs");
        let mut iter = rdds.into_iter();
        let first = iter.next().unwrap();
        iter.fold(first, |acc, r| acc.union(&r))
    }

    /// Ship a value to all executors through shared storage (the CB
    /// transport). Driver traffic is *not* logged here — the CB driver
    /// loop logs it per stage via [`SparkContext::log_driver_traffic`].
    pub fn broadcast<T: Data + Storable>(&self, value: &T) -> Broadcast<T> {
        Broadcast::create(
            self.next_id(),
            value,
            Arc::clone(&self.inner.bcast),
            self.inner.conf.compression,
            self.inner.remote.clone(),
        )
    }

    /// Append a driver-only pseudo-stage carrying collect/broadcast
    /// byte volumes (the CB pattern's serial phase).
    pub fn log_driver_traffic(&self, label: &str, collect_bytes: u64, broadcast_bytes: u64) {
        self.inner.log.lock().push(
            label.to_string(),
            cluster_model::StageRecord {
                stage_id: self.alloc_stage_ordinal(),
                tasks: vec![],
                collect_bytes,
                broadcast_bytes,
                ..Default::default()
            },
        );
    }

    /// Record an adaptive re-plan decision against the next stage
    /// ordinal: every stage launched after this call ran under the new
    /// plan. Only meaningful when
    /// [`crate::SparkConf::adaptive_execution`] is set, but always
    /// safe to call.
    pub fn log_adaptive_decision(&self, iteration: u64, action: &str, reason: &str) {
        self.inner
            .log
            .lock()
            .push_decision(crate::metrics::AdaptiveDecision {
                at_stage: self.next_stage_ordinal(),
                iteration,
                action: action.to_string(),
                reason: reason.to_string(),
            });
    }

    /// Run `f` over a snapshot view of the event log.
    pub fn with_event_log<R>(&self, f: impl FnOnce(&EventLog) -> R) -> R {
        f(&self.inner.log.lock())
    }

    /// Drain the event log (between benchmark configurations).
    pub fn take_event_log(&self) -> Vec<crate::metrics::StageEvent> {
        self.inner.log.lock().take()
    }

    /// Drop all shuffle data and reset staging accounting. Safe once
    /// downstream RDDs have been checkpointed (their lineage no longer
    /// reaches the dropped shuffles).
    pub fn clear_shuffles(&self) {
        self.inner.shuffle.clear();
    }

    /// Currently staged shuffle bytes on `node`.
    pub fn staged_bytes(&self, node: usize) -> u64 {
        self.inner.shuffle.staged_bytes(node)
    }

    /// High-water mark of staged shuffle bytes on `node` over the
    /// context's lifetime (for calibrating staging capacities).
    pub fn peak_staged_bytes(&self, node: usize) -> u64 {
        self.inner.shuffle.peak_staged_bytes(node)
    }

    /// Total late (zombie-attempt) shuffle writes dropped by attempt
    /// fencing since the context was created.
    pub fn zombie_writes_fenced(&self) -> u64 {
        self.inner.shuffle.zombie_writes_fenced()
    }

    /// Total staged bytes released back (shuffle GC plus retry
    /// reconciliation) since the context was created.
    pub fn staged_released_bytes(&self) -> u64 {
        self.inner.shuffle.staged_released_bytes()
    }

    /// Inject a failure: the task for `partition` of the `stage`-th
    /// stage (0-based global ordinal) fails `times` times before
    /// succeeding — exercising lineage-based retry.
    pub fn inject_failure(&self, stage: u64, partition: usize, times: usize) {
        self.inner.faults.lock().add(stage, partition, times);
    }

    /// Inject a failure into *every* stage: the task for `partition`
    /// fails `times` times per stage before succeeding (a standing
    /// chaos rule for fault-tolerance stress tests).
    pub fn inject_failure_every_stage(&self, partition: usize, times: usize) {
        self.inner.faults.lock().add_every_stage(partition, times);
    }

    /// Global ordinal the *next* stage will get.
    pub fn next_stage_ordinal(&self) -> u64 {
        self.inner.stage_ordinal.load(Ordering::Relaxed)
    }

    /// Allocate the next stage ordinal (DAG event loop / action
    /// submitters — taken at launch so ordinals follow launch order).
    pub(crate) fn alloc_stage_ordinal(&self) -> u64 {
        self.inner.stage_ordinal.fetch_add(1, Ordering::Relaxed)
    }

    /// Note a stage entering flight; returns the gauge *including* the
    /// new stage (recorded as the stage's achieved concurrency) and
    /// advances the high-water mark.
    pub(crate) fn stage_launched(&self) -> u64 {
        let now = self.inner.stages_in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.inner
            .peak_stages_in_flight
            .fetch_max(now, Ordering::Relaxed);
        now
    }

    /// Note a stage leaving flight.
    pub(crate) fn stage_finished(&self) {
        self.inner.stages_in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// High-water mark of simultaneously in-flight stages over the
    /// context's lifetime (the DAG scheduler's achieved concurrency).
    pub fn peak_concurrent_stages(&self) -> u64 {
        self.inner.peak_stages_in_flight.load(Ordering::Relaxed)
    }

    /// Currently cached memory-tier bytes on `node`.
    pub fn cached_bytes(&self, node: usize) -> u64 {
        self.inner.executors[node].store.used_bytes()
    }

    /// Currently cached disk-tier bytes on `node` (declared sizes of
    /// spilled/`DiskOnly` blocks).
    pub fn cached_disk_bytes(&self, node: usize) -> u64 {
        self.inner.executors[node].store.disk_used_bytes()
    }

    /// High-water mark of cached memory-tier bytes on `node` over the
    /// context's lifetime (for calibrating executor memory).
    pub fn peak_cached_bytes(&self, node: usize) -> u64 {
        self.inner.executors[node].store.peak_used_bytes()
    }

    /// Cache-behaviour counters summed over every node's block store
    /// since the context was created.
    pub fn storage_totals(&self) -> StorageTotals {
        let mut t = StorageTotals::default();
        for e in &self.inner.executors {
            t.cache_hits += e.store.mem_hits() + e.store.disk_hits();
            t.cache_misses += e.store.cache_misses();
            t.spilled_bytes += e.store.spilled_bytes_total();
            t.evicted_bytes += e.store.evicted_bytes_total();
            t.recomputes += e.store.recomputes_total();
        }
        t
    }

    /// Total cache puts dropped by attempt fencing (zombie checkpoint
    /// tasks) since the context was created.
    pub fn fenced_cache_puts(&self) -> u64 {
        self.inner
            .executors
            .iter()
            .map(|e| e.store.fenced_puts_total())
            .sum()
    }

    /// `true` when this context runs in deterministic simulation mode
    /// ([`SparkConf::with_sim_seed`]).
    pub fn is_deterministic(&self) -> bool {
        self.inner.sim.is_some()
    }

    /// The context's time source (virtual in sim mode).
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.inner.clock
    }

    /// Milliseconds since the context was created: wall time normally,
    /// logical time in sim mode.
    pub fn now_ms(&self) -> u64 {
        self.inner.clock.now_ms()
    }

    /// Install a seeded [`ChaosPolicy`]; every subsequent task attempt
    /// consults it. Replaces any previous policy.
    pub fn install_chaos(&self, policy: ChaosPolicy) {
        *self.inner.chaos.lock() = Some(policy);
    }

    /// Remove any installed [`ChaosPolicy`]; later jobs run clean.
    pub fn clear_chaos(&self) {
        *self.inner.chaos.lock() = None;
    }

    /// Kill executor `node`: its cached blocks vanish (recomputable
    /// ones recompute from lineage; others surface `MissingBlock`) and
    /// its staged map outputs become unfetchable (reduces see
    /// [`crate::JobError::FetchFailed`], triggering map-stage
    /// resubmission). In-process, the pool survives — the model is an
    /// instantly-restarted executor with empty local state. Under a
    /// wire transport the kill is *real*: the node's subprocess gets a
    /// `SIGKILL`, is reaped, and a fresh empty executor is spawned and
    /// handshaken in its place before this returns.
    pub fn kill_executor(&self, node: usize) -> ExecutorLoss {
        // SIGKILL the subprocess first (no lock interleaving: the slot
        // lock is never held together with the shuffle lock here), so
        // by the time the driver ledger marks buckets lost, the bytes
        // that backed them are genuinely gone.
        if let Some(manager) = &self.inner.remote {
            manager
                .kill_respawn(node)
                .unwrap_or_else(|e| panic!("kill executor {node}: {e}"));
        }
        let (cached_mem_bytes, cached_disk_bytes) = self.inner.executors[node].store.wipe();
        let (map_buckets_lost, map_bytes_lost) = self.inner.shuffle.drop_node_outputs(node);
        ExecutorLoss {
            node,
            cached_mem_bytes,
            cached_disk_bytes,
            map_buckets_lost,
            map_bytes_lost,
        }
    }

    /// Staged bytes written off as lost with their executor (distinct
    /// from [`SparkContext::staged_released_bytes`], which counts
    /// orderly reconciliation).
    pub fn staged_lost_bytes(&self) -> u64 {
        self.inner.shuffle.staged_lost_bytes()
    }

    /// Whole-job resubmissions taken after fetch failures since the
    /// context was created.
    pub fn stage_resubmissions(&self) -> u64 {
        self.inner.stage_resubmissions.load(Ordering::Relaxed)
    }

    /// Live shuffle-materialization latches. Latches are dropped with
    /// their owning wide RDD, so a finished — or cancelled — job must
    /// leave none of its own behind; tests use this to prove a
    /// cancelled tenant released its lineage.
    pub fn active_shuffle_latches(&self) -> usize {
        self.inner.registry.len()
    }

    /// Cross-check every manager's running counters against a recount
    /// of its actual state: the shuffle staging ledger and each node's
    /// block-store tier accounting. The simulation harness calls this
    /// after every scenario; an `Err` names the first discrepancy.
    pub fn audit(&self) -> Result<(), String> {
        self.inner.shuffle.audit()?;
        for (node, ex) in self.inner.executors.iter().enumerate() {
            ex.store.audit().map_err(|e| format!("node {node}: {e}"))?;
        }
        // Under a wire transport, also verify every executor subprocess
        // is alive (reaping any that died behind the driver's back) and
        // that each one's bucket inventory matches the driver ledger.
        if let Some(manager) = &self.inner.remote {
            manager.audit(Some(&self.inner.shuffle.bucket_counts()))?;
        }
        Ok(())
    }

    /// Shut down executor subprocesses in an orderly way, returning
    /// each child's exit code (0 = clean). In-process mode has no
    /// subprocesses and returns an empty list; so does a second call
    /// (shutdown is idempotent, and dropping the context performs it
    /// implicitly — no zombies or orphans either way).
    pub fn shutdown(&self) -> Result<Vec<i32>, String> {
        match &self.inner.remote {
            Some(manager) => manager.shutdown(),
            None => Ok(Vec::new()),
        }
    }

    /// Measured `(sent, received)` wire bytes the driver exchanged
    /// with `node`'s executor subprocess. Zero in in-process mode —
    /// these counters exist only where a real socket does.
    pub fn wire_bytes(&self, node: usize) -> (u64, u64) {
        match &self.inner.remote {
            Some(manager) => manager.wire_bytes(node),
            None => (0, 0),
        }
    }

    /// Measured `(sent, received)` wire bytes summed over every
    /// executor subprocess.
    pub fn total_wire_bytes(&self) -> (u64, u64) {
        match &self.inner.remote {
            Some(manager) => manager.total_wire_bytes(),
            None => (0, 0),
        }
    }

    /// Executor subprocesses SIGKILLed and respawned so far (0 in
    /// in-process mode).
    pub fn executor_respawns(&self) -> u64 {
        self.inner.remote.as_ref().map_or(0, |m| m.respawns())
    }

    /// OS pid of `node`'s executor subprocess (`None` in-process or
    /// after shutdown). For tests that kill executors externally.
    pub fn executor_pid(&self, node: usize) -> Option<u32> {
        self.inner
            .remote
            .as_ref()
            .and_then(|m| m.executor_pid(node))
    }

    /// Seeded pick in `0..n` (sim-mode schedulers). Falls back to 0
    /// outside sim mode — callers gate on [`SparkContext::is_deterministic`].
    pub(crate) fn sim_draw(&self, n: usize) -> usize {
        match &self.inner.sim {
            Some(sim) if n > 0 => sim.rng.lock().pick(n),
            _ => 0,
        }
    }

    /// The chaos verdict for one task attempt, if a policy is
    /// installed.
    pub(crate) fn chaos_event(
        &self,
        stage: u64,
        partition: usize,
        attempt: u64,
    ) -> Option<ChaosEvent> {
        self.inner
            .chaos
            .lock()
            .as_mut()
            .and_then(|p| p.event_for(stage, partition, attempt))
    }

    /// Note a fetch-failure-driven resubmission of `shuffle`: reopen
    /// its latch so the next planning pass re-runs the map stage.
    pub(crate) fn note_stage_resubmission(&self, shuffle: u64) {
        self.inner.registry.invalidate(shuffle);
        self.inner
            .stage_resubmissions
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// What [`SparkContext::kill_executor`] destroyed, for assertions and
/// logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorLoss {
    /// The executor that died.
    pub node: usize,
    /// Memory-tier cached bytes wiped.
    pub cached_mem_bytes: u64,
    /// Disk-tier cached bytes wiped.
    pub cached_disk_bytes: u64,
    /// Staged map-output buckets lost.
    pub map_buckets_lost: u64,
    /// Staged map-output bytes lost.
    pub map_bytes_lost: u64,
}

/// A driver-visible, add-only counter that tasks update — Spark's
/// `LongAccumulator`. As in Spark, updates from retried tasks are
/// counted again (accumulators are for metrics, not exact algebra).
#[derive(Clone)]
pub struct Accumulator {
    name: Arc<String>,
    value: Arc<std::sync::atomic::AtomicU64>,
}

impl Accumulator {
    /// Add to the counter (task side).
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Read the current total (driver side).
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The accumulator's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl SparkContext {
    /// Create a named add-only counter usable from task closures.
    pub fn long_accumulator(&self, name: impl Into<String>) -> Accumulator {
        Accumulator {
            name: Arc::new(name.into()),
            value: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }
}

/// Commit board of one stage: `board[partition]` holds the attempt
/// number whose results were accepted (0 = still open). Set once by
/// the scheduler when the first attempt of a partition completes;
/// later ("zombie") attempts of the same partition are fenced out of
/// shuffle writes and result delivery.
pub(crate) type CommitBoard = Arc<Vec<AtomicU64>>;

/// Per-task state handed to every task closure: identifies the node
/// and attempt, carries the stage's commit board for attempt fencing,
/// and accumulates the task's metric record.
pub struct TaskContext {
    node: usize,
    attempt: u64,
    fence: Option<(CommitBoard, usize)>,
    record: Mutex<TaskRecord>,
    /// Armed by a [`ChaosEvent::FetchFailure`]; the first shuffle
    /// fetch this task makes consumes it and fails.
    chaos_fetch_fail: AtomicBool,
    /// Armed by a [`ChaosEvent::DiskFull`]; every disk write this task
    /// triggers sees a full disk.
    chaos_disk_full: bool,
}

impl TaskContext {
    /// Context for a first-attempt task on `node` with no commit board
    /// (unit tests and driver-local work).
    pub fn new(node: usize) -> Self {
        TaskContext {
            node,
            attempt: 1,
            fence: None,
            record: Mutex::new(TaskRecord {
                node,
                ..Default::default()
            }),
            chaos_fetch_fail: AtomicBool::new(false),
            chaos_disk_full: false,
        }
    }

    /// Context for attempt `attempt` of `partition`, fenced by the
    /// stage's commit board (scheduler-side constructor).
    pub(crate) fn for_attempt(
        node: usize,
        attempt: u64,
        board: CommitBoard,
        partition: usize,
    ) -> Self {
        TaskContext {
            node,
            attempt,
            fence: Some((board, partition)),
            record: Mutex::new(TaskRecord {
                node,
                ..Default::default()
            }),
            chaos_fetch_fail: AtomicBool::new(false),
            chaos_disk_full: false,
        }
    }

    /// Arm this task's chaos flags from its attempt's event.
    pub(crate) fn with_chaos(mut self, event: Option<&ChaosEvent>) -> Self {
        match event {
            Some(ChaosEvent::FetchFailure) => {
                self.chaos_fetch_fail = AtomicBool::new(true);
            }
            Some(ChaosEvent::DiskFull) => self.chaos_disk_full = true,
            _ => {}
        }
        self
    }

    /// Consume the armed fetch failure, if any (first fetch only).
    pub(crate) fn take_chaos_fetch_failure(&self) -> bool {
        self.chaos_fetch_fail.swap(false, Ordering::Relaxed)
    }

    /// Is this task doomed to see a full disk on every spill?
    pub(crate) fn chaos_disk_full(&self) -> bool {
        self.chaos_disk_full
    }

    /// The executor (node) this task runs on.
    pub fn node(&self) -> usize {
        self.node
    }

    /// 1-based attempt number of this task execution.
    pub fn attempt(&self) -> u64 {
        self.attempt
    }

    /// Has this partition already been committed by a *different*
    /// attempt? A fenced task is a zombie: its side effects must be
    /// dropped.
    pub fn is_fenced(&self) -> bool {
        match &self.fence {
            Some((board, partition)) => {
                let committed = board[*partition].load(Ordering::Acquire);
                committed != 0 && committed != self.attempt
            }
            None => false,
        }
    }

    /// Record a kernel execution (called by the DP executors so the
    /// cost model can price the compute).
    pub fn record_kernel(&self, inv: KernelInvocation) {
        self.record.lock().kernels.push(inv);
    }

    /// Record shuffle bytes fetched from another node: `bytes` is the
    /// declared (logical) size that drives all ledgers, `wire` the
    /// compressed frame size actually moved (0 = uncompressed).
    pub fn add_remote_read(&self, bytes: u64, wire: u64) {
        let mut r = self.record.lock();
        r.remote_read_bytes += bytes;
        r.remote_read_wire_bytes += wire;
    }

    /// Record bytes read from this node's storage (declared + wire).
    pub fn add_local_read(&self, bytes: u64, wire: u64) {
        let mut r = self.record.lock();
        r.local_read_bytes += bytes;
        r.local_read_wire_bytes += wire;
    }

    /// Record map-output bytes staged to local storage (declared +
    /// wire).
    pub fn add_shuffle_write(&self, bytes: u64, wire: u64) {
        let mut r = self.record.lock();
        r.shuffle_write_bytes += bytes;
        r.shuffle_write_wire_bytes += wire;
    }

    /// Record cached bytes serialized to the disk tier (a spill this
    /// task triggered, or a `DiskOnly` put), declared + wire.
    pub fn add_spill_write(&self, bytes: u64, wire: u64) {
        let mut r = self.record.lock();
        r.spill_write_bytes += bytes;
        r.spill_write_wire_bytes += wire;
    }

    /// Record cached bytes deserialized back from the disk tier
    /// (declared + wire).
    pub fn add_spill_read(&self, bytes: u64, wire: u64) {
        let mut r = self.record.lock();
        r.spill_read_bytes += bytes;
        r.spill_read_wire_bytes += wire;
    }

    /// Copy of the record so far (tests; the scheduler takes the final).
    pub fn snapshot(&self) -> TaskRecord {
        self.record.lock().clone()
    }

    pub(crate) fn into_record(self) -> TaskRecord {
        self.record.into_inner()
    }
}
