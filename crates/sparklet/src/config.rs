//! Engine configuration — the knobs the paper's experimental setup
//! fixes per cluster (`--num-executors`, `--executor-cores`, RDD
//! partition count, executor memory).

use crate::payload::Compression;
use crate::storage::StorageLevel;
use crate::transport::TransportMode;

/// Configuration of a [`crate::SparkContext`].
#[derive(Debug, Clone)]
pub struct SparkConf {
    /// Number of simulated cluster nodes = executors (the paper runs
    /// one executor per node).
    pub executors: usize,
    /// Modeled task slots per executor (`executor-cores`). Recorded to
    /// the event log and used by the cost model; also the upper bound
    /// on real concurrency inside an executor pool.
    pub executor_cores: usize,
    /// Real OS worker threads per executor pool. The cluster is larger
    /// than the host, so this defaults to 1; correctness never depends
    /// on it.
    pub worker_threads: usize,
    /// Default number of RDD partitions (the paper: 2 × total cores).
    pub default_partitions: usize,
    /// Local-storage capacity per node available for shuffle staging,
    /// if limited. Exceeding it fails the job
    /// ([`crate::JobError::StagingOverflow`]).
    pub staging_capacity: Option<u64>,
    /// Cached-partition memory per executor, if limited.
    pub executor_memory: Option<u64>,
    /// Disk-tier capacity per executor for spilled/`DiskOnly` cached
    /// blocks, if limited. Exceeding it fails the put
    /// ([`crate::JobError::DiskOverflow`]) unless the block is
    /// recomputable from lineage.
    pub disk_capacity: Option<u64>,
    /// Storage level used by [`crate::Rdd::checkpoint`] (explicit
    /// `checkpoint_with_level`/`persist` calls override it).
    pub storage_level: StorageLevel,
    /// Maximum attempts per task before the job fails (lineage retry).
    pub max_task_attempts: usize,
    /// Base delay before re-launching a failed task, doubling per
    /// attempt (`spark.task.retry.backoff`-style). 0 disables backoff.
    pub retry_backoff_ms: u64,
    /// Upper bound on the exponential retry backoff.
    pub retry_backoff_max_ms: u64,
    /// Speculatively re-launch stragglers on another node once
    /// [`SparkConf::speculation_quantile`] of a stage has completed
    /// (`spark.speculation`).
    pub speculation: bool,
    /// Fraction of a stage's tasks that must complete before
    /// stragglers are speculated (`spark.speculation.quantile`).
    pub speculation_quantile: f64,
    /// Cap on stages the DAG scheduler keeps in flight per job
    /// (`None` = unbounded; 1 reproduces the old serial stage walk for
    /// A/B benchmarking).
    pub max_concurrent_stages: Option<usize>,
    /// Deterministic simulation seed. `Some(seed)` switches the
    /// context to sim mode: a virtual clock replaces wall time, tasks
    /// run sequentially in a seeded order, and the whole schedule is a
    /// pure function of the seed (see DESIGN.md, "Deterministic
    /// simulation").
    pub sim_seed: Option<u64>,
    /// Whole-job resubmissions allowed after a
    /// [`crate::JobError::FetchFailed`] (lost or chaos-failed map
    /// outputs trigger a map-stage re-run, Spark-style, rather than a
    /// task retry).
    pub max_fetch_retries: usize,
    /// Allow mid-job re-planning: a driver-side loop may consult the
    /// event log between stages and change partition counts, strategy,
    /// kernel shape, or storage tier for the remaining work
    /// (`spark.sql.adaptive.enabled`-style). The engine itself only
    /// carries the flag and records the decisions
    /// ([`crate::SparkContext::log_adaptive_decision`]); the decision
    /// logic lives with the workload driver.
    pub adaptive_execution: bool,
    /// Codec applied at the data plane's single seal point — shuffle
    /// map outputs, disk-tier spills, and broadcast payloads
    /// (`spark.io.compression.codec`-style). Accounting always uses
    /// declared (uncompressed) bytes, so turning this on changes wire
    /// volumes and modeled transfer cost, never the staging ledgers or
    /// the schedule.
    pub compression: Compression,
    /// Executor backend: in-process thread pools (the default, and the
    /// only backend sim mode supports) or real executor subprocesses
    /// over loopback TCP / Unix sockets
    /// ([`crate::transport`]). With a wire transport, shuffle buckets
    /// and broadcasts live in per-node processes, remote fetches move
    /// measured socket bytes, and chaos executor loss is a real
    /// `SIGKILL`.
    pub transport: TransportMode,
    /// Kernel-backend override for DP workloads running on this
    /// context (`spark.executorEnv`-style escape hatch). The engine
    /// only carries the string; the DP solver rebinds its configured
    /// backend name to it when set. Defaults from the
    /// `DP_KERNEL_BACKEND` environment variable, which is how the CI
    /// matrix runs one acceptance suite per registered backend.
    pub kernel_backend: Option<String>,
}

impl Default for SparkConf {
    fn default() -> Self {
        SparkConf {
            executors: 4,
            executor_cores: 4,
            worker_threads: 1,
            default_partitions: 32,
            staging_capacity: None,
            executor_memory: None,
            disk_capacity: None,
            storage_level: StorageLevel::MemoryOnly,
            max_task_attempts: 4,
            retry_backoff_ms: 0,
            retry_backoff_max_ms: 1000,
            speculation: false,
            speculation_quantile: 0.75,
            max_concurrent_stages: None,
            sim_seed: None,
            max_fetch_retries: 8,
            adaptive_execution: false,
            compression: Compression::None,
            transport: TransportMode::InProcess,
            kernel_backend: std::env::var("DP_KERNEL_BACKEND")
                .ok()
                .filter(|s| !s.is_empty()),
        }
    }
}

impl SparkConf {
    /// Conf shaped like the paper's cluster 1 runs: 16 executors ×
    /// 32 cores, 1024 partitions.
    pub fn paper_cluster1() -> Self {
        SparkConf {
            executors: 16,
            executor_cores: 32,
            worker_threads: 1,
            default_partitions: 1024,
            staging_capacity: Some(1 << 40),
            executor_memory: Some(160 << 30),
            max_task_attempts: 4,
            ..Default::default()
        }
    }

    /// Conf shaped like the paper's cluster 2 runs: 16 executors ×
    /// 20 cores, 640 partitions.
    pub fn paper_cluster2() -> Self {
        SparkConf {
            executors: 16,
            executor_cores: 20,
            worker_threads: 1,
            default_partitions: 640,
            staging_capacity: Some(1 << 40),
            executor_memory: Some(60 << 30),
            max_task_attempts: 4,
            ..Default::default()
        }
    }

    /// Set the executor (node) count.
    pub fn with_executors(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.executors = n;
        self
    }

    /// Set task slots per executor.
    pub fn with_executor_cores(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.executor_cores = n;
        self
    }

    /// Set the default RDD partition count.
    pub fn with_partitions(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.default_partitions = n;
        self
    }

    /// Set real OS worker threads per executor pool.
    pub fn with_worker_threads(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.worker_threads = n;
        self
    }

    /// Cap per-node shuffle staging (the paper's SSD constraint).
    pub fn with_staging_capacity(mut self, bytes: u64) -> Self {
        self.staging_capacity = Some(bytes);
        self
    }

    /// Cap cached-partition memory per executor.
    pub fn with_executor_memory(mut self, bytes: u64) -> Self {
        self.executor_memory = Some(bytes);
        self
    }

    /// Cap the per-executor disk tier for spilled cached blocks.
    pub fn with_disk_capacity(mut self, bytes: u64) -> Self {
        self.disk_capacity = Some(bytes);
        self
    }

    /// Set the storage level `checkpoint()` uses.
    pub fn with_storage_level(mut self, level: StorageLevel) -> Self {
        self.storage_level = level;
        self
    }

    /// Set the maximum attempts per task (lineage retry budget).
    pub fn with_max_task_attempts(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.max_task_attempts = n;
        self
    }

    /// Set the exponential retry backoff: `base` ms doubling per
    /// attempt, capped at `max` ms.
    pub fn with_retry_backoff(mut self, base_ms: u64, max_ms: u64) -> Self {
        self.retry_backoff_ms = base_ms;
        self.retry_backoff_max_ms = max_ms.max(base_ms);
        self
    }

    /// Enable speculative execution of stragglers once `quantile` of a
    /// stage's tasks have completed.
    pub fn with_speculation(mut self, quantile: f64) -> Self {
        assert!((0.0..=1.0).contains(&quantile));
        self.speculation = true;
        self.speculation_quantile = quantile;
        self
    }

    /// Cap the stages the DAG scheduler keeps in flight per job.
    pub fn with_max_concurrent_stages(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.max_concurrent_stages = Some(n);
        self
    }

    /// Switch to deterministic simulation mode under `seed`.
    pub fn with_sim_seed(mut self, seed: u64) -> Self {
        self.sim_seed = Some(seed);
        self
    }

    /// Set the whole-job resubmission budget for fetch failures.
    pub fn with_max_fetch_retries(mut self, n: usize) -> Self {
        self.max_fetch_retries = n;
        self
    }

    /// Allow adaptive query execution: drivers may re-plan remaining
    /// stages from live event-log metrics, logging each decision.
    pub fn with_adaptive_execution(mut self) -> Self {
        self.adaptive_execution = true;
        self
    }

    /// Set the data-plane compression codec (shuffle, spill,
    /// broadcast frames).
    pub fn with_compression(mut self, compression: Compression) -> Self {
        self.compression = compression;
        self
    }

    /// Select the executor backend explicitly.
    pub fn with_transport(mut self, mode: TransportMode) -> Self {
        self.transport = mode;
        self
    }

    /// Run executors as subprocesses connected over loopback TCP.
    pub fn with_tcp_transport(self) -> Self {
        self.with_transport(TransportMode::Tcp)
    }

    /// Run executors as subprocesses connected over a Unix socket.
    pub fn with_unix_transport(self) -> Self {
        self.with_transport(TransportMode::Unix)
    }

    /// Override the DP kernel backend for workloads on this context
    /// (see the `kernel_backend` field).
    pub fn with_kernel_backend(mut self, name: &str) -> Self {
        self.kernel_backend = Some(name.to_string());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_confs_match_section_v() {
        let c1 = SparkConf::paper_cluster1();
        assert_eq!(c1.executors, 16);
        assert_eq!(c1.executor_cores, 32);
        assert_eq!(c1.default_partitions, 1024);
        let c2 = SparkConf::paper_cluster2();
        assert_eq!(c2.default_partitions, 640);
    }

    #[test]
    fn builders_compose() {
        let c = SparkConf::default()
            .with_executors(8)
            .with_executor_cores(2)
            .with_partitions(64)
            .with_staging_capacity(1024);
        assert_eq!(
            (c.executors, c.executor_cores, c.default_partitions),
            (8, 2, 64)
        );
        assert_eq!(c.staging_capacity, Some(1024));
    }

    #[test]
    fn storage_knobs_compose() {
        let c = SparkConf::default()
            .with_executor_memory(1 << 20)
            .with_disk_capacity(1 << 30)
            .with_storage_level(StorageLevel::MemoryAndDisk);
        assert_eq!(c.executor_memory, Some(1 << 20));
        assert_eq!(c.disk_capacity, Some(1 << 30));
        assert_eq!(c.storage_level, StorageLevel::MemoryAndDisk);
        let d = SparkConf::default();
        assert_eq!(d.storage_level, StorageLevel::MemoryOnly);
        assert_eq!(d.disk_capacity, None, "disk tier unbounded by default");
    }

    #[test]
    fn retry_and_speculation_knobs_compose() {
        let c = SparkConf::default()
            .with_max_task_attempts(6)
            .with_retry_backoff(5, 80)
            .with_speculation(0.5);
        assert_eq!(c.max_task_attempts, 6);
        assert_eq!((c.retry_backoff_ms, c.retry_backoff_max_ms), (5, 80));
        assert!(c.speculation);
        assert_eq!(c.speculation_quantile, 0.5);
        let d = SparkConf::default();
        assert!(!d.speculation, "speculation is opt-in");
        assert_eq!(d.retry_backoff_ms, 0, "backoff off by default");
    }

    #[test]
    fn sim_knobs_compose() {
        let c = SparkConf::default()
            .with_sim_seed(1234)
            .with_max_fetch_retries(3);
        assert_eq!(c.sim_seed, Some(1234));
        assert_eq!(c.max_fetch_retries, 3);
        let d = SparkConf::default();
        assert_eq!(d.sim_seed, None, "real execution by default");
        assert_eq!(d.max_fetch_retries, 8);
    }

    #[test]
    fn compression_knob_composes() {
        let c = SparkConf::default().with_compression(Compression::Lz4);
        assert_eq!(c.compression, Compression::Lz4);
        let d = SparkConf::default();
        assert_eq!(
            d.compression,
            Compression::None,
            "compression is opt-in: default runs keep byte-identical wire frames"
        );
    }

    #[test]
    fn transport_knob_composes() {
        let c = SparkConf::default().with_tcp_transport();
        assert_eq!(c.transport, TransportMode::Tcp);
        let u = SparkConf::default().with_unix_transport();
        assert_eq!(u.transport, TransportMode::Unix);
        let d = SparkConf::default();
        assert_eq!(
            d.transport,
            TransportMode::InProcess,
            "in-process executors by default: sim and tests stay untouched"
        );
    }

    #[test]
    fn kernel_backend_knob_composes() {
        let c = SparkConf::default().with_kernel_backend("blocked");
        assert_eq!(c.kernel_backend.as_deref(), Some("blocked"));
    }

    #[test]
    fn adaptive_knob_composes() {
        let c = SparkConf::default().with_adaptive_execution();
        assert!(c.adaptive_execution);
        let d = SparkConf::default();
        assert!(
            !d.adaptive_execution,
            "adaptive execution is opt-in: static plans stay static"
        );
    }

    #[test]
    fn dag_knobs_compose() {
        let c = SparkConf::default().with_max_concurrent_stages(1);
        assert_eq!(c.max_concurrent_stages, Some(1));
        let d = SparkConf::default();
        assert_eq!(
            d.max_concurrent_stages, None,
            "stage concurrency unbounded by default"
        );
    }
}
