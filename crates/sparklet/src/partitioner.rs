//! Key → partition placement.
//!
//! The paper uses Spark's default (hash) partitioner and names custom
//! partitioners exploiting the GEP dependency structure as future work;
//! [`GridPartitioner`] implements that future work for `(i, j)` block
//! keys and is evaluated in the ablation benches.

use std::hash::{Hash, Hasher};

use crate::Data;

/// Decides which of `num_partitions` a key belongs to. Implementations
/// must be pure: the same key always maps to the same partition.
pub trait Partitioner<K>: Send + Sync {
    /// Partition index for `key` among `num_partitions`.
    fn partition(&self, key: &K, num_partitions: usize) -> usize;

    /// Identity for shuffle-elision: two partitioners with equal
    /// signatures place every key identically, so re-partitioning by
    /// the same signature and count skips the shuffle (Spark's
    /// "already partitioned" fast path, footnote 1 of the paper).
    fn signature(&self) -> (&'static str, u64);
}

/// How a signature family lays keys onto partition indices — the fact
/// a narrow coalesce needs to keep a partitioner signature valid at a
/// smaller count (see [`crate::Rdd::coalesce`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigLayout {
    /// `index % n` placement (hash): grouping parent partitions by
    /// `p % target` re-derives the same key→group map when `target`
    /// divides the parent count, since `(i mod c) mod t = i mod t`.
    Modulo,
    /// `index * n / total` placement (grid): grouping contiguous runs
    /// re-derives the map when `target` divides the parent count, by
    /// the floor identity `⌊⌊i·c/T⌋/m⌋ = ⌊i·c/(T·m)⌋`.
    Contiguous,
}

/// Layout family of a signature name, if the algebra above applies.
/// Unknown families return `None` and coalesce drops the signature.
pub(crate) fn sig_layout(name: &str) -> Option<SigLayout> {
    match name {
        "hash" => Some(SigLayout::Modulo),
        "grid" => Some(SigLayout::Contiguous),
        _ => None,
    }
}

/// Spark's default: partition by key hash. "Probabilistic" in the
/// paper's words — no locality guarantee for structured keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashPartitioner;

impl<K: Hash + Data> Partitioner<K> for HashPartitioner {
    fn partition(&self, key: &K, num_partitions: usize) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % num_partitions as u64) as usize
    }

    fn signature(&self) -> (&'static str, u64) {
        ("hash", 0)
    }
}

/// Locality-aware partitioner for `(block_row, block_col)` keys on an
/// `r×r` block grid: contiguous grid tiles land in the same partition,
/// so the B/C/D kernels of one phase mostly read co-located blocks —
/// the custom partitioner the paper leaves as future work.
#[derive(Debug, Clone, Copy)]
pub struct GridPartitioner {
    /// Side of the block grid being partitioned.
    pub grid: usize,
}

impl GridPartitioner {
    /// Partitioner for an `grid×grid` block grid.
    pub fn new(grid: usize) -> Self {
        assert!(grid >= 1);
        GridPartitioner { grid }
    }
}

impl Partitioner<(usize, usize)> for GridPartitioner {
    fn partition(&self, key: &(usize, usize), num_partitions: usize) -> usize {
        let (i, j) = *key;
        // Row-major block index, scaled onto partitions in contiguous
        // runs: neighbours in a block row share a partition.
        let idx = (i % self.grid) * self.grid + (j % self.grid);
        let total = self.grid * self.grid;
        idx * num_partitions / total
    }

    fn signature(&self) -> (&'static str, u64) {
        ("grid", self.grid as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioner_is_stable_and_in_range() {
        let p = HashPartitioner;
        for i in 0..100usize {
            for j in 0..10usize {
                let a = p.partition(&(i, j), 16);
                let b = p.partition(&(i, j), 16);
                assert_eq!(a, b);
                assert!(a < 16);
            }
        }
    }

    #[test]
    fn hash_partitioner_spreads_keys() {
        let p = HashPartitioner;
        let mut counts = vec![0usize; 8];
        for i in 0..32usize {
            for j in 0..32usize {
                counts[p.partition(&(i, j), 8)] += 1;
            }
        }
        // No partition should be empty or hold more than half the keys.
        for &c in &counts {
            assert!(c > 0 && c < 512, "skewed: {counts:?}");
        }
    }

    #[test]
    fn grid_partitioner_covers_all_partitions() {
        let p = GridPartitioner::new(8);
        let mut seen = [false; 16];
        for i in 0..8 {
            for j in 0..8 {
                let part = p.partition(&(i, j), 16);
                assert!(part < 16);
                seen[part] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some partitions unused");
    }

    #[test]
    fn grid_partitioner_keeps_row_neighbours_close() {
        let p = GridPartitioner::new(16);
        // With 16 partitions over a 16×16 grid, each block row maps to
        // one partition.
        let base = p.partition(&(3, 0), 16);
        for j in 0..16 {
            assert_eq!(p.partition(&(3, j), 16), base);
        }
        assert_ne!(p.partition(&(4, 0), 16), base);
    }

    #[test]
    fn signatures_distinguish() {
        let h: &dyn Partitioner<(usize, usize)> = &HashPartitioner;
        let g: &dyn Partitioner<(usize, usize)> = &GridPartitioner::new(4);
        assert_ne!(h.signature(), g.signature());
        assert_eq!(g.signature(), GridPartitioner::new(4).signature());
        assert_ne!(
            Partitioner::<(usize, usize)>::signature(&GridPartitioner::new(4)),
            Partitioner::<(usize, usize)>::signature(&GridPartitioner::new(8)),
        );
    }
}
