//! Stage execution: task placement, waves, lineage retry with
//! exponential backoff, speculative re-execution, attempt fencing,
//! fault injection, and event-log recording.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cluster_model::StageRecord;

use crate::context::{CommitBoard, SparkContext, TaskContext};
use crate::error::JobError;

/// The closure a stage runs per task.
pub(crate) type TaskFn<R> = Arc<dyn Fn(usize, &TaskContext) -> Result<R, JobError> + Send + Sync>;

/// Deterministic fault injection: rules keyed by (stage ordinal,
/// partition), each failing a bounded number of attempts. A rule can
/// also apply to every stage (standing chaos for stress tests).
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

#[derive(Debug)]
enum FaultRule {
    /// Fail `remaining` more attempts of (stage, partition).
    Once {
        stage: u64,
        partition: usize,
        remaining: usize,
    },
    /// Fail the first `times` attempts of `partition` in every stage.
    EveryStage {
        partition: usize,
        times: usize,
        current_stage: Option<u64>,
        used: usize,
    },
}

impl FaultPlan {
    /// Schedule `times` failures for (stage ordinal, partition).
    pub fn add(&mut self, stage: u64, partition: usize, times: usize) {
        self.rules.push(FaultRule::Once {
            stage,
            partition,
            remaining: times,
        });
    }

    /// Schedule `times` failures for `partition` in *every* stage.
    pub fn add_every_stage(&mut self, partition: usize, times: usize) {
        self.rules.push(FaultRule::EveryStage {
            partition,
            times,
            current_stage: None,
            used: 0,
        });
    }

    /// Consume one failure budget for this (stage, partition) if any.
    pub fn should_fail(&mut self, stage: u64, partition: usize) -> bool {
        for rule in &mut self.rules {
            match rule {
                FaultRule::Once {
                    stage: s,
                    partition: p,
                    remaining,
                } => {
                    if *s == stage && *p == partition && *remaining > 0 {
                        *remaining -= 1;
                        return true;
                    }
                }
                FaultRule::EveryStage {
                    partition: p,
                    times,
                    current_stage,
                    used,
                } => {
                    if *p != partition {
                        continue;
                    }
                    if *current_stage != Some(stage) {
                        *current_stage = Some(stage);
                        *used = 0;
                    }
                    if *used < *times {
                        *used += 1;
                        return true;
                    }
                }
            }
        }
        false
    }
}

/// Is this error worth re-running the task for? Staging/memory/disk
/// overflows are deterministic — retrying cannot help.
fn retryable(err: &JobError) -> bool {
    !matches!(
        err,
        JobError::StagingOverflow { .. }
            | JobError::MemoryOverflow { .. }
            | JobError::DiskOverflow { .. }
    )
}

impl SparkContext {
    /// Run one stage of `ntasks` tasks on the executor pools and wait.
    ///
    /// `preferred(p)` pins a task to a node (cached partitions);
    /// otherwise placement is round-robin with re-executions moving to
    /// the next node, Spark-style. Each launch gets a fresh attempt
    /// number; the first attempt to complete a partition commits it on
    /// the stage's [`CommitBoard`] and late twins are fenced: their
    /// results, records, and shuffle writes are dropped. Genuine
    /// retries back off exponentially
    /// ([`crate::SparkConf::retry_backoff_ms`]); once
    /// [`crate::SparkConf::speculation_quantile`] of the stage has
    /// completed, stragglers are speculatively re-launched on another
    /// node (when [`crate::SparkConf::speculation`] is on). Records a
    /// [`StageRecord`] with every committed task's metrics plus the
    /// stage's retry/speculation/fencing counters.
    pub(crate) fn run_stage<R: Send + 'static>(
        &self,
        label: &str,
        ntasks: usize,
        preferred: impl Fn(usize) -> Option<usize>,
        work: TaskFn<R>,
    ) -> Result<Vec<R>, JobError> {
        let t0 = std::time::Instant::now();
        let stage = self.inner.stage_ordinal.fetch_add(1, Ordering::Relaxed);
        let conf = &self.inner.conf;
        let nodes = self.inner.executors.len();
        let (tx, rx) = crossbeam::channel::unbounded();
        let board: CommitBoard = Arc::new((0..ntasks).map(|_| AtomicU64::new(0)).collect());
        let mut results: Vec<Option<R>> = (0..ntasks).map(|_| None).collect();
        let mut records = Vec::with_capacity(ntasks);
        // Per-partition bookkeeping: launches so far (= highest attempt
        // number), in-flight attempts, committed flag, speculated flag.
        let mut attempts = vec![0u64; ntasks];
        let mut in_flight = vec![0usize; ntasks];
        let mut committed = vec![false; ntasks];
        let mut speculated = vec![false; ntasks];
        let mut retries = 0u64;
        let mut speculative_launches = 0u64;
        let spawn_attempt = |p: usize, attempt: u64| {
            let base = preferred(p).unwrap_or(p % nodes);
            // Re-executions move to the next node (the failed or slow
            // one may be "bad"), matching Spark's blacklist-lite
            // behaviour.
            let node = (base + (attempt - 1) as usize) % nodes;
            let injected = self.inner.faults.lock().should_fail(stage, p);
            let work = Arc::clone(&work);
            let tx = tx.clone();
            let board = Arc::clone(&board);
            let label = label.to_string();
            self.inner.executors[node].pool.spawn(move || {
                let tc = TaskContext::for_attempt(node, attempt, board, p);
                let outcome = match catch_unwind(AssertUnwindSafe(|| work(p, &tc))) {
                    Ok(r) => r,
                    Err(panic) => {
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "task panicked".into());
                        Err(JobError::TaskFailed {
                            stage: label.clone(),
                            partition: p,
                            attempts: attempt as usize,
                            message: msg,
                        })
                    }
                };
                // Release the task's lineage references *before*
                // reporting: once the driver has seen every task of a
                // stage, no executor-side `Arc` clones may keep the
                // stage's RDDs — and their Drop-based shuffle GC —
                // alive past the user's last handle.
                drop(work);
                // Injected faults fail the attempt *after* its side
                // effects (shuffle writes, cache puts) have landed, so
                // retries exercise real re-staging reconciliation.
                let outcome = match (injected, outcome) {
                    (true, Ok(_)) => Err(JobError::TaskFailed {
                        stage: label,
                        partition: p,
                        attempts: attempt as usize,
                        message: format!("injected failure (partition {p})"),
                    }),
                    (_, other) => other,
                };
                let _ = tx.send((p, attempt, outcome, tc.into_record()));
            });
        };
        let speculation_target = if conf.speculation && ntasks > 1 {
            ((conf.speculation_quantile * ntasks as f64).ceil() as usize).min(ntasks)
        } else {
            usize::MAX
        };
        for p in 0..ntasks {
            attempts[p] = 1;
            in_flight[p] = 1;
            spawn_attempt(p, 1);
        }
        let mut completed = 0usize;
        while completed < ntasks {
            let (p, attempt, outcome, record) = rx.recv().expect("task channel open");
            in_flight[p] -= 1;
            match outcome {
                Ok(r) => {
                    if committed[p] {
                        // A fenced twin finishing late: first success
                        // already won; drop result and record.
                        continue;
                    }
                    committed[p] = true;
                    completed += 1;
                    // Publish the winning attempt so in-flight twins
                    // see themselves fenced from here on.
                    board[p].store(attempt, Ordering::Release);
                    results[p] = Some(r);
                    records.push(record);
                    if completed >= speculation_target && completed < ntasks {
                        for q in 0..ntasks {
                            if !committed[q] && !speculated[q] && in_flight[q] > 0 {
                                speculated[q] = true;
                                attempts[q] += 1;
                                in_flight[q] += 1;
                                speculative_launches += 1;
                                spawn_attempt(q, attempts[q]);
                            }
                        }
                    }
                }
                Err(err) => {
                    if committed[p] || in_flight[p] > 0 {
                        // Another attempt already won, or a twin is
                        // still running — let it decide the partition.
                        continue;
                    }
                    if retryable(&err) && (attempts[p] as usize) < conf.max_task_attempts {
                        let backoff = retry_backoff_ms(
                            conf.retry_backoff_ms,
                            conf.retry_backoff_max_ms,
                            attempts[p],
                        );
                        if backoff > 0 {
                            std::thread::sleep(std::time::Duration::from_millis(backoff));
                        }
                        retries += 1;
                        attempts[p] += 1;
                        in_flight[p] = 1;
                        spawn_attempt(p, attempts[p]);
                    } else {
                        // Record what we have, then fail the job. The
                        // error already carries its stage label and
                        // attempt count (filled at construction).
                        let (zombies, released) = self.claim_shuffle_deltas();
                        let st = self.claim_storage_deltas();
                        self.inner.log.lock().push(
                            format!("{label} (failed)"),
                            StageRecord {
                                tasks: records,
                                retries,
                                speculative_launches,
                                zombie_writes_fenced: zombies,
                                staged_released_bytes: released,
                                cache_hits: st.cache_hits,
                                cache_misses: st.cache_misses,
                                spilled_bytes: st.spilled_bytes,
                                evicted_bytes: st.evicted_bytes,
                                recomputes: st.recomputes,
                                ..Default::default()
                            },
                        );
                        return Err(err);
                    }
                }
            }
        }
        let (zombies, released) = self.claim_shuffle_deltas();
        let st = self.claim_storage_deltas();
        self.inner.log.lock().push_timed(
            label.to_string(),
            StageRecord {
                tasks: records,
                retries,
                speculative_launches,
                zombie_writes_fenced: zombies,
                staged_released_bytes: released,
                cache_hits: st.cache_hits,
                cache_misses: st.cache_misses,
                spilled_bytes: st.spilled_bytes,
                evicted_bytes: st.evicted_bytes,
                recomputes: st.recomputes,
                ..Default::default()
            },
            t0.elapsed().as_secs_f64(),
        );
        Ok(results
            .into_iter()
            .map(|r| r.expect("task completed"))
            .collect())
    }

    /// Unattributed shuffle-counter growth since the last stage record
    /// (zombie writes fenced, staged bytes released). Swapping the
    /// watermarks keeps event-log totals equal to the manager's
    /// counters even when GC runs between stages.
    fn claim_shuffle_deltas(&self) -> (u64, u64) {
        let zombies = self.inner.shuffle.zombie_writes_fenced();
        let released = self.inner.shuffle.staged_released_bytes();
        let z0 = self.inner.zombie_mark.swap(zombies, Ordering::Relaxed);
        let r0 = self.inner.released_mark.swap(released, Ordering::Relaxed);
        (zombies.saturating_sub(z0), released.saturating_sub(r0))
    }

    /// Unattributed block-store counter growth since the last stage
    /// record (cache hits/misses, spill/eviction bytes, lineage
    /// recomputations) — the storage analogue of
    /// [`SparkContext::claim_shuffle_deltas`].
    fn claim_storage_deltas(&self) -> crate::context::StorageTotals {
        let now = self.storage_totals();
        let mut mark = self.inner.storage_mark.lock();
        let prev = *mark;
        *mark = now;
        crate::context::StorageTotals {
            cache_hits: now.cache_hits.saturating_sub(prev.cache_hits),
            cache_misses: now.cache_misses.saturating_sub(prev.cache_misses),
            spilled_bytes: now.spilled_bytes.saturating_sub(prev.spilled_bytes),
            evicted_bytes: now.evicted_bytes.saturating_sub(prev.evicted_bytes),
            recomputes: now.recomputes.saturating_sub(prev.recomputes),
        }
    }

    /// Add collect bytes to the most recent stage record (an action's
    /// result shipping to the driver), preserving its wall time.
    pub(crate) fn annotate_last_stage(&self, collect_bytes: u64, broadcast_bytes: u64) {
        let mut log = self.inner.log.lock();
        if let Some(last) = log.last_stage_mut() {
            last.record.collect_bytes += collect_bytes;
            last.record.broadcast_bytes += broadcast_bytes;
        }
    }
}

/// Exponential backoff before relaunching attempt `attempt + 1`:
/// `base × 2^(attempt-1)`, capped at `max`.
fn retry_backoff_ms(base: u64, max: u64, attempt: u64) -> u64 {
    if base == 0 {
        return 0;
    }
    let shift = (attempt.saturating_sub(1)).min(16) as u32;
    base.saturating_mul(1u64 << shift).min(max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_stage_rule_resets_per_stage() {
        let mut plan = FaultPlan::default();
        plan.add_every_stage(0, 1);
        assert!(plan.should_fail(0, 0));
        assert!(!plan.should_fail(0, 0)); // budget spent for stage 0
        assert!(!plan.should_fail(0, 1)); // other partitions untouched
        assert!(plan.should_fail(1, 0)); // fresh budget for stage 1
        assert!(!plan.should_fail(1, 0));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        assert_eq!(retry_backoff_ms(0, 1000, 1), 0);
        assert_eq!(retry_backoff_ms(10, 1000, 1), 10);
        assert_eq!(retry_backoff_ms(10, 1000, 2), 20);
        assert_eq!(retry_backoff_ms(10, 1000, 3), 40);
        assert_eq!(retry_backoff_ms(10, 25, 3), 25);
        assert_eq!(retry_backoff_ms(u64::MAX / 2, u64::MAX, 64), u64::MAX);
    }
}
