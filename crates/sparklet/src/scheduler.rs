//! Stage execution: task placement, waves, lineage retry with
//! exponential backoff, speculative re-execution, attempt fencing,
//! fault injection, and event-log recording.
//!
//! `run_stage` is the per-stage engine; it no longer owns stage
//! ordering. The driver-side DAG event loop ([`crate::dag`]) extracts
//! the stage graph, assigns stage ordinals at launch, and may keep
//! several `run_stage` calls in flight on different driver threads at
//! once — so every counter this module attributes to a stage record is
//! claimed under one mutex ([`SparkContext::claim_stage_deltas`]) and
//! fault-injection bookkeeping is keyed per stage.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cluster_model::{StageRecord, TaskRecord};
use par_pool::Clock;

use crate::context::{CommitBoard, SparkContext, StorageTotals, TaskContext};
use crate::error::JobError;
use crate::sim::ChaosEvent;

/// The closure a stage runs per task.
pub(crate) type TaskFn<R> = Arc<dyn Fn(usize, &TaskContext) -> Result<R, JobError> + Send + Sync>;

/// Identity and graph position of a stage, assigned by the DAG event
/// loop (or an action submitter) *before* the stage runs.
#[derive(Debug, Clone, Default)]
pub(crate) struct StageMeta {
    /// Driver-wide stage ordinal (also the fault-injection key).
    pub stage_id: u64,
    /// Direct parent shuffle ids from the stage graph.
    pub parent_shuffles: Vec<u64>,
    /// Stages in flight (including this one) at launch time.
    pub concurrent: u64,
}

/// Deterministic fault injection: rules keyed by (stage ordinal,
/// partition), each failing a bounded number of attempts. A rule can
/// also apply to every stage (standing chaos for stress tests).
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

#[derive(Debug)]
enum FaultRule {
    /// Fail `remaining` more attempts of (stage, partition).
    Once {
        stage: u64,
        partition: usize,
        remaining: usize,
    },
    /// Fail the first `times` attempts of `partition` in every stage.
    /// Budgets are tracked per stage ordinal so the rule stays exact
    /// when the DAG scheduler interleaves attempts of several stages.
    EveryStage {
        partition: usize,
        times: usize,
        used: HashMap<u64, usize>,
    },
}

impl FaultPlan {
    /// Schedule `times` failures for (stage ordinal, partition).
    pub fn add(&mut self, stage: u64, partition: usize, times: usize) {
        self.rules.push(FaultRule::Once {
            stage,
            partition,
            remaining: times,
        });
    }

    /// Schedule `times` failures for `partition` in *every* stage.
    pub fn add_every_stage(&mut self, partition: usize, times: usize) {
        self.rules.push(FaultRule::EveryStage {
            partition,
            times,
            used: HashMap::new(),
        });
    }

    /// Consume one failure budget for this (stage, partition) if any.
    pub fn should_fail(&mut self, stage: u64, partition: usize) -> bool {
        for rule in &mut self.rules {
            match rule {
                FaultRule::Once {
                    stage: s,
                    partition: p,
                    remaining,
                } => {
                    if *s == stage && *p == partition && *remaining > 0 {
                        *remaining -= 1;
                        return true;
                    }
                }
                FaultRule::EveryStage {
                    partition: p,
                    times,
                    used,
                } => {
                    if *p != partition {
                        continue;
                    }
                    let spent = used.entry(stage).or_insert(0);
                    if *spent < *times {
                        *spent += 1;
                        return true;
                    }
                }
            }
        }
        false
    }
}

/// Is this error worth re-running the task for? Staging/memory/disk
/// overflows are deterministic — retrying cannot help. A fetch failure
/// is not *task*-retryable either: the map outputs it needs are gone,
/// so re-running the reduce task hits the same hole. It propagates to
/// the job level, which resubmits the producing map stage (Spark's
/// `FetchFailed` path).
fn retryable(err: &JobError) -> bool {
    !matches!(
        err,
        JobError::StagingOverflow { .. }
            | JobError::MemoryOverflow { .. }
            | JobError::DiskOverflow { .. }
            | JobError::FetchFailed { .. }
            | JobError::Cancelled(_)
    )
}

/// Execute one task attempt inline: fenced [`TaskContext`] with any
/// chaos verdict armed on it, straggler delay charged to `clock`,
/// panics caught, and injected/chaos panics failing the attempt *after*
/// its side effects (shuffle writes, cache puts) have landed so retries
/// exercise real re-staging reconciliation. Shared by the threaded
/// executor path (inside the spawned closure) and the deterministic
/// scheduler (on the driver thread).
#[allow(clippy::too_many_arguments)]
fn run_task_attempt<R>(
    label: &str,
    p: usize,
    attempt: u64,
    node: usize,
    board: &CommitBoard,
    work: &TaskFn<R>,
    injected: bool,
    chaos: Option<ChaosEvent>,
    clock: &Arc<dyn Clock>,
) -> (Result<R, JobError>, TaskRecord) {
    let tc =
        TaskContext::for_attempt(node, attempt, Arc::clone(board), p).with_chaos(chaos.as_ref());
    if let Some(ChaosEvent::Straggler { delay_ms }) = chaos {
        clock.sleep_ms(delay_ms);
    }
    let outcome = match catch_unwind(AssertUnwindSafe(|| work(p, &tc))) {
        Ok(r) => r,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "task panicked".into());
            Err(JobError::TaskFailed {
                stage: label.to_string(),
                partition: p,
                attempts: attempt as usize,
                message: msg,
            })
        }
    };
    let fail_after = injected || matches!(chaos, Some(ChaosEvent::TaskPanic));
    let outcome = match (fail_after, outcome) {
        (true, Ok(_)) => Err(JobError::TaskFailed {
            stage: label.to_string(),
            partition: p,
            attempts: attempt as usize,
            message: if injected {
                format!("injected failure (partition {p})")
            } else {
                format!("chaos panic (partition {p})")
            },
        }),
        (_, other) => other,
    };
    (outcome, tc.into_record())
}

impl SparkContext {
    /// Run one stage of `ntasks` tasks on the executor pools and wait.
    ///
    /// `preferred(p)` pins a task to a node (cached partitions);
    /// otherwise placement is round-robin with re-executions moving to
    /// the next node, Spark-style. Each launch gets a fresh attempt
    /// number; the first attempt to complete a partition commits it on
    /// the stage's [`CommitBoard`] and late twins are fenced: their
    /// results, records, and shuffle writes are dropped. Genuine
    /// retries back off exponentially
    /// ([`crate::SparkConf::retry_backoff_ms`]) via *deferred
    /// relaunch*: the partition is parked on a deadline heap and the
    /// result loop keeps draining other completions in the meantime
    /// (`recv_deadline`), so one backing-off task never stalls the
    /// stage. Once [`crate::SparkConf::speculation_quantile`] of the
    /// stage has completed, stragglers are speculatively re-launched on
    /// another node (when [`crate::SparkConf::speculation`] is on).
    /// Records a [`StageRecord`] carrying the stage id, parent-stage
    /// edges, and achieved concurrency from `meta`, plus every
    /// committed task's metrics and the stage's
    /// retry/speculation/fencing counters.
    pub(crate) fn run_stage<R: Send + 'static>(
        &self,
        label: &str,
        meta: StageMeta,
        ntasks: usize,
        preferred: impl Fn(usize) -> Option<usize>,
        work: TaskFn<R>,
    ) -> Result<Vec<R>, JobError> {
        if self.inner.sim.is_some() {
            return self.run_stage_sim(label, meta, ntasks, preferred, work);
        }
        let t0 = Instant::now();
        let stage = meta.stage_id;
        let parent_stage_ids: Vec<u64> = meta
            .parent_shuffles
            .iter()
            .filter_map(|&sid| self.inner.registry.stage_of(sid))
            .filter(|&s| s != stage)
            .collect();
        let conf = &self.inner.conf;
        let nodes = self.inner.executors.len();
        let (tx, rx) = crossbeam::channel::unbounded();
        let board: CommitBoard = Arc::new((0..ntasks).map(|_| AtomicU64::new(0)).collect());
        let mut results: Vec<Option<R>> = (0..ntasks).map(|_| None).collect();
        let mut records = Vec::with_capacity(ntasks);
        // Per-partition bookkeeping: launches so far (= highest attempt
        // number), in-flight attempts, committed flag, speculated flag.
        let mut attempts = vec![0u64; ntasks];
        let mut in_flight = vec![0usize; ntasks];
        let mut committed = vec![false; ntasks];
        let mut speculated = vec![false; ntasks];
        // Partitions parked for backoff: (relaunch deadline in clock
        // milliseconds, partition). A parked partition has no attempt
        // in flight; the speculation sweep skips it (`in_flight == 0`)
        // and no task message can arrive for it until relaunch.
        let mut deferred: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        let mut retries = 0u64;
        let mut speculative_launches = 0u64;
        let spawn_attempt = |p: usize, attempt: u64| {
            let base = preferred(p).unwrap_or(p % nodes);
            // Re-executions move to the next node (the failed or slow
            // one may be "bad"), matching Spark's blacklist-lite
            // behaviour.
            let node = (base + (attempt - 1) as usize) % nodes;
            let injected = self.inner.faults.lock().should_fail(stage, p);
            let chaos = self.chaos_event(stage, p, attempt);
            if matches!(chaos, Some(ChaosEvent::ExecutorLoss)) {
                // Executor loss is a driver-visible event, not task
                // code: kill the node's state synchronously and report
                // the attempt dead without running it.
                self.kill_executor(node);
                let _ = tx.send((
                    p,
                    attempt,
                    Err(JobError::TaskFailed {
                        stage: label.to_string(),
                        partition: p,
                        attempts: attempt as usize,
                        message: format!("executor {node} lost (chaos)"),
                    }),
                    TaskRecord::default(),
                ));
                return;
            }
            // Under a wire transport the owning executor subprocess is
            // told about every launch and completion (fire-and-forget
            // lifecycle messages — its heartbeat counters report them).
            let remote = self.inner.remote.clone();
            if let Some(manager) = &remote {
                manager.notify_task_launch(node, stage, p as u64, attempt);
            }
            let work = Arc::clone(&work);
            let tx = tx.clone();
            let board = Arc::clone(&board);
            let label = label.to_string();
            let clock = Arc::clone(&self.inner.clock);
            self.inner.executors[node].pool.spawn(move || {
                let (outcome, record) = run_task_attempt(
                    &label, p, attempt, node, &board, &work, injected, chaos, &clock,
                );
                if let Some(manager) = &remote {
                    manager.notify_task_done(node, stage, p as u64, attempt, outcome.is_ok());
                }
                // Release the task's lineage references *before*
                // reporting: once the driver has seen every task of a
                // stage, no executor-side `Arc` clones may keep the
                // stage's RDDs — and their Drop-based shuffle GC —
                // alive past the user's last handle.
                drop(work);
                let _ = tx.send((p, attempt, outcome, record));
            });
        };
        let speculation_target = if conf.speculation && ntasks > 1 {
            ((conf.speculation_quantile * ntasks as f64).ceil() as usize).min(ntasks)
        } else {
            usize::MAX
        };
        for p in 0..ntasks {
            attempts[p] = 1;
            in_flight[p] = 1;
            spawn_attempt(p, 1);
        }
        let mut completed = 0usize;
        while completed < ntasks {
            // Relaunch every parked partition whose deadline passed. A
            // clock jump (virtual time, or a long completion burst) can
            // pass several deadlines at once; a partition committed by a
            // still-in-flight twin in the meantime must not relaunch.
            let now = self.inner.clock.now_ms();
            while deferred.peek().is_some_and(|Reverse((due, _))| *due <= now) {
                let Reverse((_, p)) = deferred.pop().expect("peeked");
                if committed[p] {
                    continue;
                }
                retries += 1;
                attempts[p] += 1;
                in_flight[p] = 1;
                spawn_attempt(p, attempts[p]);
            }
            // Wait for the next completion, but only until the nearest
            // relaunch deadline — other tasks keep completing while a
            // failed partition backs off.
            let received = if let Some(Reverse((due, _))) = deferred.peek() {
                let wait = due.saturating_sub(self.inner.clock.now_ms());
                match rx.recv_timeout(Duration::from_millis(wait)) {
                    Ok(msg) => msg,
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                        unreachable!("stage holds a sender")
                    }
                }
            } else {
                rx.recv().expect("task channel open")
            };
            let (p, attempt, outcome, record) = received;
            in_flight[p] -= 1;
            match outcome {
                Ok(r) => {
                    if committed[p] {
                        // A fenced twin finishing late: first success
                        // already won; drop result and record.
                        continue;
                    }
                    committed[p] = true;
                    completed += 1;
                    // Publish the winning attempt so in-flight twins
                    // see themselves fenced from here on.
                    board[p].store(attempt, Ordering::Release);
                    results[p] = Some(r);
                    records.push(record);
                    if completed >= speculation_target && completed < ntasks {
                        for q in 0..ntasks {
                            if !committed[q] && !speculated[q] && in_flight[q] > 0 {
                                speculated[q] = true;
                                attempts[q] += 1;
                                in_flight[q] += 1;
                                speculative_launches += 1;
                                spawn_attempt(q, attempts[q]);
                            }
                        }
                    }
                }
                Err(err) => {
                    if committed[p] || in_flight[p] > 0 {
                        // Another attempt already won, or a twin is
                        // still running — let it decide the partition.
                        continue;
                    }
                    if retryable(&err) && (attempts[p] as usize) < conf.max_task_attempts {
                        let backoff = retry_backoff_ms(
                            conf.retry_backoff_ms,
                            conf.retry_backoff_max_ms,
                            attempts[p],
                        );
                        if backoff == 0 {
                            retries += 1;
                            attempts[p] += 1;
                            in_flight[p] = 1;
                            spawn_attempt(p, attempts[p]);
                        } else {
                            deferred.push(Reverse((now + backoff, p)));
                        }
                    } else {
                        // Record what we have, then fail the job. The
                        // error already carries its stage label and
                        // attempt count (filled at construction).
                        let (zombies, released, st) = self.claim_stage_deltas();
                        self.inner.log.lock().push(
                            format!("{label} (failed)"),
                            StageRecord {
                                stage_id: stage,
                                parent_stage_ids,
                                concurrent_stages: meta.concurrent,
                                tasks: records,
                                retries,
                                speculative_launches,
                                zombie_writes_fenced: zombies,
                                staged_released_bytes: released,
                                cache_hits: st.cache_hits,
                                cache_misses: st.cache_misses,
                                spilled_bytes: st.spilled_bytes,
                                evicted_bytes: st.evicted_bytes,
                                recomputes: st.recomputes,
                                ..Default::default()
                            },
                        );
                        return Err(err);
                    }
                }
            }
        }
        let (zombies, released, st) = self.claim_stage_deltas();
        self.inner.log.lock().push_timed(
            label.to_string(),
            StageRecord {
                stage_id: stage,
                parent_stage_ids,
                concurrent_stages: meta.concurrent,
                tasks: records,
                retries,
                speculative_launches,
                zombie_writes_fenced: zombies,
                staged_released_bytes: released,
                cache_hits: st.cache_hits,
                cache_misses: st.cache_misses,
                spilled_bytes: st.spilled_bytes,
                evicted_bytes: st.evicted_bytes,
                recomputes: st.recomputes,
                ..Default::default()
            },
            t0.elapsed().as_secs_f64(),
        );
        Ok(results
            .into_iter()
            .map(|r| r.expect("task completed"))
            .collect())
    }

    /// Deterministic single-threaded twin of [`SparkContext::run_stage`]:
    /// attempts run sequentially on the driver thread, the seeded
    /// context RNG picks which runnable attempt goes next, backoff
    /// deadlines live in *virtual* milliseconds (the clock jumps
    /// forward when nothing is runnable instead of sleeping), and each
    /// attempt's footprint is charged to the virtual clock through the
    /// tick charger — so a single `u64` seed fully determines the task
    /// schedule, every interleaving the threaded scheduler could take
    /// is reachable by some seed, and faults replay exactly.
    ///
    /// Speculative re-execution is structurally absent here: it needs
    /// two attempts of one partition in flight at once, which a
    /// sequential schedule cannot express. Zombie fencing therefore
    /// never triggers in sim mode either.
    fn run_stage_sim<R: Send + 'static>(
        &self,
        label: &str,
        meta: StageMeta,
        ntasks: usize,
        preferred: impl Fn(usize) -> Option<usize>,
        work: TaskFn<R>,
    ) -> Result<Vec<R>, JobError> {
        let clock = &self.inner.clock;
        let vclock = self
            .inner
            .vclock
            .as_ref()
            .expect("sim mode implies a virtual clock");
        let sim = self.inner.sim.as_ref().expect("sim mode");
        let t0_ms = clock.now_ms();
        let stage = meta.stage_id;
        let parent_stage_ids: Vec<u64> = meta
            .parent_shuffles
            .iter()
            .filter_map(|&sid| self.inner.registry.stage_of(sid))
            .filter(|&s| s != stage)
            .collect();
        let conf = &self.inner.conf;
        let nodes = self.inner.executors.len();
        let board: CommitBoard = Arc::new((0..ntasks).map(|_| AtomicU64::new(0)).collect());
        let mut results: Vec<Option<R>> = (0..ntasks).map(|_| None).collect();
        let mut records = Vec::with_capacity(ntasks);
        let mut attempts = vec![1u64; ntasks];
        let mut committed = vec![false; ntasks];
        let mut retries = 0u64;
        // Launchable attempts: a partition appears at most once, with
        // the virtual time its (possibly backed-off) launch is due.
        struct Pending {
            p: usize,
            attempt: u64,
            ready_at: u64,
        }
        let mut queue: Vec<Pending> = (0..ntasks)
            .map(|p| Pending {
                p,
                attempt: 1,
                ready_at: 0,
            })
            .collect();
        let mut completed = 0usize;
        while completed < ntasks {
            let now = clock.now_ms();
            let runnable: Vec<usize> = queue
                .iter()
                .enumerate()
                .filter(|(_, t)| t.ready_at <= now)
                .map(|(i, _)| i)
                .collect();
            if runnable.is_empty() {
                // Every pending attempt is backing off: jump virtual
                // time to the earliest deadline (this is where real
                // schedulers sleep).
                let due = queue.iter().map(|t| t.ready_at).min().unwrap_or_else(|| {
                    panic!(
                        "sim scheduler quiesced with {} of {ntasks} tasks incomplete \
                             (stage {stage}, CHAOS_SEED={:?})",
                        ntasks - completed,
                        conf.sim_seed
                    )
                });
                vclock.advance_to(due);
                continue;
            }
            let task = queue.swap_remove(runnable[self.sim_draw(runnable.len())]);
            let (p, attempt) = (task.p, task.attempt);
            if committed[p] {
                continue;
            }
            if attempt > 1 {
                retries += 1;
            }
            let base = preferred(p).unwrap_or(p % nodes);
            let node = (base + (attempt - 1) as usize) % nodes;
            let injected = self.inner.faults.lock().should_fail(stage, p);
            let chaos = self.chaos_event(stage, p, attempt);
            let (outcome, record) = if matches!(chaos, Some(ChaosEvent::ExecutorLoss)) {
                self.kill_executor(node);
                (
                    Err(JobError::TaskFailed {
                        stage: label.to_string(),
                        partition: p,
                        attempts: attempt as usize,
                        message: format!("executor {node} lost (chaos)"),
                    }),
                    TaskRecord::default(),
                )
            } else {
                run_task_attempt(
                    label, p, attempt, node, &board, &work, injected, chaos, clock,
                )
            };
            // Charge the attempt's recorded footprint to virtual time:
            // later deadlines (and chaos draws) see a clock that moved
            // like a real run's would.
            vclock.advance_ms(sim.charger.task_ticks(&record));
            match outcome {
                Ok(r) => {
                    committed[p] = true;
                    completed += 1;
                    board[p].store(attempt, Ordering::Release);
                    results[p] = Some(r);
                    records.push(record);
                }
                Err(err) => {
                    if retryable(&err) && (attempts[p] as usize) < conf.max_task_attempts {
                        let backoff = retry_backoff_ms(
                            conf.retry_backoff_ms,
                            conf.retry_backoff_max_ms,
                            attempts[p],
                        );
                        attempts[p] += 1;
                        queue.push(Pending {
                            p,
                            attempt: attempts[p],
                            ready_at: clock.now_ms() + backoff,
                        });
                    } else {
                        let (zombies, released, st) = self.claim_stage_deltas();
                        self.inner.log.lock().push(
                            format!("{label} (failed)"),
                            StageRecord {
                                stage_id: stage,
                                parent_stage_ids,
                                concurrent_stages: meta.concurrent,
                                tasks: records,
                                retries,
                                zombie_writes_fenced: zombies,
                                staged_released_bytes: released,
                                cache_hits: st.cache_hits,
                                cache_misses: st.cache_misses,
                                spilled_bytes: st.spilled_bytes,
                                evicted_bytes: st.evicted_bytes,
                                recomputes: st.recomputes,
                                ..Default::default()
                            },
                        );
                        return Err(err);
                    }
                }
            }
        }
        let (zombies, released, st) = self.claim_stage_deltas();
        self.inner.log.lock().push_timed(
            label.to_string(),
            StageRecord {
                stage_id: stage,
                parent_stage_ids,
                concurrent_stages: meta.concurrent,
                tasks: records,
                retries,
                zombie_writes_fenced: zombies,
                staged_released_bytes: released,
                cache_hits: st.cache_hits,
                cache_misses: st.cache_misses,
                spilled_bytes: st.spilled_bytes,
                evicted_bytes: st.evicted_bytes,
                recomputes: st.recomputes,
                ..Default::default()
            },
            (clock.now_ms() - t0_ms) as f64 / 1000.0,
        );
        Ok(results
            .into_iter()
            .map(|r| r.expect("task completed"))
            .collect())
    }

    /// Unattributed engine-counter growth since the last stage record:
    /// zombie writes fenced and staged bytes released (shuffle GC) plus
    /// block-store totals (cache hits/misses, spill/eviction bytes,
    /// lineage recomputations). All watermarks advance under a single
    /// mutex so that concurrently completing stages each claim a
    /// disjoint slice and event-log totals stay equal to the managers'
    /// counters however stage completions interleave.
    fn claim_stage_deltas(&self) -> (u64, u64, StorageTotals) {
        let mut marks = self.inner.claim_marks.lock();
        let zombies = self.inner.shuffle.zombie_writes_fenced();
        let released = self.inner.shuffle.staged_released_bytes();
        let storage = self.storage_totals();
        let dz = zombies.saturating_sub(marks.zombies);
        let dr = released.saturating_sub(marks.released);
        let ds = StorageTotals {
            cache_hits: storage.cache_hits.saturating_sub(marks.storage.cache_hits),
            cache_misses: storage
                .cache_misses
                .saturating_sub(marks.storage.cache_misses),
            spilled_bytes: storage
                .spilled_bytes
                .saturating_sub(marks.storage.spilled_bytes),
            evicted_bytes: storage
                .evicted_bytes
                .saturating_sub(marks.storage.evicted_bytes),
            recomputes: storage.recomputes.saturating_sub(marks.storage.recomputes),
        };
        marks.zombies = zombies;
        marks.released = released;
        marks.storage = storage;
        (dz, dr, ds)
    }

    /// Add collect bytes to the record of stage `stage_id` (an action's
    /// result shipping to the driver), preserving its wall time. Keyed
    /// by stage id because with concurrent stages "the most recent
    /// record" may belong to another job.
    pub(crate) fn annotate_stage(&self, stage_id: u64, collect_bytes: u64, broadcast_bytes: u64) {
        let mut log = self.inner.log.lock();
        if let Some(ev) = log.stage_mut_by_id(stage_id) {
            ev.record.collect_bytes += collect_bytes;
            ev.record.broadcast_bytes += broadcast_bytes;
        }
    }
}

/// Exponential backoff before relaunching attempt `attempt + 1`:
/// `base × 2^(attempt-1)`, capped at `max`.
fn retry_backoff_ms(base: u64, max: u64, attempt: u64) -> u64 {
    if base == 0 {
        return 0;
    }
    let shift = (attempt.saturating_sub(1)).min(16) as u32;
    base.saturating_mul(1u64 << shift).min(max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_stage_rule_resets_per_stage() {
        let mut plan = FaultPlan::default();
        plan.add_every_stage(0, 1);
        assert!(plan.should_fail(0, 0));
        assert!(!plan.should_fail(0, 0)); // budget spent for stage 0
        assert!(!plan.should_fail(0, 1)); // other partitions untouched
        assert!(plan.should_fail(1, 0)); // fresh budget for stage 1
        assert!(!plan.should_fail(1, 0));
    }

    #[test]
    fn every_stage_budgets_are_independent_under_interleaving() {
        // With the DAG scheduler two stages' attempts interleave; each
        // stage ordinal must keep its own budget rather than resetting
        // on every ordinal change.
        let mut plan = FaultPlan::default();
        plan.add_every_stage(0, 1);
        assert!(plan.should_fail(0, 0));
        assert!(plan.should_fail(1, 0)); // stage 1 interleaves
        assert!(!plan.should_fail(0, 0)); // stage 0 budget still spent
        assert!(!plan.should_fail(1, 0));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        assert_eq!(retry_backoff_ms(0, 1000, 1), 0);
        assert_eq!(retry_backoff_ms(10, 1000, 1), 10);
        assert_eq!(retry_backoff_ms(10, 1000, 2), 20);
        assert_eq!(retry_backoff_ms(10, 1000, 3), 40);
        assert_eq!(retry_backoff_ms(10, 25, 3), 25);
        assert_eq!(retry_backoff_ms(u64::MAX / 2, u64::MAX, 64), u64::MAX);
    }
}
