//! Stage execution: task placement, waves, lineage retry, fault
//! injection, and event-log recording.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use cluster_model::StageRecord;

use crate::context::{SparkContext, TaskContext};
use crate::error::JobError;

/// The closure a stage runs per task.
pub(crate) type TaskFn<R> = Arc<dyn Fn(usize, &TaskContext) -> Result<R, JobError> + Send + Sync>;

/// Deterministic fault injection: rules keyed by (stage ordinal,
/// partition), each failing a bounded number of attempts.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

#[derive(Debug)]
struct FaultRule {
    stage: u64,
    partition: usize,
    remaining: usize,
}

impl FaultPlan {
    /// Schedule `times` failures for (stage ordinal, partition).
    pub fn add(&mut self, stage: u64, partition: usize, times: usize) {
        self.rules.push(FaultRule {
            stage,
            partition,
            remaining: times,
        });
    }

    /// Consume one failure budget for this (stage, partition) if any.
    pub fn should_fail(&mut self, stage: u64, partition: usize) -> bool {
        for rule in &mut self.rules {
            if rule.stage == stage && rule.partition == partition && rule.remaining > 0 {
                rule.remaining -= 1;
                return true;
            }
        }
        false
    }
}

/// Is this error worth re-running the task for? Staging/memory
/// overflows are deterministic — retrying cannot help.
fn retryable(err: &JobError) -> bool {
    !matches!(
        err,
        JobError::StagingOverflow { .. } | JobError::MemoryOverflow { .. }
    )
}

impl SparkContext {
    /// Run one stage of `ntasks` tasks on the executor pools and wait.
    ///
    /// `preferred(p)` pins a task to a node (cached partitions);
    /// otherwise placement is round-robin with retries rescheduled onto
    /// the next node, Spark-style. Records a [`StageRecord`] with every
    /// *successful* task's metrics.
    pub(crate) fn run_stage<R: Send + 'static>(
        &self,
        label: &str,
        ntasks: usize,
        preferred: impl Fn(usize) -> Option<usize>,
        work: TaskFn<R>,
    ) -> Result<Vec<R>, JobError> {
        let t0 = std::time::Instant::now();
        let stage = self
            .inner
            .stage_ordinal
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let nodes = self.inner.executors.len();
        let (tx, rx) = crossbeam::channel::unbounded();
        let mut results: Vec<Option<R>> = (0..ntasks).map(|_| None).collect();
        let mut records = Vec::with_capacity(ntasks);
        let mut attempts = vec![0usize; ntasks];
        let mut pending: Vec<usize> = (0..ntasks).collect();
        while !pending.is_empty() {
            let wave = pending.len();
            for p in pending.drain(..) {
                attempts[p] += 1;
                // Retries move to the next node (the failed one may be
                // "bad"), matching Spark's blacklist-lite behaviour.
                let base = preferred(p).unwrap_or(p % nodes);
                let node = (base + attempts[p] - 1) % nodes;
                let injected = self.inner.faults.lock().should_fail(stage, p);
                let work = Arc::clone(&work);
                let tx = tx.clone();
                self.inner.executors[node].pool.spawn(move || {
                    let tc = TaskContext::new(node);
                    let outcome = if injected {
                        Err(JobError::MissingBlock(format!(
                            "injected failure (partition {p})"
                        )))
                    } else {
                        match catch_unwind(AssertUnwindSafe(|| work(p, &tc))) {
                            Ok(r) => r,
                            Err(panic) => {
                                let msg = panic
                                    .downcast_ref::<&str>()
                                    .map(|s| s.to_string())
                                    .or_else(|| panic.downcast_ref::<String>().cloned())
                                    .unwrap_or_else(|| "task panicked".into());
                                Err(JobError::TaskFailed {
                                    stage: String::new(),
                                    partition: p,
                                    attempts: 0,
                                    message: msg,
                                })
                            }
                        }
                    };
                    let _ = tx.send((p, outcome, tc.into_record()));
                });
            }
            for _ in 0..wave {
                let (p, outcome, record) = rx.recv().expect("task channel open");
                match outcome {
                    Ok(r) => {
                        results[p] = Some(r);
                        records.push(record);
                    }
                    Err(err) => {
                        if retryable(&err) && attempts[p] < self.inner.conf.max_task_attempts {
                            pending.push(p);
                        } else {
                            // Record what we have, then fail the job.
                            self.inner.log.lock().push(
                                format!("{label} (failed)"),
                                StageRecord {
                                    tasks: records,
                                    ..Default::default()
                                },
                            );
                            return Err(match err {
                                JobError::TaskFailed { message, .. } => JobError::TaskFailed {
                                    stage: label.to_string(),
                                    partition: p,
                                    attempts: attempts[p],
                                    message,
                                },
                                JobError::MissingBlock(m)
                                    if m.starts_with("injected failure") =>
                                {
                                    JobError::TaskFailed {
                                        stage: label.to_string(),
                                        partition: p,
                                        attempts: attempts[p],
                                        message: m,
                                    }
                                }
                                other => other,
                            });
                        }
                    }
                }
            }
        }
        self.inner.log.lock().push_timed(
            label.to_string(),
            StageRecord {
                tasks: records,
                ..Default::default()
            },
            t0.elapsed().as_secs_f64(),
        );
        Ok(results.into_iter().map(|r| r.expect("task completed")).collect())
    }

    /// Add collect bytes to the most recent stage record (an action's
    /// result shipping to the driver).
    pub(crate) fn annotate_last_stage(&self, collect_bytes: u64, broadcast_bytes: u64) {
        let mut log = self.inner.log.lock();
        let stages = log.take();
        let mut stages = stages;
        if let Some(last) = stages.last_mut() {
            last.record.collect_bytes += collect_bytes;
            last.record.broadcast_bytes += broadcast_bytes;
        }
        for s in stages {
            log.push(s.label, s.record);
        }
    }
}
