//! The executor entrypoint: one subprocess per simulated cluster node.
//!
//! Launched by the driver's `ExecutorManager` with two environment
//! variables: `SPARKLET_NODE` (this executor's node index) and
//! `SPARKLET_CONNECT` (`tcp:<ip>:<port>` or `unix:<path>`). It
//! connects back to the driver, handshakes, and serves the wire
//! protocol until an orderly `Shutdown` (exit 0), driver disconnect
//! (exit 0), or an I/O failure (exit 1). A `SIGKILL` from the chaos
//! harness ends it without any exit path at all — which is the point.

use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::process::ExitCode;

use sparklet::transport::executor::serve;

fn run() -> Result<(), String> {
    let node: u64 = std::env::var("SPARKLET_NODE")
        .map_err(|_| "SPARKLET_NODE not set".to_string())?
        .parse()
        .map_err(|e| format!("SPARKLET_NODE: {e}"))?;
    let connect = std::env::var("SPARKLET_CONNECT")
        .map_err(|_| "SPARKLET_CONNECT not set (tcp:<ip>:<port> or unix:<path>)".to_string())?;
    if let Some(addr) = connect.strip_prefix("tcp:") {
        let mut stream = TcpStream::connect(addr)
            .map_err(|e| format!("executor {node}: connect {addr}: {e}"))?;
        stream.set_nodelay(true).ok();
        serve(&mut stream, node).map_err(|e| format!("executor {node}: {e}"))
    } else if let Some(path) = connect.strip_prefix("unix:") {
        let mut stream = UnixStream::connect(path)
            .map_err(|e| format!("executor {node}: connect {path}: {e}"))?;
        serve(&mut stream, node).map_err(|e| format!("executor {node}: {e}"))
    } else {
        Err(format!(
            "executor {node}: unsupported SPARKLET_CONNECT scheme in {connect:?}"
        ))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sparklet-executor: {e}");
            ExitCode::FAILURE
        }
    }
}
