//! Extended pair-RDD operations: cogroup/join, key/value projections,
//! count-by-key, and a sampled range partitioner with `sort_by_key` —
//! the rest of the classic Spark pair-RDD surface, built on the same
//! shuffle machinery.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::codec::Storable;
use crate::error::JobError;
use crate::partitioner::Partitioner;
use crate::rdd::{Key, Rdd, ShufVal};

/// Two-sided tagged value for cogrouping heterogeneous RDDs.
#[derive(Debug, Clone, PartialEq)]
pub enum Either<L, R> {
    /// A value from the left RDD.
    Left(L),
    /// A value from the right RDD.
    Right(R),
}

impl<L: Storable, R: Storable> Storable for Either<L, R> {
    fn encoded_len(&self) -> usize {
        1 + match self {
            Either::Left(l) => l.encoded_len(),
            Either::Right(r) => r.encoded_len(),
        }
    }

    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Either::Left(l) => {
                buf.put_u8(0);
                l.encode(buf);
            }
            Either::Right(r) => {
                buf.put_u8(1);
                r.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, JobError> {
        if buf.remaining() < 1 {
            return Err(JobError::Codec("Either tag underrun".into()));
        }
        match buf.get_u8() {
            0 => Ok(Either::Left(L::decode(buf)?)),
            1 => Ok(Either::Right(R::decode(buf)?)),
            t => Err(JobError::Codec(format!("bad Either tag {t}"))),
        }
    }

    fn approx_bytes(&self) -> usize {
        1 + match self {
            Either::Left(l) => l.approx_bytes(),
            Either::Right(r) => r.approx_bytes(),
        }
    }
}

impl<K: Key, V: ShufVal> Rdd<K, V> {
    /// Group this RDD with another by key: for each key present in
    /// either side, all left values and all right values.
    pub fn cogroup<W: ShufVal>(
        &self,
        other: &Rdd<K, W>,
        partitions: usize,
        partitioner: Arc<dyn Partitioner<K>>,
    ) -> Rdd<K, (Vec<V>, Vec<W>)> {
        let left: Rdd<K, Either<V, W>> = self.map_values(Either::Left);
        let right: Rdd<K, Either<V, W>> = other.map_values(Either::Right);
        left.union(&right)
            .group_by_key(partitions, partitioner)
            .map_values(|tagged| {
                let mut ls = Vec::new();
                let mut rs = Vec::new();
                for t in tagged {
                    match t {
                        Either::Left(l) => ls.push(l),
                        Either::Right(r) => rs.push(r),
                    }
                }
                (ls, rs)
            })
    }

    /// Inner join: one output pair per (left value, right value) combo
    /// sharing a key.
    pub fn join<W: ShufVal>(
        &self,
        other: &Rdd<K, W>,
        partitions: usize,
        partitioner: Arc<dyn Partitioner<K>>,
    ) -> Rdd<K, (V, W)> {
        self.cogroup(other, partitions, partitioner)
            .flat_map(|(k, (ls, rs))| {
                let mut out = Vec::with_capacity(ls.len() * rs.len());
                for l in &ls {
                    for r in &rs {
                        out.push((k.clone(), (l.clone(), r.clone())));
                    }
                }
                out
            })
    }

    /// Left outer join: every left pair, with `None` where the right
    /// side has no match.
    pub fn left_outer_join<W: ShufVal>(
        &self,
        other: &Rdd<K, W>,
        partitions: usize,
        partitioner: Arc<dyn Partitioner<K>>,
    ) -> Rdd<K, (V, Option<W>)> {
        self.cogroup(other, partitions, partitioner)
            .flat_map(|(k, (ls, rs))| {
                let mut out = Vec::new();
                for l in &ls {
                    if rs.is_empty() {
                        out.push((k.clone(), (l.clone(), None)));
                    } else {
                        for r in &rs {
                            out.push((k.clone(), (l.clone(), Some(r.clone()))));
                        }
                    }
                }
                out
            })
    }

    /// Count of pairs per key (runs a shuffle with map-side combining).
    pub fn count_by_key(
        &self,
        partitions: usize,
        partitioner: Arc<dyn Partitioner<K>>,
    ) -> Result<HashMap<K, u64>, JobError> {
        let counts = self
            .map_values(|_| 1u64)
            .reduce_by_key(|a, b| a + b, partitions, partitioner)
            .collect()?;
        Ok(counts.into_iter().collect())
    }
}

impl<K: Key, V: ShufVal> Rdd<K, V> {
    /// Action: up to `n` pairs, in partition order (computes partitions
    /// until enough items are found; does not run later ones).
    pub fn take(&self, n: usize) -> Result<Vec<(K, V)>, JobError> {
        // Simplicity over laziness: collect then truncate. The engine's
        // partitions are computed in one stage anyway.
        let mut all = self.collect()?;
        all.truncate(n);
        Ok(all)
    }

    /// Action: the first pair, if any.
    pub fn first(&self) -> Result<Option<(K, V)>, JobError> {
        Ok(self.take(1)?.into_iter().next())
    }

    /// Narrow: deterministic Bernoulli sample by key hash (the same
    /// pair is kept or dropped independent of partitioning).
    pub fn sample(&self, fraction: f64, seed: u64) -> Rdd<K, V> {
        assert!((0.0..=1.0).contains(&fraction));
        let threshold = (fraction * u64::MAX as f64) as u64;
        self.filter(move |k, _| {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            seed.hash(&mut h);
            k.hash(&mut h);
            h.finish() <= threshold
        })
    }
}

/// Range partitioner over `Ord` keys: partition `i` holds keys in
/// `(bounds[i-1], bounds[i]]`-style ranges, giving globally sorted
/// output when each partition is sorted locally. Built by sampling,
/// like Spark's.
#[derive(Debug, Clone)]
pub struct RangePartitioner<K> {
    bounds: Vec<K>,
    signature: u64,
}

impl<K: Ord + Clone + std::hash::Hash> RangePartitioner<K> {
    /// Build from a sample of keys for `partitions` output partitions.
    pub fn from_sample(mut sample: Vec<K>, partitions: usize) -> Self {
        assert!(partitions >= 1);
        sample.sort();
        sample.dedup();
        let mut bounds = Vec::new();
        if !sample.is_empty() {
            for i in 1..partitions {
                let idx = i * sample.len() / partitions;
                if idx < sample.len() {
                    bounds.push(sample[idx].clone());
                }
            }
            bounds.dedup();
        }
        // Signature: hash of the bounds, so identical partitioners elide.
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        bounds.len().hash(&mut h);
        for b in &bounds {
            b.hash(&mut h);
        }
        RangePartitioner {
            bounds,
            signature: h.finish(),
        }
    }

    /// Number of key ranges (bounds + 1).
    pub fn num_ranges(&self) -> usize {
        self.bounds.len() + 1
    }
}

impl<K: Ord + Clone + std::hash::Hash + Send + Sync> Partitioner<K> for RangePartitioner<K> {
    fn partition(&self, key: &K, num_partitions: usize) -> usize {
        let idx = self.bounds.partition_point(|b| b < key);
        idx.min(num_partitions - 1)
    }

    fn signature(&self) -> (&'static str, u64) {
        ("range", self.signature)
    }
}

impl<K: Key + Ord, V: ShufVal> Rdd<K, V> {
    /// Globally sort by key: sample keys, range-partition, sort each
    /// partition locally. `collect()` then yields fully sorted pairs.
    pub fn sort_by_key(&self, partitions: usize) -> Result<Rdd<K, V>, JobError> {
        let partitions = partitions.max(1);
        // Driver-side sampling pass (Spark samples too; we take keys
        // from a count-style stage — small since keys only).
        let sample: Vec<K> = self
            .map_values(|_| ())
            .collect()?
            .into_iter()
            .map(|(k, ())| k)
            .collect();
        let partitioner = Arc::new(RangePartitioner::from_sample(sample, partitions));
        Ok(self
            .partition_by(partitions, partitioner)
            .map_partitions(true, |_p, mut items, _tc| {
                items.sort_by(|a, b| a.0.cmp(&b.0));
                items
            }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_one, encode_one};

    #[test]
    fn either_roundtrips() {
        let l: Either<u64, f64> = Either::Left(7);
        let r: Either<u64, f64> = Either::Right(2.5);
        assert_eq!(decode_one::<Either<u64, f64>>(encode_one(&l)).unwrap(), l);
        assert_eq!(decode_one::<Either<u64, f64>>(encode_one(&r)).unwrap(), r);
    }

    #[test]
    fn range_partitioner_orders_partitions() {
        let sample: Vec<u64> = (0..100).collect();
        let p = RangePartitioner::from_sample(sample, 4);
        let mut last = 0;
        for k in 0..100u64 {
            let part = p.partition(&k, 4);
            assert!(part >= last, "partition must be monotone in key");
            assert!(part < 4);
            last = part;
        }
        // Each quartile maps to a distinct partition.
        assert_ne!(p.partition(&5, 4), p.partition(&95, 4));
    }

    #[test]
    fn range_partitioner_handles_tiny_samples() {
        let p = RangePartitioner::from_sample(Vec::<u64>::new(), 8);
        assert_eq!(p.partition(&42, 8), 0);
        let p = RangePartitioner::from_sample(vec![5u64], 8);
        assert!(p.partition(&1, 8) < 8);
        assert!(p.partition(&9, 8) < 8);
    }
}
