//! The wire protocol: length-prefixed message frames over a byte
//! stream, with sealed [`Payload`] frames embedded verbatim.
//!
//! Every message — task launch/completion, shuffle block put/fetch,
//! broadcast distribution, heartbeat/metrics, shutdown — travels as
//! one frame: a 4-byte little-endian body length followed by the body,
//! whose first byte is the message tag. Data-bearing messages carry a
//! [`Payload`] frame byte-for-byte as produced by
//! [`crate::PayloadBuilder::seal`]; the receiving side rehydrates it
//! with [`Payload::from_frame`], so the zero-copy frame of PR 5 *is*
//! the wire format and no re-serialization happens at the boundary.
//!
//! Decoding is defensive end to end: truncated bodies, unknown tags,
//! lying length prefixes, and oversized frames all surface as
//! [`JobError::Codec`] (or `io::Error` at the socket layer), never a
//! panic and never an unbounded allocation — the length prefix is
//! validated against [`MAX_FRAME`] *before* any buffer is reserved.

use std::io::{Read, Write};

use bytes::Bytes;

use crate::error::JobError;
use crate::payload::Payload;

/// Hard cap on one wire frame's body length. A length prefix above
/// this is rejected before allocation, bounding what a corrupt or
/// hostile peer can make the decoder reserve.
pub const MAX_FRAME: u32 = 1 << 28; // 256 MiB

/// One protocol message. Fixed-width little-endian integers; payloads
/// are embedded as their sealed frame bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMsg {
    /// Executor → driver greeting carrying its assigned node index.
    Hello {
        /// Node index the executor was launched for.
        node: u64,
    },
    /// Driver → executor handshake confirmation.
    HelloAck {
        /// Echoed node index.
        node: u64,
    },
    /// A task attempt was placed on this executor (lifecycle metric;
    /// fire-and-forget).
    TaskLaunch {
        /// Stage ordinal of the attempt.
        stage: u64,
        /// Partition the attempt computes.
        partition: u64,
        /// 1-based attempt number.
        attempt: u64,
    },
    /// A task attempt finished (lifecycle metric; fire-and-forget).
    TaskDone {
        /// Stage ordinal of the attempt.
        stage: u64,
        /// Partition the attempt computed.
        partition: u64,
        /// 1-based attempt number.
        attempt: u64,
        /// Whether the attempt succeeded.
        ok: bool,
    },
    /// Stage a map-output bucket on the executor (answered by
    /// [`WireMsg::Ack`]).
    ShufflePut {
        /// Shuffle the bucket belongs to.
        shuffle: u64,
        /// Map task that produced the bucket.
        map_task: u64,
        /// Reduce partition the bucket feeds.
        reduce: u64,
        /// The sealed payload frame, verbatim.
        frame: Bytes,
    },
    /// Fetch a staged bucket (answered by [`WireMsg::Block`]).
    ShuffleGet {
        /// Shuffle the bucket belongs to.
        shuffle: u64,
        /// Map task that produced the bucket.
        map_task: u64,
        /// Reduce partition the bucket feeds.
        reduce: u64,
    },
    /// Reply to a get: the stored frame, or `None` when the executor
    /// holds no such block (e.g. it restarted and lost its state).
    Block {
        /// The sealed payload frame, when present.
        frame: Option<Bytes>,
    },
    /// Drop one staged bucket (a retry moved the bucket's origin to a
    /// different node, stranding this copy; fire-and-forget).
    ShuffleRemove {
        /// Shuffle the bucket belongs to.
        shuffle: u64,
        /// Map task that produced the bucket.
        map_task: u64,
        /// Reduce partition the bucket feeds.
        reduce: u64,
    },
    /// Drop every bucket of one shuffle (per-shuffle GC;
    /// fire-and-forget).
    ShuffleRelease {
        /// Shuffle being released.
        shuffle: u64,
    },
    /// Drop all shuffle state (benchmark reset; fire-and-forget).
    ShuffleClear,
    /// Push a broadcast payload to the executor (answered by
    /// [`WireMsg::Ack`]).
    BroadcastPut {
        /// Broadcast id.
        id: u64,
        /// The sealed payload frame, verbatim.
        frame: Bytes,
    },
    /// Fetch a broadcast payload (answered by [`WireMsg::Block`]).
    BroadcastGet {
        /// Broadcast id.
        id: u64,
    },
    /// Drop a broadcast payload (fire-and-forget).
    BroadcastRemove {
        /// Broadcast id.
        id: u64,
    },
    /// Liveness + metrics probe (answered by [`WireMsg::HeartbeatAck`]).
    Heartbeat {
        /// Correlation sequence number, echoed in the ack.
        seq: u64,
    },
    /// Heartbeat reply carrying the executor's self-reported state.
    HeartbeatAck {
        /// Echoed sequence number.
        seq: u64,
        /// Shuffle buckets currently held.
        buckets: u64,
        /// Total stored bucket frame bytes.
        bucket_bytes: u64,
        /// Broadcast payloads currently held.
        broadcasts: u64,
        /// Task launches seen over this executor's lifetime.
        tasks_launched: u64,
        /// Task completions seen over this executor's lifetime.
        tasks_done: u64,
    },
    /// Generic success reply to a put.
    Ack,
    /// Orderly termination request (answered by
    /// [`WireMsg::ShutdownAck`], then the executor exits 0).
    Shutdown,
    /// Last message an executor sends before exiting cleanly.
    ShutdownAck,
}

const TAG_HELLO: u8 = 1;
const TAG_HELLO_ACK: u8 = 2;
const TAG_TASK_LAUNCH: u8 = 3;
const TAG_TASK_DONE: u8 = 4;
const TAG_SHUFFLE_PUT: u8 = 5;
const TAG_SHUFFLE_GET: u8 = 6;
const TAG_BLOCK: u8 = 7;
const TAG_SHUFFLE_RELEASE: u8 = 8;
const TAG_SHUFFLE_CLEAR: u8 = 9;
const TAG_BROADCAST_PUT: u8 = 10;
const TAG_BROADCAST_GET: u8 = 11;
const TAG_BROADCAST_REMOVE: u8 = 12;
const TAG_HEARTBEAT: u8 = 13;
const TAG_HEARTBEAT_ACK: u8 = 14;
const TAG_ACK: u8 = 15;
const TAG_SHUTDOWN: u8 = 16;
const TAG_SHUTDOWN_ACK: u8 = 17;
const TAG_SHUFFLE_REMOVE: u8 = 18;

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encode a message body (everything after the 4-byte length prefix).
pub fn encode_body(msg: &WireMsg) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    match msg {
        WireMsg::Hello { node } => {
            out.push(TAG_HELLO);
            put_u64(&mut out, *node);
        }
        WireMsg::HelloAck { node } => {
            out.push(TAG_HELLO_ACK);
            put_u64(&mut out, *node);
        }
        WireMsg::TaskLaunch {
            stage,
            partition,
            attempt,
        } => {
            out.push(TAG_TASK_LAUNCH);
            put_u64(&mut out, *stage);
            put_u64(&mut out, *partition);
            put_u64(&mut out, *attempt);
        }
        WireMsg::TaskDone {
            stage,
            partition,
            attempt,
            ok,
        } => {
            out.push(TAG_TASK_DONE);
            put_u64(&mut out, *stage);
            put_u64(&mut out, *partition);
            put_u64(&mut out, *attempt);
            out.push(u8::from(*ok));
        }
        WireMsg::ShufflePut {
            shuffle,
            map_task,
            reduce,
            frame,
        } => {
            out.push(TAG_SHUFFLE_PUT);
            put_u64(&mut out, *shuffle);
            put_u64(&mut out, *map_task);
            put_u64(&mut out, *reduce);
            out.extend_from_slice(frame);
        }
        WireMsg::ShuffleGet {
            shuffle,
            map_task,
            reduce,
        } => {
            out.push(TAG_SHUFFLE_GET);
            put_u64(&mut out, *shuffle);
            put_u64(&mut out, *map_task);
            put_u64(&mut out, *reduce);
        }
        WireMsg::Block { frame } => {
            out.push(TAG_BLOCK);
            match frame {
                Some(f) => {
                    out.push(1);
                    out.extend_from_slice(f);
                }
                None => out.push(0),
            }
        }
        WireMsg::ShuffleRemove {
            shuffle,
            map_task,
            reduce,
        } => {
            out.push(TAG_SHUFFLE_REMOVE);
            put_u64(&mut out, *shuffle);
            put_u64(&mut out, *map_task);
            put_u64(&mut out, *reduce);
        }
        WireMsg::ShuffleRelease { shuffle } => {
            out.push(TAG_SHUFFLE_RELEASE);
            put_u64(&mut out, *shuffle);
        }
        WireMsg::ShuffleClear => out.push(TAG_SHUFFLE_CLEAR),
        WireMsg::BroadcastPut { id, frame } => {
            out.push(TAG_BROADCAST_PUT);
            put_u64(&mut out, *id);
            out.extend_from_slice(frame);
        }
        WireMsg::BroadcastGet { id } => {
            out.push(TAG_BROADCAST_GET);
            put_u64(&mut out, *id);
        }
        WireMsg::BroadcastRemove { id } => {
            out.push(TAG_BROADCAST_REMOVE);
            put_u64(&mut out, *id);
        }
        WireMsg::Heartbeat { seq } => {
            out.push(TAG_HEARTBEAT);
            put_u64(&mut out, *seq);
        }
        WireMsg::HeartbeatAck {
            seq,
            buckets,
            bucket_bytes,
            broadcasts,
            tasks_launched,
            tasks_done,
        } => {
            out.push(TAG_HEARTBEAT_ACK);
            put_u64(&mut out, *seq);
            put_u64(&mut out, *buckets);
            put_u64(&mut out, *bucket_bytes);
            put_u64(&mut out, *broadcasts);
            put_u64(&mut out, *tasks_launched);
            put_u64(&mut out, *tasks_done);
        }
        WireMsg::Ack => out.push(TAG_ACK),
        WireMsg::Shutdown => out.push(TAG_SHUTDOWN),
        WireMsg::ShutdownAck => out.push(TAG_SHUTDOWN_ACK),
    }
    out
}

/// Bounds-checked cursor over a message body.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, JobError> {
        let b = *self
            .buf
            .get(self.at)
            .ok_or_else(|| JobError::Codec("wire message truncated".into()))?;
        self.at += 1;
        Ok(b)
    }

    fn u64(&mut self) -> Result<u64, JobError> {
        let end = self
            .at
            .checked_add(8)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| JobError::Codec("wire message truncated".into()))?;
        let mut n = [0u8; 8];
        n.copy_from_slice(&self.buf[self.at..end]);
        self.at = end;
        Ok(u64::from_le_bytes(n))
    }

    /// Remaining bytes as an owned embedded payload frame, validated
    /// against the frame's own header before it travels further: a
    /// tail shorter than the sealed header, an unknown payload tag, or
    /// a raw body that disagrees with its declared length is a
    /// truncated/corrupt message, not a frame. (A compressed body can
    /// only be fully checked by inflating, which `open()` does,
    /// bounds-checked, at the consumer.)
    fn frame(&mut self) -> Result<Bytes, JobError> {
        let b = Bytes::copy_from_slice(&self.buf[self.at..]);
        self.at = self.buf.len();
        Payload::from_frame(b.clone())?;
        Ok(b)
    }

    fn done(&self) -> Result<(), JobError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(JobError::Codec(format!(
                "wire message carries {} trailing bytes",
                self.buf.len() - self.at
            )))
        }
    }
}

/// Decode a message body. Any malformed input — truncation, unknown
/// tag, trailing garbage — yields [`JobError::Codec`], never a panic.
pub fn decode_body(body: &[u8]) -> Result<WireMsg, JobError> {
    let mut c = Cursor { buf: body, at: 0 };
    let msg = match c.u8()? {
        TAG_HELLO => WireMsg::Hello { node: c.u64()? },
        TAG_HELLO_ACK => WireMsg::HelloAck { node: c.u64()? },
        TAG_TASK_LAUNCH => WireMsg::TaskLaunch {
            stage: c.u64()?,
            partition: c.u64()?,
            attempt: c.u64()?,
        },
        TAG_TASK_DONE => WireMsg::TaskDone {
            stage: c.u64()?,
            partition: c.u64()?,
            attempt: c.u64()?,
            ok: c.u8()? != 0,
        },
        TAG_SHUFFLE_PUT => WireMsg::ShufflePut {
            shuffle: c.u64()?,
            map_task: c.u64()?,
            reduce: c.u64()?,
            frame: c.frame()?,
        },
        TAG_SHUFFLE_GET => WireMsg::ShuffleGet {
            shuffle: c.u64()?,
            map_task: c.u64()?,
            reduce: c.u64()?,
        },
        TAG_BLOCK => {
            let present = c.u8()?;
            match present {
                0 => {
                    // An absent block must end the body: anything after
                    // the flag is garbage, not a frame.
                    c.done()?;
                    WireMsg::Block { frame: None }
                }
                1 => WireMsg::Block {
                    frame: Some(c.frame()?),
                },
                other => {
                    return Err(JobError::Codec(format!(
                        "block presence flag must be 0/1, got {other}"
                    )))
                }
            }
        }
        TAG_SHUFFLE_REMOVE => WireMsg::ShuffleRemove {
            shuffle: c.u64()?,
            map_task: c.u64()?,
            reduce: c.u64()?,
        },
        TAG_SHUFFLE_RELEASE => WireMsg::ShuffleRelease { shuffle: c.u64()? },
        TAG_SHUFFLE_CLEAR => WireMsg::ShuffleClear,
        TAG_BROADCAST_PUT => WireMsg::BroadcastPut {
            id: c.u64()?,
            frame: c.frame()?,
        },
        TAG_BROADCAST_GET => WireMsg::BroadcastGet { id: c.u64()? },
        TAG_BROADCAST_REMOVE => WireMsg::BroadcastRemove { id: c.u64()? },
        TAG_HEARTBEAT => WireMsg::Heartbeat { seq: c.u64()? },
        TAG_HEARTBEAT_ACK => WireMsg::HeartbeatAck {
            seq: c.u64()?,
            buckets: c.u64()?,
            bucket_bytes: c.u64()?,
            broadcasts: c.u64()?,
            tasks_launched: c.u64()?,
            tasks_done: c.u64()?,
        },
        TAG_ACK => WireMsg::Ack,
        TAG_SHUTDOWN => WireMsg::Shutdown,
        TAG_SHUTDOWN_ACK => WireMsg::ShutdownAck,
        other => return Err(JobError::Codec(format!("unknown wire tag {other}"))),
    };
    c.done()?;
    Ok(msg)
}

/// Write one framed message; returns the total bytes put on the wire
/// (length prefix + body).
pub fn write_msg<W: Write>(w: &mut W, msg: &WireMsg) -> std::io::Result<u64> {
    let body = encode_body(msg);
    debug_assert!(body.len() as u64 <= MAX_FRAME as u64);
    let len = body.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&body)?;
    w.flush()?;
    Ok(4 + body.len() as u64)
}

/// Read one framed message; returns it with the total bytes taken off
/// the wire. A length prefix above [`MAX_FRAME`] is rejected *before*
/// any allocation; a malformed body surfaces as
/// `io::ErrorKind::InvalidData` carrying the codec error.
pub fn read_msg<R: Read>(r: &mut R) -> std::io::Result<(WireMsg, u64)> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("wire frame of {len} bytes exceeds MAX_FRAME {MAX_FRAME}"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let msg = decode_body(&body)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    Ok((msg, 4 + len as u64))
}

/// Rehydrate an embedded payload frame, mapping header violations to
/// [`JobError::Codec`].
pub fn payload_from_wire(frame: Bytes) -> Result<Payload, JobError> {
    Payload::from_frame(frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::{Compression, Payload};

    fn all_messages() -> Vec<WireMsg> {
        let frame = Payload::seal(Bytes::from_static(b"bucket"), Compression::None).frame();
        vec![
            WireMsg::Hello { node: 3 },
            WireMsg::HelloAck { node: 3 },
            WireMsg::TaskLaunch {
                stage: 7,
                partition: 2,
                attempt: 1,
            },
            WireMsg::TaskDone {
                stage: 7,
                partition: 2,
                attempt: 1,
                ok: true,
            },
            WireMsg::ShufflePut {
                shuffle: 9,
                map_task: 1,
                reduce: 4,
                frame: frame.clone(),
            },
            WireMsg::ShuffleGet {
                shuffle: 9,
                map_task: 1,
                reduce: 4,
            },
            WireMsg::Block {
                frame: Some(frame.clone()),
            },
            WireMsg::Block { frame: None },
            WireMsg::ShuffleRemove {
                shuffle: 9,
                map_task: 1,
                reduce: 4,
            },
            WireMsg::ShuffleRelease { shuffle: 9 },
            WireMsg::ShuffleClear,
            WireMsg::BroadcastPut { id: 5, frame },
            WireMsg::BroadcastGet { id: 5 },
            WireMsg::BroadcastRemove { id: 5 },
            WireMsg::Heartbeat { seq: 11 },
            WireMsg::HeartbeatAck {
                seq: 11,
                buckets: 2,
                bucket_bytes: 64,
                broadcasts: 1,
                tasks_launched: 12,
                tasks_done: 10,
            },
            WireMsg::Ack,
            WireMsg::Shutdown,
            WireMsg::ShutdownAck,
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        for msg in all_messages() {
            let body = encode_body(&msg);
            assert_eq!(decode_body(&body).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn streamed_roundtrip_counts_wire_bytes() {
        let mut buf = Vec::new();
        let mut sent = 0;
        for msg in all_messages() {
            sent += write_msg(&mut buf, &msg).unwrap();
        }
        assert_eq!(sent as usize, buf.len());
        let mut r = &buf[..];
        let mut got = 0;
        for msg in all_messages() {
            let (back, n) = read_msg(&mut r).unwrap();
            assert_eq!(back, msg);
            got += n;
        }
        assert_eq!(got, sent);
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_bodies_error_never_panic() {
        for msg in all_messages() {
            let body = encode_body(&msg);
            for cut in 0..body.len() {
                assert!(decode_body(&body[..cut]).is_err(), "{msg:?} cut {cut}");
            }
        }
    }

    #[test]
    fn embedded_payload_frames_survive_verbatim() {
        let p = Payload::seal(Bytes::from(vec![42u8; 300]), Compression::Lz4);
        let body = encode_body(&WireMsg::ShufflePut {
            shuffle: 1,
            map_task: 0,
            reduce: 0,
            frame: p.frame(),
        });
        match decode_body(&body).unwrap() {
            WireMsg::ShufflePut { frame, .. } => {
                assert_eq!(frame, p.frame());
                let back = payload_from_wire(frame).unwrap();
                assert_eq!(back.open().unwrap(), p.open().unwrap());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut framed = Vec::new();
        framed.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        framed.extend_from_slice(&[0u8; 16]);
        let err = read_msg(&mut &framed[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
