//! Executor-side server: the state machine a `sparklet-executor`
//! subprocess runs over its driver connection.
//!
//! An executor owns the durable data plane of one node: staged shuffle
//! bucket frames, its broadcast cache, and lifecycle counters. It
//! speaks the request/reply discipline of [`super::wire`]: every
//! message from the driver is handled in arrival order, and exactly
//! the request messages (`ShufflePut`, `ShuffleGet`, `BroadcastPut`,
//! `BroadcastGet`, `Heartbeat`, `Shutdown`) produce one reply each —
//! fire-and-forget lifecycle messages produce none, so the driver can
//! pipeline them without desynchronizing the stream.
//!
//! The same state machine backs the real subprocess binary
//! (`sparklet-executor`) and in-process loopback tests; it is
//! deliberately free of process concerns (no exit calls, no signal
//! handling) so it can be driven from any `Read + Write` stream.

use std::collections::HashMap;
use std::io::{Read, Write};

use bytes::Bytes;

use super::wire::{payload_from_wire, read_msg, write_msg, WireMsg};

/// In-memory store and counters for one executor process.
#[derive(Default)]
pub struct ExecutorState {
    /// Staged bucket frames keyed by (shuffle, map_task, reduce).
    buckets: HashMap<(u64, u64, u64), Bytes>,
    /// Cached broadcast frames keyed by broadcast id.
    broadcasts: HashMap<u64, Bytes>,
    /// Task launches observed (lifetime counter).
    tasks_launched: u64,
    /// Task completions observed (lifetime counter).
    tasks_done: u64,
}

impl ExecutorState {
    /// Fresh empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of staged buckets.
    pub fn bucket_count(&self) -> u64 {
        self.buckets.len() as u64
    }

    /// Total frame bytes staged across buckets.
    pub fn bucket_bytes(&self) -> u64 {
        self.buckets.values().map(|b| b.len() as u64).sum()
    }

    /// Number of cached broadcasts.
    pub fn broadcast_count(&self) -> u64 {
        self.broadcasts.len() as u64
    }

    /// Handle one message, returning the reply to send (if the message
    /// is a request) and whether the serve loop should stop.
    pub fn handle(&mut self, msg: WireMsg) -> (Option<WireMsg>, bool) {
        match msg {
            WireMsg::TaskLaunch { .. } => {
                self.tasks_launched += 1;
                (None, false)
            }
            WireMsg::TaskDone { .. } => {
                self.tasks_done += 1;
                (None, false)
            }
            WireMsg::ShufflePut {
                shuffle,
                map_task,
                reduce,
                frame,
            } => {
                // Validate the embedded payload header before storing:
                // a frame this executor can't later serve is refused at
                // the door, not discovered by the fetcher.
                match payload_from_wire(frame.clone()) {
                    Ok(_) => {
                        self.buckets.insert((shuffle, map_task, reduce), frame);
                        (Some(WireMsg::Ack), false)
                    }
                    Err(_) => (Some(WireMsg::Block { frame: None }), false),
                }
            }
            WireMsg::ShuffleGet {
                shuffle,
                map_task,
                reduce,
            } => {
                let frame = self.buckets.get(&(shuffle, map_task, reduce)).cloned();
                (Some(WireMsg::Block { frame }), false)
            }
            WireMsg::ShuffleRemove {
                shuffle,
                map_task,
                reduce,
            } => {
                self.buckets.remove(&(shuffle, map_task, reduce));
                (None, false)
            }
            WireMsg::ShuffleRelease { shuffle } => {
                self.buckets.retain(|&(s, _, _), _| s != shuffle);
                (None, false)
            }
            WireMsg::ShuffleClear => {
                self.buckets.clear();
                (None, false)
            }
            WireMsg::BroadcastPut { id, frame } => match payload_from_wire(frame.clone()) {
                Ok(_) => {
                    self.broadcasts.insert(id, frame);
                    (Some(WireMsg::Ack), false)
                }
                Err(_) => (Some(WireMsg::Block { frame: None }), false),
            },
            WireMsg::BroadcastGet { id } => {
                let frame = self.broadcasts.get(&id).cloned();
                (Some(WireMsg::Block { frame }), false)
            }
            WireMsg::BroadcastRemove { id } => {
                self.broadcasts.remove(&id);
                (None, false)
            }
            WireMsg::Heartbeat { seq } => (
                Some(WireMsg::HeartbeatAck {
                    seq,
                    buckets: self.bucket_count(),
                    bucket_bytes: self.bucket_bytes(),
                    broadcasts: self.broadcast_count(),
                    tasks_launched: self.tasks_launched,
                    tasks_done: self.tasks_done,
                }),
                false,
            ),
            WireMsg::Shutdown => (Some(WireMsg::ShutdownAck), true),
            // Messages an executor never expects (driver-to-executor
            // stream carrying executor-to-driver or handshake traffic):
            // answer with an empty block so a confused driver fails a
            // fetch instead of deadlocking, and keep serving.
            WireMsg::Hello { .. }
            | WireMsg::HelloAck { .. }
            | WireMsg::Block { .. }
            | WireMsg::HeartbeatAck { .. }
            | WireMsg::Ack
            | WireMsg::ShutdownAck => (Some(WireMsg::Block { frame: None }), false),
        }
    }
}

/// Serve one driver connection until `Shutdown` or stream end.
///
/// Performs the executor side of the handshake (`Hello{node}` →
/// expects `HelloAck`), then loops over [`ExecutorState::handle`].
/// Returns `Ok(())` on orderly shutdown or driver disconnect; any
/// other I/O failure is surfaced for the binary to report.
pub fn serve<S: Read + Write>(stream: &mut S, node: u64) -> std::io::Result<()> {
    write_msg(stream, &WireMsg::Hello { node })?;
    let (ack, _) = read_msg(stream)?;
    match ack {
        WireMsg::HelloAck { node: n } if n == node => {}
        other => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected HelloAck for node {node}, got {other:?}"),
            ))
        }
    }
    let mut state = ExecutorState::new();
    loop {
        let msg = match read_msg(stream) {
            Ok((msg, _)) => msg,
            // Driver went away (crashed or dropped the manager without
            // an orderly shutdown): exit cleanly rather than orphan.
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        let (reply, stop) = state.handle(msg);
        if let Some(reply) = reply {
            write_msg(stream, &reply)?;
        }
        if stop {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::{Compression, Payload};

    fn frame(bytes: &'static [u8]) -> Bytes {
        Payload::seal(Bytes::from_static(bytes), Compression::None).frame()
    }

    #[test]
    fn put_get_release_lifecycle() {
        let mut st = ExecutorState::new();
        let f = frame(b"alpha");
        let (reply, stop) = st.handle(WireMsg::ShufflePut {
            shuffle: 1,
            map_task: 0,
            reduce: 2,
            frame: f.clone(),
        });
        assert_eq!(reply, Some(WireMsg::Ack));
        assert!(!stop);
        let (reply, _) = st.handle(WireMsg::ShuffleGet {
            shuffle: 1,
            map_task: 0,
            reduce: 2,
        });
        assert_eq!(reply, Some(WireMsg::Block { frame: Some(f) }));
        st.handle(WireMsg::ShuffleRelease { shuffle: 1 });
        let (reply, _) = st.handle(WireMsg::ShuffleGet {
            shuffle: 1,
            map_task: 0,
            reduce: 2,
        });
        assert_eq!(reply, Some(WireMsg::Block { frame: None }));
    }

    #[test]
    fn corrupt_put_is_refused_not_stored() {
        let mut st = ExecutorState::new();
        let (reply, _) = st.handle(WireMsg::ShufflePut {
            shuffle: 1,
            map_task: 0,
            reduce: 0,
            frame: Bytes::from_static(b"\xffnot a payload frame"),
        });
        assert_eq!(reply, Some(WireMsg::Block { frame: None }));
        assert_eq!(st.bucket_count(), 0);
    }

    #[test]
    fn heartbeat_reports_counters() {
        let mut st = ExecutorState::new();
        st.handle(WireMsg::TaskLaunch {
            stage: 0,
            partition: 0,
            attempt: 1,
        });
        st.handle(WireMsg::ShufflePut {
            shuffle: 3,
            map_task: 1,
            reduce: 0,
            frame: frame(b"beta"),
        });
        st.handle(WireMsg::BroadcastPut {
            id: 8,
            frame: frame(b"bcast"),
        });
        st.handle(WireMsg::TaskDone {
            stage: 0,
            partition: 0,
            attempt: 1,
            ok: true,
        });
        let (reply, _) = st.handle(WireMsg::Heartbeat { seq: 99 });
        match reply {
            Some(WireMsg::HeartbeatAck {
                seq,
                buckets,
                broadcasts,
                tasks_launched,
                tasks_done,
                bucket_bytes,
            }) => {
                assert_eq!(seq, 99);
                assert_eq!(buckets, 1);
                assert_eq!(broadcasts, 1);
                assert_eq!(tasks_launched, 1);
                assert_eq!(tasks_done, 1);
                assert!(bucket_bytes > 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn serve_handshakes_and_shuts_down_over_a_pipe() {
        use std::io::Cursor;
        // Script the driver side of the conversation into a buffer.
        let mut driver_out = Vec::new();
        write_msg(&mut driver_out, &WireMsg::HelloAck { node: 2 }).unwrap();
        write_msg(
            &mut driver_out,
            &WireMsg::ShufflePut {
                shuffle: 4,
                map_task: 0,
                reduce: 1,
                frame: frame(b"gamma"),
            },
        )
        .unwrap();
        write_msg(
            &mut driver_out,
            &WireMsg::ShuffleGet {
                shuffle: 4,
                map_task: 0,
                reduce: 1,
            },
        )
        .unwrap();
        write_msg(&mut driver_out, &WireMsg::Shutdown).unwrap();

        struct Duplex {
            input: Cursor<Vec<u8>>,
            output: Vec<u8>,
        }
        impl Read for Duplex {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                self.input.read(buf)
            }
        }
        impl Write for Duplex {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.output.write(buf)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let mut duplex = Duplex {
            input: Cursor::new(driver_out),
            output: Vec::new(),
        };
        serve(&mut duplex, 2).unwrap();

        let mut r = &duplex.output[..];
        assert_eq!(read_msg(&mut r).unwrap().0, WireMsg::Hello { node: 2 });
        assert_eq!(read_msg(&mut r).unwrap().0, WireMsg::Ack);
        assert_eq!(
            read_msg(&mut r).unwrap().0,
            WireMsg::Block {
                frame: Some(frame(b"gamma"))
            }
        );
        assert_eq!(read_msg(&mut r).unwrap().0, WireMsg::ShutdownAck);
        assert!(r.is_empty());
    }
}
