//! Driver-side executor management: subprocess lifecycle and the
//! request/reply client over the wire protocol.
//!
//! The [`ExecutorManager`] spawns one `sparklet-executor` subprocess
//! per node, accepts their connections on a loopback TCP listener (or
//! a Unix socket), and multiplexes the driver's data-plane traffic to
//! them: shuffle bucket staging and fetch, broadcast distribution,
//! task lifecycle notifications, and heartbeats. Every byte in either
//! direction is counted per node — these are the measured wire-byte
//! counters that feed the cluster model's transfer terms.
//!
//! All traffic to one executor is serialized under that node's mutex,
//! and the protocol pairs each request with exactly one reply (fire-
//! and-forget lifecycle messages have none), so the stream never
//! desynchronizes. Killing an executor ([`ExecutorManager::kill_respawn`])
//! is a real `SIGKILL`: the child is reaped, a replacement is spawned
//! and handshaken, and whatever the dead process held is genuinely
//! gone — a later fetch for its blocks misses for real.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;

use super::wire::{read_msg, write_msg, WireMsg};
use super::TransportMode;
use crate::error::JobError;
use crate::payload::Payload;

/// How long the driver waits for executor connections/handshakes.
const ACCEPT_TIMEOUT: Duration = Duration::from_secs(20);

/// A connected byte stream to one executor (TCP or Unix).
trait Conn: Read + Write + Send {}
impl Conn for TcpStream {}
impl Conn for UnixStream {}

enum Listener {
    Tcp(TcpListener),
    /// The Unix listener plus its socket path, unlinked on drop.
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// The address executors are told to connect to
    /// (`tcp:<ip>:<port>` or `unix:<path>`).
    fn connect_addr(&self) -> String {
        match self {
            Listener::Tcp(l) => format!("tcp:{}", l.local_addr().expect("bound listener")),
            Listener::Unix(_, path) => format!("unix:{}", path.display()),
        }
    }

    fn accept(&self) -> std::io::Result<Box<dyn Conn>> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true).ok();
                s.set_nonblocking(false)?;
                Ok(Box::new(s))
            }
            Listener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                Ok(Box::new(s))
            }
        }
    }

    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            Listener::Unix(l, _) => l.set_nonblocking(nb),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One live executor subprocess and its connection.
struct Worker {
    child: Child,
    conn: Box<dyn Conn>,
}

/// Per-node slot: `None` once the manager has shut the executor down.
struct Slot {
    worker: Option<Worker>,
}

/// An executor's self-reported state from a heartbeat reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatInfo {
    /// Shuffle buckets the executor holds.
    pub buckets: u64,
    /// Total stored bucket frame bytes.
    pub bucket_bytes: u64,
    /// Broadcast payloads the executor holds.
    pub broadcasts: u64,
    /// Task launches it has observed (lifetime of the process).
    pub tasks_launched: u64,
    /// Task completions it has observed.
    pub tasks_done: u64,
}

/// Driver-side manager of N executor subprocesses.
pub struct ExecutorManager {
    mode: TransportMode,
    listener: Mutex<Listener>,
    slots: Vec<Mutex<Slot>>,
    /// Bytes sent to each executor over its connection's lifetime
    /// (survives respawn — it counts the node, not the process).
    tx_bytes: Vec<AtomicU64>,
    /// Bytes received from each executor.
    rx_bytes: Vec<AtomicU64>,
    /// SIGKILL + respawn cycles taken.
    respawns: AtomicU64,
    /// Set once an orderly shutdown has reaped every child.
    done: Mutex<bool>,
}

impl std::fmt::Debug for ExecutorManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutorManager")
            .field("mode", &self.mode)
            .field("executors", &self.slots.len())
            .field("respawns", &self.respawns.load(Ordering::Relaxed))
            .finish()
    }
}

/// Locate the `sparklet-executor` binary: the `SPARKLET_EXECUTOR_BIN`
/// env var wins; otherwise walk up from the current executable (a test
/// binary lives in `target/<profile>/deps/`, the executor next to it
/// in `target/<profile>/`).
fn executor_binary() -> Result<PathBuf, JobError> {
    if let Ok(p) = std::env::var("SPARKLET_EXECUTOR_BIN") {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Ok(p);
        }
        return Err(JobError::Transport(format!(
            "SPARKLET_EXECUTOR_BIN points at {}, which does not exist",
            p.display()
        )));
    }
    let exe = std::env::current_exe()
        .map_err(|e| JobError::Transport(format!("cannot locate current executable: {e}")))?;
    for dir in exe.ancestors().skip(1) {
        let cand = dir.join("sparklet-executor");
        if cand.is_file() {
            return Ok(cand);
        }
    }
    Err(JobError::Transport(
        "sparklet-executor binary not found near the current executable; \
         build it with `cargo build -p sparklet` (a workspace `cargo test` \
         does this automatically) or set SPARKLET_EXECUTOR_BIN"
            .into(),
    ))
}

/// Unique-per-call Unix socket path under the system temp dir.
fn unix_socket_path() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("sparklet-{}-{}.sock", std::process::id(), seq))
}

impl ExecutorManager {
    /// Spawn `executors` subprocesses and handshake each one. The
    /// returned manager owns the children; dropping it (or calling
    /// [`ExecutorManager::shutdown`]) reaps them all.
    pub fn launch(mode: TransportMode, executors: usize) -> Result<Self, JobError> {
        assert!(executors >= 1);
        assert!(
            mode != TransportMode::InProcess,
            "InProcess mode has no executor subprocesses"
        );
        let listener = match mode {
            TransportMode::Tcp => Listener::Tcp(
                TcpListener::bind("127.0.0.1:0")
                    .map_err(|e| JobError::Transport(format!("bind loopback listener: {e}")))?,
            ),
            TransportMode::Unix => {
                let path = unix_socket_path();
                Listener::Unix(
                    UnixListener::bind(&path).map_err(|e| {
                        JobError::Transport(format!("bind unix socket {}: {e}", path.display()))
                    })?,
                    path,
                )
            }
            TransportMode::InProcess => unreachable!(),
        };
        let bin = executor_binary()?;
        let addr = listener.connect_addr();
        let mut children: Vec<Option<Child>> = Vec::with_capacity(executors);
        for node in 0..executors {
            children.push(Some(spawn_executor(&bin, &addr, node)?));
        }
        // Accept and handshake every child; `Hello{node}` tells us
        // which slot each connection belongs to.
        let mut workers: Vec<Option<Worker>> = (0..executors).map(|_| None).collect();
        for _ in 0..executors {
            let (node, conn) = accept_handshake(&listener, &mut children)?;
            if node >= executors || workers[node].is_some() {
                return Err(JobError::Transport(format!(
                    "executor handshake for unexpected node {node}"
                )));
            }
            let child = children[node]
                .take()
                .expect("child pending for handshaken node");
            workers[node] = Some(Worker { child, conn });
        }
        Ok(ExecutorManager {
            mode,
            listener: Mutex::new(listener),
            slots: workers
                .into_iter()
                .map(|w| Mutex::new(Slot { worker: w }))
                .collect(),
            tx_bytes: (0..executors).map(|_| AtomicU64::new(0)).collect(),
            rx_bytes: (0..executors).map(|_| AtomicU64::new(0)).collect(),
            respawns: AtomicU64::new(0),
            done: Mutex::new(false),
        })
    }

    /// The transport this manager runs on.
    pub fn mode(&self) -> TransportMode {
        self.mode
    }

    /// Number of executor subprocesses.
    pub fn executors(&self) -> usize {
        self.slots.len()
    }

    /// Measured `(sent, received)` wire bytes exchanged with `node`
    /// over the manager's lifetime (counted across respawns).
    pub fn wire_bytes(&self, node: usize) -> (u64, u64) {
        (
            self.tx_bytes[node].load(Ordering::Relaxed),
            self.rx_bytes[node].load(Ordering::Relaxed),
        )
    }

    /// Measured `(sent, received)` wire bytes summed over all nodes.
    pub fn total_wire_bytes(&self) -> (u64, u64) {
        let tx = self
            .tx_bytes
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum();
        let rx = self
            .rx_bytes
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum();
        (tx, rx)
    }

    /// SIGKILL + respawn cycles taken so far.
    pub fn respawns(&self) -> u64 {
        self.respawns.load(Ordering::Relaxed)
    }

    /// OS pid of `node`'s current executor subprocess (`None` after
    /// shutdown). Tests use this to kill an executor *behind the
    /// driver's back* and assert the audit notices.
    pub fn executor_pid(&self, node: usize) -> Option<u32> {
        self.slots[node]
            .lock()
            .worker
            .as_ref()
            .map(|w| w.child.id())
    }

    /// One request/reply (or fire-and-forget when `expect_reply` is
    /// false) under the node's slot lock. Returns the reply (if any)
    /// with the measured `(sent, received)` bytes of this exchange.
    fn exchange(
        &self,
        node: usize,
        msg: &WireMsg,
        expect_reply: bool,
    ) -> Result<(Option<WireMsg>, u64, u64), JobError> {
        let mut slot = self.slots[node].lock();
        let worker = slot
            .worker
            .as_mut()
            .ok_or_else(|| JobError::Transport(format!("executor {node} is shut down")))?;
        let sent = write_msg(&mut worker.conn, msg)
            .map_err(|e| JobError::Transport(format!("send to executor {node}: {e}")))?;
        self.tx_bytes[node].fetch_add(sent, Ordering::Relaxed);
        if !expect_reply {
            return Ok((None, sent, 0));
        }
        let (reply, got) = read_msg(&mut worker.conn)
            .map_err(|e| JobError::Transport(format!("reply from executor {node}: {e}")))?;
        self.rx_bytes[node].fetch_add(got, Ordering::Relaxed);
        Ok((Some(reply), sent, got))
    }

    /// Stage a bucket frame on `node`'s executor. Returns the bytes put
    /// on the wire. Failure means the bucket is *not* staged remotely —
    /// the caller must not commit it.
    pub fn put_block(
        &self,
        node: usize,
        shuffle: u64,
        map_task: u64,
        reduce: u64,
        frame: Bytes,
    ) -> Result<u64, JobError> {
        let (reply, sent, _) = self.exchange(
            node,
            &WireMsg::ShufflePut {
                shuffle,
                map_task,
                reduce,
                frame,
            },
            true,
        )?;
        match reply {
            Some(WireMsg::Ack) => Ok(sent),
            other => Err(JobError::Transport(format!(
                "executor {node} refused shuffle put: {other:?}"
            ))),
        }
    }

    /// Fetch a bucket frame from `node`'s executor. `Ok(None)` means
    /// the executor holds no such block (it restarted and lost it);
    /// `Ok(Some((payload, wire)))` carries the rehydrated payload and
    /// the measured bytes taken off the wire.
    pub fn fetch_block(
        &self,
        node: usize,
        shuffle: u64,
        map_task: u64,
        reduce: u64,
    ) -> Result<Option<(Payload, u64)>, JobError> {
        let (reply, _, got) = self.exchange(
            node,
            &WireMsg::ShuffleGet {
                shuffle,
                map_task,
                reduce,
            },
            true,
        )?;
        match reply {
            Some(WireMsg::Block { frame: Some(frame) }) => {
                Ok(Some((Payload::from_frame(frame)?, got)))
            }
            Some(WireMsg::Block { frame: None }) => Ok(None),
            other => Err(JobError::Transport(format!(
                "executor {node} answered a fetch with {other:?}"
            ))),
        }
    }

    /// Drop one stranded bucket copy on `node` (fire-and-forget;
    /// errors ignored — a dead executor holds nothing anyway).
    pub fn remove_block(&self, node: usize, shuffle: u64, map_task: u64, reduce: u64) {
        let _ = self.exchange(
            node,
            &WireMsg::ShuffleRemove {
                shuffle,
                map_task,
                reduce,
            },
            false,
        );
    }

    /// Propagate a per-shuffle release to every executor.
    pub fn shuffle_release(&self, shuffle: u64) {
        for node in 0..self.slots.len() {
            let _ = self.exchange(node, &WireMsg::ShuffleRelease { shuffle }, false);
        }
    }

    /// Propagate a wholesale shuffle clear to every executor.
    pub fn shuffle_clear(&self) {
        for node in 0..self.slots.len() {
            let _ = self.exchange(node, &WireMsg::ShuffleClear, false);
        }
    }

    /// Push a broadcast frame to `node`'s executor. Returns the bytes
    /// put on the wire.
    pub fn broadcast_put(&self, node: usize, id: u64, frame: Bytes) -> Result<u64, JobError> {
        let (reply, sent, _) = self.exchange(node, &WireMsg::BroadcastPut { id, frame }, true)?;
        match reply {
            Some(WireMsg::Ack) => Ok(sent),
            other => Err(JobError::Transport(format!(
                "executor {node} refused broadcast put: {other:?}"
            ))),
        }
    }

    /// Fetch a broadcast frame from `node`'s executor. `Ok(None)` when
    /// the executor does not hold it (e.g. it was respawned).
    pub fn broadcast_get(&self, node: usize, id: u64) -> Result<Option<(Payload, u64)>, JobError> {
        let (reply, _, got) = self.exchange(node, &WireMsg::BroadcastGet { id }, true)?;
        match reply {
            Some(WireMsg::Block { frame: Some(frame) }) => {
                Ok(Some((Payload::from_frame(frame)?, got)))
            }
            Some(WireMsg::Block { frame: None }) => Ok(None),
            other => Err(JobError::Transport(format!(
                "executor {node} answered a broadcast get with {other:?}"
            ))),
        }
    }

    /// Drop a broadcast on every executor (fire-and-forget).
    pub fn broadcast_remove(&self, id: u64) {
        for node in 0..self.slots.len() {
            let _ = self.exchange(node, &WireMsg::BroadcastRemove { id }, false);
        }
    }

    /// Notify `node`'s executor of a task launch (fire-and-forget; a
    /// send failure never blocks scheduling).
    pub fn notify_task_launch(&self, node: usize, stage: u64, partition: u64, attempt: u64) {
        let _ = self.exchange(
            node,
            &WireMsg::TaskLaunch {
                stage,
                partition,
                attempt,
            },
            false,
        );
    }

    /// Notify `node`'s executor of a task completion (fire-and-forget).
    pub fn notify_task_done(
        &self,
        node: usize,
        stage: u64,
        partition: u64,
        attempt: u64,
        ok: bool,
    ) {
        let _ = self.exchange(
            node,
            &WireMsg::TaskDone {
                stage,
                partition,
                attempt,
                ok,
            },
            false,
        );
    }

    /// Probe `node`'s executor for liveness and its self-reported
    /// state.
    pub fn heartbeat(&self, node: usize, seq: u64) -> Result<HeartbeatInfo, JobError> {
        match self.exchange(node, &WireMsg::Heartbeat { seq }, true)?.0 {
            Some(WireMsg::HeartbeatAck {
                seq: got,
                buckets,
                bucket_bytes,
                broadcasts,
                tasks_launched,
                tasks_done,
            }) if got == seq => Ok(HeartbeatInfo {
                buckets,
                bucket_bytes,
                broadcasts,
                tasks_launched,
                tasks_done,
            }),
            other => Err(JobError::Transport(format!(
                "executor {node} answered heartbeat {seq} with {other:?}"
            ))),
        }
    }

    /// SIGKILL `node`'s executor, reap it, and spawn + handshake a
    /// replacement. The new process starts empty: every block the dead
    /// one held is genuinely unfetchable afterwards. Returns the
    /// signal-death status description of the killed process.
    pub fn kill_respawn(&self, node: usize) -> Result<String, JobError> {
        let mut slot = self.slots[node].lock();
        let worker = slot
            .worker
            .as_mut()
            .ok_or_else(|| JobError::Transport(format!("executor {node} is shut down")))?;
        worker
            .child
            .kill()
            .map_err(|e| JobError::Transport(format!("SIGKILL executor {node}: {e}")))?;
        let status = worker
            .child
            .wait()
            .map_err(|e| JobError::Transport(format!("reap executor {node}: {e}")))?;
        // Replace the dead worker before releasing the slot lock so a
        // concurrent put/fetch blocks until the respawn completes
        // instead of hitting a dead socket.
        let listener = self.listener.lock();
        let bin = executor_binary()?;
        let mut pending = vec![Some(spawn_executor(&bin, &listener.connect_addr(), node)?)];
        let (hello_node, conn) = accept_handshake(&listener, &mut pending)?;
        if hello_node != node {
            return Err(JobError::Transport(format!(
                "respawned executor said node {hello_node}, expected {node}"
            )));
        }
        let child = pending[0].take().expect("respawned child");
        slot.worker = Some(Worker { child, conn });
        self.respawns.fetch_add(1, Ordering::Relaxed);
        Ok(format!("{status}"))
    }

    /// Verify every executor subprocess is alive and, when
    /// `expected_buckets` is given, that each one's self-reported
    /// bucket count matches the driver's ledger for that node. An
    /// executor that died behind the driver's back is reaped here and
    /// reported (no zombie survives an audit).
    pub fn audit(&self, expected_buckets: Option<&[u64]>) -> Result<(), String> {
        if *self.done.lock() {
            return Ok(());
        }
        for node in 0..self.slots.len() {
            {
                let mut slot = self.slots[node].lock();
                let Some(worker) = slot.worker.as_mut() else {
                    return Err(format!("executor {node} shut down mid-run"));
                };
                match worker.child.try_wait() {
                    Ok(None) => {}
                    Ok(Some(status)) => {
                        // Reaped just now — record the unexpected death.
                        slot.worker = None;
                        return Err(format!("executor {node} died unexpectedly ({status})"));
                    }
                    Err(e) => return Err(format!("poll executor {node}: {e}")),
                }
            }
            let hb = match self.heartbeat(node, 0xA0D17 + node as u64) {
                Ok(hb) => hb,
                Err(e) => {
                    // A killed executor's socket dies before its exit
                    // status becomes observable; give the corpse a
                    // moment to land so this audit reaps it instead of
                    // leaving it as a zombie for shutdown.
                    let deadline = Instant::now() + Duration::from_millis(500);
                    loop {
                        let mut slot = self.slots[node].lock();
                        if let Some(worker) = slot.worker.as_mut() {
                            if let Ok(Some(status)) = worker.child.try_wait() {
                                slot.worker = None;
                                return Err(format!(
                                    "executor {node} died unexpectedly ({status})"
                                ));
                            }
                        }
                        drop(slot);
                        if Instant::now() >= deadline {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    return Err(format!("audit heartbeat: {e}"));
                }
            };
            if let Some(expected) = expected_buckets {
                if hb.buckets != expected[node] {
                    return Err(format!(
                        "executor {node} holds {} buckets, driver ledger says {}",
                        hb.buckets, expected[node]
                    ));
                }
            }
        }
        Ok(())
    }

    /// Orderly shutdown: `Shutdown` → `ShutdownAck` → reap, per
    /// executor; a child that ignores the protocol is killed. Returns
    /// each child's exit code (0 = clean; killed children report -1).
    /// Idempotent — the second call returns an empty list.
    pub fn shutdown(&self) -> Result<Vec<i32>, String> {
        let mut done = self.done.lock();
        if *done {
            return Ok(Vec::new());
        }
        *done = true;
        let mut codes = Vec::with_capacity(self.slots.len());
        for (node, slot) in self.slots.iter().enumerate() {
            let mut slot = slot.lock();
            let Some(mut worker) = slot.worker.take() else {
                continue;
            };
            let tx = write_msg(&mut worker.conn, &WireMsg::Shutdown);
            if let Ok(sent) = tx {
                self.tx_bytes[node].fetch_add(sent, Ordering::Relaxed);
                if let Ok((reply, got)) = read_msg(&mut worker.conn) {
                    self.rx_bytes[node].fetch_add(got, Ordering::Relaxed);
                    debug_assert_eq!(reply, WireMsg::ShutdownAck);
                }
            }
            // The ack (or a failed send) precedes exit; wait() reaps.
            // An executor that wedges anyway is killed so shutdown
            // always returns with zero children left.
            let status = match worker.child.wait() {
                Ok(s) => s,
                Err(e) => return Err(format!("reap executor {node}: {e}")),
            };
            codes.push(status.code().unwrap_or(-1));
        }
        Ok(codes)
    }
}

impl Drop for ExecutorManager {
    fn drop(&mut self) {
        // Best-effort: never leave orphans or zombies behind, even when
        // the owner forgot an explicit shutdown.
        let _ = self.shutdown();
    }
}

fn spawn_executor(bin: &std::path::Path, addr: &str, node: usize) -> Result<Child, JobError> {
    Command::new(bin)
        .env("SPARKLET_NODE", node.to_string())
        .env("SPARKLET_CONNECT", addr)
        .stdin(Stdio::null())
        .spawn()
        .map_err(|e| JobError::Transport(format!("spawn executor {node} ({}): {e}", bin.display())))
}

/// Accept one connection and run the driver side of the handshake.
/// Polls non-blockingly so a child that died before connecting is
/// detected (and reaped) instead of hanging the accept forever.
fn accept_handshake(
    listener: &Listener,
    children: &mut [Option<Child>],
) -> Result<(usize, Box<dyn Conn>), JobError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| JobError::Transport(format!("listener nonblocking: {e}")))?;
    let deadline = Instant::now() + ACCEPT_TIMEOUT;
    let mut conn = loop {
        match listener.accept() {
            Ok(conn) => break conn,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                let mut dead = None;
                for (node, child) in children.iter_mut().enumerate() {
                    if let Some(c) = child.as_mut() {
                        if let Ok(Some(status)) = c.try_wait() {
                            dead = Some((node, status));
                            break;
                        }
                    }
                }
                if let Some((node, status)) = dead {
                    let _ = listener.set_nonblocking(false);
                    children[node] = None; // already reaped by try_wait
                    return Err(JobError::Transport(format!(
                        "executor {node} exited before connecting ({status})"
                    )));
                }
                if Instant::now() >= deadline {
                    let _ = listener.set_nonblocking(false);
                    return Err(JobError::Transport(
                        "timed out waiting for executor connections".into(),
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                let _ = listener.set_nonblocking(false);
                return Err(JobError::Transport(format!("accept executor: {e}")));
            }
        }
    };
    listener
        .set_nonblocking(false)
        .map_err(|e| JobError::Transport(format!("listener nonblocking: {e}")))?;
    let (hello, _) = read_msg(&mut conn)
        .map_err(|e| JobError::Transport(format!("executor handshake read: {e}")))?;
    let node = match hello {
        WireMsg::Hello { node } => node as usize,
        other => {
            return Err(JobError::Transport(format!(
                "expected Hello, got {other:?}"
            )))
        }
    };
    write_msg(&mut conn, &WireMsg::HelloAck { node: node as u64 })
        .map_err(|e| JobError::Transport(format!("executor handshake ack: {e}")))?;
    Ok((node, conn))
}
