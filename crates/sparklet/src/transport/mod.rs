//! Multi-process executors over a real wire transport.
//!
//! This subsystem turns the "cluster simulated within one process"
//! into a driver plus N genuine executor *subprocesses* connected by a
//! length-prefixed protocol over loopback TCP or Unix sockets. The
//! sealed zero-copy [`crate::Payload`] frames are the literal wire
//! format: a shuffle bucket or broadcast value travels byte-for-byte
//! as its sealed frame, and the receiving side rehydrates it with
//! [`crate::Payload::from_frame`].
//!
//! Division of labour (see DESIGN.md, "Transport architecture"):
//! executor subprocesses own the durable *data plane* of their node —
//! staged shuffle bucket frames, the broadcast cache, task lifecycle
//! counters — while task closures (arbitrary Rust functions, which
//! cannot cross a process boundary) execute on driver-side worker
//! threads acting as that node's core slots. Killing an executor is a
//! real `SIGKILL`: its staged blocks die with the process, so a later
//! fetch genuinely misses and drives the `FetchFailed` → map-stage
//! resubmission path against real process death.
//!
//! The in-process mode remains the default (and the only mode the
//! deterministic sim harness supports); select a wire transport with
//! [`crate::SparkConf::with_tcp_transport`] /
//! [`crate::SparkConf::with_unix_transport`].

pub mod executor;
pub mod manager;
pub mod wire;

pub use manager::{ExecutorManager, HeartbeatInfo};
pub use wire::{WireMsg, MAX_FRAME};

/// Which transport backs the executors of a [`crate::SparkContext`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportMode {
    /// Executors are in-process thread pools and the shuffle manager
    /// is the network (the default; required for sim mode).
    #[default]
    InProcess,
    /// Executor subprocesses connected over loopback TCP.
    Tcp,
    /// Executor subprocesses connected over a Unix domain socket.
    Unix,
}
