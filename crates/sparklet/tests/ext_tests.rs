//! Tests for the extended pair-RDD surface: cogroup/join, sorting,
//! count_by_key, accumulators.

use std::sync::Arc;

use sparklet::{HashPartitioner, SparkConf, SparkContext};

fn ctx() -> SparkContext {
    SparkContext::new(SparkConf::default().with_executors(3).with_partitions(6))
}

fn sorted<K: Ord, V>(mut v: Vec<(K, V)>) -> Vec<(K, V)> {
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

#[test]
fn cogroup_pairs_both_sides() {
    let sc = ctx();
    let left = sc.parallelize(vec![(1usize, 10u64), (2, 20), (2, 21)], Some(3));
    let right = sc.parallelize(vec![(2usize, 2.5f64), (3, 3.5)], Some(2));
    let grouped = left.cogroup(&right, 4, Arc::new(HashPartitioner));
    let got = sorted(grouped.collect().unwrap());
    assert_eq!(got.len(), 3);
    assert_eq!(got[0], (1, (vec![10], vec![])));
    let (ls, rs) = &got[1].1;
    assert_eq!(ls, &vec![20, 21]);
    assert_eq!(rs, &vec![2.5]);
    assert_eq!(got[2], (3, (vec![], vec![3.5])));
}

#[test]
fn join_is_inner_cartesian_per_key() {
    let sc = ctx();
    let users = sc.parallelize(
        vec![(1usize, "ada".to_string()), (2, "grace".to_string())],
        Some(2),
    );
    let orders = sc.parallelize(vec![(1usize, 100u64), (1, 101), (9, 900)], Some(2));
    let joined = users.join(&orders, 4, Arc::new(HashPartitioner));
    let got = sorted(joined.collect().unwrap());
    assert_eq!(got.len(), 2);
    assert_eq!(got[0].0, 1);
    assert_eq!(got[0].1 .0, "ada");
    let order_ids: Vec<u64> = got.iter().map(|(_, (_, o))| *o).collect();
    assert!(order_ids.contains(&100) && order_ids.contains(&101));
}

#[test]
fn left_outer_join_keeps_unmatched_left() {
    let sc = ctx();
    let left = sc.parallelize(vec![(1usize, 1u64), (2, 2)], Some(2));
    let right = sc.parallelize(vec![(2usize, 20u64)], Some(1));
    let joined = left.left_outer_join(&right, 3, Arc::new(HashPartitioner));
    let got = sorted(joined.collect().unwrap());
    assert_eq!(got, vec![(1, (1, None)), (2, (2, Some(20)))]);
}

#[test]
fn count_by_key_counts() {
    let sc = ctx();
    let data: Vec<(usize, u64)> = (0..30).map(|i| (i % 3, i as u64)).collect();
    let counts = sc
        .parallelize(data, Some(5))
        .count_by_key(3, Arc::new(HashPartitioner))
        .unwrap();
    assert_eq!(counts.len(), 3);
    assert_eq!(counts[&0], 10);
    assert_eq!(counts[&2], 10);
}

#[test]
fn sort_by_key_yields_global_order() {
    let sc = ctx();
    let mut data: Vec<(u64, u64)> = (0..200).map(|i| ((i * 7919) % 1000, i)).collect();
    let rdd = sc
        .parallelize(data.clone(), Some(8))
        .sort_by_key(4)
        .unwrap();
    let got = rdd.collect().unwrap();
    let keys: Vec<u64> = got.iter().map(|(k, _)| *k).collect();
    let mut want_keys = keys.clone();
    want_keys.sort_unstable();
    assert_eq!(keys, want_keys, "collect order must be globally sorted");
    data.sort_by_key(|(k, _)| *k);
    assert_eq!(got.len(), data.len());
}

#[test]
fn sort_by_key_handles_duplicates_and_empty() {
    let sc = ctx();
    let data: Vec<(u64, u64)> = vec![(5, 1), (5, 2), (1, 3), (5, 4), (1, 5)];
    let got = sc
        .parallelize(data, Some(3))
        .sort_by_key(2)
        .unwrap()
        .collect()
        .unwrap();
    let keys: Vec<u64> = got.iter().map(|(k, _)| *k).collect();
    assert_eq!(keys, vec![1, 1, 5, 5, 5]);

    let empty: Vec<(u64, u64)> = vec![];
    let got = sc
        .parallelize(empty, Some(2))
        .sort_by_key(3)
        .unwrap()
        .collect()
        .unwrap();
    assert!(got.is_empty());
}

#[test]
fn accumulators_visible_to_driver_after_action() {
    let sc = ctx();
    let acc = sc.long_accumulator("pairs-seen");
    let acc_for_tasks = acc.clone();
    let rdd = sc
        .parallelize((0..50usize).map(|i| (i, i as u64)).collect(), Some(5))
        .map_partitions(true, move |_p, items, _tc| {
            acc_for_tasks.add(items.len() as u64);
            items
        });
    rdd.collect().unwrap();
    assert_eq!(acc.value(), 50);
    assert_eq!(acc.name(), "pairs-seen");
}

#[test]
fn accumulator_counts_retries_like_spark() {
    let sc = ctx();
    let acc = sc.long_accumulator("attempts");
    let acc_for_tasks = acc.clone();
    sc.inject_failure(sc.next_stage_ordinal(), 0, 1);
    let rdd = sc
        .parallelize(vec![(0usize, 0u64)], Some(1))
        .map_partitions(true, move |_p, items, _tc| {
            acc_for_tasks.add(1);
            items
        });
    rdd.collect().unwrap();
    // An injected failure runs the task body before discarding the
    // attempt, so both the failed attempt and its retry increment —
    // accumulators are metrics, not exactly-once, exactly as in Spark.
    assert!(acc.value() >= 2);
}

#[test]
fn explain_shows_the_lineage_plan() {
    let sc = ctx();
    let rdd = sc
        .parallelize((0..10usize).map(|i| (i, i as u64)).collect(), Some(4))
        .map(|(k, v)| (k, v))
        .filter(|_, v| *v > 2)
        .partition_by(3, Arc::new(HashPartitioner));
    let plan = rdd.explain();
    let lines: Vec<&str> = plan.lines().collect();
    assert!(lines[0].starts_with("PartitionBy [WIDE"), "{plan}");
    assert!(lines[1].trim_start().starts_with("Filter"), "{plan}");
    assert!(lines[2].trim_start().starts_with("Map"), "{plan}");
    assert!(lines[3].trim_start().starts_with("Parallelize"), "{plan}");
    // Checkpointing cuts the plan to a single node.
    let ckpt = rdd.checkpoint().unwrap();
    let plan = ckpt.explain();
    assert_eq!(plan.lines().count(), 1);
    assert!(plan.starts_with("Materialized"), "{plan}");
}

#[test]
fn explain_shows_union_and_groups() {
    let sc = ctx();
    let a = sc.parallelize(vec![(1usize, 1u64)], Some(1));
    let b = sc.parallelize(vec![(2usize, 2u64)], Some(1));
    let plan = a
        .union(&b)
        .group_by_key(2, Arc::new(HashPartitioner))
        .explain();
    assert!(plan.contains("CombineByKey [WIDE"), "{plan}");
    assert!(plan.contains("Union [2 parents"), "{plan}");
}

#[test]
fn take_first_and_sample() {
    let sc = ctx();
    let rdd = sc.parallelize((0..100usize).map(|i| (i, i as u64)).collect(), Some(8));
    assert_eq!(rdd.take(5).unwrap().len(), 5);
    assert!(rdd.first().unwrap().is_some());
    let empty = sc.parallelize(Vec::<(usize, u64)>::new(), Some(2));
    assert_eq!(empty.first().unwrap(), None);
    assert!(empty.take(3).unwrap().is_empty());

    // Sampling: deterministic per seed, roughly proportional.
    let s1 = rdd.sample(0.3, 7).collect().unwrap();
    let s2 = rdd.sample(0.3, 7).collect().unwrap();
    assert_eq!(sorted(s1.clone()), sorted(s2));
    assert!(s1.len() > 5 && s1.len() < 70, "got {}", s1.len());
    assert!(rdd.sample(0.0, 1).collect().unwrap().is_empty());
    assert_eq!(rdd.sample(1.0, 1).collect().unwrap().len(), 100);
}

#[test]
fn coalesce_reduces_partitions_without_losing_data() {
    let sc = ctx();
    let rdd = sc.parallelize((0..60usize).map(|i| (i, i as u64)).collect(), Some(12));
    let co = rdd.coalesce(4);
    assert_eq!(co.num_partitions(), 4);
    assert_eq!(
        sorted(co.collect().unwrap()),
        sorted(rdd.collect().unwrap())
    );
    // Task count reflects the coalesced width.
    sc.take_event_log();
    co.count().unwrap();
    sc.with_event_log(|log| assert_eq!(log.task_count(), 4));
    // target >= current is a no-op.
    assert_eq!(rdd.coalesce(100).num_partitions(), 12);
    assert!(co.explain().contains("Coalesce [4 partitions"));
}

#[test]
fn stage_wall_time_is_recorded() {
    let sc = ctx();
    sc.parallelize((0..50usize).map(|i| (i, i as u64)).collect(), Some(4))
        .map_values(|v| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            v
        })
        .count()
        .unwrap();
    sc.with_event_log(|log| {
        assert!(
            log.total_wall_seconds() > 0.001,
            "{}",
            log.total_wall_seconds()
        );
    });
}
