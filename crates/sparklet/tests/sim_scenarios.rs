//! Deterministic simulation scenarios: seeded chaos sweeps over the
//! whole engine, plus directed regression tests for bugs the harness
//! shook out. Every sweep prints a `CHAOS_SEED=<seed>` replay line on
//! failure; `SIM_SEEDS=<n>` widens the sweep (nightly CI).

mod sim;

use std::sync::Arc;

use sparklet::{
    ChaosEvent, ChaosPolicy, Compression, HashPartitioner, JobError, SparkContext, StorageLevel,
};

#[test]
fn crash_scenario_sweep() {
    let total_retries = std::cell::Cell::new(0u64);
    sim::sweep("crash", 10, |seed| {
        let run = sim::run_replay_stable("crash", seed, |s| {
            sim::run_scenario(
                s,
                Some(ChaosPolicy::seeded(s).with_task_panics(120)),
                None,
                sim::sim_conf(s),
            )
        });
        total_retries.set(total_retries.get() + sim::counter(&run, "retries"));
        let clean = sim::run_scenario(seed, None, None, sim::sim_conf(seed));
        sim::assert_against_fault_free("crash", seed, &run, &clean);
    });
    if sim::default_sweep() {
        assert!(
            total_retries.get() > 0,
            "a 12% panic rate over the sweep must cause at least one retry"
        );
    }
}

#[test]
fn straggler_scenario_sweep() {
    sim::sweep("straggler", 10, |seed| {
        let run = sim::run_replay_stable("straggler", seed, |s| {
            sim::run_scenario(
                s,
                Some(ChaosPolicy::seeded(s).with_stragglers(150, 400)),
                None,
                sim::sim_conf(s),
            )
        });
        let clean = sim::run_scenario(seed, None, None, sim::sim_conf(seed));
        sim::assert_against_fault_free("straggler", seed, &run, &clean);
        // Stragglers and retries only ever add virtual time.
        assert!(
            run.virtual_ms >= clean.virtual_ms,
            "CHAOS_SEED={seed}: straggler run was faster than the clean run"
        );
    });
}

#[test]
fn fetch_failure_scenario_sweep() {
    let total_resubmissions = std::cell::Cell::new(0u64);
    sim::sweep("fetch-failure", 10, |seed| {
        let run = sim::run_replay_stable("fetch-failure", seed, |s| {
            sim::run_scenario(
                s,
                Some(ChaosPolicy::seeded(s).with_fetch_failures(80)),
                None,
                sim::sim_conf(s),
            )
        });
        total_resubmissions.set(total_resubmissions.get() + sim::counter(&run, "resubmissions"));
        let clean = sim::run_scenario(seed, None, None, sim::sim_conf(seed));
        sim::assert_against_fault_free("fetch-failure", seed, &run, &clean);
    });
    if sim::default_sweep() {
        assert!(
            total_resubmissions.get() > 0,
            "an 8% fetch-failure rate over the sweep must cause a map-stage resubmission"
        );
    }
}

#[test]
fn executor_loss_scenario_sweep() {
    let total_lost = std::cell::Cell::new(0u64);
    sim::sweep("executor-loss", 10, |seed| {
        let run = sim::run_replay_stable("executor-loss", seed, |s| {
            sim::run_scenario(
                s,
                Some(ChaosPolicy::seeded(s).with_executor_loss(25, 2)),
                None,
                sim::sim_conf(s),
            )
        });
        total_lost.set(total_lost.get() + sim::counter(&run, "staged_lost"));
        let clean = sim::run_scenario(seed, None, None, sim::sim_conf(seed));
        sim::assert_against_fault_free("executor-loss", seed, &run, &clean);
    });
    if sim::default_sweep() {
        assert!(
            total_lost.get() > 0,
            "executor losses over the sweep must write off some staged bytes"
        );
    }
}

#[test]
fn disk_full_scenario_sweep() {
    // Persisted branch + tight memory: puts spill to the disk tier,
    // and chaos makes the disk intermittently full. Skipped blocks
    // must recompute from lineage; nothing may be silently wrong.
    sim::sweep("disk-full", 10, |seed| {
        let conf = |s: u64| {
            sim::sim_conf(s)
                .with_executor_memory(2048)
                .with_disk_capacity(1 << 20)
        };
        let run = sim::run_replay_stable("disk-full", seed, |s| {
            sim::run_scenario(
                s,
                Some(ChaosPolicy::seeded(s).with_disk_full(200)),
                Some(StorageLevel::MemoryAndDisk),
                conf(s),
            )
        });
        let clean = sim::run_scenario(seed, None, Some(StorageLevel::MemoryAndDisk), conf(seed));
        sim::assert_against_fault_free("disk-full", seed, &run, &clean);
    });
}

#[test]
fn mixed_chaos_scenario_sweep() {
    // Everything at once, at lower rates: the cross-product of fault
    // recoveries interacting is where ordering bugs live.
    sim::sweep("mixed", 10, |seed| {
        let chaos = |s: u64| {
            ChaosPolicy::seeded(s)
                .with_task_panics(50)
                .with_stragglers(50, 200)
                .with_fetch_failures(30)
                .with_executor_loss(10, 1)
                .with_disk_full(50)
        };
        let run = sim::run_replay_stable("mixed", seed, |s| {
            sim::run_scenario(
                s,
                Some(chaos(s)),
                Some(StorageLevel::MemoryAndDisk),
                sim::sim_conf(s).with_executor_memory(4096),
            )
        });
        let clean = sim::run_scenario(
            seed,
            None,
            Some(StorageLevel::MemoryAndDisk),
            sim::sim_conf(seed).with_executor_memory(4096),
        );
        sim::assert_against_fault_free("mixed", seed, &run, &clean);
    });
}

#[test]
fn zero_length_partitions_survive_chaos() {
    // 3 pairs spread over 8 input partitions and reduced into 6: most
    // map tasks write nothing and most reduce buckets are empty —
    // Slot::Empty handling under panics and fetch failures.
    sim::sweep("sparse", 10, |seed| {
        let run = |s: u64, chaotic: bool| {
            let sc = SparkContext::new(sim::sim_conf(s));
            if chaotic {
                sc.install_chaos(
                    ChaosPolicy::seeded(s)
                        .with_task_panics(100)
                        .with_fetch_failures(60),
                );
            }
            let out = sc
                .parallelize(sim::pairs(3), Some(8))
                .reduce_by_key(|a, b| a.wrapping_add(b), 6, Arc::new(HashPartitioner))
                .collect();
            sc.clear_chaos();
            let res = out.map(|mut v| {
                v.sort_unstable();
                v
            });
            let _ = sc.parallelize(vec![(0usize, 0u64)], Some(1)).count();
            sim::assert_invariants(&sc, s);
            res.map_err(|e| e.to_string())
        };
        let clean = run(seed, false).expect("clean sparse run");
        match run(seed, true) {
            Ok(got) => assert_eq!(got, clean, "CHAOS_SEED={seed}: sparse data diverged"),
            Err(msg) => assert!(
                msg.contains("chaos") || msg.contains("fetch failed"),
                "CHAOS_SEED={seed}: unattributable sparse failure: {msg}"
            ),
        }
    });
}

// ---------------------------------------------------------------------
// Directed regressions the harness shook out
// ---------------------------------------------------------------------

/// Two equal-seed clean runs must produce identical stage schedules.
/// Regression for the DAG planner deriving child edges from HashMap
/// iteration order: the ready-queue order — and with it the seeded
/// stage pick sequence — varied between runs of the same seed.
#[test]
fn clean_schedule_is_bit_identical_across_replays() {
    for seed in [7, 1234, 0xdead_beef] {
        sim::run_replay_stable("clean-replay", seed, |s| {
            sim::run_scenario(s, None, None, sim::sim_conf(s))
        });
    }
}

/// The wire codec must be invisible to everything the simulation
/// fingerprints: declared-byte accounting (staging, spill, reads),
/// the seeded schedule, the virtual clock, and of course the data.
/// Compression only changes the measured wire bytes riding alongside.
/// Both runs also pass the full invariant set inside `run_scenario` —
/// in particular, staged bytes reconcile to zero with the codec on.
#[test]
fn compression_does_not_change_accounting_or_schedule() {
    for seed in [11, 4242, 0xbeef] {
        let chaos = |s: u64| {
            ChaosPolicy::seeded(s)
                .with_task_panics(60)
                .with_fetch_failures(40)
                .with_disk_full(50)
        };
        let conf = |s: u64| sim::sim_conf(s).with_executor_memory(4096);
        let plain = sim::run_scenario(
            seed,
            Some(chaos(seed)),
            Some(StorageLevel::MemoryAndDisk),
            conf(seed),
        );
        let packed = sim::run_scenario(
            seed,
            Some(chaos(seed)),
            Some(StorageLevel::MemoryAndDisk),
            conf(seed).with_compression(Compression::Lz4),
        );
        assert_eq!(
            plain, packed,
            "CHAOS_SEED={seed}: the codec changed an observable of the run"
        );
    }
}

/// A virtual-clock jump that passes several backoff deadlines at once
/// must relaunch each parked partition exactly once. Regression for
/// the deferred-relaunch heap assuming deadlines expire one at a time
/// (true under a real clock, false when virtual time jumps).
#[test]
fn virtual_clock_jump_relaunches_each_deferred_partition_once() {
    let sc = SparkContext::new(sim::sim_conf(42).with_retry_backoff(500, 500));
    for p in 0..4 {
        sc.inject_failure(0, p, 1);
    }
    let mut got = sc
        .parallelize(sim::pairs(16), Some(4))
        .collect()
        .expect("deferred relaunch job");
    got.sort_unstable();
    assert_eq!(got, sim::pairs(16));
    // All four partitions park on the same 500 ms deadline; the jump
    // drains them in one pass — exactly one retry each, no doubles.
    assert_eq!(sc.with_event_log(|log| log.total_retries()), 4);
    assert!(
        sc.now_ms() >= 500,
        "the virtual clock must have jumped past the backoff deadline"
    );
}

/// A disk-full event on a *pinned* put (checkpoint `DiskOnly`: lineage
/// is cut, the block is not recoverable) must surface `DiskOverflow`,
/// not silently skip the block.
#[test]
fn pinned_checkpoint_surfaces_disk_overflow_under_chaos() {
    let sc = SparkContext::new(sim::sim_conf(9).with_disk_capacity(1 << 20));
    sc.install_chaos(ChaosPolicy::seeded(9).with_disk_full(1000));
    match sc
        .parallelize(sim::pairs(32), Some(4))
        .checkpoint_with_level(StorageLevel::DiskOnly)
    {
        Ok(_) => panic!("chaos fills the disk for every task; checkpoint must fail"),
        Err(err) => assert!(
            matches!(err, JobError::DiskOverflow { .. }),
            "expected DiskOverflow, got: {err}"
        ),
    }
}

/// A scripted executor loss between a map stage and its consumer:
/// the reduce fetch must observe `FetchFailed` (Lost slots never read
/// as empty), the job must resubmit the map stage, and the rerun must
/// produce the exact clean-run data.
#[test]
fn scripted_executor_loss_resubmits_the_map_stage() {
    let run = |chaos: bool| {
        let sc = SparkContext::new(sim::sim_conf(5));
        if chaos {
            // Stage 1 is the reduce/result stage of the first job
            // (stage 0 is the shuffle map stage): kill the executor
            // hosting the first reduce attempt's node before it runs.
            sc.install_chaos(ChaosPolicy::seeded(5).script(1, 0, 1, ChaosEvent::ExecutorLoss));
        }
        let mut got = sc
            .parallelize(sim::pairs(64), Some(4))
            .map(|(k, v)| (k % 6, v))
            .reduce_by_key(|a, b| a.wrapping_add(b), 4, Arc::new(HashPartitioner))
            .collect()
            .expect("loss must be recovered via resubmission");
        got.sort_unstable();
        sc.clear_chaos();
        (got, sc.stage_resubmissions(), sc.staged_lost_bytes())
    };
    let (want, zero_resub, zero_lost) = run(false);
    assert_eq!(zero_resub, 0);
    assert_eq!(zero_lost, 0);
    let (got, resubmissions, lost) = run(true);
    assert_eq!(got, want, "recovered run must match the clean run");
    assert!(
        resubmissions >= 1,
        "executor loss must trigger a map-stage resubmission"
    );
    assert!(
        lost > 0,
        "lost map outputs must be written off, not released"
    );
}

#[test]
fn adaptive_replan_scenario_sweep() {
    // The AQE execution pattern under chaos: a mid-job re-plan — a
    // signature-preserving coalesce followed by an elided
    // partition_by, with the decision recorded — must survive seeded
    // faults with a bit-identical replay, decision records included,
    // and the same result as the fault-free run.
    let run_one = |seed: u64, chaos: bool| {
        let sc = SparkContext::new(sim::sim_conf(seed).with_adaptive_execution());
        if chaos {
            sc.install_chaos(
                ChaosPolicy::seeded(seed)
                    .with_task_panics(100)
                    .with_stragglers(100, 200),
            );
        }
        let result = {
            let wide = sc
                .parallelize(sim::pairs(96), Some(6))
                .map(|(k, v)| (k % 17, v))
                .reduce_by_key(|a, b| a.wrapping_add(b), 8, Arc::new(HashPartitioner));
            wide.count().map_err(|e| e.to_string()).and_then(|_| {
                // The "re-plan": shrink for the narrower tail of the job.
                sc.log_adaptive_decision(0, "coalesce:8->4", "tail of job needs fewer partitions");
                wide.coalesce(4)
                    .partition_by(4, Arc::new(HashPartitioner))
                    .map(|(k, v)| (k, v ^ 1))
                    .collect()
                    .map(|mut v| {
                        v.sort_unstable();
                        v
                    })
                    .map_err(|e| e.to_string())
            })
        };
        sc.clear_chaos();
        let _ = sc.parallelize(vec![(0usize, 0u64)], Some(1)).count();
        sim::assert_invariants(&sc, seed);
        let decisions = sc.with_event_log(|log| {
            log.decisions()
                .iter()
                .map(|d| (d.at_stage, d.iteration, d.action.clone()))
                .collect::<Vec<_>>()
        });
        (
            sim::SimRun {
                result,
                schedule: sc.with_event_log(|log| log.stage_order()),
                counters: sim::counters(&sc),
                virtual_ms: sc.now_ms(),
            },
            decisions,
        )
    };
    sim::sweep("adaptive replan", 10, |seed| {
        let (first, d1) = run_one(seed, true);
        let (second, d2) = run_one(seed, true);
        assert_eq!(
            first, second,
            "CHAOS_SEED={seed}: adaptive run not bit-identical on replay"
        );
        assert_eq!(
            d1, d2,
            "CHAOS_SEED={seed}: decision records diverged on replay"
        );
        assert_eq!(d1.len(), 1, "CHAOS_SEED={seed}: exactly one re-plan logged");
        let (clean, _) = run_one(seed, false);
        if let (Ok(got), Ok(want)) = (&first.result, &clean.result) {
            assert_eq!(got, want, "CHAOS_SEED={seed}: chaos changed the answer");
        }
    });
}
