//! Engine behaviour under real concurrency: multi-threaded executor
//! pools and simultaneous jobs on one context.

use std::sync::Arc;

use sparklet::{HashPartitioner, SparkConf, SparkContext};

fn parallel_ctx() -> SparkContext {
    SparkContext::new(
        SparkConf::default()
            .with_executors(4)
            .with_executor_cores(4)
            .with_worker_threads(2) // real OS threads per executor
            .with_partitions(16),
    )
}

fn sorted<K: Ord, V>(mut v: Vec<(K, V)>) -> Vec<(K, V)> {
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

#[test]
fn multithreaded_executors_compute_identical_results() {
    let data: Vec<(usize, u64)> = (0..500).map(|i| (i, (i * 31) as u64)).collect();
    let run = |threads: usize| {
        let sc = SparkContext::new(
            SparkConf::default()
                .with_executors(4)
                .with_worker_threads(threads)
                .with_partitions(16),
        );
        let rdd = sc
            .parallelize(data.clone(), None)
            .map(|(k, v)| (k % 50, v))
            .reduce_by_key(|a, b| a.wrapping_add(b), 8, Arc::new(HashPartitioner));
        sorted(rdd.collect().unwrap())
    };
    assert_eq!(run(1), run(2));
    assert_eq!(run(1), run(4));
}

#[test]
fn concurrent_jobs_on_one_context_do_not_interfere() {
    let sc = parallel_ctx();
    let handles: Vec<_> = (0..4)
        .map(|job| {
            let sc = sc.clone();
            std::thread::spawn(move || {
                let data: Vec<(usize, u64)> =
                    (0..200).map(|i| (i, (i * (job + 1)) as u64)).collect();
                let rdd = sc
                    .parallelize(data, Some(8))
                    .map_values(move |v| v + job as u64)
                    .reduce_by_key(|a, b| a + b, 4, Arc::new(HashPartitioner));
                let total: u64 = rdd.collect().unwrap().into_iter().map(|(_, v)| v).sum();
                // Σ i·(job+1) + 200·job for i in 0..200.
                let expect: u64 =
                    (0..200u64).map(|i| i * (job as u64 + 1)).sum::<u64>() + 200 * job as u64;
                assert_eq!(total, expect, "job {job}");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("concurrent job");
    }
}

#[test]
fn concurrent_actions_share_one_shuffle_materialization() {
    // Two threads trigger the same wide RDD at once; the shuffle must
    // materialize exactly once and both must see consistent data.
    let sc = parallel_ctx();
    let wide = sc
        .parallelize((0..300usize).map(|i| (i, 1u64)).collect(), Some(12))
        .map(|kv| kv)
        .partition_by(6, Arc::new(HashPartitioner));
    let a = {
        let wide = wide.clone();
        std::thread::spawn(move || wide.count().unwrap())
    };
    let b = {
        let wide = wide.clone();
        std::thread::spawn(move || wide.count().unwrap())
    };
    assert_eq!(a.join().unwrap(), 300);
    assert_eq!(b.join().unwrap(), 300);
    sc.with_event_log(|log| {
        let maps = log
            .stages()
            .iter()
            .filter(|s| s.label.contains(".map"))
            .count();
        assert_eq!(maps, 1, "shuffle must materialize once");
    });
}

#[test]
fn checkpoint_under_parallel_workers_is_stable() {
    let sc = parallel_ctx();
    let mut rdd = sc.parallelize((0..256usize).map(|i| (i, i as u64)).collect(), Some(16));
    // Chain several checkpointed transformations, like the DP loop.
    for round in 0..5u64 {
        rdd = rdd
            .map_values(move |v| v.wrapping_mul(31).wrapping_add(round))
            .checkpoint()
            .unwrap();
    }
    let got = sorted(rdd.collect().unwrap());
    // Sequential oracle.
    let mut expect: Vec<(usize, u64)> = (0..256).map(|i| (i, i as u64)).collect();
    for round in 0..5u64 {
        for (_, v) in expect.iter_mut() {
            *v = v.wrapping_mul(31).wrapping_add(round);
        }
    }
    assert_eq!(got, expect);
}
