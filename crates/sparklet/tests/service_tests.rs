//! Job-service behaviour at the sparklet layer: multi-client soak over
//! real TCP/Unix submission sockets, weighted-fairness and admission
//! properties, cache-hit bitwise equivalence, scripted-replay decision
//! determinism, and cancellation releasing budget and latches.
//!
//! The runner here is a toy (but engine-driving) workload: each job
//! builds a seeded pair-RDD, runs it through a real shuffle
//! (`reduce_by_key`), and encodes the sorted totals. dp-core's DP
//! binding is exercised in its own crate; this suite pins the *service*
//! semantics independent of any problem type.

use std::sync::Arc;

use bytes::Bytes;
use sparklet::service::{JobRunner, JobService};
use sparklet::{
    Arrival, HashPartitioner, JobError, JobState, LineageHasher, Rejection, ServiceAddr,
    ServiceClient, ServiceConfig, ServiceDecision, SparkConf, SparkContext,
};

fn ctx() -> SparkContext {
    SparkContext::new(
        SparkConf::default()
            .with_executors(2)
            .with_executor_cores(2)
            .with_worker_threads(2)
            .with_partitions(4),
    )
}

fn sim_ctx(seed: u64) -> SparkContext {
    SparkContext::new(
        SparkConf::default()
            .with_executors(2)
            .with_executor_cores(2)
            .with_partitions(4)
            .with_sim_seed(seed),
    )
}

// --- toy workload ----------------------------------------------------
//
// Body: [kind u8][seed u64][n u64][take u64]
//   kind 1: sum pairs (i % 17, f(seed, i)) via reduce_by_key
//   kind 2: same with values scaled — a different lineage
//   kind 3: kind 1 but re-shuffled `rounds` times with a pause per
//           round (a slow, multi-stage job for cancellation tests;
//           `take` is reused as the round count)
//
// `take` (kinds 1/2) truncates the response to the first `take`
// entries and is NOT part of the lineage key: overlapping queries
// share one cached full result and project their slice.

fn body(kind: u8, seed: u64, n: u64, take: u64) -> Bytes {
    let mut v = vec![kind];
    v.extend_from_slice(&seed.to_le_bytes());
    v.extend_from_slice(&n.to_le_bytes());
    v.extend_from_slice(&take.to_le_bytes());
    Bytes::from(v)
}

fn parse(body: &Bytes) -> Result<(u8, u64, u64, u64), JobError> {
    if body.len() != 25 {
        return Err(JobError::Codec(format!("toy body len {}", body.len())));
    }
    let u = |at: usize| u64::from_le_bytes(body[at..at + 8].try_into().expect("8"));
    Ok((body[0], u(1), u(9), u(17)))
}

/// Serial reference: what one toy job must produce, engine-free.
fn reference(kind: u8, seed: u64, n: u64, take: u64) -> Vec<(u64, u64)> {
    let scale = if kind == 2 { 3 } else { 1 };
    let mut totals = std::collections::BTreeMap::<u64, u64>::new();
    for i in 0..n {
        let v = (seed ^ i).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 7;
        *totals.entry(i % 17).or_default() += v.wrapping_mul(scale) % 1_000_003;
    }
    let all: Vec<(u64, u64)> = totals.into_iter().collect();
    let cut = if take == 0 { all.len() } else { take as usize };
    all.into_iter().take(cut).collect()
}

fn encode_pairs(pairs: &[(u64, u64)]) -> Bytes {
    let mut out = Vec::with_capacity(pairs.len() * 16);
    for &(k, v) in pairs {
        out.extend_from_slice(&k.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    Bytes::from(out)
}

fn decode_pairs(bytes: &Bytes) -> Vec<(u64, u64)> {
    bytes
        .chunks_exact(16)
        .map(|c| {
            (
                u64::from_le_bytes(c[0..8].try_into().expect("8")),
                u64::from_le_bytes(c[8..16].try_into().expect("8")),
            )
        })
        .collect()
}

struct ToyRunner;

impl ToyRunner {
    fn totals(sc: &SparkContext, kind: u8, seed: u64, n: u64) -> Result<Vec<(u64, u64)>, JobError> {
        let scale: u64 = if kind == 2 { 3 } else { 1 };
        let input: Vec<(u64, u64)> = (0..n)
            .map(|i| {
                let v = (seed ^ i).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 7;
                (i % 17, v.wrapping_mul(scale) % 1_000_003)
            })
            .collect();
        let mut got = sc
            .parallelize(input, Some(4))
            .reduce_by_key(|a, b| a + b, 4, Arc::new(HashPartitioner))
            .collect()?;
        got.sort_unstable();
        Ok(got)
    }
}

impl JobRunner for ToyRunner {
    fn estimate(&self, body: &Bytes) -> Result<f64, JobError> {
        let (_, _, n, _) = parse(body)?;
        Ok(n as f64)
    }

    fn cache_key(&self, body: &Bytes) -> Result<Option<u128>, JobError> {
        let (kind, seed, n, _take) = parse(body)?;
        // Slow jobs (kind 3) opt out: their point is to be running.
        if kind == 3 {
            return Ok(None);
        }
        let mut h = LineageHasher::default();
        h.update(&[kind])
            .update(&seed.to_le_bytes())
            .update(&n.to_le_bytes());
        Ok(Some(h.finish()))
    }

    fn run(&self, sc: &SparkContext, body: &Bytes) -> Result<Bytes, JobError> {
        let (kind, seed, n, take) = parse(body)?;
        match kind {
            1 | 2 => Ok(encode_pairs(&Self::totals(sc, kind, seed, n)?)),
            3 => {
                let rounds = take.max(2);
                let mut last = Vec::new();
                for _ in 0..rounds {
                    last = Self::totals(sc, 1, seed, n)?;
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                Ok(encode_pairs(&last))
            }
            other => Err(JobError::Codec(format!("toy kind {other}"))),
        }
    }

    fn project(&self, body: &Bytes, full: &Bytes) -> Result<Bytes, JobError> {
        let (kind, _, _, take) = parse(body)?;
        if kind == 3 || take == 0 {
            return Ok(full.clone());
        }
        let pairs = decode_pairs(full);
        Ok(encode_pairs(&pairs[..pairs.len().min(take as usize)]))
    }
}

fn service(sc: SparkContext, conf: ServiceConfig) -> JobService {
    JobService::new(sc, conf, ToyRunner)
}

// --- soak over real sockets ------------------------------------------

fn soak(addr: ServiceAddr) {
    let svc = service(
        ctx(),
        ServiceConfig::default()
            .with_inflight(4, 2)
            .with_tenant_weight(1, 2),
    );
    svc.start_workers(3);
    let handle = svc.serve(addr).expect("bind service");
    let addr = handle.addr().clone();

    // N clients × mixed kinds, each its own tenant: every result must
    // equal the serial reference for *that tenant's* seed (any
    // cross-tenant bleed shows up as a mismatched seed's totals).
    let clients: Vec<std::thread::JoinHandle<()>> = (0..6u64)
        .map(|tenant| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = ServiceClient::connect(&addr).expect("connect");
                let mut jobs = Vec::new();
                for r in 0..3u64 {
                    let kind = 1 + ((tenant + r) % 2) as u8;
                    let seed = 1000 * tenant + r; // tenant-distinct lineage
                    let job = c
                        .submit(tenant, body(kind, seed, 300 + r, 0))
                        .expect("io")
                        .expect("admitted");
                    jobs.push((job, kind, seed, 300 + r));
                }
                for (job, kind, seed, n) in jobs {
                    let view = c.wait(job).expect("io");
                    assert_eq!(view.state, JobState::Done, "job {job}: {:?}", view.error);
                    let got = decode_pairs(view.result.as_ref().expect("result"));
                    assert_eq!(got, reference(kind, seed, n, 0), "tenant {tenant} bleed");
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client");
    }

    let mut c = ServiceClient::connect(&addr).expect("connect");
    let (submitted, admitted, rejected, completed, _hits, _cancelled) = c.stats().expect("stats");
    assert_eq!(submitted, 18);
    assert_eq!(admitted, 18);
    assert_eq!(rejected, 0);
    assert_eq!(completed, 18);
    handle.stop();
}

#[test]
fn multi_client_soak_over_tcp() {
    soak(ServiceAddr::Tcp("127.0.0.1:0".into()));
}

#[test]
fn multi_client_soak_over_unix() {
    let path = std::env::temp_dir().join(format!("sparklet-svc-{}.sock", std::process::id()));
    soak(ServiceAddr::Unix(path));
}

// --- fairness property -----------------------------------------------

#[test]
fn weighted_fairness_never_starves_a_tenant() {
    // Heavy tenant (weight 3) with a deep backlog vs. light tenant
    // (weight 1): dispatches must interleave ~3:1 — the light tenant
    // is never starved, and the heavy tenant actually gets its share.
    let svc = service(
        sim_ctx(42),
        ServiceConfig::default()
            .with_tenant_weight(1, 3)
            .with_tenant_weight(2, 1)
            .with_inflight(64, 64),
    );
    for r in 0..12u64 {
        svc.submit(1, body(1, 10_000 + r, 64, 0)).expect("admit");
        svc.submit(2, body(1, 20_000 + r, 64, 0)).expect("admit");
    }
    svc.pump_all();
    let dispatches: Vec<u64> = svc
        .decisions()
        .into_iter()
        .filter_map(|d| match d {
            ServiceDecision::Dispatched { tenant, .. } => Some(tenant),
            _ => None,
        })
        .collect();
    assert_eq!(dispatches.len(), 24);
    // Starvation-freedom with proportional share: while both backlogs
    // are nonempty (the first 16 dispatches — the heavy tenant's 12
    // jobs last exactly 16 at a 3/4 share), every prefix of k
    // dispatches gives each tenant at least ⌊k·w/Σw⌋ − w_max slots.
    for k in 1..=16 {
        let t1 = dispatches[..k].iter().filter(|&&t| t == 1).count() as i64;
        let t2 = k as i64 - t1;
        let k = k as i64;
        assert!(t1 >= k * 3 / 4 - 3, "prefix {k}: heavy tenant got {t1}");
        assert!(t2 >= k / 4 - 1, "prefix {k}: light tenant got {t2}");
    }
    // And nobody's work is lost: both backlogs fully dispatch.
    let t1 = dispatches.iter().filter(|&&t| t == 1).count();
    assert_eq!((t1, dispatches.len() - t1), (12, 12));
}

// --- cache semantics -------------------------------------------------

#[test]
fn cache_hits_are_bitwise_identical_and_skip_stages() {
    let svc = service(sim_ctx(7), ServiceConfig::default().with_inflight(1, 1));
    let j1 = svc.submit(1, body(1, 99, 400, 0)).expect("admit");
    assert_eq!(svc.pump_all(), 1);
    let cold = svc.wait(j1).expect("known");
    assert_eq!(cold.state, JobState::Done);
    assert!(!cold.cache_hit);
    assert!(cold.stages_run > 0, "cold run drives the engine");

    let stages_before = svc.sc().with_event_log(|l| l.stage_count());
    // Identical query from ANOTHER tenant: lineage, not tenant, keys
    // the cache (results are tenant-independent facts about the input).
    let j2 = svc.submit(2, body(1, 99, 400, 0)).expect("admit");
    assert_eq!(svc.pump_all(), 1);
    let warm = svc.wait(j2).expect("known");
    assert_eq!(warm.state, JobState::Done);
    assert!(warm.cache_hit, "identical lineage must hit");
    assert_eq!(warm.stages_run, 0);
    assert_eq!(
        svc.sc().with_event_log(|l| l.stage_count()),
        stages_before,
        "a cache hit runs no new engine stages"
    );
    assert_eq!(
        warm.result.as_ref().expect("bytes"),
        cold.result.as_ref().expect("bytes"),
        "hit must be bitwise-identical to the cold computation"
    );

    // Overlapping query (same lineage, projected slice): still a hit,
    // and the slice equals the cold result's prefix.
    let j3 = svc.submit(3, body(1, 99, 400, 5)).expect("admit");
    svc.pump_all();
    let slice = svc.wait(j3).expect("known");
    assert!(slice.cache_hit);
    assert_eq!(
        decode_pairs(slice.result.as_ref().expect("bytes")),
        decode_pairs(cold.result.as_ref().expect("bytes"))[..5].to_vec()
    );
    let (hits, _misses, _evict) = svc.cache_stats();
    assert_eq!(hits, 2);
}

// --- replay determinism ----------------------------------------------

#[test]
fn scripted_run_replays_bit_identically() {
    let script: Vec<Arrival> = (0..10u64)
        .map(|i| Arrival {
            at_ms: i * 3,
            tenant: 1 + i % 3,
            // Seeds overlap across tenants → some submissions hit.
            body: body(1, 50 + i % 4, 200, 0),
        })
        .collect();
    let run = |seed: u64| {
        let svc = service(
            sim_ctx(seed),
            ServiceConfig::default()
                .with_tenant_weight(1, 2)
                .with_inflight(2, 1),
        );
        let outcomes = svc.run_script(&script, 1);
        let results: Vec<Option<Bytes>> = outcomes
            .iter()
            .map(|o| match o {
                Ok(j) => svc.wait(*j).expect("known").result,
                Err(_) => None,
            })
            .collect();
        (svc.decisions(), results, svc.stats())
    };
    let (d1, r1, s1) = run(1234);
    let (d2, r2, s2) = run(1234);
    assert_eq!(d1, d2, "same script, same decision log");
    assert_eq!(r1, r2, "same script, same result bytes");
    assert_eq!(s1, s2);
    assert!(
        s1.cache_hits > 0,
        "overlapping script must exercise the cache"
    );
}

// --- admission -------------------------------------------------------

#[test]
fn admission_rejects_over_budget_and_releases_on_completion() {
    let svc = service(
        sim_ctx(5),
        ServiceConfig::default()
            .with_admission_budget(500.0)
            .with_max_job_cost(450.0)
            .with_inflight(1, 1),
    );
    let j1 = svc.submit(1, body(1, 1, 400, 0)).expect("fits budget");
    // 400 committed: another 400 won't fit; 900 exceeds the per-job cap.
    assert!(matches!(
        svc.submit(1, body(1, 2, 400, 0)),
        Err(Rejection::OverBudget { .. })
    ));
    assert!(matches!(
        svc.submit(1, body(1, 3, 900, 0)),
        Err(Rejection::TooExpensive { .. })
    ));
    assert!(svc.committed_cost() > 0.0);
    svc.pump_all();
    svc.wait(j1).expect("known");
    assert_eq!(svc.committed_cost(), 0.0, "completion releases budget");
    // Released budget admits what was rejected before.
    svc.submit(1, body(1, 2, 400, 0)).expect("now admitted");
    let stats = svc.stats();
    assert_eq!(stats.rejected, 2);
    assert_eq!(stats.admitted, 2);
}

// --- cancellation ----------------------------------------------------

#[test]
fn cancelling_a_running_job_releases_budget_and_latches() {
    let svc = service(
        ctx(),
        ServiceConfig::default()
            .with_admission_budget(10_000.0)
            .with_inflight(1, 1),
    );
    svc.start_workers(1);
    // Kind 3: many shuffle rounds with pauses — reliably mid-run.
    let slow = svc.submit(1, body(3, 77, 600, 200)).expect("admit");
    // A queued job behind it, to exercise the queued-cancel path too.
    let queued = svc.submit(1, body(1, 78, 100, 0)).expect("admit");
    let committed_both = svc.committed_cost();
    assert!(committed_both >= 700.0);

    // Wait until the slow job is actually running.
    while svc.poll(slow).expect("known").state == JobState::Queued {
        std::thread::yield_now();
    }
    assert!(svc.cancel(queued), "queued cancel");
    let qv = svc.wait(queued).expect("known");
    assert_eq!(qv.state, JobState::Cancelled);
    assert!(
        svc.committed_cost() < committed_both,
        "queued cancel releases its budget immediately"
    );

    assert!(svc.cancel(slow), "running cancel");
    let sv = svc.wait(slow).expect("known");
    assert_eq!(
        sv.state,
        JobState::Cancelled,
        "token trips at a stage boundary"
    );
    assert_eq!(svc.committed_cost(), 0.0, "all budget released");

    // The decisive latch property: nothing is wedged — a fresh job over
    // the same context (sharing the shuffle registry the cancelled job
    // touched) completes correctly.
    let after = svc.submit(2, body(1, 501, 200, 0)).expect("admit");
    let av = svc.wait(after).expect("known");
    assert_eq!(av.state, JobState::Done, "{:?}", av.error);
    assert_eq!(
        decode_pairs(av.result.as_ref().expect("bytes")),
        reference(1, 501, 200, 0)
    );
    let stats = svc.stats();
    assert_eq!(stats.cancelled, 2);
    svc.stop();
}

// --- panic isolation -------------------------------------------------

/// A hostile [`JobRunner`]: panics in `estimate` or `run` depending on
/// the body's first byte, echoes the body otherwise.
struct PanicRunner;

impl JobRunner for PanicRunner {
    fn estimate(&self, body: &Bytes) -> Result<f64, JobError> {
        if body.first() == Some(&0xFE) {
            panic!("estimate boom");
        }
        Ok(1.0)
    }

    fn cache_key(&self, _body: &Bytes) -> Result<Option<u128>, JobError> {
        Ok(None)
    }

    fn run(&self, _sc: &SparkContext, body: &Bytes) -> Result<Bytes, JobError> {
        if body.first() == Some(&0xFF) {
            panic!("run boom");
        }
        Ok(body.clone())
    }
}

#[test]
fn panicking_runner_fails_the_job_without_wedging_the_service() {
    let svc = JobService::new(
        sim_ctx(1),
        ServiceConfig::default().with_inflight(1, 1),
        PanicRunner,
    );
    svc.start_workers(1);

    // A panic in estimate is a Malformed rejection on the submit path,
    // not a dead submitter thread.
    assert!(matches!(
        svc.submit(1, Bytes::from_static(&[0xFE])),
        Err(Rejection::Malformed(_))
    ));

    // A panic in run settles the job as Failed, releasing its
    // scheduler slot and admission budget instead of killing the
    // worker with the job stuck Running.
    let bad = svc
        .submit(1, Bytes::from_static(&[0xFF]))
        .expect("admitted");
    let view = svc.wait(bad).expect("known");
    assert_eq!(view.state, JobState::Failed);
    assert!(view.error.as_deref().expect("error").contains("panicked"));
    assert_eq!(svc.committed_cost(), 0.0, "budget released on panic");

    // The sole worker survived the panic and serves the next job.
    let good = svc.submit(1, Bytes::from_static(&[1])).expect("admitted");
    let view = svc.wait(good).expect("known");
    assert_eq!(view.state, JobState::Done, "{:?}", view.error);
    assert_eq!(view.result.expect("result"), Bytes::from_static(&[1]));
    svc.stop();
}

// --- settled-job retention -------------------------------------------

#[test]
fn settled_retention_bounds_job_memory() {
    let svc = service(
        sim_ctx(11),
        ServiceConfig::default()
            .with_inflight(1, 1)
            .with_settled_retention(2),
    );
    let jobs: Vec<_> = (0..5u64)
        .map(|i| svc.submit(1, body(1, 3000 + i, 50, 0)).expect("admit"))
        .collect();
    svc.pump_all();
    // Jobs settle in submission order; only the newest two stay
    // pollable, the rest are evicted with their bodies and results.
    for &j in &jobs[..3] {
        assert!(svc.poll(j).is_none(), "job {j} must be evicted");
    }
    for &j in &jobs[3..] {
        let v = svc.poll(j).expect("retained");
        assert_eq!(v.state, JobState::Done);
    }
}

#[test]
fn wire_shutdown_performs_a_full_stop() {
    let svc = service(ctx(), ServiceConfig::default().with_inflight(1, 1));
    svc.start_workers(1);
    let handle = svc
        .serve(ServiceAddr::Tcp("127.0.0.1:0".into()))
        .expect("bind");
    let addr = handle.addr().clone();

    let mut c = ServiceClient::connect(&addr).expect("connect");
    // A slow running job plus a queued one behind it.
    let slow = c
        .submit(1, body(3, 9, 400, 20))
        .expect("io")
        .expect("admitted");
    let queued = c
        .submit(1, body(1, 10, 100, 0))
        .expect("io")
        .expect("admitted");
    while svc.poll(slow).expect("known").state == JobState::Queued {
        std::thread::yield_now();
    }
    c.shutdown().expect("acked");

    // Shutdown is a full service stop, not just a submission fence:
    // queued work is cancelled with its budget released, the running
    // job drains, and new submissions are rejected.
    let qv = svc.wait(queued).expect("known");
    assert_eq!(qv.state, JobState::Cancelled, "queued job cancelled");
    let sv = svc.wait(slow).expect("known");
    assert_eq!(sv.state, JobState::Done, "running job drains");
    assert_eq!(svc.committed_cost(), 0.0, "all budget released");
    assert!(matches!(
        svc.submit(2, body(1, 11, 50, 0)),
        Err(Rejection::ShuttingDown)
    ));
    handle.stop();
}

#[test]
fn client_disconnect_cancels_its_unfinished_jobs() {
    let svc = service(ctx(), ServiceConfig::default().with_inflight(1, 1));
    svc.start_workers(1);
    let handle = svc
        .serve(ServiceAddr::Tcp("127.0.0.1:0".into()))
        .expect("bind");
    let addr = handle.addr().clone();

    let slow;
    {
        let mut c = ServiceClient::connect(&addr).expect("connect");
        slow = c
            .submit(9, body(3, 5, 600, 200))
            .expect("io")
            .expect("admitted");
        // Drop the connection with the job still unfinished.
    }
    // The handler notices EOF and cancels; poll until it settles.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    loop {
        let view = svc.wait(slow).expect("known");
        if view.state == JobState::Cancelled {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "job not cancelled after disconnect: {:?}",
            view.state
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!(svc.committed_cost(), 0.0);
    handle.stop();
}
