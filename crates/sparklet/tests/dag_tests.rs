//! DAG-scheduler behaviour: concurrent independent stages, exactly-once
//! shuffle materialization across concurrent jobs, fault tolerance with
//! multiple stages in flight, deferred retry backoff, and byte
//! reconciliation under interleaved stage completion.

use std::sync::Arc;

use sparklet::{HashPartitioner, Partitioner, SparkConf, SparkContext};

fn ctx() -> SparkContext {
    SparkContext::new(
        SparkConf::default()
            .with_executors(4)
            .with_executor_cores(2)
            .with_worker_threads(2)
            .with_partitions(8),
    )
}

fn sorted<K: Ord, V>(mut v: Vec<(K, V)>) -> Vec<(K, V)> {
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

fn pairs(n: usize) -> Vec<(usize, u64)> {
    (0..n).map(|i| (i, (i * 13) as u64)).collect()
}

#[test]
fn independent_stages_run_concurrently() {
    let sc = ctx();
    let left = sc
        .parallelize(pairs(64), Some(4))
        .map(|(k, v)| (k % 7, v))
        .reduce_by_key(|a, b| a.wrapping_add(b), 4, Arc::new(HashPartitioner));
    let right = sc
        .parallelize(pairs(64), Some(4))
        .map(|(k, v)| (k % 5, v * 3))
        .reduce_by_key(|a, b| a.wrapping_add(b), 4, Arc::new(HashPartitioner));
    let both = left.union(&right);
    let got = both.collect().expect("two-branch job");

    // Both branch shuffles are ready at submission, so the event loop
    // launches them back-to-back before either completes: the second
    // launch must observe two stages in flight.
    assert!(
        sc.peak_concurrent_stages() >= 2,
        "driver gauge saw {} stages in flight",
        sc.peak_concurrent_stages()
    );
    assert!(
        sc.with_event_log(|log| log.max_concurrent_stages()) >= 2,
        "event log recorded no concurrent stage launch"
    );

    // Correctness: same totals as computing the branches by hand.
    let total: u64 = got.iter().map(|(_, v)| v).sum();
    let a: u64 = pairs(64).iter().map(|(_, v)| *v).sum();
    let b: u64 = pairs(64).iter().map(|(_, v)| *v * 3).sum();
    assert_eq!(total, a + b);
}

#[test]
fn stage_graph_records_parent_edges_in_the_log() {
    let sc = ctx();
    let wide = sc
        .parallelize(pairs(32), Some(4))
        .map(|(k, v)| (k % 3, v))
        .reduce_by_key(|a, b| a + b, 4, Arc::new(HashPartitioner))
        .map_values(|v| v + 1)
        .partition_by(2, Arc::new(HashPartitioner));
    let _ = wide.collect().expect("chained job");
    sc.with_event_log(|log| {
        // Find the two shuffle map stages; the second's parents must
        // name the first's stage id.
        let stages: Vec<_> = log
            .stages()
            .iter()
            .filter(|s| s.label.ends_with("map"))
            .collect();
        assert_eq!(stages.len(), 2, "two shuffles -> two map stages");
        let first = &stages[0].record;
        let second = &stages[1].record;
        assert!(
            second.parent_stage_ids.contains(&first.stage_id),
            "child stage {} should list parent {} (got {:?})",
            second.stage_id,
            first.stage_id,
            second.parent_stage_ids
        );
        assert!(
            first.parent_stage_ids.is_empty(),
            "root map stage reads input, not a shuffle"
        );
    });
}

#[test]
fn shared_shuffle_under_concurrent_jobs_materializes_exactly_once() {
    // Baseline: one job over the wide RDD.
    let baseline = {
        let sc = ctx();
        let wide = sc
            .parallelize(pairs(128), Some(8))
            .map(|(k, v)| (k % 9, v))
            .reduce_by_key(|a, b| a.wrapping_add(b), 4, Arc::new(HashPartitioner));
        let _ = wide.collect().expect("baseline job");
        sc.with_event_log(|log| log.total_staged_bytes())
    };

    let sc = ctx();
    let wide = sc
        .parallelize(pairs(128), Some(8))
        .map(|(k, v)| (k % 9, v))
        .reduce_by_key(|a, b| a.wrapping_add(b), 4, Arc::new(HashPartitioner));
    let doubled = wide.map_values(|v| v * 2);
    let filtered = wide.filter(|k, _| k % 2 == 0);
    // Two jobs submitted concurrently, both needing the same shuffle.
    let h1 = doubled.collect_async();
    let h2 = filtered.collect_async();
    let r1 = h1.wait().expect("async job 1");
    let r2 = h2.wait().expect("async job 2");

    let base = sorted(wide.collect().expect("reference"));
    assert_eq!(
        sorted(r1),
        base.iter().map(|(k, v)| (*k, v * 2)).collect::<Vec<_>>()
    );
    assert_eq!(
        sorted(r2),
        base.iter()
            .filter(|(k, _)| k % 2 == 0)
            .cloned()
            .collect::<Vec<_>>()
    );

    // Exactly one map stage ran: the second job latched onto the
    // in-flight materialization instead of re-staging it.
    let map_stages = sc.with_event_log(|log| {
        log.stages()
            .iter()
            .filter(|s| s.label.ends_with("map"))
            .count()
    });
    assert_eq!(map_stages, 1, "shared shuffle staged more than once");
    assert_eq!(
        sc.with_event_log(|log| log.total_staged_bytes()),
        baseline,
        "concurrent jobs wrote more shuffle bytes than one job"
    );
}

#[test]
fn fault_matrix_with_multiple_stages_in_flight() {
    // Branched lineage under retries + speculation + per-stage fault
    // budgets: results must match the calm run exactly.
    let run = |faults: bool| {
        let conf = SparkConf::default()
            .with_executors(4)
            .with_executor_cores(2)
            .with_worker_threads(2)
            .with_partitions(8)
            .with_retry_backoff(2, 8)
            .with_speculation(0.5);
        let sc = SparkContext::new(conf);
        if faults {
            // Partition 0 of every stage fails once, whichever order
            // the interleaved stages reach it in.
            sc.inject_failure_every_stage(0, 1);
        }
        let left = sc
            .parallelize(pairs(96), Some(4))
            .map(|(k, v)| (k % 6, v))
            .reduce_by_key(|a, b| a.wrapping_add(b), 4, Arc::new(HashPartitioner));
        let right = sc
            .parallelize(pairs(96), Some(4))
            .map(|(k, v)| (k % 4, v ^ 7))
            .reduce_by_key(|a, b| a.wrapping_add(b), 4, Arc::new(HashPartitioner));
        let got = sorted(
            left.union(&right)
                .partition_by(4, Arc::new(HashPartitioner))
                .collect()
                .expect("branched job"),
        );
        let retries = sc.with_event_log(|log| log.total_retries());
        let peak = sc.peak_concurrent_stages();
        (got, retries, peak)
    };
    let (want, _, _) = run(false);
    let (got, retries, peak) = run(true);
    assert_eq!(got, want, "results must survive the fault matrix");
    assert!(retries >= 1, "injected faults must be retried");
    assert!(peak >= 2, "branches still ran concurrently under faults");
}

#[test]
fn staged_bytes_reconcile_under_interleaved_stage_completion() {
    let sc = ctx();
    sc.inject_failure_every_stage(1, 1);
    let left = sc
        .parallelize(pairs(64), Some(4))
        .map(|(k, v)| (k % 5, v))
        .reduce_by_key(|a, b| a.wrapping_add(b), 4, Arc::new(HashPartitioner));
    let right = sc
        .parallelize(pairs(64), Some(4))
        .map(|(k, v)| (k % 3, v + 9))
        .reduce_by_key(|a, b| a.wrapping_add(b), 4, Arc::new(HashPartitioner));
    let both = left.union(&right);
    let _ = both.collect().expect("interleaved job");

    // Drop every RDD: per-shuffle GC releases all staged bytes.
    drop(both);
    drop(left);
    drop(right);
    for node in 0..4 {
        assert_eq!(
            sc.staged_bytes(node),
            0,
            "node {node} still holds staged bytes"
        );
    }

    // A trailing stage claims the GC residue into the log; after it,
    // the per-stage release attribution must sum exactly to the
    // context counter, and every successfully staged byte must have
    // been released (failed attempts' partial writes are reconciled
    // too, so releases can only exceed the logged writes).
    let _ = sc.parallelize(vec![(0usize, 0u64)], Some(1)).count();
    sc.with_event_log(|log| {
        assert_eq!(
            log.total_staged_released_bytes(),
            sc.staged_released_bytes(),
            "per-stage release attribution must sum to the context counter"
        );
        assert!(
            log.total_staged_released_bytes() >= log.total_staged_bytes(),
            "released {} < staged {}",
            log.total_staged_released_bytes(),
            log.total_staged_bytes()
        );
        assert!(log.total_staged_bytes() > 0, "the job staged something");
    });
    assert_eq!(
        sc.with_event_log(|log| log.total_zombie_writes_fenced()),
        sc.zombie_writes_fenced(),
        "per-stage zombie attribution must sum to the context counter"
    );
}

#[test]
fn max_concurrent_stages_one_reproduces_the_serial_walk() {
    let sc = SparkContext::new(
        SparkConf::default()
            .with_executors(4)
            .with_worker_threads(2)
            .with_partitions(8)
            .with_max_concurrent_stages(1),
    );
    let left = sc
        .parallelize(pairs(64), Some(4))
        .map(|(k, v)| (k % 7, v))
        .reduce_by_key(|a, b| a.wrapping_add(b), 4, Arc::new(HashPartitioner));
    let right = sc
        .parallelize(pairs(64), Some(4))
        .map(|(k, v)| (k % 5, v))
        .reduce_by_key(|a, b| a.wrapping_add(b), 4, Arc::new(HashPartitioner));
    let _ = left.union(&right).collect().expect("throttled job");
    assert_eq!(
        sc.peak_concurrent_stages(),
        1,
        "cap of one must serialize the stage walk"
    );
}

#[test]
fn retry_backoff_defers_without_blocking_the_stage() {
    // Four partitions each fail once with a 200 ms backoff. Deadline-
    // based deferral parks them all on the same 200 ms deadline; the
    // old blocking sleep would serialize toward 800 ms. On the seeded
    // virtual clock the distinction is exact: overlapping deferral
    // costs one 200 ms jump, serialized sleeps would cost four.
    let sc = SparkContext::new(
        SparkConf::default()
            .with_executors(4)
            .with_worker_threads(1)
            .with_partitions(4)
            .with_retry_backoff(200, 200)
            .with_sim_seed(11),
    );
    for p in 0..4 {
        sc.inject_failure(0, p, 1);
    }
    let got = sorted(
        sc.parallelize(pairs(16), Some(4))
            .collect()
            .expect("backoff job"),
    );
    assert_eq!(got, sorted(pairs(16)));
    assert_eq!(sc.with_event_log(|log| log.total_retries()), 4);
    let elapsed_ms = sc.now_ms();
    assert!(
        (200..650).contains(&(elapsed_ms as usize)),
        "deferred relaunches must overlap: one shared backoff window, \
         not four in sequence (took {elapsed_ms} virtual ms)"
    );
}

#[test]
fn explain_notes_elided_shuffles() {
    let sc = ctx();
    // 4 -> 6 partitions is a real shuffle; repeating the same
    // signature and count is not.
    let once = sc
        .parallelize(pairs(32), Some(4))
        .partition_by(6, Arc::new(HashPartitioner));
    let twice = once.partition_by(6, Arc::new(HashPartitioner));
    let plan = twice.explain();
    assert!(
        plan.contains("[elided: already partitioned"),
        "elided repartition missing from lineage:\n{plan}"
    );
    assert!(
        plan.contains("note: 1 shuffle(s) elided (already co-partitioned)"),
        "elision note missing:\n{plan}"
    );
    // The stage graph shows only the one real shuffle.
    assert_eq!(plan.matches("stage shuffle#").count(), 1, "plan:\n{plan}");
}

#[test]
fn compatible_coalesce_preserves_partitioner_and_elides_repartition() {
    let sc = ctx();
    // 8 hash partitions coalesced to 4 (4 | 8): the modulo grouping
    // keeps `hash % 4` placement, so repartitioning by the same
    // signature at the reduced count must not shuffle again.
    let narrow = sc
        .parallelize(pairs(64), Some(4))
        .partition_by(8, Arc::new(HashPartitioner))
        .coalesce(4)
        .partition_by(4, Arc::new(HashPartitioner));
    let plan = narrow.explain();
    assert!(
        plan.contains("Coalesce [4 partitions, narrow, keeps hash partitioning]"),
        "coalesce dropped a preservable signature:\n{plan}"
    );
    assert!(
        plan.contains("[elided: already partitioned by hash into 4]"),
        "post-coalesce repartition should elide:\n{plan}"
    );
    assert_eq!(plan.matches("stage shuffle#").count(), 1, "plan:\n{plan}");

    // Correctness: every key really does sit in the partition the
    // 4-way hash partitioner assigns, and no element was lost.
    let tagged = narrow
        .map_partitions_to(|p, items, _| items.into_iter().map(|(k, v)| (k, (p, v))).collect())
        .collect()
        .expect("coalesced job");
    let mut all = Vec::new();
    for (k, (p, v)) in tagged {
        assert_eq!(
            HashPartitioner.partition(&k, 4),
            p,
            "key {k} landed in partition {p}"
        );
        all.push((k, v));
    }
    assert_eq!(sorted(all), pairs(64));

    // A non-dividing target cannot keep the signature: the follow-up
    // repartition is a real shuffle.
    let ragged = sc
        .parallelize(pairs(64), Some(4))
        .partition_by(8, Arc::new(HashPartitioner))
        .coalesce(3)
        .partition_by(3, Arc::new(HashPartitioner));
    let plan = ragged.explain();
    assert!(
        plan.contains("Coalesce [3 partitions, narrow]"),
        "3 does not divide 8, signature must drop:\n{plan}"
    );
    assert_eq!(plan.matches("stage shuffle#").count(), 2, "plan:\n{plan}");
}
