//! End-to-end behaviour of the sparklet engine.

use std::sync::Arc;

use sparklet::{GridPartitioner, HashPartitioner, JobError, SparkConf, SparkContext, StorageLevel};

fn ctx() -> SparkContext {
    SparkContext::new(SparkConf::default().with_executors(4).with_partitions(8))
}

fn pairs(n: usize) -> Vec<(usize, u64)> {
    (0..n).map(|i| (i, (i * i) as u64)).collect()
}

fn sorted<K: Ord, V>(mut v: Vec<(K, V)>) -> Vec<(K, V)> {
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

#[test]
fn parallelize_collect_roundtrip() {
    let sc = ctx();
    let rdd = sc.parallelize(pairs(100), None);
    assert_eq!(rdd.num_partitions(), 8);
    let got = sorted(rdd.collect().unwrap());
    assert_eq!(got, pairs(100));
}

#[test]
fn map_filter_flatmap_chain_fuses_in_one_stage() {
    let sc = ctx();
    let rdd = sc
        .parallelize(pairs(50), None)
        .map(|(k, v)| (k, v + 1))
        .filter(|k, _| k % 2 == 0)
        .flat_map(|(k, v)| vec![(k, v), (k + 1000, v)]);
    let got = sorted(rdd.collect().unwrap());
    assert_eq!(got.len(), 50); // 25 evens × 2
    assert!(got.iter().any(|&(k, v)| k == 4 && v == 17));
    assert!(got.iter().any(|&(k, v)| k == 1004 && v == 17));
    // Whole narrow chain + collect = exactly one stage.
    sc.with_event_log(|log| {
        assert_eq!(log.stage_count(), 1, "narrow chain must fuse");
        assert_eq!(log.task_count(), 8);
    });
}

#[test]
fn map_values_preserves_partitioning() {
    let sc = ctx();
    let rdd = sc.parallelize(pairs(20), None);
    let sig = rdd.partitioner_sig();
    assert!(sig.is_some());
    let mapped = rdd.map_values(|v| v * 2);
    assert_eq!(mapped.partitioner_sig(), sig);
    // map (which may change keys) must drop the signature.
    let remapped = rdd.map(|(k, v)| (k + 1, v));
    assert_eq!(remapped.partitioner_sig(), None);
}

#[test]
fn union_concatenates_partitions() {
    let sc = ctx();
    let a = sc.parallelize(pairs(10), Some(3));
    let b = sc.parallelize(vec![(100usize, 1u64), (101, 2)], Some(2));
    let u = a.union(&b);
    assert_eq!(u.num_partitions(), 5);
    let got = sorted(u.collect().unwrap());
    assert_eq!(got.len(), 12);
    assert_eq!(got[11], (101, 2));
}

#[test]
fn partition_by_places_keys_and_counts_a_shuffle() {
    let sc = ctx();
    let rdd = sc
        .parallelize(pairs(64), None)
        .map(|(k, v)| (k, v)) // drop partitioner knowledge
        .partition_by(4, Arc::new(HashPartitioner));
    let got = sorted(rdd.collect().unwrap());
    assert_eq!(got, pairs(64));
    sc.with_event_log(|log| {
        assert_eq!(log.stage_count(), 2, "shuffle map stage + collect");
        assert!(
            log.total_remote_bytes() + log.total_local_bytes() > 0,
            "shuffle moved real bytes"
        );
        assert!(log.total_staged_bytes() > 0, "map outputs were staged");
    });
}

#[test]
fn partition_by_same_partitioner_elides_shuffle() {
    let sc = ctx();
    let rdd = sc.parallelize(pairs(32), Some(8));
    // parallelize already hash-partitioned into 8.
    let same = rdd.partition_by(8, Arc::new(HashPartitioner));
    same.collect().unwrap();
    sc.with_event_log(|log| {
        assert_eq!(
            log.stage_count(),
            1,
            "no shuffle for identical partitioning"
        );
    });
    // Different partition count still shuffles.
    let different = rdd.partition_by(4, Arc::new(HashPartitioner));
    different.collect().unwrap();
    sc.with_event_log(|log| {
        assert_eq!(log.stage_count(), 3);
    });
}

#[test]
fn group_by_key_collects_all_values_deterministically() {
    let sc = ctx();
    let data: Vec<(usize, u64)> = (0..40).map(|i| (i % 4, i as u64)).collect();
    let rdd = sc
        .parallelize(data, Some(5))
        .group_by_key(4, Arc::new(HashPartitioner));
    let got1 = sorted(rdd.collect().unwrap());
    assert_eq!(got1.len(), 4);
    for (k, vs) in &got1 {
        assert_eq!(vs.len(), 10);
        assert!(vs.iter().all(|v| (*v as usize) % 4 == *k));
    }
    // Determinism: a second identical pipeline yields identical bytes.
    let sc2 = ctx();
    let data2: Vec<(usize, u64)> = (0..40).map(|i| (i % 4, i as u64)).collect();
    let rdd2 = sc2
        .parallelize(data2, Some(5))
        .group_by_key(4, Arc::new(HashPartitioner));
    let got2 = sorted(rdd2.collect().unwrap());
    assert_eq!(got1, got2);
}

#[test]
fn reduce_by_key_sums() {
    let sc = ctx();
    let data: Vec<(usize, u64)> = (0..100).map(|i| (i % 7, 1u64)).collect();
    let rdd =
        sc.parallelize(data, Some(6))
            .reduce_by_key(|a, b| a + b, 4, Arc::new(HashPartitioner));
    let got = sorted(rdd.collect().unwrap());
    let total: u64 = got.iter().map(|(_, v)| v).sum();
    assert_eq!(total, 100);
    assert_eq!(got.len(), 7);
    assert_eq!(got[0], (0, 15)); // 0,7,...,98 → 15 values
}

#[test]
fn map_side_combine_shrinks_shuffle() {
    // 1000 pairs over 10 keys: map-side combining should stage ~10
    // combined records per map task, far fewer bytes than 1000 raw pairs.
    let sc = ctx();
    let data: Vec<(usize, u64)> = (0..1000).map(|i| (i % 10, 1u64)).collect();
    sc.parallelize(data, Some(4))
        .reduce_by_key(|a, b| a + b, 4, Arc::new(HashPartitioner))
        .collect()
        .unwrap();
    let staged = sc.with_event_log(|log| log.total_staged_bytes());
    // Raw would be 1000 × 16 B = 16 kB; combined is ≤ 4 maps × 10 keys × 16 B.
    assert!(staged <= 4 * 10 * 16, "staged={staged}");
}

#[test]
fn checkpoint_cuts_lineage_and_pins_location() {
    let sc = ctx();
    let rdd = sc
        .parallelize(pairs(32), Some(4))
        .map_values(|v| v + 1)
        .checkpoint()
        .unwrap();
    let stages_after_ckpt = sc.with_event_log(|log| log.stage_count());
    assert_eq!(stages_after_ckpt, 1, "checkpoint ran one stage");
    // Collect twice: each is a single stage reading cached partitions.
    let a = sorted(rdd.collect().unwrap());
    let b = sorted(rdd.collect().unwrap());
    assert_eq!(a, b);
    assert_eq!(a[3], (3, 10));
    sc.with_event_log(|log| {
        assert_eq!(log.stage_count(), 3);
        // Cached reads are node-local: no remote traffic in collects.
        assert_eq!(log.total_remote_bytes(), 0);
    });
}

#[test]
fn injected_failures_are_retried_via_lineage() {
    let sc = ctx();
    let rdd = sc.parallelize(pairs(16), Some(4));
    // Fail partition 2 of the next stage twice; 4 attempts allowed.
    sc.inject_failure(sc.next_stage_ordinal(), 2, 2);
    let got = sorted(rdd.collect().unwrap());
    assert_eq!(got, pairs(16));
}

#[test]
fn too_many_failures_fail_the_job() {
    let sc = SparkContext::new(SparkConf::default().with_executors(2).with_partitions(4));
    let rdd = sc.parallelize(pairs(8), Some(4));
    sc.inject_failure(sc.next_stage_ordinal(), 1, 10); // > max_task_attempts
    let err = rdd.collect().unwrap_err();
    assert!(
        matches!(err, JobError::TaskFailed { partition: 1, .. }),
        "{err}"
    );
}

#[test]
fn task_panic_is_captured_and_retried_or_failed() {
    let sc = ctx();
    let rdd = sc.parallelize(pairs(8), Some(2)).map(|(k, v)| {
        if k == 3 {
            panic!("kernel exploded on key 3");
        }
        (k, v)
    });
    let err = rdd.collect().unwrap_err();
    match err {
        JobError::TaskFailed { message, .. } => assert!(message.contains("exploded")),
        other => panic!("unexpected error {other}"),
    }
}

#[test]
fn staging_overflow_fails_fast_like_the_paper() {
    let sc = SparkContext::new(
        SparkConf::default()
            .with_executors(2)
            .with_partitions(4)
            .with_staging_capacity(64), // tiny SSD
    );
    let big: Vec<(usize, Vec<f64>)> = (0..16).map(|i| (i, vec![1.0; 64])).collect();
    let err = sc
        .parallelize(big, Some(4))
        .map(|(k, v)| (k, v)) // forget partitioning to force a shuffle
        .partition_by(4, Arc::new(HashPartitioner))
        .collect()
        .unwrap_err();
    assert!(matches!(err, JobError::StagingOverflow { .. }), "{err}");
}

#[test]
fn executor_memory_overflow_on_checkpoint() {
    let sc = SparkContext::new(
        SparkConf::default()
            .with_executors(1)
            .with_partitions(2)
            .with_executor_memory(32),
    );
    let big: Vec<(usize, Vec<f64>)> = (0..4).map(|i| (i, vec![0.0; 100])).collect();
    let err = match sc.parallelize(big, Some(2)).checkpoint() {
        Err(e) => e,
        Ok(_) => panic!("checkpoint should exceed executor memory"),
    };
    assert!(matches!(err, JobError::MemoryOverflow { .. }), "{err}");
}

#[test]
fn broadcast_reaches_tasks_via_shared_storage() {
    let sc = ctx();
    let bc = sc.broadcast(&vec![10u64, 20, 30]);
    let bc2 = bc.clone();
    let rdd = sc
        .parallelize(pairs(12), Some(4))
        .map_partitions(true, move |_p, items, tc| {
            let table = bc2.value(tc).expect("broadcast available");
            items
                .into_iter()
                .map(|(k, v)| (k, v + table[k % 3]))
                .collect()
        });
    let got = sorted(rdd.collect().unwrap());
    assert_eq!(got[0], (0, 10));
    assert_eq!(got[4], (4, 16 + 20));
    assert!(bc.serialized_bytes() > 0);
}

#[test]
fn driver_traffic_pseudo_stage_is_logged() {
    let sc = ctx();
    sc.log_driver_traffic("cb-iter-0", 1024, 2048);
    sc.with_event_log(|log| {
        assert_eq!(log.total_collect_bytes(), 1024);
        assert_eq!(log.total_broadcast_bytes(), 2048);
    });
}

#[test]
fn collect_records_bytes_to_driver() {
    let sc = ctx();
    sc.parallelize(pairs(10), Some(2)).collect().unwrap();
    sc.with_event_log(|log| {
        // 10 pairs × (8 + 8) bytes.
        assert_eq!(log.total_collect_bytes(), 160);
    });
}

#[test]
fn grid_partitioner_gives_locality_for_block_keys() {
    let sc = SparkContext::new(SparkConf::default().with_executors(4).with_partitions(16));
    let blocks: Vec<((usize, usize), u64)> = (0..8)
        .flat_map(|i| (0..8).map(move |j| ((i, j), (i * 8 + j) as u64)))
        .collect();
    let rdd = sc.parallelize_with(blocks, 16, Arc::new(GridPartitioner::new(8)));
    let got = rdd.collect().unwrap();
    assert_eq!(got.len(), 64);
    // Keys of one block row share a partition → collected adjacently.
    sc.with_event_log(|log| assert_eq!(log.task_count(), 16));
}

#[test]
fn clear_shuffles_after_checkpoint_is_safe() {
    let sc = ctx();
    let rdd = sc
        .parallelize(pairs(16), Some(4))
        .map(|(k, v)| (k, v))
        .partition_by(4, Arc::new(HashPartitioner))
        .checkpoint()
        .unwrap();
    sc.clear_shuffles();
    assert_eq!(sc.staged_bytes(0), 0);
    // The checkpointed RDD no longer needs the shuffle.
    let got = sorted(rdd.collect().unwrap());
    assert_eq!(got, pairs(16));
}

#[test]
fn shared_lineage_materializes_shuffle_once() {
    let sc = ctx();
    let shuffled = sc
        .parallelize(pairs(16), Some(4))
        .map(|(k, v)| (k, v))
        .partition_by(4, Arc::new(HashPartitioner));
    let a = shuffled.map_values(|v| v + 1);
    let b = shuffled.map_values(|v| v + 2);
    a.collect().unwrap();
    b.collect().unwrap();
    sc.with_event_log(|log| {
        // map stage once + two collects = 3 stages, not 4.
        assert_eq!(log.stage_count(), 3);
    });
}

#[test]
fn count_matches_collect_len() {
    let sc = ctx();
    let rdd = sc.parallelize(pairs(123), None).filter(|k, _| k % 3 == 0);
    assert_eq!(rdd.count().unwrap(), 41);
    assert_eq!(rdd.collect().unwrap().len(), 41);
}

#[test]
fn listing_one_shape_runs_end_to_end() {
    // A miniature of Listing 1's per-iteration dataflow: filter one
    // "diagonal" key, flat-map copies to dependents, combine with the
    // originals, update, union with untouched, repartition.
    let sc = ctx();
    let r = 4usize;
    let blocks: Vec<((usize, usize), u64)> = (0..r)
        .flat_map(|i| (0..r).map(move |j| ((i, j), 1u64)))
        .collect();
    let mut dp = sc.parallelize(blocks, Some(8));
    let k = 0usize;
    let a = dp.filter(move |&(i, j), _| i == k && j == k);
    let copies = a.flat_map(move |((_, _), v)| {
        (0..r)
            .filter(move |&j| j != k)
            .map(move |j| ((k, j), v * 100))
            .collect::<Vec<_>>()
    });
    let row = dp.filter(move |&(i, j), _| i == k && j != k);
    let updated = row
        .union(&copies)
        .group_by_key(8, Arc::new(HashPartitioner))
        .map_values(|vs| vs.iter().sum::<u64>());
    let untouched = dp.filter(move |&(i, _), _| i != k);
    dp = untouched
        .union(&updated)
        .union(&a) // the diagonal block itself stays in the table
        .partition_by(8, Arc::new(HashPartitioner));
    let got = sorted(dp.collect().unwrap());
    assert_eq!(got.len(), r * r);
    // Row-0 off-diagonal blocks got 1 + 100.
    for j in 1..r {
        assert!(got.contains(&((0, j), 101)));
    }
    assert!(got.contains(&((1, 1), 1)));
}

// ---------------------------------------------------------------------
// Attempt-fenced shuffle lifecycle
// ---------------------------------------------------------------------

#[test]
fn wall_times_survive_actions() {
    // annotate_last_stage used to rebuild the log via `push`, zeroing
    // every stage's wall_seconds on each collect.
    let sc = ctx();
    let rdd = sc
        .parallelize(pairs(32), Some(4))
        .map(|kv| kv)
        .partition_by(4, Arc::new(HashPartitioner));
    rdd.collect().unwrap();
    let wall = sc.with_event_log(|log| log.total_wall_seconds());
    assert!(wall > 0.0, "stage wall times must survive the action");
    rdd.collect().unwrap();
    let wall_after = sc.with_event_log(|log| log.total_wall_seconds());
    assert!(wall_after >= wall, "second action must not erase times");
}

#[test]
fn retry_restages_within_capacity() {
    // The headline regression: a retried map task re-stages its
    // buckets. On a single node the retry lands on the same node, so
    // without reconciliation staged bytes double and a capacity equal
    // to the fault-free high-water mark spuriously overflows.
    let shuffle_job = |sc: &SparkContext| {
        let data: Vec<(usize, u64)> = (0..64).map(|i| (i, i as u64)).collect();
        let rdd = sc
            .parallelize(data, Some(4))
            .map(|(k, v)| (k % 7, v))
            .reduce_by_key(|a, b| a + b, 4, Arc::new(HashPartitioner));
        sorted(rdd.collect().unwrap())
    };
    let free = SparkContext::new(SparkConf::default().with_executors(1).with_partitions(4));
    let want = shuffle_job(&free);
    let peak = free.peak_staged_bytes(0);
    assert!(peak > 0);

    let sc = SparkContext::new(
        SparkConf::default()
            .with_executors(1)
            .with_partitions(4)
            .with_staging_capacity(peak),
    );
    sc.inject_failure(0, 1, 2); // fail a map task twice
    sc.inject_failure(0, 3, 1);
    let got = shuffle_job(&sc);
    assert_eq!(got, want, "results must be byte-identical under faults");
    assert!(
        sc.with_event_log(|log| log.total_retries()) >= 3,
        "faults were retried"
    );
    assert_eq!(
        sc.zombie_writes_fenced(),
        0,
        "plain retries create no zombies"
    );
    assert_eq!(
        sc.peak_staged_bytes(0),
        peak,
        "retries must not inflate staging"
    );
}

#[test]
fn faulty_run_matches_fault_free_run() {
    let run = |faults: bool| {
        let sc = ctx(); // 4 executors, 8 default partitions
        if faults {
            sc.inject_failure(0, 0, 2);
            sc.inject_failure(0, 2, 1);
        }
        let data: Vec<(usize, u64)> = (0..96).map(|i| (i, (i * 3) as u64)).collect();
        let rdd = sc
            .parallelize(data, Some(4))
            .map(|(k, v)| (k % 11, v))
            .reduce_by_key(|a, b| a.wrapping_add(b), 4, Arc::new(HashPartitioner));
        let got = sorted(rdd.collect().unwrap());
        // Total staged while the shuffle is live: retries may migrate a
        // bucket to another node, but the sum must reconcile exactly.
        let staged_total: u64 = (0..4).map(|n| sc.staged_bytes(n)).sum();
        let retries = sc.with_event_log(|log| log.total_retries());
        let zombies = sc.zombie_writes_fenced();
        drop(rdd);
        let after_gc: u64 = (0..4).map(|n| sc.staged_bytes(n)).sum();
        (got, staged_total, after_gc, retries, zombies)
    };
    let (want, want_staged, want_gc, _, _) = run(false);
    let (got, got_staged, got_gc, retries, zombies) = run(true);
    assert_eq!(got, want, "results must be byte-identical under faults");
    assert_eq!(got_staged, want_staged, "staged accounting must reconcile");
    assert_eq!((want_gc, got_gc), (0, 0), "GC released everything");
    assert!(retries >= 3, "injected faults were retried");
    assert_eq!(zombies, 0, "no zombie writes under plain retry");
}

#[test]
fn dropping_shuffled_rdd_releases_staged_bytes() {
    let sc = ctx();
    let rdd = sc
        .parallelize(pairs(32), Some(4))
        .map(|kv| kv)
        .partition_by(4, Arc::new(HashPartitioner));
    rdd.collect().unwrap();
    let live: u64 = (0..4).map(|n| sc.staged_bytes(n)).sum();
    assert!(live > 0, "shuffle is staged while its RDD lineage lives");
    drop(rdd);
    let after: u64 = (0..4).map(|n| sc.staged_bytes(n)).sum();
    assert_eq!(after, 0, "dropping the lineage releases the shuffle");
    assert_eq!(sc.staged_released_bytes(), live);
}

#[test]
fn speculation_relaunches_stragglers() {
    let sc = SparkContext::new(
        SparkConf::default()
            .with_executors(4)
            .with_partitions(4)
            .with_speculation(0.5),
    );
    let rdd = sc
        .parallelize(pairs(8), Some(4))
        .map_partitions(true, |p, items, _tc| {
            if p == 0 {
                // One deliberate straggler; the rest finish instantly.
                std::thread::sleep(std::time::Duration::from_millis(200));
            }
            items
        });
    let got = sorted(rdd.collect().unwrap());
    assert_eq!(got, pairs(8));
    let speculated = sc.with_event_log(|log| log.total_speculative_launches());
    assert!(
        speculated >= 1,
        "the straggler was speculatively re-launched"
    );
}

#[test]
fn exhausted_retries_report_stage_and_attempts() {
    // The panic branch used to leak `stage: ""` / `attempts: 0`.
    let sc = ctx();
    let rdd = sc
        .parallelize(pairs(8), Some(4))
        .map_partitions(true, |p, items, _tc| {
            if p == 1 {
                panic!("boom in partition 1");
            }
            items
        });
    let err = rdd.collect().unwrap_err();
    match err {
        JobError::TaskFailed {
            stage,
            partition,
            attempts,
            message,
        } => {
            assert_eq!(stage, "collect");
            assert_eq!(partition, 1);
            assert_eq!(attempts, 4, "max_task_attempts were used");
            assert!(message.contains("boom"), "{message}");
        }
        other => panic!("expected TaskFailed, got {other}"),
    }
}

// ---------------------------------------------------------------------
// Tiered block storage
// ---------------------------------------------------------------------

#[test]
fn dropping_checkpointed_rdd_evicts_all_nodes() {
    let sc = ctx();
    let rdd = sc
        .parallelize(pairs(64), Some(8))
        .map_values(|v| v * 3)
        .checkpoint()
        .unwrap();
    let nodes = sc.conf().executors;
    let before: u64 = (0..nodes).map(|n| sc.cached_bytes(n)).sum();
    assert!(before > 0, "checkpoint cached real bytes");
    drop(rdd);
    for n in 0..nodes {
        assert_eq!(sc.cached_bytes(n), 0, "node {n} still holds memory bytes");
        assert_eq!(
            sc.cached_disk_bytes(n),
            0,
            "node {n} still holds disk bytes"
        );
    }
}

#[test]
fn memory_and_disk_checkpoint_spills_instead_of_failing() {
    // Same undersized executor as `executor_memory_overflow_on_checkpoint`,
    // but the MemoryAndDisk level turns the fatal overflow into a spill.
    let sc = SparkContext::new(
        SparkConf::default()
            .with_executors(1)
            .with_partitions(2)
            .with_executor_memory(32)
            .with_storage_level(StorageLevel::MemoryAndDisk),
    );
    let big: Vec<(usize, Vec<u64>)> = (0..4).map(|i| (i, vec![7; 100])).collect();
    let rdd = sc.parallelize(big.clone(), Some(2)).checkpoint().unwrap();
    assert!(
        sc.cached_disk_bytes(0) > 0,
        "blocks landed on the disk tier"
    );
    assert!(sc.cached_bytes(0) <= 32, "memory tier stayed under budget");
    let totals = sc.storage_totals();
    assert!(totals.spilled_bytes > 0, "spill traffic was counted");
    let got = sorted(rdd.collect().unwrap());
    assert_eq!(got, big, "disk-tier reads decode to the same data");
    assert!(sc.storage_totals().cache_hits > 0, "collect hit the cache");
}

#[test]
fn persisted_blocks_recompute_after_eviction() {
    // MemoryOnly + persist: under pressure the blocks are dropped (not
    // spilled), and reads fall back to lineage recomputation.
    let sc = SparkContext::new(
        SparkConf::default()
            .with_executors(1)
            .with_partitions(2)
            .with_executor_memory(32),
    );
    let big: Vec<(usize, Vec<u64>)> = (0..4).map(|i| (i, vec![9; 100])).collect();
    let rdd = sc
        .parallelize(big.clone(), Some(2))
        .map_values(|v| v)
        .persist(StorageLevel::MemoryOnly)
        .unwrap();
    let got = sorted(rdd.collect().unwrap());
    assert_eq!(got, big, "recomputed partitions match the original data");
    let totals = sc.storage_totals();
    assert!(totals.recomputes > 0, "at least one partition was rebuilt");
    assert_eq!(sc.cached_disk_bytes(0), 0, "MemoryOnly never touches disk");
}

#[test]
fn disk_only_checkpoint_keeps_memory_free() {
    let sc = SparkContext::new(
        SparkConf::default()
            .with_executors(2)
            .with_partitions(4)
            .with_storage_level(StorageLevel::DiskOnly),
    );
    let rdd = sc.parallelize(pairs(32), Some(4)).checkpoint().unwrap();
    let mem: u64 = (0..2).map(|n| sc.cached_bytes(n)).sum();
    let disk: u64 = (0..2).map(|n| sc.cached_disk_bytes(n)).sum();
    assert_eq!(mem, 0, "DiskOnly must not occupy the memory tier");
    assert!(disk > 0, "blocks were serialized to the disk tier");
    assert_eq!(sorted(rdd.collect().unwrap()), pairs(32));
}

#[test]
fn disk_capacity_overflow_is_a_distinct_error() {
    let sc = SparkContext::new(
        SparkConf::default()
            .with_executors(1)
            .with_partitions(2)
            .with_disk_capacity(64)
            .with_storage_level(StorageLevel::DiskOnly),
    );
    let big: Vec<(usize, Vec<u64>)> = (0..4).map(|i| (i, vec![1; 100])).collect();
    let err = match sc.parallelize(big, Some(2)).checkpoint() {
        Err(e) => e,
        Ok(_) => panic!("checkpoint should exceed the disk tier"),
    };
    assert!(matches!(err, JobError::DiskOverflow { .. }), "{err}");
}

#[test]
fn retried_checkpoint_does_not_double_cache() {
    // A failed attempt caches its block before the injected fault
    // fires; the retry commits on the next node in the rotation. The
    // loser's orphan copy must be reclaimed, leaving exactly one cached
    // copy per partition — the same cluster-wide volume as a calm run.
    let calm = ctx();
    let a = calm
        .parallelize(pairs(64), Some(8))
        .map_values(|v| v + 1)
        .checkpoint()
        .unwrap();
    let calm_total: u64 = (0..4).map(|n| calm.cached_bytes(n)).sum();
    assert!(calm_total > 0);

    let faulted = ctx();
    faulted.inject_failure(faulted.next_stage_ordinal(), 3, 1);
    let b = faulted
        .parallelize(pairs(64), Some(8))
        .map_values(|v| v + 1)
        .checkpoint()
        .unwrap();
    let faulted_total: u64 = (0..4).map(|n| faulted.cached_bytes(n)).sum();
    assert_eq!(
        faulted_total, calm_total,
        "a retried put must leave exactly one cached copy per partition"
    );
    assert_eq!(sorted(b.collect().unwrap()), sorted(a.collect().unwrap()));
}
