//! Property-based tests of the engine's data-plane invariants.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;
use sparklet::codec::{decode_one, encode_one};
use sparklet::{HashPartitioner, Partitioner, SparkConf, SparkContext};

fn ctx(executors: usize, partitions: usize) -> SparkContext {
    SparkContext::new(
        SparkConf::default()
            .with_executors(executors.max(1))
            .with_partitions(partitions.max(1)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn codec_roundtrips_arbitrary_pairs(
        data in proptest::collection::vec((any::<u64>(), any::<f64>()), 0..200),
    ) {
        let enc = encode_one(&data);
        let dec: Vec<(u64, f64)> = decode_one(enc).unwrap();
        prop_assert_eq!(dec.len(), data.len());
        for ((k1, v1), (k2, v2)) in dec.iter().zip(&data) {
            prop_assert_eq!(k1, k2);
            prop_assert_eq!(v1.to_bits(), v2.to_bits(), "bitwise float identity");
        }
    }

    #[test]
    fn codec_roundtrips_nested(
        data in proptest::collection::vec(
            proptest::collection::vec(any::<f32>(), 0..8),
            0..20,
        ),
    ) {
        let enc = encode_one(&data);
        let dec: Vec<Vec<f32>> = decode_one(enc).unwrap();
        prop_assert_eq!(
            dec.iter().flatten().map(|f| f.to_bits()).collect::<Vec<_>>(),
            data.iter().flatten().map(|f| f.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn collect_preserves_multiset(
        data in proptest::collection::vec((0usize..50, any::<u64>()), 0..120),
        executors in 1usize..6,
        partitions in 1usize..17,
    ) {
        let sc = ctx(executors, partitions);
        let rdd = sc.parallelize(data.clone(), Some(partitions.max(1)));
        let mut got = rdd.collect().unwrap();
        let mut want = data;
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn shuffle_preserves_multiset(
        data in proptest::collection::vec((0usize..20, any::<u64>()), 1..100),
        partitions in 1usize..9,
    ) {
        let sc = ctx(3, 6);
        let mut want = data.clone();
        let rdd = sc
            .parallelize(data, Some(5))
            .map(|kv| kv) // forget partitioning
            .partition_by(partitions.max(1), Arc::new(HashPartitioner));
        let mut got = rdd.collect().unwrap();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn keys_land_in_their_hash_partition(
        keys in proptest::collection::vec(any::<usize>(), 1..60),
        partitions in 1usize..8,
    ) {
        let sc = ctx(2, 4);
        let partitions = partitions.max(1);
        let data: Vec<(usize, u64)> = keys.iter().map(|&k| (k, 1)).collect();
        let rdd = sc
            .parallelize(data, Some(3))
            .map(|kv| kv)
            .partition_by(partitions, Arc::new(HashPartitioner));
        // group_by_key with the same partitioner must not lose pairs —
        // counting via reduce validates co-location end-to-end.
        let counts = rdd
            .reduce_by_key(|a, b| a + b, partitions, Arc::new(HashPartitioner))
            .collect()
            .unwrap();
        let mut expect: HashMap<usize, u64> = HashMap::new();
        for k in &keys {
            *expect.entry(*k).or_default() += 1;
        }
        prop_assert_eq!(counts.len(), expect.len());
        for (k, c) in counts {
            prop_assert_eq!(c, expect[&k]);
        }
    }

    #[test]
    fn group_by_key_groups_everything_once(
        data in proptest::collection::vec((0usize..10, 0u64..1000), 1..80),
    ) {
        let sc = ctx(3, 6);
        let grouped = sc
            .parallelize(data.clone(), Some(4))
            .group_by_key(4, Arc::new(HashPartitioner))
            .collect()
            .unwrap();
        let total: usize = grouped.iter().map(|(_, vs)| vs.len()).sum();
        prop_assert_eq!(total, data.len());
        // Every value accounted under its own key.
        for (k, vs) in grouped {
            let mut want: Vec<u64> =
                data.iter().filter(|(dk, _)| *dk == k).map(|(_, v)| *v).collect();
            let mut got = vs;
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn checkpoint_is_transparent(
        data in proptest::collection::vec((0usize..30, any::<u64>()), 0..60),
    ) {
        let sc = ctx(4, 8);
        let rdd = sc.parallelize(data, Some(8)).map_values(|v| v ^ 0xFF);
        let mut direct = rdd.collect().unwrap();
        let mut through_ckpt = rdd.checkpoint().unwrap().collect().unwrap();
        direct.sort_unstable();
        through_ckpt.sort_unstable();
        prop_assert_eq!(direct, through_ckpt);
    }

    #[test]
    fn partitioner_is_total_and_stable(key in any::<(usize, usize)>(), parts in 1usize..64) {
        let p = HashPartitioner;
        let a = p.partition(&key, parts);
        prop_assert!(a < parts);
        prop_assert_eq!(a, p.partition(&key, parts));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Retry soundness: with staging capacity fixed at the fault-free
    /// high-water mark, no fault plan whose per-task failure count
    /// stays under `max_task_attempts` may flip a succeeding job into
    /// a `StagingOverflow` — re-staged buckets must reconcile, not
    /// accumulate. Single node, so retries land where the originals
    /// were staged (the worst case for accounting).
    #[test]
    fn fault_plans_never_flip_success_into_overflow(
        plan in proptest::collection::vec((0u64..3, 0usize..4, 1usize..4), 0..6),
    ) {
        let job = |sc: &SparkContext| {
            let data: Vec<(usize, u64)> = (0..48).map(|i| (i, (i * 7) as u64)).collect();
            let rdd = sc
                .parallelize(data, Some(4))
                .map(|(k, v)| (k % 5, v))
                .reduce_by_key(|a, b| a + b, 4, Arc::new(HashPartitioner));
            let mut got = rdd.collect()?;
            got.sort_unstable();
            Ok::<_, sparklet::JobError>(got)
        };
        let free = SparkContext::new(SparkConf::default().with_executors(1).with_partitions(4));
        let want = job(&free).unwrap();
        let peak = free.peak_staged_bytes(0);

        let sc = SparkContext::new(
            SparkConf::default()
                .with_executors(1)
                .with_partitions(4)
                .with_staging_capacity(peak),
        );
        let mut per_task: HashMap<(u64, usize), usize> = HashMap::new();
        for &(stage, partition, times) in &plan {
            sc.inject_failure(stage, partition, times);
            *per_task.entry((stage, partition)).or_default() += times;
        }
        // Overlapping rules can exhaust the 4-attempt budget; then the
        // job may legitimately fail — but never with StagingOverflow.
        let within_budget = per_task.values().all(|&t| t < 4);
        match job(&sc) {
            Err(sparklet::JobError::StagingOverflow { node, used, capacity }) => {
                prop_assert!(
                    false,
                    "retry inflated staging into a spurious overflow \
                     (node {node}: {used}/{capacity})"
                );
            }
            Err(other) => prop_assert!(!within_budget, "unexpected failure: {other}"),
            Ok(got) => {
                prop_assert_eq!(got, want);
                prop_assert_eq!(sc.staged_bytes(0), free.staged_bytes(0));
            }
        }
    }
}
