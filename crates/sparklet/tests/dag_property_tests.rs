//! Property tests of the DAG planner: narrow-chain fusion and
//! materialized-shuffle pruning must be pure optimizations — invisible
//! in `collect()` output for any lineage shape.

use std::sync::Arc;

use proptest::prelude::*;
use sparklet::{HashPartitioner, Rdd, SparkConf, SparkContext, StorageLevel};

fn ctx() -> SparkContext {
    SparkContext::new(
        SparkConf::default()
            .with_executors(3)
            .with_worker_threads(1)
            .with_partitions(4),
    )
}

/// A random narrow transformation, applicable both to an [`Rdd`] and
/// to a plain `Vec` reference model.
#[derive(Debug, Clone)]
enum NarrowOp {
    /// `map`: shift the key, add to the value.
    Map { key_shift: usize, add: u64 },
    /// `map_values`: xor the value.
    Xor(u64),
    /// `filter`: keep keys in one residue class.
    Filter { modulus: usize, keep: usize },
    /// `flat_map`: duplicate each pair under a second key.
    Duplicate { key_offset: usize },
}

fn narrow_op() -> impl Strategy<Value = NarrowOp> {
    prop_oneof![
        (0usize..5, any::<u64>()).prop_map(|(key_shift, add)| NarrowOp::Map { key_shift, add }),
        any::<u64>().prop_map(NarrowOp::Xor),
        (2usize..5, 0usize..5).prop_map(|(modulus, keep)| NarrowOp::Filter {
            modulus,
            keep: keep % modulus
        }),
        (1usize..4).prop_map(|key_offset| NarrowOp::Duplicate { key_offset }),
    ]
}

fn apply_rdd(rdd: &Rdd<usize, u64>, op: &NarrowOp) -> Rdd<usize, u64> {
    match *op {
        NarrowOp::Map { key_shift, add } => {
            rdd.map(move |(k, v)| (k.wrapping_add(key_shift) % 64, v.wrapping_add(add)))
        }
        NarrowOp::Xor(x) => rdd.map_values(move |v| v ^ x),
        NarrowOp::Filter { modulus, keep } => rdd.filter(move |k, _| k % modulus == keep),
        NarrowOp::Duplicate { key_offset } => {
            rdd.flat_map(move |(k, v)| vec![(k, v), (k.wrapping_add(key_offset) % 64, v)])
        }
    }
}

fn apply_vec(data: Vec<(usize, u64)>, op: &NarrowOp) -> Vec<(usize, u64)> {
    match *op {
        NarrowOp::Map { key_shift, add } => data
            .into_iter()
            .map(|(k, v)| (k.wrapping_add(key_shift) % 64, v.wrapping_add(add)))
            .collect(),
        NarrowOp::Xor(x) => data.into_iter().map(|(k, v)| (k, v ^ x)).collect(),
        NarrowOp::Filter { modulus, keep } => data
            .into_iter()
            .filter(|(k, _)| k % modulus == keep)
            .collect(),
        NarrowOp::Duplicate { key_offset } => data
            .into_iter()
            .flat_map(|(k, v)| vec![(k, v), (k.wrapping_add(key_offset) % 64, v)])
            .collect(),
    }
}

fn sorted(mut v: Vec<(usize, u64)>) -> Vec<(usize, u64)> {
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A fused narrow chain (one pass per partition) must equal the
    /// same chain executed with a forced materialization boundary
    /// after every operator, and both must equal the reference model.
    #[test]
    fn fused_narrow_chain_equals_unfused_execution(
        data in proptest::collection::vec((0usize..40, any::<u64>()), 0..80),
        ops in proptest::collection::vec(narrow_op(), 0..5),
        partitions in 1usize..7,
    ) {
        let sc = ctx();
        let mut fused = sc.parallelize(data.clone(), Some(partitions));
        for op in &ops {
            fused = apply_rdd(&fused, op);
        }
        let got_fused = sorted(fused.collect().unwrap());

        let mut unfused = sc.parallelize(data.clone(), Some(partitions));
        for op in &ops {
            unfused = apply_rdd(&unfused, op)
                .checkpoint_with_level(StorageLevel::MemoryOnly)
                .unwrap();
        }
        let got_unfused = sorted(unfused.collect().unwrap());

        let mut want = data;
        for op in &ops {
            want = apply_vec(want, op);
        }
        let want = sorted(want);

        prop_assert_eq!(&got_fused, &want, "fused chain diverged from the model");
        prop_assert_eq!(&got_unfused, &want, "unfused chain diverged from the model");
    }

    /// Re-collecting a wide lineage prunes its already-materialized
    /// shuffles from the plan; the pruned plan must produce the same
    /// output, and so must a plan whose middle sits behind a persisted
    /// materialization.
    #[test]
    fn pruning_materialized_shuffles_never_changes_collect(
        data in proptest::collection::vec((0usize..30, any::<u64>()), 1..80),
        ops in proptest::collection::vec(narrow_op(), 0..3),
        reduce_parts in 1usize..6,
    ) {
        let sc = ctx();
        let mut narrow = sc.parallelize(data, Some(4));
        for op in &ops {
            narrow = apply_rdd(&narrow, op);
        }
        // Repartition into a count outside the 1..6 strategy range so
        // the shuffle is never elided as already co-partitioned.
        let wide = narrow
            .reduce_by_key(|a, b| a.wrapping_add(b), reduce_parts, Arc::new(HashPartitioner))
            .map_values(|v| v.rotate_left(1))
            .partition_by(7, Arc::new(HashPartitioner));

        let first = sorted(wide.collect().unwrap());
        // Second collect: both upstream shuffles are Done and pruned.
        let second = sorted(wide.collect().unwrap());
        prop_assert_eq!(&first, &second, "pruned re-collect diverged");

        // A persisted cut mid-lineage must be invisible too.
        let persisted = wide.persist(StorageLevel::MemoryAndDisk).unwrap();
        let third = sorted(persisted.collect().unwrap());
        prop_assert_eq!(&first, &third, "persisted re-collect diverged");

        let map_stages = sc.with_event_log(|log| {
            log.stages()
                .iter()
                .filter(|s| s.label.ends_with("map"))
                .count()
        });
        prop_assert_eq!(map_stages, 2, "each shuffle must materialize exactly once");
    }
}
